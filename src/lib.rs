//! # deeppower-suite
//!
//! Umbrella crate for the DeepPower (ICPP 2023) reproduction. Re-exports
//! every sub-crate under one roof so the repo-level examples and
//! integration tests have a single dependency:
//!
//! * [`nn`] — dense tensors, layers, manual backprop, optimizers;
//! * [`drl`] — DDPG / DQN / DDQN / SAC agents built on `nn`;
//! * [`sim`] — the event-driven multi-core DVFS server simulator
//!   (the paper's Xeon testbed stand-in);
//! * [`workload`] — Tailbench-like application models, diurnal traces,
//!   Poisson arrivals;
//! * [`deeppower`] — the DeepPower framework itself: thread controller,
//!   state observer, reward calculator, hierarchical governor, training;
//! * [`baselines`] — ReTail, Gemini, and fixed/max-frequency governors.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use deeppower_baselines as baselines;
pub use deeppower_core as deeppower;
pub use deeppower_drl as drl;
pub use deeppower_nn as nn;
pub use deeppower_simd_server as sim;
pub use deeppower_workload as workload;
