//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment has no network access and an empty cargo
//! registry, so the real `rand` can never be fetched. This crate
//! re-implements exactly the surface the workspace uses:
//!
//! * [`RngCore`] / [`Rng`] with `random::<f32/f64/bool>()` and
//!   `random_range(a..b)` over float and integer ranges;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded
//!   via SplitMix64 (same construction the real `rand` documents for
//!   reproducible small-state generators).
//!
//! Streams are deterministic per seed and stable across platforms,
//! which is exactly what the experiment harness needs for
//! thread-count-independent results.

use std::ops::Range;

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seeding interface — only the `seed_from_u64` entry point is used in
/// this workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the generator's "standard"
/// distribution (`rng.random::<T>()`).
pub trait StandardSample: Sized {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of mantissa entropy.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of mantissa entropy.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges samplable via `rng.random_range(range)`.
pub trait SampleRange<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f32> for Range<f32> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "random_range: empty f32 range");
        let u = f32::standard_sample(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "random_range: empty f64 range");
        let u = f64::standard_sample(rng);
        self.start + (self.end - self.start) * u
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire). The tiny
                // modulo bias of plain `% span` would be fine for our
                // purposes, but this is just as cheap.
                let x = rng.next_u64() as u128;
                let offset = (x * span) >> 64;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (seeded via SplitMix64).
    ///
    /// Not the same stream as upstream `rand`'s ChaCha12-based `StdRng`,
    /// but this workspace only ever promises determinism *per seed
    /// within this codebase*, which xoshiro256++ delivers with far less
    /// code.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per Vigna's reference implementation.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert!(same < 4);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f32 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.random_range(-3.0f32..5.0);
            assert!((-3.0..5.0).contains(&x));
            let n = rng.random_range(10usize..20);
            assert!((10..20).contains(&n));
            let i = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn range_covers_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
