//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach a crate registry, so the real
//! serde stack is replaced by this minimal, dependency-free
//! implementation. Instead of serde's visitor architecture it uses a
//! concrete [`Value`] tree:
//!
//! * [`Serialize`] renders a type into a [`Value`];
//! * [`Deserialize`] rebuilds a type from a [`&Value`](Value);
//! * `#[derive(Serialize, Deserialize)]` comes from the sibling
//!   `serde_derive` proc-macro crate (named structs, unit enum
//!   variants, tuple enum variants, `#[serde(skip)]`);
//! * the sibling `serde_json` crate renders/parses `Value` as JSON.
//!
//! Numbers keep their integer-ness ([`Number::U64`]/[`Number::I64`])
//! when possible and fall back to [`Number::F64`]; floats round-trip
//! exactly because `serde_json` prints shortest-round-trip
//! representations.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON-shaped number.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    U64(u64),
    I64(i64),
    F64(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(n) => n as f64,
            Number::I64(n) => n as f64,
            Number::F64(n) => n,
        }
    }
}

/// A parsed / to-be-rendered JSON document.
///
/// Objects preserve insertion order (a plain `Vec` of pairs), which
/// keeps serialization deterministic — important for the harness's
/// byte-identical-output guarantee.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mutable counterpart of [`get`](Self::get).
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        match self {
            Value::Object(pairs) => pairs.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Index into an array value.
    pub fn at(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(index),
            _ => None,
        }
    }

    /// Mutable counterpart of [`at`](Self::at).
    pub fn at_mut(&mut self, index: usize) -> Option<&mut Value> {
        match self {
            Value::Array(items) => items.get_mut(index),
            _ => None,
        }
    }

    /// The numeric payload widened to `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(Number::F64(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Serialization / deserialization error.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Render `self` into a [`Value`] tree.
pub trait Serialize {
    fn serialize_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn deserialize_value(value: &Value) -> Result<Self, Error>;
}

// ---- primitive impls -------------------------------------------------

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::Number(Number::U64(n)) => *n,
                    Value::Number(Number::I64(n)) if *n >= 0 => *n as u64,
                    Value::Number(Number::F64(f))
                        if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 =>
                    {
                        *f as u64
                    }
                    other => {
                        return Err(Error::custom(format!(
                            concat!("expected ", stringify!($t), ", got {:?}"),
                            other
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!(concat!("value {} out of range for ", stringify!($t)), n))
                })
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::I64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::Number(Number::I64(n)) => *n,
                    Value::Number(Number::U64(n)) if *n <= i64::MAX as u64 => *n as i64,
                    Value::Number(Number::F64(f)) if f.fract() == 0.0 => *f as i64,
                    other => {
                        return Err(Error::custom(format!(
                            concat!("expected ", stringify!($t), ", got {:?}"),
                            other
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!(concat!("value {} out of range for ", stringify!($t)), n))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    /// Widening to `f64` is exact; `serde_json` prints the shortest
    /// string that round-trips the `f64`, so the `f32` survives a
    /// serialize → parse cycle bit-for-bit.
    fn serialize_value(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Number(n) => Ok(n.as_f64() as f32),
            Value::Null => Ok(f32::NAN),
            other => Err(Error::custom(format!("expected f32, got {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Number(n) => Ok(n.as_f64()),
            Value::Null => Ok(f64::NAN),
            other => Err(Error::custom(format!("expected f64, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Leaks the parsed string. Only used for rare config-like fields
    /// (e.g. `AppSpec::name`); never in a hot loop.
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!(
                "expected single-char string, got {other:?}"
            ))),
        }
    }
}

// ---- composite impls -------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::deserialize_value(item)?;
                }
                Ok(out)
            }
            other => Err(Error::custom(format!(
                "expected array of length {N}, got {other:?}"
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![self.0.serialize_value(), self.1.serialize_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 2 => Ok((
                A::deserialize_value(&items[0])?,
                B::deserialize_value(&items[1])?,
            )),
            other => Err(Error::custom(format!("expected 2-tuple, got {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![
            self.0.serialize_value(),
            self.1.serialize_value(),
            self.2.serialize_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 3 => Ok((
                A::deserialize_value(&items[0])?,
                B::deserialize_value(&items[1])?,
                C::deserialize_value(&items[2])?,
            )),
            other => Err(Error::custom(format!("expected 3-tuple, got {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        T::deserialize_value(value).map(Box::new)
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
