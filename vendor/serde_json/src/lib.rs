//! Offline stand-in for `serde_json`, built on the vendored `serde`
//! stub's [`Value`] tree.
//!
//! * [`to_string`] / [`to_string_pretty`] render any [`Serialize`]
//!   type. Floats print with Rust's shortest-round-trip formatting
//!   (`{:?}`), so every finite `f64` — and therefore every `f32`
//!   widened through it — survives a serialize → parse cycle exactly.
//!   Non-finite floats render as `null`.
//! * [`from_str`] parses JSON (objects, arrays, strings with escapes
//!   and surrogate pairs, numbers, booleans, null) and hands the tree
//!   to [`Deserialize`].

use serde::{Deserialize, Serialize};
pub use serde::{Error, Number, Value};

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serialize a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Parse a JSON document into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_str(s)?;
    T::deserialize_value(&value)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.serialize_value())
}

/// Rebuild a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::deserialize_value(&value)
}

// ---- writer ----------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    use std::fmt::Write;
    match *n {
        Number::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Number::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Number::F64(v) => {
            if v.is_finite() {
                // Debug formatting is shortest-round-trip and always
                // keeps a decimal point or exponent, so the token
                // parses back as a float.
                let _ = write!(out, "{v:?}");
            } else {
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------

fn parse_value_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected character {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape sequence"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::custom("unpaired high surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::custom("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::custom("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let n = u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos = end;
        Ok(n)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if stripped.parse::<u64>().is_ok() {
                    if let Ok(n) = text.parse::<i64>() {
                        return Ok(Value::Number(Number::I64(n)));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(n)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert_eq!(from_str::<f64>("2.25").unwrap(), 2.25);
        assert!(!from_str::<bool>("false").unwrap());
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn strings_escape_and_roundtrip() {
        let s = "line\none \"quoted\" \\ tab\t ünïcode 🚀".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>(r#""Aé""#).unwrap(), "Aé");
        assert_eq!(from_str::<String>(r#""🚀""#).unwrap(), "🚀");
    }

    #[test]
    fn f32_exact_roundtrip() {
        let xs: Vec<f32> = vec![0.1, -0.3333333, 1e-30, 3.4e38, 1.0, -0.0, 7.25e-12];
        let json = to_string(&xs).unwrap();
        let back: Vec<f32> = from_str(&json).unwrap();
        for (a, b) in xs.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} did not roundtrip");
        }
    }

    #[test]
    fn integers_keep_exactness() {
        let n = u64::MAX;
        let json = to_string(&n).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), n);
    }

    #[test]
    fn nested_containers_roundtrip() {
        let v: Vec<Vec<f64>> = vec![vec![1.0, 2.5], vec![], vec![-3.0]];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<f64>>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Vec<u32> = vec![1, 2, 3];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<u32>>(&pretty).unwrap(), v);
    }

    #[test]
    fn whitespace_tolerated() {
        let v: Vec<u32> = from_str(" [ 1 , 2 ,\n\t3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn errors_on_garbage() {
        assert!(from_str::<u32>("[1").is_err());
        assert!(from_str::<u32>("1 trailing").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
