//! Offline stand-in for `serde_derive`.
//!
//! A hand-rolled `#[derive(Serialize, Deserialize)]` implementation
//! built directly on `proc_macro::TokenStream` (no `syn`/`quote` —
//! those can't be fetched in this offline build environment). It
//! supports exactly the shapes used in this workspace:
//!
//! * structs with named fields;
//! * enums with unit variants and tuple variants;
//! * the `#[serde(skip)]` field attribute (field omitted on
//!   serialize, `Default::default()` on deserialize);
//! * the `#[serde(default)]` / `#[serde(default = "path")]` field
//!   attributes (missing field on deserialize falls back to
//!   `Default::default()` or `path()`; serialization still emits the
//!   field);
//! * no generic parameters (none of the workspace's serde types have
//!   any — the macro panics with a clear message if one appears).
//!
//! Generated code targets the sibling `serde` stub's `Value`-tree
//! API: `Serialize::serialize_value(&self) -> Value` and
//! `Deserialize::deserialize_value(&Value) -> Result<Self, Error>`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item.kind {
        ItemKind::Struct(fields) => gen_struct_serialize(&item.name, fields),
        ItemKind::Enum(variants) => gen_enum_serialize(&item.name, variants),
    };
    code.parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item.kind {
        ItemKind::Struct(fields) => gen_struct_deserialize(&item.name, fields),
        ItemKind::Enum(variants) => gen_enum_deserialize(&item.name, variants),
    };
    code.parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// ---- parsed shapes ---------------------------------------------------

struct Item {
    name: String,
    kind: ItemKind,
}

enum ItemKind {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    skip: bool,
    /// `None` — field required. `Some(None)` — `#[serde(default)]`.
    /// `Some(Some(path))` — `#[serde(default = "path")]`.
    default: Option<Option<String>>,
}

struct Variant {
    name: String,
    /// Number of tuple payload elements; 0 = unit variant.
    arity: usize,
}

// ---- parsing ---------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    skip_attrs(&mut toks);
    skip_visibility(&mut toks);

    let keyword = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic parameters are not supported (type `{name}`)");
    }
    let body = match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde_derive: `{name}` must have a braced body (tuple/unit structs unsupported), got {other:?}"
        ),
    };

    let kind = match keyword.as_str() {
        "struct" => ItemKind::Struct(parse_fields(body)),
        "enum" => ItemKind::Enum(parse_variants(body)),
        other => panic!("serde_derive: expected `struct` or `enum`, got `{other}`"),
    };
    Item { name, kind }
}

type Toks = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// The serde field attributes this shim understands.
#[derive(Default)]
struct FieldAttrs {
    skip: bool,
    default: Option<Option<String>>,
}

/// Consume leading `#[...]` attributes (including doc comments) and
/// collect any recognized `#[serde(...)]` field attributes.
fn skip_attrs(toks: &mut Toks) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    while matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        toks.next();
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                collect_serde_attrs(g.stream(), &mut attrs);
            }
            other => panic!("serde_derive: malformed attribute, got {other:?}"),
        }
    }
    attrs
}

/// Fold one attribute body (`serde(skip)`, `serde(default)`,
/// `serde(default = "path")`, …) into `attrs`. Non-serde attributes
/// and unrecognized serde idents are ignored, matching real serde's
/// tolerance of attributes meant for other derives.
fn collect_serde_attrs(stream: TokenStream, attrs: &mut FieldAttrs) {
    let mut toks = stream.into_iter();
    match toks.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let body = match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return,
    };
    let mut inner = body.into_iter().peekable();
    while let Some(tok) = inner.next() {
        let TokenTree::Ident(id) = tok else { continue };
        match id.to_string().as_str() {
            "skip" => attrs.skip = true,
            "default" => {
                let named = matches!(
                    inner.peek(),
                    Some(TokenTree::Punct(p)) if p.as_char() == '='
                );
                if named {
                    inner.next(); // `=`
                    match inner.next() {
                        Some(TokenTree::Literal(lit)) => {
                            let path = lit.to_string();
                            let path = path.trim_matches('"').to_string();
                            attrs.default = Some(Some(path));
                        }
                        other => panic!(
                            "serde_derive: expected string literal after `default =`, got {other:?}"
                        ),
                    }
                } else {
                    attrs.default = Some(None);
                }
            }
            _ => {}
        }
    }
}

fn skip_visibility(toks: &mut Toks) {
    if matches!(toks.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        toks.next();
        if matches!(
            toks.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            toks.next(); // pub(crate) / pub(super)
        }
    }
}

fn parse_fields(body: TokenStream) -> Vec<Field> {
    let mut toks = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        if toks.peek().is_none() {
            break;
        }
        let attrs = skip_attrs(&mut toks);
        skip_visibility(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other:?}"),
        }
        consume_type_until_comma(&mut toks);
        fields.push(Field {
            name,
            skip: attrs.skip,
            default: attrs.default,
        });
    }
    fields
}

/// Consume type tokens up to (and including) the next top-level comma.
/// Commas inside `<...>` belong to the type; commas inside `(...)` /
/// `[...]` are invisible here because those arrive as single `Group`
/// tokens.
fn consume_type_until_comma(toks: &mut Toks) {
    let mut angle_depth: u32 = 0;
    for tok in toks.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut toks = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        if toks.peek().is_none() {
            break;
        }
        skip_attrs(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        let mut arity = 0usize;
        match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                arity = tuple_arity(g.stream());
                toks.next();
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!("serde_derive: struct enum variants unsupported (variant `{name}`)")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("serde_derive: explicit discriminants unsupported (variant `{name}`)")
            }
            _ => {}
        }
        if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            toks.next();
        }
        variants.push(Variant { name, arity });
    }
    variants
}

/// Count top-level comma-separated elements of a tuple payload.
fn tuple_arity(stream: TokenStream) -> usize {
    let mut angle_depth: u32 = 0;
    let mut commas = 0usize;
    let mut trailing_tokens = false;
    for tok in stream {
        trailing_tokens = true;
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    commas += 1;
                    trailing_tokens = false;
                }
                _ => {}
            }
        }
    }
    commas + usize::from(trailing_tokens)
}

// ---- codegen ---------------------------------------------------------

fn gen_struct_serialize(name: &str, fields: &[Field]) -> String {
    let mut pushes = String::new();
    for f in fields.iter().filter(|f| !f.skip) {
        pushes.push_str(&format!(
            "__fields.push((::std::string::String::from(\"{0}\"), \
             ::serde::Serialize::serialize_value(&self.{0})));\n",
            f.name
        ));
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{\n\
                 let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(__fields)\n\
             }}\n\
         }}\n"
    )
}

fn gen_struct_deserialize(name: &str, fields: &[Field]) -> String {
    let mut inits = String::new();
    for f in fields {
        if f.skip {
            inits.push_str(&format!(
                "{}: ::std::default::Default::default(),\n",
                f.name
            ));
        } else {
            let on_missing = match &f.default {
                Some(Some(path)) => format!("{path}()"),
                Some(None) => "::std::default::Default::default()".to_string(),
                None => format!(
                    "return ::std::result::Result::Err(\
                     ::serde::Error::custom(\"{name}: missing field `{0}`\"))",
                    f.name
                ),
            };
            inits.push_str(&format!(
                "{0}: match __obj.iter().find(|(__k, _)| __k.as_str() == \"{0}\") {{\n\
                     ::std::option::Option::Some((_, __v)) => \
                         ::serde::Deserialize::deserialize_value(__v)?,\n\
                     ::std::option::Option::None => {on_missing},\n\
                 }},\n",
                f.name
            ));
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_value(__value: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n\
                 let __obj = match __value {{\n\
                     ::serde::Value::Object(__m) => __m,\n\
                     _ => return ::std::result::Result::Err(\
                         ::serde::Error::custom(\"{name}: expected object\")),\n\
                 }};\n\
                 ::std::result::Result::Ok({name} {{\n\
                     {inits}\
                 }})\n\
             }}\n\
         }}\n"
    )
}

fn gen_enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        if v.arity == 0 {
            arms.push_str(&format!(
                "{name}::{0} => ::serde::Value::String(::std::string::String::from(\"{0}\")),\n",
                v.name
            ));
        } else {
            let binders: Vec<String> = (0..v.arity).map(|i| format!("__f{i}")).collect();
            let payload = if v.arity == 1 {
                "::serde::Serialize::serialize_value(__f0)".to_string()
            } else {
                let items: Vec<String> = binders
                    .iter()
                    .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
            };
            arms.push_str(&format!(
                "{name}::{0}({binds}) => ::serde::Value::Object(::std::vec![\
                     (::std::string::String::from(\"{0}\"), {payload})]),\n",
                v.name,
                binds = binders.join(", "),
            ));
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{\n\
                 match self {{\n\
                     {arms}\
                 }}\n\
             }}\n\
         }}\n"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| v.arity == 0)
        .map(|v| {
            format!(
                "\"{0}\" => ::std::result::Result::Ok({name}::{0}),\n",
                v.name
            )
        })
        .collect();
    let mut payload_arms = String::new();
    for v in variants.iter().filter(|v| v.arity > 0) {
        if v.arity == 1 {
            payload_arms.push_str(&format!(
                "\"{0}\" => ::std::result::Result::Ok({name}::{0}(\
                     ::serde::Deserialize::deserialize_value(__v)?)),\n",
                v.name
            ));
        } else {
            let elems: Vec<String> = (0..v.arity)
                .map(|i| format!("::serde::Deserialize::deserialize_value(&__items[{i}])?"))
                .collect();
            payload_arms.push_str(&format!(
                "\"{0}\" => match __v {{\n\
                     ::serde::Value::Array(__items) if __items.len() == {arity} => \
                         ::std::result::Result::Ok({name}::{0}({elems})),\n\
                     _ => ::std::result::Result::Err(::serde::Error::custom(\
                         \"{name}::{0}: expected array of {arity}\")),\n\
                 }},\n",
                v.name,
                arity = v.arity,
                elems = elems.join(", "),
            ));
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_value(__value: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n\
                 match __value {{\n\
                     ::serde::Value::String(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"{name}: unknown variant `{{__other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                         let (__k, __v) = &__pairs[0];\n\
                         match __k.as_str() {{\n\
                             {payload_arms}\
                             __other => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"{name}: unknown variant `{{__other}}`\"))),\n\
                         }}\n\
                     }}\n\
                     _ => ::std::result::Result::Err(::serde::Error::custom(\
                         \"{name}: expected string or single-key object\")),\n\
                 }}\n\
             }}\n\
         }}\n"
    )
}
