//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace uses —
//! [`Strategy`] over ranges, [`Just`], `prop_oneof!`,
//! [`collection::vec`], `.prop_map`, and the `proptest!` /
//! `prop_assert*` / `prop_assume!` macro family — on top of the
//! vendored deterministic `rand` crate.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports the panic directly;
//! * **deterministic seeding** — each `proptest!` test derives its RNG
//!   seed from the test's module path + name (FNV-1a), so runs are
//!   reproducible and thread-count independent rather than
//!   entropy-seeded;
//! * `prop_assume!` skips the current case instead of drawing a
//!   replacement, so a test effectively runs *up to* `cases` cases.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};
use std::ops::Range;

/// Run-time configuration for a `proptest!` block. Only `cases` is
/// honored; the other fields exist so `..ProptestConfig::default()`
/// struct-update syntax from real-proptest code keeps compiling.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
    pub max_shrink_iters: u32,
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_shrink_iters: 0,
            max_global_rejects: 1024,
        }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform sampling over a half-open range (floats and integers).
impl<T> Strategy for Range<T>
where
    Range<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

/// `.prop_map` adapter.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between same-typed strategies (`prop_oneof!`).
#[derive(Clone, Debug)]
pub struct OneOf<S>(pub Vec<S>);

impl<S: Strategy> Strategy for OneOf<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> S::Value {
        assert!(
            !self.0.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        let idx = rng.random_range(0..self.0.len());
        self.0[idx].sample(rng)
    }
}

/// Length specification for [`collection::vec`]: a fixed size or a
/// range of sizes.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        Self {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

pub mod collection {
    use super::{SizeRange, StdRng, Strategy};
    use rand::Rng;

    /// Strategy producing `Vec`s of elements drawn from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.max_exclusive > self.size.min + 1 {
                rng.random_range(self.size.min..self.size.max_exclusive)
            } else {
                self.size.min
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Deterministic per-test RNG: seed = FNV-1a(module_path::test_name).
pub fn test_rng(name: &str) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    pub use crate::{Just, Map, OneOf, ProptestConfig, SizeRange, Strategy};
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip the rest of the current case when the precondition fails.
/// (Each case body runs inside a closure, so `return` exits only the
/// case, not the whole test.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf(::std::vec![$($strategy),+])
    };
}

/// The test-harness macro: expands each `#[test] fn name(arg in
/// strategy, ...) { body }` into a plain `#[test]` that samples the
/// strategies `config.cases` times from a deterministic RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng =
                $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&$strategy, &mut __rng);)*
                let mut __one_case = || -> () { $body };
                __one_case();
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_sample_in_bounds() {
        let mut rng = crate::test_rng("self-test");
        let s = collection::vec(-2.0f32..2.0, 10);
        for _ in 0..100 {
            let v = crate::Strategy::sample(&s, &mut rng);
            assert_eq!(v.len(), 10);
            assert!(v.iter().all(|x| (-2.0..2.0).contains(x)));
        }
    }

    #[test]
    fn oneof_covers_all_alternatives() {
        let mut rng = crate::test_rng("oneof");
        let s = prop_oneof![Just(1u8), Just(2), Just(3)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[crate::Strategy::sample(&s, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// The macro itself: sampling, assume, and asserts all wire up.
        #[test]
        fn macro_self_test(x in 0u64..100, v in collection::vec(0.0f32..1.0, 3)) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), 3);
            prop_assert_ne!(x, 13);
        }
    }
}
