//! Head-to-head comparison of all four policies (max-frequency baseline,
//! ReTail, Gemini, DeepPower) on one application under the same diurnal
//! workload — a miniature of the paper's Fig. 7.
//!
//! ```sh
//! cargo run --release --example compare_policies [xapian|masstree|moses|sphinx|img-dnn]
//! ```

use deeppower_suite::baselines::{
    collect_profile, max_freq_governor, GeminiConfig, GeminiGovernor, RetailConfig, RetailGovernor,
};
use deeppower_suite::deeppower::{train, DeepPowerGovernor, Mode, TrainConfig};
use deeppower_suite::sim::{FreqPlan, Governor, RunOptions, Server, ServerConfig, MILLISECOND};
use deeppower_suite::workload::{trace_arrivals, App, AppSpec};

fn parse_app(name: &str) -> App {
    match name {
        "masstree" => App::Masstree,
        "moses" => App::Moses,
        "sphinx" => App::Sphinx,
        "img-dnn" | "imgdnn" => App::ImgDnn,
        _ => App::Xapian,
    }
}

fn main() {
    let app = parse_app(&std::env::args().nth(1).unwrap_or_default());
    let spec = AppSpec::get(app);
    let server = Server::new(ServerConfig::paper_default(spec.n_threads));

    // Shared test workload: one diurnal period at 0.9 peak load.
    let mut train_cfg = TrainConfig::for_app(app);
    train_cfg.episodes = 4;
    train_cfg.episode_s = 60;
    train_cfg.seed = 11;
    let trace = deeppower_suite::deeppower::train::trace_for(&spec, train_cfg.peak_load, 60, 999);
    let arrivals = trace_arrivals(&spec, &trace, 4242);
    println!(
        "app = {} ({} requests over 60 s)",
        spec.name,
        arrivals.len()
    );

    let opts = RunOptions {
        tick_ns: train_cfg.deeppower.short_time,
        ..Default::default()
    };

    // Baseline: unmanaged.
    let mut maxf = max_freq_governor();
    let base = server.run(&arrivals, &mut maxf, opts);

    // ReTail and Gemini: profile at a fixed 50% load, then run.
    let profile = collect_profile(&spec, 0.5, 3, 77);
    let mut retail = RetailGovernor::train(
        &profile,
        FreqPlan::xeon_gold_5218r(),
        RetailConfig::default(),
    );
    let res_retail = server.run(&arrivals, &mut retail, opts);
    let mut gemini = GeminiGovernor::train(
        &profile,
        FreqPlan::xeon_gold_5218r(),
        spec.n_threads,
        GeminiConfig::default(),
        5,
    );
    let res_gemini = server.run(&arrivals, &mut gemini, opts);

    // DeepPower: quick training then deterministic evaluation.
    println!("training DeepPower ({} episodes)...", train_cfg.episodes);
    let (policy, _) = train(&train_cfg);
    let mut agent = policy.build_agent();
    let mut dp = DeepPowerGovernor::new(&mut agent, policy.deeppower, Mode::Eval);
    let res_dp = server.run(&arrivals, &mut dp, opts);

    println!(
        "\n{:<12} {:>10} {:>9} {:>10} {:>10} {:>9}",
        "policy", "power (W)", "saving%", "p99 (ms)", "mean/tail", "timeout%"
    );
    let rows: Vec<(&str, &deeppower_suite::sim::SimResult)> = vec![
        ("max-freq", &base),
        ("retail", &res_retail),
        ("gemini", &res_gemini),
        ("deeppower", &res_dp),
    ];
    for (name, res) in rows {
        println!(
            "{:<12} {:>10.1} {:>8.1}% {:>10.2} {:>10.2} {:>8.2}%",
            name,
            res.avg_power_w,
            100.0 * (1.0 - res.avg_power_w / base.avg_power_w),
            res.stats.p99_ns as f64 / MILLISECOND as f64,
            res.stats.mean_tail_ratio(),
            res.stats.timeout_rate() * 100.0,
        );
    }
    println!("\nSLA = {} ms", spec.sla / MILLISECOND);
    let _ = Governor::name(&maxf); // keep the trait import exercised
}
