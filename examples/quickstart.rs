//! Quickstart: simulate a latency-critical server under DeepPower's thread
//! controller with fixed parameters, and compare it with an unmanaged
//! (max-frequency) run.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use deeppower_suite::baselines::max_freq_governor;
use deeppower_suite::deeppower::{ControllerParams, ThreadController};
use deeppower_suite::sim::{RunOptions, Server, ServerConfig, MILLISECOND, SECOND};
use deeppower_suite::workload::{constant_rate_arrivals, App, AppSpec};

fn main() {
    // 1. Pick an application: Xapian, the paper's lead example
    //    (8 ms SLA, 20 worker threads).
    let spec = AppSpec::get(App::Xapian);
    println!(
        "app = {}, SLA = {} ms, threads = {}",
        spec.name,
        spec.sla / MILLISECOND,
        spec.n_threads
    );

    // 2. Build the simulated 20-core Xeon socket.
    let server = Server::new(ServerConfig::paper_default(spec.n_threads));

    // 3. Ten seconds of Poisson arrivals at 50 % of capacity.
    let arrivals = constant_rate_arrivals(&spec, spec.rps_for_load(0.5), 10 * SECOND, 42);
    println!("generated {} requests at 50% load", arrivals.len());

    // 4. Unmanaged baseline: every core at max nominal frequency.
    let mut unmanaged = max_freq_governor();
    let base = server.run(&arrivals, &mut unmanaged, RunOptions::default());

    // 5. DeepPower's thread controller (Algorithm 1) with fixed
    //    parameters — in the full system the DRL agent retunes these every
    //    second (see examples/train_xapian.rs).
    let mut controller = ThreadController::new(ControllerParams::new(0.35, 0.9));
    let managed = server.run(&arrivals, &mut controller, RunOptions::default());

    println!(
        "\n{:<14} {:>10} {:>12} {:>12} {:>10}",
        "policy", "power (W)", "p99 (ms)", "mean (ms)", "timeout%"
    );
    for (name, res) in [("max-freq", &base), ("controller", &managed)] {
        println!(
            "{:<14} {:>10.1} {:>12.3} {:>12.3} {:>9.2}%",
            name,
            res.avg_power_w,
            res.stats.p99_ns as f64 / MILLISECOND as f64,
            res.stats.mean_ns / MILLISECOND as f64,
            res.stats.timeout_rate() * 100.0,
        );
    }
    let saving = 100.0 * (1.0 - managed.avg_power_w / base.avg_power_w);
    println!("\npower saving vs unmanaged baseline: {saving:.1}%");
    assert!(
        managed.stats.p99_ns <= spec.sla,
        "controller must hold the SLA"
    );
}
