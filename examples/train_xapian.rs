//! Train a DeepPower DDPG agent for Xapian under diurnal load, save the
//! policy, reload it, and evaluate against the unmanaged baseline.
//!
//! ```sh
//! cargo run --release --example train_xapian
//! ```
//!
//! Set `DEEPPOWER_FULL=1` for paper-scale training (more episodes, full
//! 360 s trace period) — the default is scaled down to finish in seconds.

use deeppower_suite::baselines::max_freq_governor;
use deeppower_suite::deeppower::{evaluate, train, TrainConfig, TrainedPolicy};
use deeppower_suite::sim::{RunOptions, Server, ServerConfig, TraceConfig, MILLISECOND};
use deeppower_suite::workload::{trace_arrivals, App, AppSpec};

fn main() {
    let full = std::env::var("DEEPPOWER_FULL").is_ok();
    let mut cfg = TrainConfig::for_app(App::Xapian);
    if full {
        cfg.episodes = 12;
        cfg.episode_s = 360;
    } else {
        cfg.episodes = 4;
        cfg.episode_s = 60;
    }
    cfg.seed = 7;

    println!(
        "training DeepPower for {:?}: {} episodes x {} s",
        cfg.app, cfg.episodes, cfg.episode_s
    );
    let (policy, report) = train(&cfg);
    for (i, ((r, p), to)) in report
        .episode_rewards
        .iter()
        .zip(&report.episode_power_w)
        .zip(&report.episode_timeout_rate)
        .enumerate()
    {
        println!(
            "  episode {i}: mean reward {r:>7.3}, power {p:>6.1} W, timeouts {:.2}%",
            to * 100.0
        );
    }
    println!("total DDPG updates: {}", report.updates);

    // Checkpoint round-trip.
    let path = std::env::temp_dir().join("deeppower-xapian-policy.json");
    policy.save(&path).expect("save policy");
    let policy = TrainedPolicy::load(&path).expect("load policy");
    println!("policy checkpoint: {}", path.display());

    // Evaluate on a fresh trace seed vs the unmanaged baseline.
    let eval = evaluate(
        &policy,
        cfg.peak_load,
        cfg.episode_s,
        1234,
        TraceConfig::default(),
    );
    let spec = AppSpec::get(App::Xapian);
    let server = Server::new(ServerConfig::paper_default(spec.n_threads));
    let trace =
        deeppower_suite::deeppower::train::trace_for(&spec, cfg.peak_load, cfg.episode_s, 1234);
    let arrivals = trace_arrivals(&spec, &trace, 1234u64.wrapping_mul(131).wrapping_add(17));
    let mut maxf = max_freq_governor();
    let base = server.run(&arrivals, &mut maxf, RunOptions::default());

    println!(
        "\n{:<12} {:>10} {:>10} {:>10}",
        "policy", "power (W)", "p99 (ms)", "timeout%"
    );
    for (name, power, p99, to) in [
        (
            "max-freq",
            base.avg_power_w,
            base.stats.p99_ns,
            base.stats.timeout_rate(),
        ),
        (
            "deeppower",
            eval.sim.avg_power_w,
            eval.sim.stats.p99_ns,
            eval.sim.stats.timeout_rate(),
        ),
    ] {
        println!(
            "{:<12} {:>10.1} {:>10.3} {:>9.2}%",
            name,
            power,
            p99 as f64 / MILLISECOND as f64,
            to * 100.0
        );
    }
    println!(
        "\npower saving: {:.1}% (SLA = {} ms)",
        100.0 * (1.0 - eval.sim.avg_power_w / base.avg_power_w),
        spec.sla / MILLISECOND
    );
}
