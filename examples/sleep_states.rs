//! Sleep states (the paper's §6 future work) in action: run Xapian at low
//! load under the thread controller, with and without C-state management,
//! and report the extra idle-power savings and the wake-latency cost.
//! Also shows the Rubik statistical baseline for comparison.
//!
//! ```sh
//! cargo run --release --example sleep_states
//! ```

use deeppower_suite::baselines::{collect_profile, RubikConfig, RubikGovernor};
use deeppower_suite::deeppower::{ControllerParams, SleepAware, SleepPolicy, ThreadController};
use deeppower_suite::sim::{FreqPlan, RunOptions, Server, ServerConfig, MILLISECOND, SECOND};
use deeppower_suite::workload::{constant_rate_arrivals, App, AppSpec};

fn main() {
    let spec = AppSpec::get(App::Xapian);
    let arrivals = constant_rate_arrivals(&spec, spec.rps_for_load(0.25), 20 * SECOND, 7);
    println!(
        "xapian at 25% load, {} requests over 20 s — lots of idle time to harvest\n",
        arrivals.len()
    );

    let params = ControllerParams::new(0.2, 1.0);
    let plain_server = Server::new(ServerConfig::paper_default(spec.n_threads));
    let cstate_server = Server::new(ServerConfig::paper_with_cstates(spec.n_threads));

    let mut controller = ThreadController::new(params);
    let base = plain_server.run(&arrivals, &mut controller, RunOptions::default());

    let mut sleepy = SleepAware::new(
        ThreadController::new(params),
        spec.n_threads,
        SleepPolicy::default(),
    );
    let slept = cstate_server.run(&arrivals, &mut sleepy, RunOptions::default());

    // Rubik, for a third point in the design space.
    let profile = collect_profile(&spec, 0.25, 3, 11);
    let mut rubik = RubikGovernor::train(
        &profile,
        FreqPlan::xeon_gold_5218r(),
        RubikConfig::default(),
    );
    let r_rubik = plain_server.run(&arrivals, &mut rubik, RunOptions::default());

    println!(
        "{:<26} {:>9} {:>10} {:>10} {:>9}",
        "policy", "power(W)", "mean(ms)", "p99(ms)", "timeout%"
    );
    for (name, r) in [
        ("thread controller", &base),
        ("controller + C1/C6 sleep", &slept),
        ("rubik (tail planning)", &r_rubik),
    ] {
        println!(
            "{:<26} {:>9.2} {:>10.3} {:>10.3} {:>8.2}%",
            name,
            r.avg_power_w,
            r.stats.mean_ns / MILLISECOND as f64,
            r.stats.p99_ns as f64 / MILLISECOND as f64,
            r.stats.timeout_rate() * 100.0
        );
    }
    println!(
        "\nsleep states saved {:.2} W for {:.0} us of added mean latency \
         (C6 wake = 100 us; Xapian's 8 ms SLA doesn't notice)",
        base.avg_power_w - slept.avg_power_w,
        (slept.stats.mean_ns - base.stats.mean_ns) / 1e3
    );
    assert!(slept.stats.p99_ns <= spec.sla);
}
