//! Masstree (microsecond-scale KV store, 1 ms SLA, 8 worker threads)
//! under a diurnal trace: prints a per-second timeline of load, power and
//! the DRL agent's actions — the kind of view Fig. 8 plots for Xapian.
//!
//! ```sh
//! cargo run --release --example diurnal_masstree
//! ```

use deeppower_suite::deeppower::{evaluate, train, TrainConfig};
use deeppower_suite::sim::{TraceConfig, MILLISECOND};
use deeppower_suite::workload::App;

fn main() {
    let mut cfg = TrainConfig::for_app(App::Masstree);
    cfg.episodes = 6;
    cfg.episode_s = 90;
    cfg.peak_load = 0.8;
    cfg.seed = 21;

    println!(
        "training DeepPower for masstree ({} episodes x {} s)...",
        cfg.episodes, cfg.episode_s
    );
    let (policy, report) = train(&cfg);
    println!(
        "training done: {} updates, last-episode timeout rate {:.2}%",
        report.updates,
        report.episode_timeout_rate.last().unwrap() * 100.0
    );

    let eval = evaluate(&policy, cfg.peak_load, 60, 31337, TraceConfig::default());

    println!("\n  t(s)   req/s   power(W)  BaseFreq  ScalingCoef  avgF(MHz)  queue  timeouts");
    for l in eval.log.iter().skip(1).step_by(5) {
        println!(
            "{:>6.0} {:>7} {:>10.1} {:>9.2} {:>12.2} {:>10.0} {:>6} {:>9}",
            l.t as f64 / 1e9,
            l.num_req,
            l.power_w,
            l.base_freq,
            l.scaling_coef,
            l.avg_freq_mhz,
            l.queue_len,
            l.timeouts,
        );
    }
    let s = &eval.sim.stats;
    println!(
        "\noverall: {:.1} W avg, p99 {:.3} ms (SLA 1 ms), timeout rate {:.2}%",
        eval.sim.avg_power_w,
        s.p99_ns as f64 / MILLISECOND as f64,
        s.timeout_rate() * 100.0
    );
}
