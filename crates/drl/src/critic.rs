//! The DeepPower critic network (§4.6).
//!
//! "As for critic, we concatenate the output of the first hidden layer with
//! the action, and then pass through two fully-connected layers."
//!
//! Structure: `state → Linear(S→32) → ReLU → h`; `concat(h, action)` →
//! `Linear(32+A→24) → ReLU → Linear(24→16) → ReLU → Linear(16→1)`.
//!
//! The backward pass returns gradients with respect to **both** the state
//! and the action input. The action gradient (`dQ/da`) is what DDPG's
//! deterministic policy-gradient actor update consumes.

use deeppower_nn::{Activation, Linear, Matrix, ParamVisitor, ParamVisitorMut, Params};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Action-concatenating Q-network `Q(s, a) → ℝ`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Critic {
    state_layer: Linear,
    state_act: Activation,
    joint1: Linear,
    joint1_act: Activation,
    joint2: Linear,
    joint2_act: Activation,
    out: Linear,
    state_dim: usize,
    action_dim: usize,
    hidden1: usize,
}

impl Critic {
    /// The paper's sizes: 32 state units, then (32+A) → 24 → 16 → 1.
    pub fn paper_default<R: Rng>(rng: &mut R, state_dim: usize, action_dim: usize) -> Self {
        Self::new(rng, state_dim, action_dim, 32, 24, 16)
    }

    pub fn new<R: Rng>(
        rng: &mut R,
        state_dim: usize,
        action_dim: usize,
        h1: usize,
        h2: usize,
        h3: usize,
    ) -> Self {
        Self {
            state_layer: Linear::new_he(rng, state_dim, h1),
            state_act: Activation::relu(),
            joint1: Linear::new_he(rng, h1 + action_dim, h2),
            joint1_act: Activation::relu(),
            joint2: Linear::new_he(rng, h2, h3),
            joint2_act: Activation::relu(),
            out: Linear::new_xavier(rng, h3, 1),
            state_dim,
            action_dim,
            hidden1: h1,
        }
    }

    pub fn state_dim(&self) -> usize {
        self.state_dim
    }

    pub fn action_dim(&self) -> usize {
        self.action_dim
    }

    /// Training forward: `Q(s, a)` as an `n × 1` matrix.
    pub fn forward(&mut self, states: &Matrix, actions: &Matrix) -> Matrix {
        assert_eq!(states.cols(), self.state_dim, "critic state width mismatch");
        assert_eq!(
            actions.cols(),
            self.action_dim,
            "critic action width mismatch"
        );
        assert_eq!(states.rows(), actions.rows(), "critic batch mismatch");
        let h = self.state_act.forward(&self.state_layer.forward(states));
        let joined = h.hconcat(actions);
        let z1 = self.joint1_act.forward(&self.joint1.forward(&joined));
        let z2 = self.joint2_act.forward(&self.joint2.forward(&z1));
        self.out.forward(&z2)
    }

    /// Inference forward (no caching).
    pub fn forward_inference(&self, states: &Matrix, actions: &Matrix) -> Matrix {
        let h = self
            .state_act
            .forward_inference(&self.state_layer.forward_inference(states));
        let joined = h.hconcat(actions);
        let z1 = self
            .joint1_act
            .forward_inference(&self.joint1.forward_inference(&joined));
        let z2 = self
            .joint2_act
            .forward_inference(&self.joint2.forward_inference(&z1));
        self.out.forward_inference(&z2)
    }

    /// Scalar Q-value for one `(state, action)` pair.
    pub fn q_value(&self, state: &[f32], action: &[f32]) -> f32 {
        self.forward_inference(&Matrix::from_row(state), &Matrix::from_row(action))
            .as_slice()[0]
    }

    /// Backward pass given `d_q (n × 1)`; accumulates parameter gradients
    /// and returns `(d_states, d_actions)`.
    pub fn backward(&mut self, d_q: &Matrix) -> (Matrix, Matrix) {
        let d_z2 = self.joint2_act.backward(&self.out.backward(d_q));
        let d_z1 = self.joint1_act.backward(&self.joint2.backward(&d_z2));
        let d_joined = self.joint1.backward(&d_z1);
        let (d_h, d_actions) = d_joined.hsplit(self.hidden1);
        let d_states = self.state_layer.backward(&self.state_act.backward(&d_h));
        (d_states, d_actions)
    }

    pub fn zero_grad(&mut self) {
        self.state_layer.zero_grad();
        self.joint1.zero_grad();
        self.joint2.zero_grad();
        self.out.zero_grad();
    }

    pub fn param_count(&self) -> usize {
        self.num_params()
    }
}

impl Params for Critic {
    fn visit_params(&self, f: &mut ParamVisitor<'_>) {
        self.state_layer.visit_params(f);
        self.joint1.visit_params(f);
        self.joint2.visit_params(f);
        self.out.visit_params(f);
    }

    fn visit_params_mut(&mut self, f: &mut ParamVisitorMut<'_>) {
        self.state_layer.visit_params_mut(f);
        self.joint1.visit_params_mut(f);
        self.joint2.visit_params_mut(f);
        self.out.visit_params_mut(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn shapes_and_param_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let critic = Critic::paper_default(&mut rng, 8, 2);
        // 8*32+32 + 34*24+24 + 24*16+16 + 16*1+1
        assert_eq!(critic.param_count(), 288 + 840 + 400 + 17);
    }

    #[test]
    fn forward_matches_inference() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut critic = Critic::paper_default(&mut rng, 8, 2);
        let s = Matrix::from_rows(&[&[0.1; 8], &[0.5; 8]]);
        let a = Matrix::from_rows(&[&[0.3, 0.7], &[0.9, 0.2]]);
        assert_eq!(critic.forward(&s, &a), critic.forward_inference(&s, &a));
    }

    #[test]
    fn gradient_check_parameters() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut critic = Critic::new(&mut rng, 3, 2, 5, 4, 3);
        let s = Matrix::from_rows(&[&[0.2, -0.1, 0.7], &[0.5, 0.5, -0.5]]);
        let a = Matrix::from_rows(&[&[0.3, 0.6], &[0.8, 0.1]]);

        critic.zero_grad();
        let q = critic.forward(&s, &a);
        let _ = critic.backward(&Matrix::full(q.rows(), q.cols(), 1.0));

        let max_err = deeppower_nn::finite_diff_max_rel_err(
            &mut critic,
            |c| c.forward_inference(&s, &a).as_slice().iter().sum(),
            1e-3,
        );
        assert!(
            max_err < deeppower_nn::GRAD_CHECK_TOL,
            "max rel err {max_err}"
        );
    }

    #[test]
    fn action_gradient_matches_finite_difference() {
        // dQ/da is the quantity DDPG's actor update relies on — check it
        // numerically, not just the parameter gradients.
        let mut rng = StdRng::seed_from_u64(4);
        let mut critic = Critic::paper_default(&mut rng, 8, 2);
        let s = Matrix::from_row(&[0.4; 8]);
        let a = Matrix::from_row(&[0.5, 0.5]);
        let _ = critic.forward(&s, &a);
        let (_, d_a) = critic.backward(&Matrix::from_row(&[1.0]));
        for i in 0..2 {
            let eps = 1e-3;
            let mut up = a.clone();
            up.as_mut_slice()[i] += eps;
            let mut dn = a.clone();
            dn.as_mut_slice()[i] -= eps;
            let numeric = (critic.forward_inference(&s, &up).as_slice()[0]
                - critic.forward_inference(&s, &dn).as_slice()[0])
                / (2.0 * eps);
            let analytic = d_a.as_slice()[i];
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "dim {i}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn q_value_depends_on_action() {
        let mut rng = StdRng::seed_from_u64(5);
        let critic = Critic::paper_default(&mut rng, 8, 2);
        let s = [0.3f32; 8];
        let q1 = critic.q_value(&s, &[0.0, 0.0]);
        let q2 = critic.q_value(&s, &[1.0, 1.0]);
        assert_ne!(q1, q2);
    }
}
