//! Experience replay.
//!
//! A fixed-capacity ring buffer of transitions with uniform random
//! mini-batch sampling — the replay pool of Algorithm 2 step 12/14.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One state transition `(s, a, r, s', done)`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    pub state: Vec<f32>,
    pub action: Vec<f32>,
    pub reward: f32,
    pub next_state: Vec<f32>,
    /// Terminal flag. In the DeepPower setting episodes are long-running
    /// workloads, so `done` is only set at workload end.
    pub done: bool,
}

impl Transition {
    /// Whether every numeric component is finite. A single NaN stored in
    /// the pool would eventually be sampled into a mini-batch and poison
    /// the networks, so [`ReplayBuffer::push`] rejects non-finite
    /// transitions outright.
    pub fn is_finite(&self) -> bool {
        self.reward.is_finite()
            && self.state.iter().all(|x| x.is_finite())
            && self.action.iter().all(|x| x.is_finite())
            && self.next_state.iter().all(|x| x.is_finite())
    }
}

/// Fixed-capacity ring buffer of [`Transition`]s.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReplayBuffer {
    capacity: usize,
    data: Vec<Transition>,
    /// Next slot to overwrite once full.
    head: usize,
    /// Total number of pushes ever (for diagnostics).
    pushed: u64,
    /// Non-finite transitions rejected by [`ReplayBuffer::push`].
    #[serde(skip)]
    rejected: u64,
}

impl ReplayBuffer {
    /// Create a buffer holding at most `capacity` transitions.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        Self {
            capacity,
            data: Vec::with_capacity(capacity.min(1 << 20)),
            head: 0,
            pushed: 0,
            rejected: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Total transitions pushed over the buffer's lifetime (≥ `len`).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Non-finite transitions rejected over the buffer's lifetime.
    pub fn total_rejected(&self) -> u64 {
        self.rejected
    }

    /// Insert a transition, evicting the oldest once at capacity.
    /// Non-finite transitions (any NaN/∞ in state, action, reward or
    /// next state) are rejected and counted instead of stored; returns
    /// whether the transition was accepted.
    pub fn push(&mut self, t: Transition) -> bool {
        if !t.is_finite() {
            self.rejected += 1;
            return false;
        }
        if self.data.len() < self.capacity {
            self.data.push(t);
        } else {
            self.data[self.head] = t;
            self.head = (self.head + 1) % self.capacity;
        }
        self.pushed += 1;
        true
    }

    /// Sample a uniform random mini-batch of `batch` transitions.
    ///
    /// Algorithm 2's mini-batch is drawn *without* replacement: when the
    /// pool holds at least `batch` transitions, the indices come from a
    /// partial Fisher–Yates shuffle (exactly `batch` RNG draws, same
    /// stream as before), so no transition appears twice in one batch.
    /// While the pool is still smaller than `batch` the sampler falls
    /// back to drawing with replacement — callers that over-request from
    /// a warm pool (diagnostics, tests) still get a full batch. Panics
    /// when empty; callers gate on warm-up length first (Algorithm 2
    /// line 13).
    pub fn sample<'a, R: Rng>(&'a self, rng: &mut R, batch: usize) -> Vec<&'a Transition> {
        assert!(!self.data.is_empty(), "sampling from empty replay buffer");
        let n = self.data.len();
        if n < batch {
            return (0..batch)
                .map(|_| &self.data[rng.random_range(0..n)])
                .collect();
        }
        // Partial Fisher–Yates over 0..n, materialized sparsely: only the
        // displaced entries of the virtual index array live in the map, so
        // the cost is O(batch), not O(pool) — the pool can hold 100k
        // transitions and this runs inside every gradient step.
        let mut displaced: std::collections::HashMap<usize, usize> = HashMap::new();
        let mut out = Vec::with_capacity(batch);
        for i in 0..batch {
            let j = rng.random_range(i..n);
            let vj = displaced.get(&j).copied().unwrap_or(j);
            let vi = displaced.get(&i).copied().unwrap_or(i);
            displaced.insert(j, vi);
            out.push(&self.data[vj]);
        }
        out
    }

    /// Iterate over the stored transitions (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = &Transition> {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn t(v: f32) -> Transition {
        Transition {
            state: vec![v],
            action: vec![v],
            reward: v,
            next_state: vec![v + 1.0],
            done: false,
        }
    }

    #[test]
    fn fills_then_evicts_oldest_first() {
        let mut b = ReplayBuffer::new(3);
        for i in 0..5 {
            b.push(t(i as f32));
        }
        assert_eq!(b.len(), 3);
        assert_eq!(b.total_pushed(), 5);
        let rewards: Vec<f32> = b.iter().map(|x| x.reward).collect();
        // Slots 0 and 1 were overwritten by 3 and 4; slot 2 still holds 2.
        assert!(rewards.contains(&2.0));
        assert!(rewards.contains(&3.0));
        assert!(rewards.contains(&4.0));
        assert!(!rewards.contains(&0.0));
    }

    #[test]
    fn sample_returns_requested_batch() {
        let mut b = ReplayBuffer::new(10);
        for i in 0..4 {
            b.push(t(i as f32));
        }
        let mut rng = StdRng::seed_from_u64(1);
        let batch = b.sample(&mut rng, 64);
        assert_eq!(batch.len(), 64);
        assert!(batch.iter().all(|x| x.reward < 4.0));
    }

    #[test]
    fn full_pool_samples_without_replacement() {
        // Algorithm 2's random mini-batch: once the pool can cover the
        // batch, no transition may appear twice in one sample.
        let mut b = ReplayBuffer::new(64);
        for i in 0..64 {
            b.push(t(i as f32));
        }
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            for batch in [1usize, 7, 32, 64] {
                let s = b.sample(&mut rng, batch);
                let mut seen = std::collections::HashSet::new();
                for x in &s {
                    assert!(
                        seen.insert(x.reward.to_bits()),
                        "duplicate transition in batch {batch} (seed {seed})"
                    );
                }
                assert_eq!(s.len(), batch);
            }
        }
    }

    #[test]
    fn full_batch_sample_is_a_permutation() {
        let mut b = ReplayBuffer::new(8);
        for i in 0..8 {
            b.push(t(i as f32));
        }
        let mut rng = StdRng::seed_from_u64(3);
        let s = b.sample(&mut rng, 8);
        let mut rewards: Vec<i64> = s.iter().map(|x| x.reward as i64).collect();
        rewards.sort_unstable();
        assert_eq!(rewards, (0..8).collect::<Vec<i64>>());
    }

    #[test]
    fn sparse_fisher_yates_matches_dense_reference() {
        // The O(batch) sparse shuffle must draw exactly the subset the
        // textbook dense partial Fisher–Yates would, in the same order,
        // from the same RNG stream.
        let mut b = ReplayBuffer::new(32);
        for i in 0..32 {
            b.push(t(i as f32));
        }
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let got: Vec<i64> = b
                .sample(&mut rng, 12)
                .iter()
                .map(|x| x.reward as i64)
                .collect();
            let mut rng = StdRng::seed_from_u64(seed);
            let mut idx: Vec<usize> = (0..32).collect();
            for i in 0..12 {
                let j = rng.random_range(i..32);
                idx.swap(i, j);
            }
            let want: Vec<i64> = idx[..12].iter().map(|&i| i as i64).collect();
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn sample_eventually_touches_every_element() {
        let mut b = ReplayBuffer::new(8);
        for i in 0..8 {
            b.push(t(i as f32));
        }
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for s in b.sample(&mut rng, 1000) {
            seen.insert(s.reward as i64);
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn non_finite_transitions_are_rejected_and_counted() {
        let mut b = ReplayBuffer::new(8);
        assert!(b.push(t(1.0)));
        for bad in [
            Transition {
                state: vec![f32::NAN],
                ..t(2.0)
            },
            Transition {
                action: vec![f32::INFINITY],
                ..t(3.0)
            },
            Transition {
                reward: f32::NAN,
                ..t(4.0)
            },
            Transition {
                next_state: vec![f32::NEG_INFINITY],
                ..t(5.0)
            },
        ] {
            assert!(!b.push(bad));
        }
        assert_eq!(b.len(), 1);
        assert_eq!(b.total_pushed(), 1);
        assert_eq!(b.total_rejected(), 4);
        assert!(b.iter().all(|x| x.is_finite()));
    }

    #[test]
    #[should_panic(expected = "sampling from empty")]
    fn sampling_empty_panics() {
        let b = ReplayBuffer::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = b.sample(&mut rng, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ReplayBuffer::new(0);
    }
}
