//! # deeppower-drl
//!
//! Deep reinforcement learning agents implemented from scratch on top of
//! [`deeppower_nn`]. The DeepPower paper (ICPP 2023) uses **DDPG** as its
//! top-level controller (§4.5) and benchmarks the single-state inference
//! latency of **DQN, DDQN, DDPG and SAC** in Table 2 (§3.2) to motivate the
//! hierarchical design — all four are implemented here as working agents,
//! not inference-only shells.
//!
//! Components:
//!
//! * [`ReplayBuffer`] — fixed-capacity ring buffer with uniform sampling.
//! * [`GaussianNoise`] / [`OrnsteinUhlenbeck`] — exploration noise. The
//!   paper adds `N(0.3, 1)` Gaussian noise to actions during training
//!   (§4.6); OU noise is provided because it is the classic DDPG choice.
//! * [`Ddpg`] — the paper's agent: a two-headed actor (shared trunk, one
//!   sigmoid head per thread-controller parameter, §4.6) and a critic that
//!   concatenates the action after the first hidden layer, exactly as
//!   described in the implementation-detail section.
//! * [`Dqn`] / [`Ddqn`] — discrete-action value learners over a quantized
//!   action grid.
//! * [`Sac`] — soft actor-critic with a tanh-squashed Gaussian policy,
//!   twin critics and fixed entropy temperature.
//! * [`Td3`] — twin-delayed DDPG, the robustness upgrade of the paper's
//!   agent (clipped double-Q, delayed policy updates, target smoothing).
//!
//! All agents are seed-deterministic and expose `save`/`load` snapshots.

pub mod actor;
pub mod critic;
pub mod ddpg;
pub mod dqn;
pub mod noise;
pub mod replay;
pub mod sac;
pub mod td3;

pub use actor::{ActorScratch, TwoHeadActor};
pub use critic::Critic;
pub use ddpg::{Ddpg, DdpgConfig, UpdateStats};
pub use dqn::{Ddqn, Dqn, DqnConfig};
pub use noise::{sample_standard_normal, GaussianNoise, OrnsteinUhlenbeck};
pub use replay::{ReplayBuffer, Transition};
pub use sac::{Sac, SacConfig};
pub use td3::{Td3, Td3Config};
