//! DQN (Mnih et al., 2015) and Double DQN (van Hasselt et al., 2016) over a
//! discrete action set.
//!
//! In the DeepPower context these serve two roles: Table 2 benchmarks their
//! single-state inference latency against DDPG/SAC, and the hierarchy
//! ablation uses a discrete agent over a quantized (BaseFreq, ScalingCoef)
//! grid as an alternative top-level policy.

use crate::replay::{ReplayBuffer, Transition};
use deeppower_nn::{ActivationKind, Adam, AdamConfig, Matrix, Optimizer, Params, Sequential};
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyper-parameters shared by [`Dqn`] and [`Ddqn`].
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DqnConfig {
    pub state_dim: usize,
    pub n_actions: usize,
    pub gamma: f32,
    pub lr: f32,
    pub batch_size: usize,
    pub replay_capacity: usize,
    /// ε-greedy exploration schedule: linear decay `eps_start → eps_end`
    /// over `eps_decay_steps` action selections.
    pub eps_start: f32,
    pub eps_end: f32,
    pub eps_decay_steps: u64,
    /// Hard target-network sync period (in updates).
    pub target_sync: u64,
    pub warmup: usize,
    pub seed: u64,
}

impl Default for DqnConfig {
    fn default() -> Self {
        Self {
            state_dim: 8,
            n_actions: 16,
            gamma: 0.95,
            lr: 1e-3,
            batch_size: 64,
            replay_capacity: 100_000,
            eps_start: 1.0,
            eps_end: 0.05,
            eps_decay_steps: 5_000,
            target_sync: 200,
            warmup: 64,
            seed: 0,
        }
    }
}

/// Deep Q-network agent. Set up with the same lightweight hidden sizes as
/// the paper's actor (32, 24, 16) so the Table 2 comparison is apples to
/// apples.
pub struct Dqn {
    pub cfg: DqnConfig,
    pub net: Sequential,
    target: Sequential,
    opt: Adam,
    pub replay: ReplayBuffer,
    rng: StdRng,
    actions_taken: u64,
    updates: u64,
    /// Double-DQN action selection (decouples argmax from evaluation).
    double: bool,
}

impl Dqn {
    pub fn new(cfg: DqnConfig) -> Self {
        Self::with_double(cfg, false)
    }

    fn with_double(cfg: DqnConfig, double: bool) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let net = Sequential::mlp(
            &mut rng,
            &[cfg.state_dim, 32, 24, 16, cfg.n_actions],
            ActivationKind::Relu,
            ActivationKind::Identity,
        );
        let target = net.clone();
        let opt = Adam::new(
            AdamConfig {
                lr: cfg.lr,
                ..Default::default()
            },
            &net,
        );
        Self {
            replay: ReplayBuffer::new(cfg.replay_capacity),
            net,
            target,
            opt,
            rng,
            actions_taken: 0,
            updates: 0,
            double,
            cfg,
        }
    }

    /// Current exploration rate under the linear decay schedule.
    pub fn epsilon(&self) -> f32 {
        let frac = (self.actions_taken as f32 / self.cfg.eps_decay_steps as f32).clamp(0.0, 1.0);
        self.cfg.eps_start + (self.cfg.eps_end - self.cfg.eps_start) * frac
    }

    /// Greedy action (evaluation path — this is what Table 2 times).
    pub fn act(&self, state: &[f32]) -> usize {
        let q = self.net.forward_inference(&Matrix::from_row(state));
        argmax(q.row(0))
    }

    /// ε-greedy action for training.
    pub fn act_explore(&mut self, state: &[f32]) -> usize {
        self.actions_taken += 1;
        if self.rng.random::<f32>() < self.epsilon() {
            self.rng.random_range(0..self.cfg.n_actions)
        } else {
            self.act(state)
        }
    }

    /// Store a transition; `action` must index into the discrete grid.
    pub fn observe(
        &mut self,
        state: Vec<f32>,
        action: usize,
        reward: f32,
        next: Vec<f32>,
        done: bool,
    ) {
        assert!(action < self.cfg.n_actions, "action index out of range");
        self.replay.push(Transition {
            state,
            action: vec![action as f32],
            reward,
            next_state: next,
            done,
        });
    }

    pub fn ready(&self) -> bool {
        self.replay.len() >= self.cfg.batch_size.max(self.cfg.warmup)
    }

    /// One TD-learning step. Returns the scalar TD loss.
    pub fn update(&mut self) -> f32 {
        assert!(self.ready(), "update called before warm-up");
        let n = self.cfg.batch_size;
        let batch: Vec<Transition> = self
            .replay
            .sample(&mut self.rng, n)
            .into_iter()
            .cloned()
            .collect();

        let states =
            Matrix::from_rows(&batch.iter().map(|t| t.state.as_slice()).collect::<Vec<_>>());
        let next_states = Matrix::from_rows(
            &batch
                .iter()
                .map(|t| t.next_state.as_slice())
                .collect::<Vec<_>>(),
        );

        let q_next_target = self.target.forward_inference(&next_states);
        let q_next_online = if self.double {
            Some(self.net.forward_inference(&next_states))
        } else {
            None
        };

        // Per-sample bootstrap target for the taken action only.
        let mut y = vec![0.0f32; n];
        for (i, t) in batch.iter().enumerate() {
            let boot = if t.done {
                0.0
            } else if let Some(online) = &q_next_online {
                // Double DQN: online net chooses, target net evaluates.
                let a_star = argmax(online.row(i));
                q_next_target.get(i, a_star)
            } else {
                q_next_target
                    .row(i)
                    .iter()
                    .cloned()
                    .fold(f32::NEG_INFINITY, f32::max)
            };
            y[i] = t.reward + self.cfg.gamma * boot;
        }

        // Gradient only flows through the taken-action slots (Huber).
        self.net.zero_grad();
        let q = self.net.forward(&states);
        let mut grad = Matrix::zeros(n, self.cfg.n_actions);
        let mut loss = 0.0f32;
        let delta = 1.0f32;
        for (i, t) in batch.iter().enumerate() {
            let a = t.action[0] as usize;
            let d = q.get(i, a) - y[i];
            if d.abs() <= delta {
                loss += 0.5 * d * d;
                grad.set(i, a, d / n as f32);
            } else {
                loss += delta * (d.abs() - 0.5 * delta);
                grad.set(i, a, delta * d.signum() / n as f32);
            }
        }
        let _ = self.net.backward(&grad);
        self.opt.step(&mut self.net);

        self.updates += 1;
        if self.updates.is_multiple_of(self.cfg.target_sync) {
            let snap = self.net.snapshot();
            self.target.load_snapshot(&snap);
        }
        loss / n as f32
    }

    pub fn updates(&self) -> u64 {
        self.updates
    }
}

/// Double DQN: identical machinery with decoupled action selection in the
/// bootstrap target.
pub struct Ddqn {
    inner: Dqn,
}

impl Ddqn {
    pub fn new(cfg: DqnConfig) -> Self {
        Self {
            inner: Dqn::with_double(cfg, true),
        }
    }

    pub fn act(&self, state: &[f32]) -> usize {
        self.inner.act(state)
    }

    pub fn act_explore(&mut self, state: &[f32]) -> usize {
        self.inner.act_explore(state)
    }

    pub fn observe(&mut self, s: Vec<f32>, a: usize, r: f32, s2: Vec<f32>, done: bool) {
        self.inner.observe(s, a, r, s2, done)
    }

    pub fn ready(&self) -> bool {
        self.inner.ready()
    }

    pub fn update(&mut self) -> f32 {
        self.inner.update()
    }

    /// Access the shared Q-network (e.g. for the Table 2 inference bench).
    pub fn net(&self) -> &Sequential {
        &self.inner.net
    }
}

fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reward peaks at action 3 out of 5 regardless of state.
    fn bandit_reward(a: usize) -> f32 {
        1.0 - (a as f32 - 3.0).abs() * 0.25
    }

    #[test]
    fn dqn_solves_discrete_bandit() {
        let cfg = DqnConfig {
            state_dim: 2,
            n_actions: 5,
            gamma: 0.0,
            eps_decay_steps: 500,
            warmup: 64,
            seed: 2,
            ..Default::default()
        };
        let mut agent = Dqn::new(cfg);
        let s = vec![0.3, 0.7];
        for _ in 0..1200 {
            let a = agent.act_explore(&s);
            agent.observe(s.clone(), a, bandit_reward(a), s.clone(), true);
            if agent.ready() {
                agent.update();
            }
        }
        assert_eq!(
            agent.act(&s),
            3,
            "greedy action should be the bandit optimum"
        );
    }

    #[test]
    fn ddqn_solves_discrete_bandit() {
        let cfg = DqnConfig {
            state_dim: 2,
            n_actions: 5,
            gamma: 0.0,
            eps_decay_steps: 500,
            warmup: 64,
            seed: 4,
            ..Default::default()
        };
        let mut agent = Ddqn::new(cfg);
        let s = vec![0.3, 0.7];
        for _ in 0..1200 {
            let a = agent.act_explore(&s);
            agent.observe(s.clone(), a, bandit_reward(a), s.clone(), true);
            if agent.ready() {
                agent.update();
            }
        }
        assert_eq!(agent.act(&s), 3);
    }

    #[test]
    fn epsilon_decays_linearly() {
        let mut agent = Dqn::new(DqnConfig {
            eps_start: 1.0,
            eps_end: 0.0,
            eps_decay_steps: 100,
            ..Default::default()
        });
        assert!((agent.epsilon() - 1.0).abs() < 1e-6);
        for _ in 0..50 {
            let _ = agent.act_explore(&[0.0; 8]);
        }
        assert!((agent.epsilon() - 0.5).abs() < 1e-6);
        for _ in 0..100 {
            let _ = agent.act_explore(&[0.0; 8]);
        }
        assert!(agent.epsilon().abs() < 1e-6, "epsilon floors at eps_end");
    }

    #[test]
    fn argmax_picks_first_max_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[-1.0]), 0);
    }

    #[test]
    #[should_panic(expected = "action index out of range")]
    fn observe_rejects_out_of_range_action() {
        let mut agent = Dqn::new(DqnConfig {
            n_actions: 4,
            ..Default::default()
        });
        agent.observe(vec![0.0; 8], 4, 0.0, vec![0.0; 8], false);
    }
}
