//! Soft Actor-Critic (Haarnoja et al., 2018) with a tanh-squashed Gaussian
//! policy, twin critics, and fixed entropy temperature.
//!
//! Included because Table 2 of the paper benchmarks SAC's inference latency
//! against DQN/DDQN/DDPG (it is the slowest of the four at 472 µs — the
//! stochastic policy head and twin critics make it the heaviest). This is a
//! complete functioning agent, not an inference shell: the reparameterized
//! policy gradient is derived by hand (the `nn` crate has no autodiff
//! through sampling).
//!
//! Actions live in `[-1, 1]` per dimension (tanh squashing); callers that
//! need `[0, 1]` map affinely.

use crate::critic::Critic;
use crate::noise::sample_standard_normal;
use crate::replay::{ReplayBuffer, Transition};
use deeppower_nn::{
    mse_loss, ActivationKind, Adam, AdamConfig, Matrix, Optimizer, Params, Sequential,
};
use rand::{rngs::StdRng, SeedableRng};
use serde::{Deserialize, Serialize};

const LOG_STD_MIN: f32 = -5.0;
const LOG_STD_MAX: f32 = 2.0;
const TANH_EPS: f32 = 1e-6;

/// SAC hyper-parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SacConfig {
    pub state_dim: usize,
    pub action_dim: usize,
    pub gamma: f32,
    pub tau: f32,
    pub actor_lr: f32,
    pub critic_lr: f32,
    /// Fixed entropy temperature α (auto-tuning is out of scope; the paper
    /// only uses SAC as a latency comparison subject).
    pub alpha: f32,
    pub batch_size: usize,
    pub replay_capacity: usize,
    pub warmup: usize,
    pub seed: u64,
}

impl Default for SacConfig {
    fn default() -> Self {
        Self {
            state_dim: 8,
            action_dim: 2,
            gamma: 0.95,
            tau: 0.005,
            actor_lr: 1e-3,
            critic_lr: 1e-3,
            alpha: 0.1,
            batch_size: 64,
            replay_capacity: 100_000,
            warmup: 64,
            seed: 0,
        }
    }
}

/// One sampled (squashed) action with the intermediates the gradient needs.
struct SampledAction {
    /// Squashed action `a = tanh(u)`, n × A.
    a: Matrix,
    /// Pre-squash noise `ε` (fixed for reparameterization), n × A.
    eps: Matrix,
    /// Standard deviation `σ = exp(log_std)`, n × A.
    sigma: Matrix,
    /// Whether each log-std output was clamped (gradient masked), n × A.
    clamped: Vec<bool>,
    /// Per-sample log π(a|s), length n.
    log_prob: Vec<f32>,
}

/// Soft actor-critic agent.
pub struct Sac {
    pub cfg: SacConfig,
    /// Policy network: state → `2 * action_dim` outputs (means, log-stds).
    pub policy: Sequential,
    q1: Critic,
    q2: Critic,
    q1_target: Critic,
    q2_target: Critic,
    policy_opt: Adam,
    q1_opt: Adam,
    q2_opt: Adam,
    pub replay: ReplayBuffer,
    rng: StdRng,
    updates: u64,
}

impl Sac {
    pub fn new(cfg: SacConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let policy = Sequential::mlp(
            &mut rng,
            &[cfg.state_dim, 32, 24, 2 * cfg.action_dim],
            ActivationKind::Relu,
            ActivationKind::Identity,
        );
        let q1 = Critic::paper_default(&mut rng, cfg.state_dim, cfg.action_dim);
        let q2 = Critic::paper_default(&mut rng, cfg.state_dim, cfg.action_dim);
        let q1_target = q1.clone();
        let q2_target = q2.clone();
        let policy_opt = Adam::new(
            AdamConfig {
                lr: cfg.actor_lr,
                ..Default::default()
            },
            &policy,
        );
        let q1_opt = Adam::new(
            AdamConfig {
                lr: cfg.critic_lr,
                ..Default::default()
            },
            &q1,
        );
        let q2_opt = Adam::new(
            AdamConfig {
                lr: cfg.critic_lr,
                ..Default::default()
            },
            &q2,
        );
        Self {
            replay: ReplayBuffer::new(cfg.replay_capacity),
            policy,
            q1,
            q2,
            q1_target,
            q2_target,
            policy_opt,
            q1_opt,
            q2_opt,
            rng,
            updates: 0,
            cfg,
        }
    }

    /// Deterministic evaluation action: `tanh(mean)`. This is the inference
    /// path Table 2 times.
    pub fn act(&self, state: &[f32]) -> Vec<f32> {
        let out = self.policy.forward_inference(&Matrix::from_row(state));
        (0..self.cfg.action_dim)
            .map(|j| out.get(0, j).tanh())
            .collect()
    }

    /// Stochastic training action.
    pub fn act_explore(&mut self, state: &[f32]) -> Vec<f32> {
        if (self.replay.total_pushed() as usize) < self.cfg.warmup {
            return (0..self.cfg.action_dim)
                .map(|_| rand::Rng::random_range(&mut self.rng, -1.0..1.0))
                .collect();
        }
        let states = Matrix::from_row(state);
        let out = self.policy.forward_inference(&states);
        let sampled = self.sample_from_outputs(&out);
        sampled.a.row(0).to_vec()
    }

    pub fn observe(&mut self, t: Transition) {
        self.replay.push(t);
    }

    pub fn ready(&self) -> bool {
        self.replay.len() >= self.cfg.batch_size
            && self.replay.total_pushed() as usize >= self.cfg.warmup
    }

    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Sample squashed actions (and everything the gradients need) from raw
    /// policy outputs `[mu | log_std]`.
    fn sample_from_outputs(&mut self, out: &Matrix) -> SampledAction {
        let (n, ad) = (out.rows(), self.cfg.action_dim);
        let mut a = Matrix::zeros(n, ad);
        let mut eps = Matrix::zeros(n, ad);
        let mut sigma = Matrix::zeros(n, ad);
        let mut clamped = vec![false; n * ad];
        let mut log_prob = vec![0.0f32; n];
        let half_ln_2pi = 0.5 * (2.0 * std::f32::consts::PI).ln();
        for i in 0..n {
            for j in 0..ad {
                let mu = out.get(i, j);
                let raw_ls = out.get(i, ad + j);
                let ls = raw_ls.clamp(LOG_STD_MIN, LOG_STD_MAX);
                clamped[i * ad + j] = raw_ls != ls;
                let s = ls.exp();
                let e = sample_standard_normal(&mut self.rng);
                let u = mu + s * e;
                let act = u.tanh();
                a.set(i, j, act);
                eps.set(i, j, e);
                sigma.set(i, j, s);
                log_prob[i] += -0.5 * e * e - ls - half_ln_2pi - (1.0 - act * act + TANH_EPS).ln();
            }
        }
        SampledAction {
            a,
            eps,
            sigma,
            clamped,
            log_prob,
        }
    }

    /// One SAC gradient step: twin-critic regression to the entropy-
    /// regularized bootstrap target, then a reparameterized policy step.
    /// Returns `(critic_loss, policy_loss)`.
    pub fn update(&mut self) -> (f32, f32) {
        assert!(self.ready(), "update called before warm-up");
        let n = self.cfg.batch_size;
        let ad = self.cfg.action_dim;
        let batch: Vec<Transition> = self
            .replay
            .sample(&mut self.rng, n)
            .into_iter()
            .cloned()
            .collect();

        let states =
            Matrix::from_rows(&batch.iter().map(|t| t.state.as_slice()).collect::<Vec<_>>());
        let actions = Matrix::from_rows(
            &batch
                .iter()
                .map(|t| t.action.as_slice())
                .collect::<Vec<_>>(),
        );
        let next_states = Matrix::from_rows(
            &batch
                .iter()
                .map(|t| t.next_state.as_slice())
                .collect::<Vec<_>>(),
        );

        // Entropy-regularized target:
        // y = r + γ (1-d) [ min(Q1', Q2')(s', a') − α log π(a'|s') ].
        let next_out = self.policy.forward_inference(&next_states);
        let next_sample = self.sample_from_outputs(&next_out);
        let q1n = self
            .q1_target
            .forward_inference(&next_states, &next_sample.a);
        let q2n = self
            .q2_target
            .forward_inference(&next_states, &next_sample.a);
        let mut targets = Matrix::zeros(n, 1);
        for (i, t) in batch.iter().enumerate() {
            let cont = if t.done { 0.0 } else { 1.0 };
            let soft_q =
                q1n.get(i, 0).min(q2n.get(i, 0)) - self.cfg.alpha * next_sample.log_prob[i];
            targets.set(i, 0, t.reward + self.cfg.gamma * cont * soft_q);
        }

        // Twin critic steps.
        let mut critic_loss = 0.0f32;
        {
            self.q1.zero_grad();
            let q = self.q1.forward(&states, &actions);
            let (l, g) = mse_loss(&q, &targets);
            critic_loss += l;
            let _ = self.q1.backward(&g);
            self.q1_opt.step(&mut self.q1);
        }
        {
            self.q2.zero_grad();
            let q = self.q2.forward(&states, &actions);
            let (l, g) = mse_loss(&q, &targets);
            critic_loss += l;
            let _ = self.q2.backward(&g);
            self.q2_opt.step(&mut self.q2);
        }

        // Policy step. Loss per sample: α log π(a|s) − Q1(s, a) with a
        // reparameterized. Q1 alone drives the actor (TD3-style; the min
        // only shapes the critic targets) — keeps the hand-derived gradient
        // single-path.
        self.policy.zero_grad();
        self.q1.zero_grad();
        let out = self.policy.forward(&states);
        let sample = self.sample_from_outputs(&out);
        let q_pi = self.q1.forward(&states, &sample.a);
        let policy_loss = {
            let mut acc = 0.0f32;
            for i in 0..n {
                acc += self.cfg.alpha * sample.log_prob[i] - q_pi.get(i, 0);
            }
            acc / n as f32
        };
        // dL/dQ = -1/n per sample; critic backward yields dQ/da.
        let d_q = Matrix::full(n, 1, -1.0 / n as f32);
        let (_, d_a_from_q) = self.q1.backward(&d_q);

        // Assemble gradients w.r.t. the raw policy outputs [mu | log_std].
        let mut d_out = Matrix::zeros(n, 2 * ad);
        let alpha = self.cfg.alpha;
        for i in 0..n {
            for j in 0..ad {
                let a = sample.a.get(i, j);
                let e = sample.eps.get(i, j);
                let s = sample.sigma.get(i, j);
                let one_m_a2 = 1.0 - a * a;
                // d log π / du  (only the tanh-correction term depends on u)
                let dlogpi_du = 2.0 * a * one_m_a2 / (one_m_a2 + TANH_EPS);
                // da/du = 1 - a².
                let dq_term = d_a_from_q.get(i, j); // already includes -1/n · dQ/da
                                                    // ∂L/∂mu: entropy term (scaled by 1/n) + Q term via a.
                let g_mu = alpha * dlogpi_du / n as f32 + dq_term * one_m_a2;
                // ∂L/∂log σ: direct -α/n (from -log σ) + chain via u (du/dlogσ = σ ε).
                let mut g_ls = alpha * (-1.0 / n as f32)
                    + (alpha * dlogpi_du / n as f32 + dq_term * one_m_a2) * s * e;
                if sample.clamped[i * ad + j] {
                    g_ls = 0.0; // clamp gate: no gradient outside the bound
                }
                d_out.set(i, j, g_mu);
                d_out.set(i, ad + j, g_ls);
            }
        }
        let _ = self.policy.backward(&d_out);
        self.policy_opt.step(&mut self.policy);

        // Soft target updates.
        let s1 = self.q1.snapshot();
        self.q1_target.soft_update_from(&s1, self.cfg.tau);
        let s2 = self.q2.snapshot();
        self.q2_target.soft_update_from(&s2, self.cfg.tau);

        self.updates += 1;
        (critic_loss * 0.5, policy_loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_bounded_in_unit_ball() {
        let agent = Sac::new(SacConfig {
            seed: 1,
            ..Default::default()
        });
        let a = agent.act(&[0.5; 8]);
        assert_eq!(a.len(), 2);
        assert!(a.iter().all(|&x| (-1.0..=1.0).contains(&x)));
    }

    #[test]
    fn sac_solves_continuous_bandit() {
        let cfg = SacConfig {
            state_dim: 2,
            action_dim: 1,
            gamma: 0.0,
            alpha: 0.02,
            warmup: 128,
            actor_lr: 3e-3,
            critic_lr: 3e-3,
            seed: 11,
            ..Default::default()
        };
        let mut agent = Sac::new(cfg);
        let s = vec![0.2, -0.4];
        for _ in 0..2000 {
            let a = agent.act_explore(&s);
            let r = 1.0 - (a[0] - 0.3).powi(2);
            agent.observe(Transition {
                state: s.clone(),
                action: a,
                reward: r,
                next_state: s.clone(),
                done: true,
            });
            if agent.ready() {
                agent.update();
            }
        }
        let a = agent.act(&s);
        assert!((a[0] - 0.3).abs() < 0.2, "policy did not converge: {a:?}");
    }

    #[test]
    fn log_prob_decreases_with_wider_policy() {
        // For a fixed sampled epsilon near 0, increasing sigma lowers density.
        let mut agent = Sac::new(SacConfig {
            action_dim: 1,
            seed: 3,
            ..Default::default()
        });
        let narrow = Matrix::from_row(&[0.0, -2.0]); // mu=0, log_std=-2
        let wide = Matrix::from_row(&[0.0, 0.5]);
        // Use same RNG position for both by reseeding.
        agent.rng = StdRng::seed_from_u64(42);
        let s1 = agent.sample_from_outputs(&narrow);
        agent.rng = StdRng::seed_from_u64(42);
        let s2 = agent.sample_from_outputs(&wide);
        assert!(s1.log_prob[0] > s2.log_prob[0]);
    }

    #[test]
    fn warmup_actions_uniform() {
        let mut agent = Sac::new(SacConfig {
            warmup: 10,
            seed: 5,
            ..Default::default()
        });
        let a = agent.act_explore(&[0.0; 8]);
        let b = agent.act_explore(&[0.0; 8]);
        assert_ne!(a, b);
        assert!(a.iter().chain(&b).all(|&x| (-1.0..=1.0).contains(&x)));
    }

    #[test]
    fn update_runs_and_counts() {
        let mut agent = Sac::new(SacConfig {
            state_dim: 2,
            action_dim: 1,
            warmup: 0,
            batch_size: 16,
            ..Default::default()
        });
        for i in 0..32 {
            agent.observe(Transition {
                state: vec![0.0, 0.0],
                action: vec![(i % 3) as f32 * 0.3 - 0.3],
                reward: 0.1,
                next_state: vec![0.0, 0.0],
                done: false,
            });
        }
        let (cl, _pl) = agent.update();
        assert!(cl.is_finite());
        assert_eq!(agent.updates(), 1);
    }
}
