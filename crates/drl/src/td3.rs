//! TD3 — Twin Delayed DDPG (Fujimoto et al., 2018).
//!
//! Not part of the paper's evaluation, but the natural robustness upgrade
//! for its DDPG agent and a useful ablation subject: DDPG's critic is
//! prone to Q-overestimation, which is exactly the failure mode we
//! observed when reward scales were mis-tuned during reproduction. TD3
//! adds three fixes on top of the same actor/critic architecture:
//!
//! 1. **clipped double-Q**: bootstrap from `min(Q1', Q2')`;
//! 2. **delayed policy updates**: one actor step per `policy_delay`
//!    critic steps;
//! 3. **target policy smoothing**: clipped noise on the target action.
//!
//! Actions live in `[0, 1]` like the DDPG agent's (sigmoid heads).

use crate::actor::TwoHeadActor;
use crate::critic::Critic;
use crate::noise::{clamp_action, sample_standard_normal, GaussianNoise};
use crate::replay::{ReplayBuffer, Transition};
use deeppower_nn::{mse_loss, Adam, AdamConfig, Matrix, Optimizer, Params};
use rand::{rngs::StdRng, SeedableRng};
use serde::{Deserialize, Serialize};

/// TD3 hyper-parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Td3Config {
    pub state_dim: usize,
    pub action_dim: usize,
    pub gamma: f32,
    pub tau: f32,
    pub actor_lr: f32,
    pub critic_lr: f32,
    pub batch_size: usize,
    pub replay_capacity: usize,
    /// Exploration noise (Gaussian, zero mean by TD3 convention).
    pub explore_sigma: f32,
    /// Target-policy smoothing noise sigma and clip.
    pub smooth_sigma: f32,
    pub smooth_clip: f32,
    /// Critic updates per actor/target update.
    pub policy_delay: u32,
    pub warmup: usize,
    pub seed: u64,
}

impl Default for Td3Config {
    fn default() -> Self {
        Self {
            state_dim: 8,
            action_dim: 2,
            gamma: 0.95,
            tau: 0.005,
            actor_lr: 1e-3,
            critic_lr: 1e-3,
            batch_size: 64,
            replay_capacity: 100_000,
            explore_sigma: 0.2,
            smooth_sigma: 0.1,
            smooth_clip: 0.25,
            policy_delay: 2,
            warmup: 64,
            seed: 0,
        }
    }
}

/// The TD3 agent.
pub struct Td3 {
    pub cfg: Td3Config,
    pub actor: TwoHeadActor,
    actor_target: TwoHeadActor,
    q1: Critic,
    q2: Critic,
    q1_target: Critic,
    q2_target: Critic,
    actor_opt: Adam,
    q1_opt: Adam,
    q2_opt: Adam,
    pub replay: ReplayBuffer,
    noise: GaussianNoise,
    rng: StdRng,
    critic_updates: u64,
}

impl Td3 {
    pub fn new(cfg: Td3Config) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let actor = TwoHeadActor::paper_default(&mut rng, cfg.state_dim, cfg.action_dim);
        let q1 = Critic::paper_default(&mut rng, cfg.state_dim, cfg.action_dim);
        let q2 = Critic::paper_default(&mut rng, cfg.state_dim, cfg.action_dim);
        Self {
            actor_target: actor.clone(),
            q1_target: q1.clone(),
            q2_target: q2.clone(),
            actor_opt: Adam::new(
                AdamConfig {
                    lr: cfg.actor_lr,
                    ..Default::default()
                },
                &actor,
            ),
            q1_opt: Adam::new(
                AdamConfig {
                    lr: cfg.critic_lr,
                    ..Default::default()
                },
                &q1,
            ),
            q2_opt: Adam::new(
                AdamConfig {
                    lr: cfg.critic_lr,
                    ..Default::default()
                },
                &q2,
            ),
            replay: ReplayBuffer::new(cfg.replay_capacity),
            noise: GaussianNoise::new(0.0, cfg.explore_sigma),
            actor,
            q1,
            q2,
            rng,
            critic_updates: 0,
            cfg,
        }
    }

    pub fn act(&self, state: &[f32]) -> Vec<f32> {
        self.actor.act(state)
    }

    pub fn act_explore(&mut self, state: &[f32]) -> Vec<f32> {
        let mut a = if (self.replay.total_pushed() as usize) < self.cfg.warmup {
            (0..self.cfg.action_dim)
                .map(|_| rand::Rng::random_range(&mut self.rng, 0.0..1.0))
                .collect()
        } else {
            let mut a = self.actor.act(state);
            self.noise.perturb(&mut self.rng, &mut a);
            a
        };
        clamp_action(&mut a, 0.0, 1.0);
        a
    }

    pub fn observe(&mut self, t: Transition) {
        self.replay.push(t);
    }

    pub fn ready(&self) -> bool {
        self.replay.len() >= self.cfg.batch_size
            && self.replay.total_pushed() as usize >= self.cfg.warmup
    }

    pub fn critic_updates(&self) -> u64 {
        self.critic_updates
    }

    /// One TD3 step: twin-critic regression to the smoothed, clipped
    /// double-Q target; delayed actor + target updates. Returns the summed
    /// critic loss.
    pub fn update(&mut self) -> f32 {
        assert!(self.ready(), "update called before warm-up");
        let n = self.cfg.batch_size;
        let batch: Vec<Transition> = self
            .replay
            .sample(&mut self.rng, n)
            .into_iter()
            .cloned()
            .collect();
        let states =
            Matrix::from_rows(&batch.iter().map(|t| t.state.as_slice()).collect::<Vec<_>>());
        let actions = Matrix::from_rows(
            &batch
                .iter()
                .map(|t| t.action.as_slice())
                .collect::<Vec<_>>(),
        );
        let next_states = Matrix::from_rows(
            &batch
                .iter()
                .map(|t| t.next_state.as_slice())
                .collect::<Vec<_>>(),
        );

        // Smoothed target actions: clamp(π'(s') + clip(ε), [0, 1]).
        let mut next_actions = self.actor_target.forward_inference(&next_states);
        for v in next_actions.as_mut_slice() {
            let eps = (self.cfg.smooth_sigma * sample_standard_normal(&mut self.rng))
                .clamp(-self.cfg.smooth_clip, self.cfg.smooth_clip);
            *v = (*v + eps).clamp(0.0, 1.0);
        }
        let q1n = self
            .q1_target
            .forward_inference(&next_states, &next_actions);
        let q2n = self
            .q2_target
            .forward_inference(&next_states, &next_actions);
        let mut targets = Matrix::zeros(n, 1);
        for (i, t) in batch.iter().enumerate() {
            let cont = if t.done { 0.0 } else { 1.0 };
            let boot = q1n.get(i, 0).min(q2n.get(i, 0));
            targets.set(i, 0, t.reward + self.cfg.gamma * cont * boot);
        }

        let mut loss = 0.0f32;
        {
            self.q1.zero_grad();
            let q = self.q1.forward(&states, &actions);
            let (l, g) = mse_loss(&q, &targets);
            loss += l;
            let _ = self.q1.backward(&g);
            self.q1_opt.step(&mut self.q1);
        }
        {
            self.q2.zero_grad();
            let q = self.q2.forward(&states, &actions);
            let (l, g) = mse_loss(&q, &targets);
            loss += l;
            let _ = self.q2.backward(&g);
            self.q2_opt.step(&mut self.q2);
        }
        self.critic_updates += 1;

        // Delayed actor + target updates.
        if self
            .critic_updates
            .is_multiple_of(self.cfg.policy_delay as u64)
        {
            self.actor.zero_grad();
            self.q1.zero_grad();
            let pred_actions = self.actor.forward(&states);
            let _ = self.q1.forward(&states, &pred_actions);
            let d_q = Matrix::full(n, 1, -1.0 / n as f32);
            let (_, d_actions) = self.q1.backward(&d_q);
            let _ = self.actor.backward(&d_actions);
            self.actor_opt.step(&mut self.actor);

            let tau = self.cfg.tau;
            let snap = self.actor.snapshot();
            self.actor_target.soft_update_from(&snap, tau);
            let s1 = self.q1.snapshot();
            self.q1_target.soft_update_from(&s1, tau);
            let s2 = self.q2.snapshot();
            self.q2_target.soft_update_from(&s2, tau);
        }
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn td3_solves_continuous_bandit() {
        let cfg = Td3Config {
            state_dim: 3,
            action_dim: 2,
            gamma: 0.0,
            warmup: 128,
            batch_size: 32,
            actor_lr: 5e-3,
            critic_lr: 5e-3,
            explore_sigma: 0.3,
            seed: 4,
            ..Default::default()
        };
        let mut agent = Td3::new(cfg);
        let state = vec![0.1, -0.2, 0.4];
        for _ in 0..2500 {
            let a = agent.act_explore(&state);
            let r = 1.0 - (a[0] - 0.7).powi(2) - (a[1] - 0.3).powi(2);
            agent.observe(Transition {
                state: state.clone(),
                action: a,
                reward: r,
                next_state: state.clone(),
                done: true,
            });
            if agent.ready() {
                agent.update();
            }
        }
        let a = agent.act(&state);
        assert!(
            (a[0] - 0.7).abs() < 0.2 && (a[1] - 0.3).abs() < 0.2,
            "policy did not converge: {a:?}"
        );
    }

    #[test]
    fn actor_updates_are_delayed() {
        let mut agent = Td3::new(Td3Config {
            warmup: 0,
            batch_size: 4,
            policy_delay: 3,
            seed: 1,
            ..Default::default()
        });
        for _ in 0..8 {
            agent.observe(Transition {
                state: vec![0.0; 8],
                action: vec![0.5, 0.5],
                reward: 0.0,
                next_state: vec![0.0; 8],
                done: false,
            });
        }
        let before = agent.actor.snapshot();
        agent.update(); // 1st critic update: no actor step
        assert_eq!(
            agent.actor.snapshot(),
            before,
            "actor moved before the delay elapsed"
        );
        agent.update(); // 2nd
        assert_eq!(agent.actor.snapshot(), before);
        agent.update(); // 3rd: actor steps
        assert_ne!(agent.actor.snapshot(), before, "actor never updated");
    }

    #[test]
    fn actions_bounded_in_unit_box() {
        let mut agent = Td3::new(Td3Config {
            warmup: 0,
            ..Default::default()
        });
        for _ in 0..20 {
            let a = agent.act_explore(&[0.5; 8]);
            assert!(a.iter().all(|&x| (0.0..=1.0).contains(&x)), "{a:?}");
        }
    }
}
