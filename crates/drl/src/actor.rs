//! The DeepPower actor network (§4.6).
//!
//! "The input state passes the first shared fully-connected layer and then
//! gets through two separate fully-connected layers … a sigmoid operation is
//! conducted on the output to keep the final action *BaseFreq, ScalingCoef*
//! non-negative."
//!
//! Concretely: a shared trunk (8 → 32 → 24, ReLU) followed by one head per
//! action dimension (24 → 16 → 1, ReLU then sigmoid). With the paper's
//! hidden sizes (32, 24, 16) this yields 1 914 trainable parameters — the
//! same order as the 2 096 the paper reports (the exact head split is not
//! fully specified there); either way the actor is a ~2k-parameter MLP whose
//! inference cost Table 2 and §5.5 characterize.

use deeppower_nn::{
    Activation, ActivationKind, Matrix, ParamVisitor, ParamVisitorMut, Params, Sequential,
};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Shared-trunk, multi-head actor with sigmoid-bounded outputs in `[0, 1]`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TwoHeadActor {
    trunk: Sequential,
    heads: Vec<Sequential>,
    state_dim: usize,
    #[serde(skip)]
    cached_trunk_out: Option<Matrix>,
}

impl TwoHeadActor {
    /// Build with the paper's default sizes: trunk `state_dim → 32 → 24`,
    /// each of `action_dim` heads `24 → 16 → 1` (sigmoid).
    pub fn paper_default<R: Rng>(rng: &mut R, state_dim: usize, action_dim: usize) -> Self {
        Self::new(rng, state_dim, &[32, 24], &[16], action_dim)
    }

    /// General constructor. `trunk_dims` are the shared hidden widths,
    /// `head_dims` the per-head hidden widths; every head ends in a single
    /// sigmoid unit.
    pub fn new<R: Rng>(
        rng: &mut R,
        state_dim: usize,
        trunk_dims: &[usize],
        head_dims: &[usize],
        action_dim: usize,
    ) -> Self {
        assert!(
            !trunk_dims.is_empty(),
            "actor trunk needs at least one layer"
        );
        assert!(action_dim >= 1, "actor needs at least one head");
        let mut dims = vec![state_dim];
        dims.extend_from_slice(trunk_dims);
        let trunk = Sequential::mlp(rng, &dims, ActivationKind::Relu, ActivationKind::Relu);
        let trunk_out = *trunk_dims.last().unwrap();
        let heads = (0..action_dim)
            .map(|_| {
                let mut hd = vec![trunk_out];
                hd.extend_from_slice(head_dims);
                hd.push(1);
                Sequential::mlp(rng, &hd, ActivationKind::Relu, ActivationKind::Sigmoid)
            })
            .collect();
        Self {
            trunk,
            heads,
            state_dim,
            cached_trunk_out: None,
        }
    }

    pub fn state_dim(&self) -> usize {
        self.state_dim
    }

    pub fn action_dim(&self) -> usize {
        self.heads.len()
    }

    /// Training forward pass: `states (n × state_dim) → actions (n × action_dim)`,
    /// every component in `[0, 1]`.
    pub fn forward(&mut self, states: &Matrix) -> Matrix {
        let h = self.trunk.forward(states);
        self.cached_trunk_out = Some(h.clone());
        let outs: Vec<Matrix> = self.heads.iter_mut().map(|head| head.forward(&h)).collect();
        concat_columns(&outs)
    }

    /// Inference forward pass (no caching). This is the sub-millisecond
    /// action-generation path measured in §5.5.
    pub fn forward_inference(&self, states: &Matrix) -> Matrix {
        let h = self.trunk.forward_inference(states);
        let outs: Vec<Matrix> = self
            .heads
            .iter()
            .map(|head| head.forward_inference(&h))
            .collect();
        concat_columns(&outs)
    }

    /// Convenience: act on a single state vector.
    pub fn act(&self, state: &[f32]) -> Vec<f32> {
        assert_eq!(state.len(), self.state_dim, "actor state width mismatch");
        self.forward_inference(&Matrix::from_row(state))
            .as_slice()
            .to_vec()
    }

    /// Batched inference: one `n × state_dim` forward pass producing an
    /// `n × action_dim` action matrix. Row `i` is bit-identical to
    /// `act(states.row(i))` — each output row is an independent chain of
    /// dot products over that row alone, so batching changes the shape
    /// of the computation (matrix–matrix instead of n matrix–vector
    /// passes) but not a single float. The fleet layer leans on both
    /// properties: the speed for N-node lockstep steps, the equality for
    /// determinism against single-node runs.
    pub fn act_batch(&self, states: &Matrix) -> Matrix {
        assert_eq!(
            states.cols(),
            self.state_dim,
            "actor batch state width mismatch"
        );
        self.forward_inference(states)
    }

    /// Allocation-free [`TwoHeadActor::act_batch`]: writes the `n ×
    /// action_dim` action matrix into `out`, using `scratch` for every
    /// intermediate. Bit-identical to `act_batch` — the trunk and heads
    /// run the same fused kernels in the same order, only the storage is
    /// caller-owned — so hot callers (the fleet lockstep loop calls this
    /// once per LongTime epoch) amortize all buffers to zero.
    pub fn act_batch_into(&self, states: &Matrix, out: &mut Matrix, scratch: &mut ActorScratch) {
        assert_eq!(
            states.cols(),
            self.state_dim,
            "actor batch state width mismatch"
        );
        let n = states.rows();
        self.trunk
            .forward_inference_into(states, &mut scratch.h, &mut scratch.tmp);
        out.reshape(n, self.heads.len());
        for (c, head) in self.heads.iter().enumerate() {
            head.forward_inference_into(&scratch.h, &mut scratch.head_out, &mut scratch.head_tmp);
            for r in 0..n {
                out.set(r, c, scratch.head_out.get(r, 0));
            }
        }
    }

    /// Ragged/grouped batching: run the batched inference pass over an
    /// arbitrary *row subset* of a stacked state matrix. The rows are
    /// gathered (in the given order) into a dense scratch batch and fed
    /// through the same fused kernels as [`act_batch_into`], so row `k`
    /// of `out` is bit-identical to `act(states.row(rows[k]))` — the
    /// property heterogeneous fleets lean on when nodes sharing a
    /// hardware profile batch together under one per-group policy while
    /// the fleet's state matrix stays a single `N × state_dim` stack.
    ///
    /// [`act_batch_into`]: Self::act_batch_into
    pub fn act_batch_rows_into(
        &self,
        states: &Matrix,
        rows: &[usize],
        out: &mut Matrix,
        scratch: &mut ActorScratch,
    ) {
        assert_eq!(
            states.cols(),
            self.state_dim,
            "actor batch state width mismatch"
        );
        // The gather buffer is split out of `scratch` so the borrow of
        // the remaining buffers can ride into act_batch_into.
        let mut gathered = std::mem::replace(&mut scratch.gathered, Matrix::zeros(0, 0));
        states.gather_rows_into(rows, &mut gathered);
        self.act_batch_into(&gathered, out, scratch);
        scratch.gathered = gathered;
    }

    /// Backward pass given `d_actions (n × action_dim)`; accumulates
    /// gradients and returns the gradient w.r.t. the input states.
    pub fn backward(&mut self, d_actions: &Matrix) -> Matrix {
        assert_eq!(
            d_actions.cols(),
            self.heads.len(),
            "actor grad width mismatch"
        );
        let h = self
            .cached_trunk_out
            .as_ref()
            .expect("TwoHeadActor::backward before forward");
        let mut d_h = Matrix::zeros(h.rows(), h.cols());
        for (i, head) in self.heads.iter_mut().enumerate() {
            // Column i of d_actions, as an n×1 matrix.
            let mut col = Matrix::zeros(d_actions.rows(), 1);
            for r in 0..d_actions.rows() {
                col.set(r, 0, d_actions.get(r, i));
            }
            d_h.axpy(1.0, &head.backward(&col));
        }
        self.trunk.backward(&d_h)
    }

    pub fn zero_grad(&mut self) {
        self.trunk.zero_grad();
        for h in &mut self.heads {
            h.zero_grad();
        }
    }

    pub fn param_count(&self) -> usize {
        self.num_params()
    }
}

impl Params for TwoHeadActor {
    fn visit_params(&self, f: &mut ParamVisitor<'_>) {
        self.trunk.visit_params(f);
        for h in &self.heads {
            h.visit_params(f);
        }
    }

    fn visit_params_mut(&mut self, f: &mut ParamVisitorMut<'_>) {
        self.trunk.visit_params_mut(f);
        for h in &mut self.heads {
            h.visit_params_mut(f);
        }
    }
}

/// Reusable buffers for [`TwoHeadActor::act_batch_into`]. One of these
/// per hot loop; after the first call at a given batch size nothing in
/// the batched inference path allocates.
#[derive(Clone, Debug)]
pub struct ActorScratch {
    h: Matrix,
    tmp: Matrix,
    head_out: Matrix,
    head_tmp: Matrix,
    /// Dense row-subset batch for [`TwoHeadActor::act_batch_rows_into`]
    /// (ragged/grouped batching over one stacked state matrix).
    gathered: Matrix,
}

impl ActorScratch {
    pub fn new() -> Self {
        Self {
            h: Matrix::zeros(0, 0),
            tmp: Matrix::zeros(0, 0),
            head_out: Matrix::zeros(0, 0),
            head_tmp: Matrix::zeros(0, 0),
            gathered: Matrix::zeros(0, 0),
        }
    }
}

impl Default for ActorScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Concatenate single-column matrices into one `n × k` matrix.
fn concat_columns(cols: &[Matrix]) -> Matrix {
    assert!(!cols.is_empty());
    let rows = cols[0].rows();
    let mut out = Matrix::zeros(rows, cols.len());
    for (c, m) in cols.iter().enumerate() {
        assert_eq!(m.rows(), rows);
        assert_eq!(m.cols(), 1);
        for r in 0..rows {
            out.set(r, c, m.get(r, 0));
        }
    }
    out
}

// A no-op Activation import keeps the doc link above resolvable even if the
// head construction changes; silence the unused warning explicitly.
#[allow(unused)]
fn _doc_anchor(_a: Activation) {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn paper_default_shapes_and_param_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let actor = TwoHeadActor::paper_default(&mut rng, 8, 2);
        assert_eq!(actor.state_dim(), 8);
        assert_eq!(actor.action_dim(), 2);
        // trunk: 8*32+32 + 32*24+24 = 1080; heads: 2*(24*16+16 + 16*1+1) = 834.
        assert_eq!(actor.param_count(), 1080 + 834);
    }

    #[test]
    fn outputs_bounded_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let actor = TwoHeadActor::paper_default(&mut rng, 8, 2);
        for seed in 0..20 {
            let mut r = StdRng::seed_from_u64(seed);
            let state: Vec<f32> = (0..8).map(|_| r.random_range(-5.0..5.0)).collect();
            let a = actor.act(&state);
            assert_eq!(a.len(), 2);
            assert!(a.iter().all(|&x| (0.0..=1.0).contains(&x)), "{a:?}");
        }
    }

    #[test]
    fn act_batch_rows_equal_single_act_exactly() {
        // The fleet layer's determinism guarantee rests on this being
        // bit-exact, not approximate: each batched output row is the
        // same chain of dot products as the single-state pass.
        let mut rng = StdRng::seed_from_u64(7);
        let actor = TwoHeadActor::paper_default(&mut rng, 8, 2);
        for n in [1usize, 2, 8, 33] {
            let mut states = Matrix::zeros(n, 8);
            let mut r = StdRng::seed_from_u64(n as u64);
            for i in 0..n {
                let row: Vec<f32> = (0..8).map(|_| r.random_range(-2.0..2.0)).collect();
                states.set_row(i, &row);
            }
            let batch = actor.act_batch(&states);
            assert_eq!(batch.rows(), n);
            assert_eq!(batch.cols(), 2);
            for i in 0..n {
                let single = actor.act(states.row(i));
                assert_eq!(
                    batch.row(i),
                    &single[..],
                    "row {i} of batch {n} diverged from single-state act"
                );
            }
        }
    }

    #[test]
    fn act_batch_into_matches_act_batch() {
        let mut rng = StdRng::seed_from_u64(19);
        let actor = TwoHeadActor::paper_default(&mut rng, 8, 2);
        let mut out = Matrix::zeros(0, 0);
        let mut scratch = ActorScratch::new();
        // Reuse the same scratch across growing and shrinking batches to
        // prove stale storage never leaks into the result.
        for n in [4usize, 1, 16, 3] {
            let mut states = Matrix::zeros(n, 8);
            let mut r = StdRng::seed_from_u64(100 + n as u64);
            for i in 0..n {
                let row: Vec<f32> = (0..8).map(|_| r.random_range(-2.0..2.0)).collect();
                states.set_row(i, &row);
            }
            let want = actor.act_batch(&states);
            actor.act_batch_into(&states, &mut out, &mut scratch);
            assert_eq!(want, out, "batch {n} diverged");
        }
    }

    #[test]
    fn act_batch_rows_into_matches_single_act_exactly() {
        let mut rng = StdRng::seed_from_u64(23);
        let actor = TwoHeadActor::paper_default(&mut rng, 8, 3);
        let n = 11;
        let mut states = Matrix::zeros(n, 8);
        let mut r = StdRng::seed_from_u64(31);
        for i in 0..n {
            let row: Vec<f32> = (0..8).map(|_| r.random_range(-2.0..2.0)).collect();
            states.set_row(i, &row);
        }
        let mut out = Matrix::zeros(0, 0);
        let mut scratch = ActorScratch::new();
        // Mixed group shapes, out-of-order and with a repeat — the ragged
        // cases a heterogeneous fleet's profile groups produce.
        for rows in [vec![0usize], vec![4, 1, 9], vec![10, 10], (0..n).collect()] {
            actor.act_batch_rows_into(&states, &rows, &mut out, &mut scratch);
            assert_eq!(out.rows(), rows.len());
            for (k, &src) in rows.iter().enumerate() {
                let single = actor.act(states.row(src));
                assert_eq!(
                    out.row(k),
                    &single[..],
                    "gathered row {k} (source {src}) diverged from single-state act"
                );
            }
        }
    }

    #[test]
    fn forward_matches_inference() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut actor = TwoHeadActor::paper_default(&mut rng, 8, 2);
        let x = Matrix::from_rows(&[&[0.1; 8], &[0.9; 8]]);
        let a = actor.forward(&x);
        let b = actor.forward_inference(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn gradient_check_through_shared_trunk() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut actor = TwoHeadActor::new(&mut rng, 4, &[6], &[5], 2);
        let x = Matrix::from_rows(&[&[0.2, -0.3, 0.5, 0.8], &[1.0, 0.0, -1.0, 0.4]]);

        // Loss = sum of all action components (d_actions = all-ones).
        actor.zero_grad();
        let y = actor.forward(&x);
        let _ = actor.backward(&Matrix::full(y.rows(), y.cols(), 1.0));

        let max_err = deeppower_nn::finite_diff_max_rel_err(
            &mut actor,
            |a| {
                let y = a.forward_inference(&x);
                y.as_slice().iter().sum()
            },
            1e-3,
        );
        assert!(
            max_err < deeppower_nn::GRAD_CHECK_TOL,
            "max rel err {max_err}"
        );
    }

    #[test]
    fn heads_are_independent_given_trunk() {
        // Perturbing head-0 weights must not change head-1 output.
        let mut rng = StdRng::seed_from_u64(5);
        let mut actor = TwoHeadActor::paper_default(&mut rng, 8, 2);
        let state = [0.5f32; 8];
        let before = actor.act(&state);
        // Mutate only the first head's parameters (trunk params come first:
        // 1080 trunk scalars, then head 0).
        let mut idx = 0usize;
        actor.visit_params_mut(&mut |w, _| {
            for x in w.iter_mut() {
                if (1080..1080 + 417).contains(&idx) {
                    *x += 0.5;
                }
                idx += 1;
            }
        });
        let after = actor.act(&state);
        assert_ne!(before[0], after[0]);
        assert_eq!(before[1], after[1]);
    }

    #[test]
    #[should_panic(expected = "state width mismatch")]
    fn act_rejects_wrong_width() {
        let mut rng = StdRng::seed_from_u64(6);
        let actor = TwoHeadActor::paper_default(&mut rng, 8, 2);
        let _ = actor.act(&[0.0; 7]);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

            /// Ragged/grouped batching over mixed profile shapes is
            /// bit-identical to per-node `act`: however a fleet's nodes
            /// are partitioned into profile groups (any sizes, any
            /// interleaving), gathering each group out of the stacked
            /// state matrix and batching it produces exactly the floats
            /// of N single-state passes.
            #[test]
            fn grouped_batching_is_bit_identical_to_per_node_act(
                weights_seed in 0u64..1000,
                states_seed in 0u64..1000,
                n in 1usize..24,
                // Group assignment per node: up to 4 profile groups.
                assign in proptest::collection::vec(0usize..4, 24),
                action_dim in 2usize..4,
            ) {
                let mut rng = StdRng::seed_from_u64(weights_seed);
                let actor = TwoHeadActor::paper_default(&mut rng, 8, action_dim);
                let mut states = Matrix::zeros(n, 8);
                let mut r = StdRng::seed_from_u64(states_seed);
                for i in 0..n {
                    let row: Vec<f32> = (0..8).map(|_| r.random_range(-3.0..3.0)).collect();
                    states.set_row(i, &row);
                }
                // Partition nodes 0..n into groups by the assignment map.
                let mut groups: Vec<Vec<usize>> = vec![Vec::new(); 4];
                for i in 0..n {
                    groups[assign[i]].push(i);
                }
                let mut out = Matrix::zeros(0, 0);
                let mut scratch = ActorScratch::new();
                for group in groups.iter().filter(|g| !g.is_empty()) {
                    actor.act_batch_rows_into(&states, group, &mut out, &mut scratch);
                    for (k, &src) in group.iter().enumerate() {
                        let single = actor.act(states.row(src));
                        prop_assert_eq!(
                            out.row(k),
                            &single[..],
                            "group row {} (node {}) diverged",
                            k,
                            src
                        );
                    }
                }
            }
        }
    }
}
