//! Exploration noise processes.
//!
//! The paper adds Gaussian noise `N(mu=0.3, sigma=1)` to the actor output
//! during training (§4.6): the positive mean biases early exploration toward
//! higher frequencies, avoiding queue congestion while the policy is still
//! random. Ornstein–Uhlenbeck noise (the original DDPG choice) is provided
//! as an alternative for temporally correlated exploration.

use rand::Rng;

/// Draw one standard-normal sample via the Box–Muller transform.
///
/// `rand` 0.9 ships only uniform primitives (the distributions live in the
/// separate `rand_distr` crate, which is outside the sanctioned dependency
/// set) — so the transform is inlined here.
pub fn sample_standard_normal<R: Rng>(rng: &mut R) -> f32 {
    // Avoid ln(0) by sampling u1 from (0, 1].
    let u1: f32 = 1.0 - rng.random::<f32>();
    let u2: f32 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// IID Gaussian noise `N(mu, sigma)` per action dimension.
#[derive(Clone, Copy, Debug)]
pub struct GaussianNoise {
    pub mu: f32,
    pub sigma: f32,
}

impl GaussianNoise {
    pub fn new(mu: f32, sigma: f32) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        Self { mu, sigma }
    }

    /// The paper's default training noise: `N(0.3, 1.0)` (§4.6).
    pub fn paper_default() -> Self {
        Self::new(0.3, 1.0)
    }

    /// Sample one noise value.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f32 {
        self.mu + self.sigma * sample_standard_normal(rng)
    }

    /// Add noise to every element of `action` in place.
    pub fn perturb<R: Rng>(&self, rng: &mut R, action: &mut [f32]) {
        for a in action {
            *a += self.sample(rng);
        }
    }
}

/// Ornstein–Uhlenbeck process: `x += theta * (mu - x) * dt + sigma * sqrt(dt) * N(0,1)`.
///
/// Mean-reverting, temporally correlated — smooths exploration across
/// consecutive control intervals.
#[derive(Clone, Debug)]
pub struct OrnsteinUhlenbeck {
    pub theta: f32,
    pub mu: f32,
    pub sigma: f32,
    pub dt: f32,
    state: Vec<f32>,
}

impl OrnsteinUhlenbeck {
    pub fn new(dim: usize, theta: f32, mu: f32, sigma: f32, dt: f32) -> Self {
        Self {
            theta,
            mu,
            sigma,
            dt,
            state: vec![mu; dim],
        }
    }

    /// Reset the internal state to the mean (call at episode boundaries).
    pub fn reset(&mut self) {
        self.state.fill(self.mu);
    }

    /// Advance the process one step and return the current noise vector.
    pub fn sample<R: Rng>(&mut self, rng: &mut R) -> &[f32] {
        for x in &mut self.state {
            let dw = sample_standard_normal(rng) * self.dt.sqrt();
            *x += self.theta * (self.mu - *x) * self.dt + self.sigma * dw;
        }
        &self.state
    }
}

/// Clamp every action component to `[lo, hi]` — applied after noise so the
/// thread-controller parameters stay within their admissible range.
pub fn clamp_action(action: &mut [f32], lo: f32, hi: f32) {
    for a in action {
        *a = a.clamp(lo, hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(10);
        let n = 100_000;
        let samples: Vec<f32> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gaussian_noise_respects_mu_sigma() {
        let mut rng = StdRng::seed_from_u64(11);
        let noise = GaussianNoise::paper_default();
        let n = 50_000;
        let mean = (0..n).map(|_| noise.sample(&mut rng)).sum::<f32>() / n as f32;
        assert!((mean - 0.3).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn ou_is_mean_reverting() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut ou = OrnsteinUhlenbeck::new(1, 0.15, 0.0, 0.2, 1.0);
        // Push the state far away, then verify it decays toward mu.
        ou.state[0] = 10.0;
        let mut prev = 10.0f32;
        let mut decays = 0;
        for _ in 0..50 {
            let x = ou.sample(&mut rng)[0];
            if x < prev {
                decays += 1;
            }
            prev = x;
        }
        assert!(decays > 30, "OU did not trend back to the mean");
        assert!(prev.abs() < 5.0);
    }

    #[test]
    fn ou_reset_returns_to_mean() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut ou = OrnsteinUhlenbeck::new(3, 0.15, 0.5, 0.2, 1.0);
        let _ = ou.sample(&mut rng);
        ou.reset();
        assert_eq!(ou.state, vec![0.5; 3]);
    }

    #[test]
    fn clamp_action_bounds() {
        let mut a = [-0.5, 0.5, 1.5];
        clamp_action(&mut a, 0.0, 1.0);
        assert_eq!(a, [0.0, 0.5, 1.0]);
    }

    #[test]
    fn perturb_changes_all_dims_deterministically() {
        let mut r1 = StdRng::seed_from_u64(14);
        let mut r2 = StdRng::seed_from_u64(14);
        let noise = GaussianNoise::new(0.0, 1.0);
        let mut a = [0.0f32; 4];
        let mut b = [0.0f32; 4];
        noise.perturb(&mut r1, &mut a);
        noise.perturb(&mut r2, &mut b);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| x != 0.0));
    }
}
