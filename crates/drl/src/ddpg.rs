//! Deep Deterministic Policy Gradient (Lillicrap et al., 2015) — the
//! algorithm DeepPower's top-level agent uses (§4.3, §4.5, Algorithm 2).
//!
//! Four networks: actor `π_θ`, critic `Q_w`, and slow-moving target copies
//! `π_θ'`, `Q_w'` updated by Polyak averaging. The critic regresses the
//! one-step bootstrap target `y = r + γ·Q_w'(s', π_θ'(s'))`; the actor
//! ascends `Q_w(s, π_θ(s))` via the chain rule through the critic's action
//! input (`dQ/da`, supplied by [`Critic::backward`]).

use crate::actor::TwoHeadActor;
use crate::critic::Critic;
use crate::noise::{clamp_action, GaussianNoise};
use crate::replay::{ReplayBuffer, Transition};
use deeppower_nn::{mse_loss, Adam, AdamConfig, Matrix, Optimizer, Params};
use deeppower_telemetry::Profiler;
use rand::{rngs::StdRng, SeedableRng};
use serde::{Deserialize, Serialize};

/// DDPG hyper-parameters. Defaults follow the paper where it is explicit
/// (noise `N(0.3, 1)`, batch 64) and the DDPG paper elsewhere.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DdpgConfig {
    pub state_dim: usize,
    pub action_dim: usize,
    /// Discount factor γ.
    pub gamma: f32,
    /// Polyak coefficient τ for the target-network soft update.
    pub tau: f32,
    pub actor_lr: f32,
    pub critic_lr: f32,
    pub batch_size: usize,
    pub replay_capacity: usize,
    /// Exploration noise added to actions during training (§4.6).
    pub noise_mu: f32,
    pub noise_sigma: f32,
    /// Steps of uniform-random actions before the policy takes over
    /// (Algorithm 2's WARMUP).
    pub warmup: usize,
    /// Global gradient-norm clip (0 disables).
    pub grad_clip: f32,
    /// Multiplicative decay applied to the exploration noise sigma after
    /// every update (1.0 = the paper's constant noise).
    pub noise_decay: f32,
    /// Floor under the decayed sigma — exploration never fully dies.
    pub noise_sigma_min: f32,
    pub seed: u64,
    /// Fault-injection knob: corrupt the bootstrap targets of update
    /// number `inject_nan_update` (1-based) with NaN to exercise the
    /// divergence-rollback path. `0` disables. Test-only; excluded from
    /// serialized checkpoints.
    #[serde(skip)]
    pub inject_nan_update: u64,
}

impl Default for DdpgConfig {
    fn default() -> Self {
        Self {
            state_dim: 8,
            action_dim: 2,
            gamma: 0.95,
            tau: 0.005,
            actor_lr: 1e-3,
            critic_lr: 1e-3,
            batch_size: 64,
            replay_capacity: 100_000,
            noise_mu: 0.3,
            noise_sigma: 1.0,
            warmup: 64,
            grad_clip: 5.0,
            noise_decay: 1.0,
            noise_sigma_min: 0.05,
            seed: 0,
            inject_nan_update: 0,
        }
    }
}

/// Losses and diagnostics from one [`Ddpg::update`] call.
#[derive(Clone, Copy, Debug, Default)]
pub struct UpdateStats {
    pub critic_loss: f32,
    /// Mean `Q(s, π(s))` over the batch — the quantity the actor maximizes.
    pub actor_q: f32,
    /// Global L2 gradient norms *before* clipping: a norm persistently at
    /// `grad_clip` means the clip is active; an exploding norm is the
    /// classic DDPG divergence signal.
    pub actor_grad_norm: f32,
    pub critic_grad_norm: f32,
    /// The update produced a non-finite loss, Q-value, gradient norm or
    /// weight and was rolled back to the last-good network snapshot.
    pub diverged: bool,
}

/// Reusable mini-batch buffers for [`Ddpg::update`]. Allocated empty and
/// reshaped on first use; after that an update performs no batch-assembly
/// allocations (previously: a 64-transition clone plus `from_rows` row
/// gathers — hundreds of heap allocations per gradient step).
struct UpdateScratch {
    states: Matrix,
    actions: Matrix,
    next_states: Matrix,
    targets: Matrix,
    d_q_actor: Matrix,
}

impl UpdateScratch {
    fn new() -> Self {
        Self {
            states: Matrix::zeros(0, 0),
            actions: Matrix::zeros(0, 0),
            next_states: Matrix::zeros(0, 0),
            targets: Matrix::zeros(0, 0),
            d_q_actor: Matrix::zeros(0, 0),
        }
    }
}

/// The DDPG agent.
pub struct Ddpg {
    pub cfg: DdpgConfig,
    pub actor: TwoHeadActor,
    pub critic: Critic,
    actor_target: TwoHeadActor,
    critic_target: Critic,
    actor_opt: Adam,
    critic_opt: Adam,
    pub replay: ReplayBuffer,
    noise: GaussianNoise,
    rng: StdRng,
    updates: u64,
    scratch: UpdateScratch,
    /// Last known-finite `(actor, critic)` weights, refreshed after every
    /// finite update; the rollback target when an update diverges.
    last_good: (Vec<f32>, Vec<f32>),
    rollbacks: u64,
    /// Span profiler for `update` stages (`ddpg.*`); disabled by default
    /// so every span call is one branch.
    prof: Profiler,
}

impl Ddpg {
    pub fn new(cfg: DdpgConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let actor = TwoHeadActor::paper_default(&mut rng, cfg.state_dim, cfg.action_dim);
        let critic = Critic::paper_default(&mut rng, cfg.state_dim, cfg.action_dim);
        let actor_target = actor.clone();
        let critic_target = critic.clone();
        let actor_opt = Adam::new(
            AdamConfig {
                lr: cfg.actor_lr,
                ..Default::default()
            },
            &actor,
        );
        let critic_opt = Adam::new(
            AdamConfig {
                lr: cfg.critic_lr,
                ..Default::default()
            },
            &critic,
        );
        let last_good = (actor.snapshot(), critic.snapshot());
        Self {
            noise: GaussianNoise::new(cfg.noise_mu, cfg.noise_sigma),
            replay: ReplayBuffer::new(cfg.replay_capacity),
            actor,
            critic,
            actor_target,
            critic_target,
            actor_opt,
            critic_opt,
            rng,
            updates: 0,
            scratch: UpdateScratch::new(),
            last_good,
            rollbacks: 0,
            prof: Profiler::disabled(),
            cfg,
        }
    }

    /// Attach a span [`Profiler`]: `update` stages then open `ddpg.*`
    /// spans (sample / target / critic / actor / soft-update).
    /// Profiling never touches the learning math.
    pub fn set_profiler(&mut self, prof: &Profiler) {
        self.prof = prof.clone();
    }

    /// Deterministic (evaluation) action — what runs after training.
    pub fn act(&self, state: &[f32]) -> Vec<f32> {
        self.actor.act(state)
    }

    /// Deterministic actions for a stacked `n × state_dim` batch in one
    /// matrix–matrix forward pass. Row `i` equals `act(states.row(i))`
    /// exactly; see [`TwoHeadActor::act_batch`].
    pub fn act_batch(&self, states: &Matrix) -> Matrix {
        self.actor.act_batch(states)
    }

    /// [`Ddpg::act_batch`] into caller-owned storage — bit-identical, but
    /// allocation-free once `out`/`scratch` have seen the batch shape.
    /// See [`TwoHeadActor::act_batch_into`].
    pub fn act_batch_into(
        &self,
        states: &Matrix,
        out: &mut Matrix,
        scratch: &mut crate::actor::ActorScratch,
    ) {
        self.actor.act_batch_into(states, out, scratch)
    }

    /// Ragged/grouped variant of [`Ddpg::act_batch_into`]: gathers the
    /// selected `rows` out of `states` before batching, so a heterogeneous
    /// fleet can batch only the nodes sharing this policy's profile.
    /// Bit-identical to calling [`Ddpg::act`] per selected row.
    pub fn act_batch_rows_into(
        &self,
        states: &Matrix,
        rows: &[usize],
        out: &mut Matrix,
        scratch: &mut crate::actor::ActorScratch,
    ) {
        self.actor.act_batch_rows_into(states, rows, out, scratch)
    }

    /// Training action: before `warmup` transitions have been observed a
    /// uniform-random action is returned (Algorithm 2 line 7), afterwards
    /// the actor output plus Gaussian noise, clamped to `[0, 1]`.
    pub fn act_explore(&mut self, state: &[f32]) -> Vec<f32> {
        let mut a = if (self.replay.total_pushed() as usize) < self.cfg.warmup {
            (0..self.cfg.action_dim)
                .map(|_| rand::Rng::random_range(&mut self.rng, 0.0..1.0))
                .collect()
        } else {
            let mut a = self.actor.act(state);
            self.noise.perturb(&mut self.rng, &mut a);
            a
        };
        clamp_action(&mut a, 0.0, 1.0);
        a
    }

    /// Store a transition in the replay pool. Returns `false` when the
    /// pool rejected it as non-finite (see [`ReplayBuffer::push`]).
    pub fn observe(&mut self, t: Transition) -> bool {
        debug_assert_eq!(t.state.len(), self.cfg.state_dim);
        debug_assert_eq!(t.action.len(), self.cfg.action_dim);
        self.replay.push(t)
    }

    /// Whether enough experience has accumulated to train.
    pub fn ready(&self) -> bool {
        self.replay.len() >= self.cfg.batch_size
            && self.replay.total_pushed() as usize >= self.cfg.warmup
    }

    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Diverged updates rolled back to the last-good snapshot.
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks
    }

    /// Non-finite transitions rejected by the replay pool.
    pub fn rejected_transitions(&self) -> u64 {
        self.replay.total_rejected()
    }

    /// One gradient step on a sampled mini-batch (Algorithm 2 lines 14–18):
    /// critic MSE regression to the bootstrap target, actor ascent on
    /// `Q(s, π(s))`, then soft target updates.
    pub fn update(&mut self) -> UpdateStats {
        assert!(self.ready(), "update called before replay warm-up");
        let n = self.cfg.batch_size;

        // Gather the mini-batch straight out of the replay pool into the
        // reusable scratch matrices — no transition clones.
        let sp = self.prof.span("ddpg.sample");
        self.scratch.states.reshape(n, self.cfg.state_dim);
        self.scratch.actions.reshape(n, self.cfg.action_dim);
        self.scratch.next_states.reshape(n, self.cfg.state_dim);
        self.scratch.targets.reshape(n, 1);
        let sampled = self.replay.sample(&mut self.rng, n);
        for (i, t) in sampled.iter().enumerate() {
            self.scratch.states.row_mut(i).copy_from_slice(&t.state);
            self.scratch.actions.row_mut(i).copy_from_slice(&t.action);
            self.scratch
                .next_states
                .row_mut(i)
                .copy_from_slice(&t.next_state);
        }

        drop(sp);

        // Bootstrap target y = r + γ (1 - done) Q'(s', π'(s')).
        let sp = self.prof.span("ddpg.target");
        let next_actions = self
            .actor_target
            .forward_inference(&self.scratch.next_states);
        let q_next = self
            .critic_target
            .forward_inference(&self.scratch.next_states, &next_actions);
        for (i, t) in sampled.iter().enumerate() {
            let cont = if t.done { 0.0 } else { 1.0 };
            self.scratch
                .targets
                .set(i, 0, t.reward + self.cfg.gamma * cont * q_next.get(i, 0));
        }
        drop(sampled);
        if self.cfg.inject_nan_update != 0 && self.updates + 1 == self.cfg.inject_nan_update {
            self.scratch.targets.as_mut_slice().fill(f32::NAN);
        }
        drop(sp);

        // Critic step.
        let sp = self.prof.span("ddpg.critic");
        self.critic.zero_grad();
        let q = self
            .critic
            .forward(&self.scratch.states, &self.scratch.actions);
        let (critic_loss, d_q) = mse_loss(&q, &self.scratch.targets);
        let _ = self.critic.backward(&d_q);
        let critic_grad_norm = self.critic.grad_norm();
        if self.cfg.grad_clip > 0.0 {
            self.critic.clip_grad_norm(self.cfg.grad_clip);
        }
        self.critic_opt.step(&mut self.critic);
        drop(sp);

        let sp = self.prof.span("ddpg.actor");
        // Actor step: maximize mean Q(s, π(s)) ⇒ descend on its negation.
        // The critic accumulates gradients here too, but they are zeroed at
        // the start of the next critic step, so they never reach its
        // optimizer.
        self.actor.zero_grad();
        self.critic.zero_grad();
        let pred_actions = self.actor.forward(&self.scratch.states);
        let q_pi = self.critic.forward(&self.scratch.states, &pred_actions);
        let actor_q = q_pi.mean();
        self.scratch.d_q_actor.reshape(n, 1);
        self.scratch.d_q_actor.as_mut_slice().fill(-1.0 / n as f32);
        let (_, d_actions) = self.critic.backward(&self.scratch.d_q_actor);
        let _ = self.actor.backward(&d_actions);
        let actor_grad_norm = self.actor.grad_norm();
        if self.cfg.grad_clip > 0.0 {
            self.actor.clip_grad_norm(self.cfg.grad_clip);
        }
        self.actor_opt.step(&mut self.actor);
        drop(sp);

        // Divergence check *before* the target networks absorb the new
        // weights: a non-finite loss, Q-value, gradient norm or weight
        // means this update poisoned the networks. Roll everything back
        // to the last-good snapshot (the optimizers' moment estimates
        // are poisoned too, so they are rebuilt from scratch) rather
        // than letting NaNs propagate into the targets and the policy.
        let actor_snap = self.actor.snapshot();
        let critic_snap = self.critic.snapshot();
        let finite = critic_loss.is_finite()
            && actor_q.is_finite()
            && actor_grad_norm.is_finite()
            && critic_grad_norm.is_finite()
            && actor_snap.iter().all(|w| w.is_finite())
            && critic_snap.iter().all(|w| w.is_finite());
        self.updates += 1;
        if !finite {
            let (good_actor, good_critic) = (self.last_good.0.clone(), self.last_good.1.clone());
            self.actor.load_snapshot(&good_actor);
            self.actor_target.load_snapshot(&good_actor);
            self.critic.load_snapshot(&good_critic);
            self.critic_target.load_snapshot(&good_critic);
            self.actor_opt = Adam::new(
                AdamConfig {
                    lr: self.cfg.actor_lr,
                    ..Default::default()
                },
                &self.actor,
            );
            self.critic_opt = Adam::new(
                AdamConfig {
                    lr: self.cfg.critic_lr,
                    ..Default::default()
                },
                &self.critic,
            );
            self.rollbacks += 1;
            return UpdateStats {
                critic_loss,
                actor_q,
                actor_grad_norm,
                critic_grad_norm,
                diverged: true,
            };
        }

        // Soft target updates.
        let sp = self.prof.span("ddpg.soft_update");
        self.actor_target
            .soft_update_from(&actor_snap, self.cfg.tau);
        self.critic_target
            .soft_update_from(&critic_snap, self.cfg.tau);
        self.last_good = (actor_snap, critic_snap);
        drop(sp);

        self.noise.sigma = (self.noise.sigma * self.cfg.noise_decay).max(self.cfg.noise_sigma_min);
        UpdateStats {
            critic_loss,
            actor_q,
            actor_grad_norm,
            critic_grad_norm,
            diverged: false,
        }
    }

    /// Flat weight snapshot of the actor (checkpointing the learned policy).
    pub fn actor_snapshot(&self) -> Vec<f32> {
        self.actor.snapshot()
    }

    /// Restore actor weights (and sync its target copy).
    pub fn load_actor_snapshot(&mut self, flat: &[f32]) {
        self.actor.load_snapshot(flat);
        self.actor_target.load_snapshot(flat);
    }

    /// Flat weight snapshot of the critic (checkpointed alongside the
    /// actor so introspection tools can query the trained Q-function).
    pub fn critic_snapshot(&self) -> Vec<f32> {
        self.critic.snapshot()
    }

    /// Restore critic weights (and sync its target copy).
    pub fn load_critic_snapshot(&mut self, flat: &[f32]) {
        self.critic.load_snapshot(flat);
        self.critic_target.load_snapshot(flat);
    }

    /// `Q_w(state, action)` under the current critic — scalar value of
    /// one state–action pair, for policy introspection.
    pub fn q_value(&self, state: &[f32], action: &[f32]) -> f32 {
        debug_assert_eq!(state.len(), self.cfg.state_dim);
        debug_assert_eq!(action.len(), self.cfg.action_dim);
        let s = Matrix::from_rows(&[state]);
        let a = Matrix::from_rows(&[action]);
        self.critic.forward_inference(&s, &a).get(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-dimensional continuous bandit: reward peaks at a = (0.8, 0.2)
    /// regardless of state. DDPG should steer the deterministic policy
    /// toward that optimum.
    #[test]
    fn ddpg_solves_continuous_bandit() {
        let cfg = DdpgConfig {
            state_dim: 3,
            action_dim: 2,
            gamma: 0.0, // bandit: no bootstrapping needed
            warmup: 128,
            batch_size: 32,
            actor_lr: 5e-3,
            critic_lr: 5e-3,
            noise_mu: 0.0,
            noise_sigma: 0.3,
            seed: 7,
            ..Default::default()
        };
        let mut agent = Ddpg::new(cfg);
        let state = vec![0.1, -0.2, 0.4];
        for _ in 0..2500 {
            let a = agent.act_explore(&state);
            let r = 1.0 - (a[0] - 0.8).powi(2) - (a[1] - 0.2).powi(2);
            agent.observe(Transition {
                state: state.clone(),
                action: a,
                reward: r,
                next_state: state.clone(),
                done: true,
            });
            if agent.ready() {
                agent.update();
            }
        }
        let a = agent.act(&state);
        assert!(
            (a[0] - 0.8).abs() < 0.2 && (a[1] - 0.2).abs() < 0.2,
            "policy did not converge: {a:?}"
        );
    }

    #[test]
    fn warmup_actions_are_random_and_bounded() {
        let mut agent = Ddpg::new(DdpgConfig {
            warmup: 100,
            seed: 1,
            ..Default::default()
        });
        let s = vec![0.0; 8];
        let a1 = agent.act_explore(&s);
        let a2 = agent.act_explore(&s);
        assert_ne!(a1, a2, "warm-up actions should vary");
        for a in [&a1, &a2] {
            assert!(a.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn explore_actions_clamped_after_warmup() {
        let mut agent = Ddpg::new(DdpgConfig {
            warmup: 0,
            noise_mu: 5.0, // force saturation
            noise_sigma: 0.0,
            ..Default::default()
        });
        let a = agent.act_explore(&[0.0; 8]);
        assert!(a.iter().all(|&x| x == 1.0), "{a:?}");
    }

    #[test]
    fn update_before_warmup_panics() {
        let mut agent = Ddpg::new(DdpgConfig {
            warmup: 10,
            ..Default::default()
        });
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            agent.update();
        }));
        assert!(result.is_err());
    }

    #[test]
    fn critic_loss_decreases_on_fixed_batch_distribution() {
        let mut agent = Ddpg::new(DdpgConfig {
            state_dim: 2,
            action_dim: 2,
            warmup: 0,
            batch_size: 32,
            seed: 3,
            gamma: 0.0,
            ..Default::default()
        });
        // Deterministic reward structure: r = a0 - a1.
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..256 {
            let a = vec![
                rand::Rng::random_range(&mut rng, 0.0..1.0),
                rand::Rng::random_range(&mut rng, 0.0..1.0),
            ];
            agent.observe(Transition {
                state: vec![0.5, 0.5],
                action: a.clone(),
                reward: a[0] - a[1],
                next_state: vec![0.5, 0.5],
                done: true,
            });
        }
        let first: f32 = (0..5).map(|_| agent.update().critic_loss).sum::<f32>() / 5.0;
        for _ in 0..200 {
            agent.update();
        }
        let last: f32 = (0..5).map(|_| agent.update().critic_loss).sum::<f32>() / 5.0;
        assert!(last < first, "critic loss did not fall: {first} -> {last}");
    }

    #[test]
    fn profiled_update_is_bit_identical_and_captures_stage_spans() {
        let cfg = DdpgConfig {
            state_dim: 2,
            action_dim: 2,
            warmup: 0,
            batch_size: 16,
            seed: 11,
            ..Default::default()
        };
        let fill = |agent: &mut Ddpg| {
            let mut rng = StdRng::seed_from_u64(9);
            for _ in 0..64 {
                let a = vec![
                    rand::Rng::random_range(&mut rng, 0.0..1.0),
                    rand::Rng::random_range(&mut rng, 0.0..1.0),
                ];
                agent.observe(Transition {
                    state: vec![0.5, 0.5],
                    action: a.clone(),
                    reward: a[0] - a[1],
                    next_state: vec![0.5, 0.5],
                    done: true,
                });
            }
        };
        let mut plain = Ddpg::new(cfg);
        fill(&mut plain);
        let mut profiled = Ddpg::new(cfg);
        fill(&mut profiled);
        let prof = deeppower_telemetry::Profiler::enabled();
        profiled.set_profiler(&prof);

        for _ in 0..10 {
            plain.update();
            profiled.update();
        }
        // Profiling must not perturb the learning math.
        let (pa, qa) = (plain.actor_snapshot(), profiled.actor_snapshot());
        assert_eq!(pa.len(), qa.len());
        assert!(pa.iter().zip(&qa).all(|(a, b)| a.to_bits() == b.to_bits()));
        let (pc, qc) = (plain.critic_snapshot(), profiled.critic_snapshot());
        assert!(pc.iter().zip(&qc).all(|(a, b)| a.to_bits() == b.to_bits()));

        let rows = prof.phase_table();
        for stage in [
            "ddpg.sample",
            "ddpg.target",
            "ddpg.critic",
            "ddpg.actor",
            "ddpg.soft_update",
        ] {
            let row = rows.iter().find(|r| r.name == stage);
            assert_eq!(row.map_or(0, |r| r.count), 10, "missing spans for {stage}");
        }
    }

    #[test]
    fn critic_snapshot_round_trips_q_values() {
        let cfg = DdpgConfig {
            state_dim: 2,
            action_dim: 2,
            warmup: 0,
            batch_size: 16,
            seed: 4,
            ..Default::default()
        };
        let mut trained = Ddpg::new(cfg);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..64 {
            let a = vec![
                rand::Rng::random_range(&mut rng, 0.0..1.0),
                rand::Rng::random_range(&mut rng, 0.0..1.0),
            ];
            trained.observe(Transition {
                state: vec![0.5, 0.5],
                action: a.clone(),
                reward: a[0] - a[1],
                next_state: vec![0.5, 0.5],
                done: true,
            });
        }
        for _ in 0..20 {
            trained.update();
        }
        let mut fresh = Ddpg::new(cfg);
        let (s, a) = ([0.3f32, 0.7], [0.6f32, 0.1]);
        assert_ne!(
            trained.q_value(&s, &a).to_bits(),
            fresh.q_value(&s, &a).to_bits(),
            "training should move the critic"
        );
        fresh.load_critic_snapshot(&trained.critic_snapshot());
        assert_eq!(
            trained.q_value(&s, &a).to_bits(),
            fresh.q_value(&s, &a).to_bits()
        );
    }

    #[test]
    fn update_stats_expose_finite_grad_norms() {
        let mut agent = Ddpg::new(DdpgConfig {
            state_dim: 2,
            action_dim: 2,
            warmup: 0,
            batch_size: 16,
            seed: 11,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..64 {
            let a = vec![
                rand::Rng::random_range(&mut rng, 0.0..1.0),
                rand::Rng::random_range(&mut rng, 0.0..1.0),
            ];
            agent.observe(Transition {
                state: vec![0.1, 0.9],
                action: a.clone(),
                reward: a[0],
                next_state: vec![0.1, 0.9],
                done: true,
            });
        }
        let stats = agent.update();
        assert!(stats.critic_grad_norm.is_finite() && stats.critic_grad_norm > 0.0);
        assert!(stats.actor_grad_norm.is_finite() && stats.actor_grad_norm > 0.0);
        assert!(stats.critic_loss.is_finite());
    }

    #[test]
    fn injected_nan_update_rolls_back_to_last_good_weights() {
        let mut agent = Ddpg::new(DdpgConfig {
            state_dim: 2,
            action_dim: 2,
            warmup: 0,
            batch_size: 16,
            seed: 13,
            inject_nan_update: 3,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..64 {
            let a = vec![
                rand::Rng::random_range(&mut rng, 0.0..1.0),
                rand::Rng::random_range(&mut rng, 0.0..1.0),
            ];
            agent.observe(Transition {
                state: vec![0.3, 0.7],
                action: a.clone(),
                reward: a[0] - a[1],
                next_state: vec![0.3, 0.7],
                done: true,
            });
        }
        agent.update();
        agent.update();
        let before = agent.actor_snapshot();
        let stats = agent.update(); // the corrupted one
        assert!(stats.diverged, "injected NaN batch not flagged");
        assert_eq!(agent.rollbacks(), 1);
        // Rolled back to the weights of update 2, all finite.
        let after = agent.actor_snapshot();
        assert_eq!(before, after, "rollback did not restore last-good actor");
        // Training continues normally past the fault.
        for _ in 0..5 {
            let s = agent.update();
            assert!(!s.diverged);
            assert!(s.critic_loss.is_finite());
        }
        assert!(agent.act(&[0.3, 0.7]).iter().all(|x| x.is_finite()));
    }

    #[test]
    fn observe_rejects_non_finite_transition() {
        let mut agent = Ddpg::new(DdpgConfig {
            state_dim: 2,
            action_dim: 2,
            ..Default::default()
        });
        let ok = agent.observe(Transition {
            state: vec![0.0, 1.0],
            action: vec![0.5, 0.5],
            reward: f32::NAN,
            next_state: vec![0.0, 1.0],
            done: false,
        });
        assert!(!ok);
        assert_eq!(agent.rejected_transitions(), 1);
        assert_eq!(agent.replay.len(), 0);
    }

    #[test]
    fn actor_snapshot_roundtrip_changes_then_restores_policy() {
        let mut agent = Ddpg::new(DdpgConfig {
            seed: 9,
            ..Default::default()
        });
        let s = vec![0.2; 8];
        let before = agent.act(&s);
        let snap = agent.actor_snapshot();
        // Corrupt weights.
        let zeros = vec![0.0; snap.len()];
        agent.load_actor_snapshot(&zeros);
        assert_ne!(agent.act(&s), before);
        agent.load_actor_snapshot(&snap);
        let after = agent.act(&s);
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() < 1e-6);
        }
    }
}
