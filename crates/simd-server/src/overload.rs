//! Closed-loop clients, bounded queues and admission control.
//!
//! The base engine is *open-loop*: arrivals are a fixed, pre-generated
//! list and the queue is unbounded, so offered load never reacts to how
//! the server is doing. Real latency-critical services die differently —
//! clients time out, retry, and pile duplicated work onto an already
//! slow server until most completions answer nobody (*congestion
//! collapse*). An [`OverloadPlan`] switches that feedback loop on:
//!
//! * **Closed-loop clients** — every admitted attempt carries a client
//!   deadline (`client_timeout_ns` after submission). If the server has
//!   not answered by then the client abandons the attempt and, with
//!   probability `retry_prob` (capped at `max_attempts` total attempts),
//!   schedules a retry after exponential backoff plus jitter. A
//!   completion after abandonment is **wasted work**; before it,
//!   **goodput**.
//! * **Bounded queue + shedding** — `queue_capacity` bounds the server
//!   queue under a [`QueuePolicy`]; a rejected client learns
//!   immediately (fast-fail) and may retry just like an abandoning one.
//! * **Admission control** — an [`AdmissionController`] may reject
//!   requests before the capacity check: a static queue-length
//!   threshold, an adaptive CoDel-style controller keyed on queue
//!   sojourn time, or a DRL-commanded threshold (the third action head
//!   of the co-managed DeepPower policy).
//!
//! Determinism mirrors [`crate::faults`]: all randomness (retry
//! decisions, jitter) comes from one dedicated seeded [`StdRng`] stream
//! drawn in event order, so the same `(seed, config, OverloadPlan)`
//! replays bit-identically at any thread count, alongside any
//! [`crate::FaultPlan`]. A plan with every knob at zero
//! ([`OverloadPlan::none`]) performs no draws, admits everything and
//! perturbs nothing.

use crate::clock::Nanos;
use crate::request::Request;
use deeppower_telemetry::{event, Event, Recorder, RequestTracer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet, VecDeque};

/// Server ids of synthetic attempts (retries, flash-crowd clones) start
/// here so they can never collide with workload-generator ids.
pub const SYNTH_ID_BASE: u64 = 1 << 48;

/// How a bounded queue orders service and handles overflow.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueuePolicy {
    /// First-in-first-out service; overflow sheds the arriving request.
    #[default]
    Fifo,
    /// Last-in-first-out service (newest first); overflow sheds the
    /// arriving request. Favors fresh requests whose clients are still
    /// waiting — the classic anti-collapse stack discipline.
    Lifo,
    /// FIFO service; overflow sheds the arriving request (alias of
    /// `Fifo` overflow, named for symmetry with `DropOldest`).
    DropNewest,
    /// FIFO service; overflow evicts (sheds) the *oldest* queued
    /// request to make room for the arriving one.
    DropOldest,
}

impl QueuePolicy {
    /// Stable CLI/report name.
    pub fn name(&self) -> &'static str {
        match self {
            QueuePolicy::Fifo => "fifo",
            QueuePolicy::Lifo => "lifo",
            QueuePolicy::DropNewest => "drop-newest",
            QueuePolicy::DropOldest => "drop-oldest",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fifo" => Some(QueuePolicy::Fifo),
            "lifo" => Some(QueuePolicy::Lifo),
            "drop-newest" => Some(QueuePolicy::DropNewest),
            "drop-oldest" => Some(QueuePolicy::DropOldest),
            _ => None,
        }
    }

    /// Whether dispatch serves the newest queued request first.
    pub fn serves_newest_first(&self) -> bool {
        matches!(self, QueuePolicy::Lifo)
    }
}

/// Which admission controller guards the queue (knobs live as flat
/// fields on [`OverloadPlan`] — the vendored serde derive supports only
/// unit enum variants).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionMode {
    /// Admit everything (capacity bounds still apply).
    #[default]
    None,
    /// Reject when the queue is at least `admit_queue_max` deep.
    Static,
    /// CoDel-style: reject while the oldest queued request has waited
    /// beyond `codel_target_ns` for a full `codel_interval_ns`.
    CoDel,
    /// Threshold commanded by the governor's third action head
    /// (fraction of capacity; see `FreqCommands::set_admission`).
    Drl,
}

/// Seeded, config-driven description of the closed-loop client and
/// admission behaviour of a run.
///
/// `Copy` on purpose: it rides inside [`crate::RunOptions`] and job
/// specs without allocation, exactly like [`crate::FaultPlan`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OverloadPlan {
    /// Seed for the retry stream (independent of workload and faults).
    pub seed: u64,
    /// Queue capacity; 0 = unbounded (the classic open-loop queue).
    pub queue_capacity: u32,
    pub queue_policy: QueuePolicy,
    /// Per-attempt client deadline, ns after submission; 0 = clients
    /// never abandon.
    pub client_timeout_ns: Nanos,
    /// Probability an abandoning or shed client retries (if attempts
    /// remain).
    pub retry_prob: f64,
    /// Total attempts a client makes, first submission included.
    pub max_attempts: u32,
    /// Base retry backoff; attempt `k` waits `retry_backoff_ns · 2^(k-1)`
    /// plus jitter.
    pub retry_backoff_ns: Nanos,
    /// Uniform jitter in `[0, retry_jitter_ns]` added to each backoff
    /// (0 = deterministic backoff, no draw).
    pub retry_jitter_ns: Nanos,
    pub admission: AdmissionMode,
    /// Queue-length threshold for [`AdmissionMode::Static`].
    pub admit_queue_max: u32,
    /// Sojourn target/interval for [`AdmissionMode::CoDel`].
    pub codel_target_ns: Nanos,
    pub codel_interval_ns: Nanos,
    /// Flash-crowd burst: during `[burst_start_ns, burst_start_ns +
    /// burst_duration_ns)` every workload arrival brings `burst_factor`
    /// extra cloned clients (0 duration or factor disables).
    pub burst_start_ns: Nanos,
    pub burst_duration_ns: Nanos,
    pub burst_factor: u32,
}

impl OverloadPlan {
    /// Fully transparent plan: open loop, unbounded queue, no clients
    /// abandoning, no admission control.
    pub fn none() -> Self {
        Self {
            seed: 0,
            queue_capacity: 0,
            queue_policy: QueuePolicy::Fifo,
            client_timeout_ns: 0,
            retry_prob: 0.0,
            max_attempts: 1,
            retry_backoff_ns: 0,
            retry_jitter_ns: 0,
            admission: AdmissionMode::None,
            admit_queue_max: 0,
            codel_target_ns: 0,
            codel_interval_ns: 0,
            burst_start_ns: 0,
            burst_duration_ns: 0,
            burst_factor: 0,
        }
    }

    /// Whether any overload axis is enabled.
    pub fn is_active(&self) -> bool {
        self.queue_capacity > 0
            || self.client_timeout_ns > 0
            || self.admission != AdmissionMode::None
            || (self.burst_duration_ns > 0 && self.burst_factor > 0)
            || self.queue_policy != QueuePolicy::Fifo
    }

    /// Validate invariants; called by the engine before a run.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.retry_prob) {
            return Err(format!(
                "retry_prob must be in [0, 1], got {}",
                self.retry_prob
            ));
        }
        if self.max_attempts == 0 {
            return Err("max_attempts must be >= 1 (the first submission counts)".into());
        }
        if self.retry_prob > 0.0 && self.max_attempts > 1 && self.retry_backoff_ns == 0 {
            return Err("retry_backoff_ns must be positive when retries are enabled".into());
        }
        if self.admission == AdmissionMode::Static && self.admit_queue_max == 0 {
            return Err("admit_queue_max must be >= 1 for static admission".into());
        }
        if self.admission == AdmissionMode::CoDel
            && (self.codel_target_ns == 0 || self.codel_interval_ns == 0)
        {
            return Err("codel_target_ns and codel_interval_ns must be positive".into());
        }
        Ok(())
    }
}

impl Default for OverloadPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// An admission decision: may a request join the queue, and at whose
/// expense.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admit {
    /// Enqueue the arriving request.
    Accept,
    /// Shed the arriving request; `0` names the stable reason tag.
    Reject(&'static str),
    /// Shed the oldest queued request, then enqueue the arriving one
    /// (`QueuePolicy::DropOldest` overflow).
    EvictOldest,
}

/// A pluggable pre-capacity admission policy. Implementations must be
/// deterministic functions of their inputs and internal state — the
/// engine consults them in event order.
pub trait AdmissionController {
    /// Decide whether a request arriving at `now` may join a queue of
    /// `queue_len` entries whose oldest member has waited
    /// `oldest_wait_ns`.
    fn admit(&mut self, now: Nanos, queue_len: usize, oldest_wait_ns: Nanos) -> bool;

    /// Receive a governor-commanded admission threshold (fraction of
    /// scale, clamped to `[0, 1]`). Ignored by non-DRL controllers.
    fn set_threshold(&mut self, _frac: f32) {}

    /// The admission threshold currently in effect, as a fraction of
    /// scale (1.0 for controllers without a commanded threshold).
    /// Observability only — never consulted by the engine.
    fn admit_frac(&self) -> f64 {
        1.0
    }

    /// Stable reporting name.
    fn name(&self) -> &'static str;
}

/// Admit everything (the default; capacity bounds still apply).
pub struct AdmitAll;

impl AdmissionController for AdmitAll {
    fn admit(&mut self, _now: Nanos, _queue_len: usize, _oldest_wait_ns: Nanos) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "admit-all"
    }
}

/// Reject while the queue is at least `max_queue` deep.
pub struct StaticThreshold {
    pub max_queue: usize,
}

impl AdmissionController for StaticThreshold {
    fn admit(&mut self, _now: Nanos, queue_len: usize, _oldest_wait_ns: Nanos) -> bool {
        queue_len < self.max_queue
    }

    fn name(&self) -> &'static str {
        "static-threshold"
    }
}

/// CoDel-style sojourn controller: once the oldest queued request has
/// waited beyond `target_ns` continuously for `interval_ns`, reject
/// arrivals until the sojourn drops back under target. Uses queue
/// sojourn as the standing-queue signal exactly like CoDel's
/// minimum-delay tracker, but applied at admission (deterministic — no
/// square-root pacing draw).
pub struct CoDelAdmission {
    pub target_ns: Nanos,
    pub interval_ns: Nanos,
    /// When the sojourn first exceeded target, if it still does.
    above_since: Option<Nanos>,
}

impl CoDelAdmission {
    pub fn new(target_ns: Nanos, interval_ns: Nanos) -> Self {
        Self {
            target_ns,
            interval_ns,
            above_since: None,
        }
    }
}

impl AdmissionController for CoDelAdmission {
    fn admit(&mut self, now: Nanos, queue_len: usize, oldest_wait_ns: Nanos) -> bool {
        if queue_len == 0 || oldest_wait_ns <= self.target_ns {
            self.above_since = None;
            return true;
        }
        let since = *self.above_since.get_or_insert(now);
        now.saturating_sub(since) < self.interval_ns
    }

    fn name(&self) -> &'static str {
        "codel"
    }
}

/// Governor-commanded threshold: admit while `queue_len <
/// max(1, frac · scale)`. `scale` is the queue capacity when bounded,
/// else a cores-proportional default; `frac` comes from the DRL
/// policy's third action head each control tick.
pub struct DrlAdmission {
    pub scale: usize,
    frac: f32,
}

impl DrlAdmission {
    pub fn new(scale: usize) -> Self {
        // Until the first command arrives, admit up to the full scale.
        Self { scale, frac: 1.0 }
    }
}

impl AdmissionController for DrlAdmission {
    fn admit(&mut self, _now: Nanos, queue_len: usize, _oldest_wait_ns: Nanos) -> bool {
        let limit = ((self.frac as f64 * self.scale as f64).round() as usize).max(1);
        queue_len < limit
    }

    fn set_threshold(&mut self, frac: f32) {
        self.frac = frac.clamp(0.0, 1.0);
    }

    fn admit_frac(&self) -> f64 {
        self.frac as f64
    }

    fn name(&self) -> &'static str {
        "drl"
    }
}

/// Everything a client needs to resubmit an attempt.
#[derive(Clone, Debug)]
struct RetryTemplate {
    client: u64,
    attempt: u32,
    first_arrival: Nanos,
    work_ref_ns: Nanos,
    freq_sensitivity: f32,
    sla: Nanos,
    features: Vec<f32>,
}

impl RetryTemplate {
    fn of(req: &Request) -> Self {
        Self {
            client: req.client_id,
            attempt: req.attempt,
            first_arrival: req.client_arrival(),
            work_ref_ns: req.work_ref_ns,
            freq_sensitivity: req.freq_sensitivity,
            sla: req.sla,
            features: req.features.clone(),
        }
    }
}

/// A client deadline for one admitted attempt. Deadlines are pushed in
/// submission order and `client_timeout_ns` is constant, so the deque
/// stays sorted by `at` — expiry is a front-pop scan.
struct Deadline {
    at: Nanos,
    id: u64,
    template: RetryTemplate,
}

/// A scheduled retry, ordered by `(at, seq)` in a min-heap (`seq`
/// breaks ties deterministically).
struct RetryEntry {
    at: Nanos,
    seq: u64,
    id: u64,
    template: RetryTemplate,
}

impl PartialEq for RetryEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for RetryEntry {}
impl PartialOrd for RetryEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for RetryEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Cumulative overload counters, surfaced through `SimResult`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OverloadCounters {
    /// Completions whose client was still waiting.
    pub good: u64,
    /// Completions after the client abandoned (wasted work).
    pub wasted: u64,
    /// Busy-time the server burned on wasted completions, ns.
    pub wasted_service_ns: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Attempts abandoned by their client.
    pub abandoned: u64,
    /// Retries scheduled.
    pub retries: u64,
}

/// Per-run overload machinery: the retry stream plus client state.
pub struct OverloadState {
    plan: OverloadPlan,
    rng: StdRng,
    admission: Box<dyn AdmissionController>,
    deadlines: VecDeque<Deadline>,
    retries: BinaryHeap<Reverse<RetryEntry>>,
    /// Admitted attempts the client still waits for.
    open: HashSet<u64>,
    /// Attempts whose client abandoned; a completion here is wasted.
    abandoned: HashSet<u64>,
    next_synth_id: u64,
    retry_seq: u64,
    pub counters: OverloadCounters,
}

impl OverloadState {
    /// Build the per-run state. Panics on an invalid plan (mirrors the
    /// engine's config validation).
    pub fn new(plan: OverloadPlan, n_cores: usize) -> Self {
        plan.validate().expect("invalid overload plan");
        let admission: Box<dyn AdmissionController> = match plan.admission {
            AdmissionMode::None => Box::new(AdmitAll),
            AdmissionMode::Static => Box::new(StaticThreshold {
                max_queue: plan.admit_queue_max as usize,
            }),
            AdmissionMode::CoDel => Box::new(CoDelAdmission::new(
                plan.codel_target_ns,
                plan.codel_interval_ns,
            )),
            AdmissionMode::Drl => {
                let scale = if plan.queue_capacity > 0 {
                    plan.queue_capacity as usize
                } else {
                    16 * n_cores.max(1)
                };
                Box::new(DrlAdmission::new(scale))
            }
        };
        Self {
            plan,
            // Dedicated stream, decoupled from the fault streams
            // (crate::faults uses multipliers 3/5/7).
            rng: StdRng::seed_from_u64(plan.seed.wrapping_mul(11).wrapping_add(0x4e714)),
            admission,
            deadlines: VecDeque::new(),
            retries: BinaryHeap::new(),
            open: HashSet::new(),
            abandoned: HashSet::new(),
            next_synth_id: SYNTH_ID_BASE,
            retry_seq: 0,
            counters: OverloadCounters::default(),
        }
    }

    pub fn plan(&self) -> &OverloadPlan {
        &self.plan
    }

    pub fn is_active(&self) -> bool {
        self.plan.is_active()
    }

    /// Forward a governor-commanded admission threshold.
    pub fn set_threshold(&mut self, frac: f32) {
        self.admission.set_threshold(frac);
    }

    /// The admission threshold currently in effect (observability: the
    /// request tracer stamps it into service spans).
    pub fn admit_frac(&self) -> f64 {
        self.admission.admit_frac()
    }

    /// Earliest pending client event (deadline expiry or retry
    /// arrival). The front deadline may belong to an already-answered
    /// attempt — the resulting wakeup is a deterministic no-op.
    pub fn next_event_time(&self) -> Option<Nanos> {
        let d = self.deadlines.front().map(|d| d.at);
        let r = self.retries.peek().map(|Reverse(e)| e.at);
        match (d, r) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Whether retries are still in flight (termination must wait for
    /// them).
    pub fn retries_pending(&self) -> bool {
        !self.retries.is_empty()
    }

    /// How many extra cloned clients a workload arrival at `t` brings
    /// (the flash-crowd burst).
    pub fn burst_clones(&self, t: Nanos) -> u32 {
        if self.plan.burst_duration_ns == 0 || self.plan.burst_factor == 0 {
            return 0;
        }
        let end = self.plan.burst_start_ns + self.plan.burst_duration_ns;
        if t >= self.plan.burst_start_ns && t < end {
            self.plan.burst_factor
        } else {
            0
        }
    }

    /// Allocate a fresh synthetic server id (flash-crowd clones).
    pub fn alloc_synth_id(&mut self) -> u64 {
        let id = self.next_synth_id;
        self.next_synth_id += 1;
        id
    }

    /// Expire every client deadline at or before `now`: mark the
    /// attempt abandoned, emit the event, maybe schedule a retry.
    /// Deadlines of already-answered attempts pop silently.
    pub fn expire(&mut self, now: Nanos, rec: &Recorder, tracer: &mut RequestTracer) {
        while self.deadlines.front().is_some_and(|d| d.at <= now) {
            let d = self.deadlines.pop_front().expect("front checked");
            if !self.open.remove(&d.id) {
                continue; // answered (or shed by eviction) before the deadline
            }
            self.abandoned.insert(d.id);
            self.counters.abandoned += 1;
            let waited = now - (d.at - self.plan.client_timeout_ns).min(now);
            rec.add("overload.abandoned", 1);
            rec.emit(|| {
                Event::Abandoned(event::Abandoned {
                    t: now,
                    id: d.id,
                    client: d.template.client,
                    attempt: d.template.attempt,
                    waited_ns: waited,
                })
            });
            tracer.on_abandon(now, d.id, waited);
            self.maybe_retry(now, &d.template, rec, tracer);
        }
    }

    /// Decide the fate of a request arriving at `now` given the current
    /// queue. Consults the admission controller first, then the
    /// capacity/overflow policy.
    pub fn admit(&mut self, now: Nanos, queue: &VecDeque<Request>) -> Admit {
        if !self.is_active() {
            return Admit::Accept;
        }
        let oldest_wait = queue.front().map_or(0, |r| now.saturating_sub(r.arrival));
        if !self.admission.admit(now, queue.len(), oldest_wait) {
            return Admit::Reject("admission");
        }
        let cap = self.plan.queue_capacity as usize;
        if cap > 0 && queue.len() >= cap {
            return match self.plan.queue_policy {
                QueuePolicy::DropOldest => Admit::EvictOldest,
                _ => Admit::Reject("queue-full"),
            };
        }
        Admit::Accept
    }

    /// Register an admitted attempt: track it as open and arm its
    /// client deadline.
    pub fn on_admitted(&mut self, now: Nanos, req: &Request) {
        if self.plan.client_timeout_ns == 0 {
            return;
        }
        self.open.insert(req.id);
        self.deadlines.push_back(Deadline {
            at: now + self.plan.client_timeout_ns,
            id: req.id,
            template: RetryTemplate::of(req),
        });
    }

    /// Record a shed (fast-fail): the client learns immediately and may
    /// retry. `reason` is the stable tag (`queue-full`, `admission`,
    /// `evicted`).
    pub fn on_shed(
        &mut self,
        now: Nanos,
        req: &Request,
        reason: &'static str,
        rec: &Recorder,
        tracer: &mut RequestTracer,
    ) {
        // An evicted request was admitted earlier: close its open slot
        // so its (stale) deadline pops silently.
        self.open.remove(&req.id);
        self.counters.shed += 1;
        rec.add("overload.shed", 1);
        rec.emit(|| {
            Event::Shed(event::Shed {
                t: now,
                id: req.id,
                client: req.client_id,
                attempt: req.attempt,
                reason: reason.to_string(),
            })
        });
        tracer.on_shed(now, req.id, reason);
        let template = RetryTemplate::of(req);
        self.maybe_retry(now, &template, rec, tracer);
    }

    /// Classify a completion: `true` if the work was wasted (client
    /// already abandoned).
    pub fn on_completion(&mut self, id: u64, service_ns: Nanos) -> bool {
        if self.abandoned.remove(&id) {
            self.counters.wasted += 1;
            self.counters.wasted_service_ns += service_ns;
            true
        } else {
            self.open.remove(&id);
            self.counters.good += 1;
            false
        }
    }

    /// Pop the next retry due at or before `now`, materialized as a
    /// fresh [`Request`] arriving now under a new server id.
    pub fn pop_due_retry(&mut self, now: Nanos) -> Option<Request> {
        if self.retries.peek().is_none_or(|Reverse(e)| e.at > now) {
            return None;
        }
        let Reverse(e) = self.retries.pop().expect("peeked");
        Some(Request {
            id: e.id,
            client_id: e.template.client,
            attempt: e.template.attempt,
            arrival: now,
            first_arrival: e.template.first_arrival,
            work_ref_ns: e.template.work_ref_ns,
            freq_sensitivity: e.template.freq_sensitivity,
            sla: e.template.sla,
            features: e.template.features,
        })
    }

    /// Draw the retry decision for a failed attempt and, on success,
    /// schedule the resubmission after exponential backoff + jitter.
    /// The no-retry exits are the chain-finality points: the client
    /// walks away for good, and the tracer finalizes the chain as
    /// failed.
    fn maybe_retry(
        &mut self,
        now: Nanos,
        template: &RetryTemplate,
        rec: &Recorder,
        tracer: &mut RequestTracer,
    ) {
        if self.plan.retry_prob <= 0.0 || template.attempt + 1 >= self.plan.max_attempts {
            tracer.on_give_up(now, template.client, rec);
            return;
        }
        let u: f64 = self.rng.random();
        if u >= self.plan.retry_prob {
            tracer.on_give_up(now, template.client, rec);
            return;
        }
        // attempt k (0-based) failed → backoff · 2^k, shift-capped.
        let exp = template.attempt.min(20);
        let backoff = self.plan.retry_backoff_ns.saturating_mul(1 << exp);
        let jitter = if self.plan.retry_jitter_ns > 0 {
            self.rng.random_range(0..self.plan.retry_jitter_ns + 1)
        } else {
            0
        };
        let delay = backoff + jitter;
        let id = self.alloc_synth_id();
        self.retry_seq += 1;
        self.counters.retries += 1;
        rec.add("overload.retries", 1);
        rec.emit(|| {
            Event::Retry(event::Retry {
                t: now,
                id,
                client: template.client,
                attempt: template.attempt + 1,
                delay_ns: delay,
            })
        });
        self.retries.push(Reverse(RetryEntry {
            at: now + delay,
            seq: self.retry_seq,
            id,
            template: RetryTemplate {
                attempt: template.attempt + 1,
                features: template.features.clone(),
                ..template.clone()
            },
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::MILLISECOND;

    fn req(id: u64, arrival: Nanos) -> Request {
        Request {
            id,
            client_id: id,
            attempt: 0,
            arrival,
            first_arrival: arrival,
            work_ref_ns: MILLISECOND,
            freq_sensitivity: 1.0,
            sla: 10 * MILLISECOND,
            features: vec![],
        }
    }

    #[test]
    fn inactive_plan_is_transparent() {
        let plan = OverloadPlan::none();
        assert!(!plan.is_active());
        plan.validate().unwrap();
        let mut st = OverloadState::new(plan, 4);
        let queue = VecDeque::new();
        assert_eq!(st.admit(0, &queue), Admit::Accept);
        assert_eq!(st.next_event_time(), None);
        assert!(!st.retries_pending());
        assert_eq!(st.burst_clones(0), 0);
        st.on_admitted(0, &req(0, 0));
        assert!(!st.on_completion(0, 100));
        assert_eq!(st.counters.good, 1);
        assert_eq!(st.counters.wasted, 0);
    }

    #[test]
    fn validate_rejects_bad_plans() {
        let mut p = OverloadPlan::none();
        p.retry_prob = 1.5;
        assert!(p.validate().is_err());
        let mut p = OverloadPlan::none();
        p.max_attempts = 0;
        assert!(p.validate().is_err());
        let mut p = OverloadPlan::none();
        p.retry_prob = 0.5;
        p.max_attempts = 3;
        assert!(p.validate().is_err(), "retries without backoff");
        let mut p = OverloadPlan::none();
        p.admission = AdmissionMode::Static;
        assert!(p.validate().is_err());
        let mut p = OverloadPlan::none();
        p.admission = AdmissionMode::CoDel;
        assert!(p.validate().is_err());
    }

    #[test]
    fn bounded_queue_sheds_per_policy() {
        let plan = OverloadPlan {
            queue_capacity: 2,
            ..OverloadPlan::none()
        };
        let mut st = OverloadState::new(plan, 1);
        let mut queue = VecDeque::new();
        queue.push_back(req(0, 0));
        queue.push_back(req(1, 0));
        assert_eq!(st.admit(0, &queue), Admit::Reject("queue-full"));

        let mut st = OverloadState::new(
            OverloadPlan {
                queue_capacity: 2,
                queue_policy: QueuePolicy::DropOldest,
                ..OverloadPlan::none()
            },
            1,
        );
        assert_eq!(st.admit(0, &queue), Admit::EvictOldest);
        queue.pop_front();
        assert_eq!(st.admit(0, &queue), Admit::Accept);
    }

    #[test]
    fn deadline_expiry_marks_wasted_work() {
        let plan = OverloadPlan {
            client_timeout_ns: 5 * MILLISECOND,
            ..OverloadPlan::none()
        };
        let mut st = OverloadState::new(plan, 1);
        let rec = Recorder::ring(64);
        st.on_admitted(0, &req(7, 0));
        assert_eq!(st.next_event_time(), Some(5 * MILLISECOND));
        st.expire(5 * MILLISECOND, &rec, &mut RequestTracer::disabled());
        assert_eq!(st.counters.abandoned, 1);
        // Completion after abandonment is wasted; its service time is
        // charged to the wasted bucket.
        assert!(st.on_completion(7, 3 * MILLISECOND));
        assert_eq!(st.counters.wasted, 1);
        assert_eq!(st.counters.wasted_service_ns, 3 * MILLISECOND);
        assert_eq!(st.counters.good, 0);
        let kinds: Vec<&str> = rec.drain_events().iter().map(|e| e.kind()).collect();
        assert_eq!(kinds, vec!["Abandoned"]);
    }

    #[test]
    fn completion_before_deadline_is_goodput_and_deadline_pops_silently() {
        let plan = OverloadPlan {
            client_timeout_ns: 5 * MILLISECOND,
            ..OverloadPlan::none()
        };
        let mut st = OverloadState::new(plan, 1);
        let rec = Recorder::ring(64);
        st.on_admitted(0, &req(7, 0));
        assert!(!st.on_completion(7, MILLISECOND));
        st.expire(5 * MILLISECOND, &rec, &mut RequestTracer::disabled());
        assert_eq!(st.counters.abandoned, 0);
        assert_eq!(st.counters.good, 1);
        assert!(rec.drain_events().is_empty());
    }

    #[test]
    fn retries_are_deterministic_and_capped() {
        let plan = OverloadPlan {
            client_timeout_ns: MILLISECOND,
            retry_prob: 1.0,
            max_attempts: 3,
            retry_backoff_ns: 100_000,
            retry_jitter_ns: 50_000,
            ..OverloadPlan::none()
        };
        let run = || {
            let mut st = OverloadState::new(plan, 1);
            let rec = Recorder::ring(256);
            st.on_admitted(0, &req(0, 0));
            st.expire(MILLISECOND, &rec, &mut RequestTracer::disabled()); // attempt 0 abandoned → retry 1
            let r1 = st.pop_due_retry(10 * MILLISECOND).expect("retry scheduled");
            assert_eq!(r1.attempt, 1);
            assert_eq!(r1.client_id, 0);
            assert_eq!(r1.first_arrival, 0);
            assert!(r1.id >= SYNTH_ID_BASE);
            st.on_admitted(r1.arrival, &r1);
            st.expire(
                r1.arrival + MILLISECOND,
                &rec,
                &mut RequestTracer::disabled(),
            ); // attempt 1 → retry 2
            let r2 = st.pop_due_retry(30 * MILLISECOND).expect("second retry");
            assert_eq!(r2.attempt, 2);
            st.on_admitted(r2.arrival, &r2);
            st.expire(
                r2.arrival + MILLISECOND,
                &rec,
                &mut RequestTracer::disabled(),
            ); // attempt cap reached
            assert!(st.pop_due_retry(100 * MILLISECOND).is_none());
            (st.counters, rec.drain_events())
        };
        let (ca, ea) = run();
        let (cb, eb) = run();
        assert_eq!(ca, cb);
        assert_eq!(ea, eb);
        assert_eq!(ca.retries, 2);
        assert_eq!(ca.abandoned, 3);
    }

    #[test]
    fn codel_rejects_only_after_sustained_sojourn() {
        let mut c = CoDelAdmission::new(MILLISECOND, 2 * MILLISECOND);
        // Below target: always admit.
        assert!(c.admit(0, 5, 500_000));
        // Above target but interval not yet elapsed.
        assert!(c.admit(MILLISECOND, 5, 2 * MILLISECOND));
        assert!(c.admit(2 * MILLISECOND, 5, 2 * MILLISECOND));
        // Interval elapsed with sojourn still high → reject.
        assert!(!c.admit(3 * MILLISECOND, 5, 2 * MILLISECOND));
        // Sojourn recovers → admit again and reset.
        assert!(c.admit(4 * MILLISECOND, 1, 100_000));
        assert!(c.admit(5 * MILLISECOND, 5, 2 * MILLISECOND));
    }

    #[test]
    fn drl_admission_follows_commanded_threshold() {
        let mut d = DrlAdmission::new(10);
        assert!(d.admit(0, 9, 0));
        assert!(!d.admit(0, 10, 0));
        d.set_threshold(0.5);
        assert!(d.admit(0, 4, 0));
        assert!(!d.admit(0, 5, 0));
        d.set_threshold(0.0);
        // Floor of one slot so the server never fully starves.
        assert!(d.admit(0, 0, 0));
        assert!(!d.admit(0, 1, 0));
    }

    #[test]
    fn burst_window_multiplies_arrivals() {
        let plan = OverloadPlan {
            burst_start_ns: 1000,
            burst_duration_ns: 500,
            burst_factor: 2,
            ..OverloadPlan::none()
        };
        let st = OverloadState::new(plan, 1);
        assert_eq!(st.burst_clones(999), 0);
        assert_eq!(st.burst_clones(1000), 2);
        assert_eq!(st.burst_clones(1499), 2);
        assert_eq!(st.burst_clones(1500), 0);
    }
}
