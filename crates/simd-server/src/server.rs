//! The event-driven simulation engine.
//!
//! Models the latency-critical serving loop of §4.1: requests arrive into a
//! single FIFO queue, each of `n` cores processes one request at a time
//! without preemption, and a [`Governor`] commands per-core frequencies.
//!
//! Between events every core runs at a constant frequency and the busy-core
//! count is fixed, so request progress and completion times are computed
//! *analytically* — no fixed time-step error, and a 360-second workload at
//! thousands of RPS simulates in well under a second. Events are:
//!
//! 1. request completion (a core drains its remaining intrinsic work),
//! 2. request arrival,
//! 3. governor control tick (the paper's `ShortTime`),
//! 4. trace sampling points.
//!
//! Within one timestamp events are processed in the deterministic order
//! completions → client abandonments → arrivals (admission, bursts,
//! retries) → dispatch → tick → samples, which makes every run
//! bit-replayable.

use crate::clock::Nanos;
use crate::contention::ContentionModel;
use crate::cstates::CStatePlan;
use crate::dvfs::{DvfsController, FreqPlan, TransitionOutcome};
use crate::faults::{FaultPlan, FaultState, SensorReading};
use crate::governor::{CoreView, FreqCommands, Governor, RunningView, ServerView};
use crate::metrics::{LatencyStats, MetricsCollector, RequestRecord, TraceConfig, Traces};
use crate::overload::{Admit, OverloadPlan, OverloadState};
use crate::power::{EnergyMeter, PowerModel};
use crate::request::Request;
use deeppower_telemetry::{event, Event, Histogram, Profiler, Recorder, RequestTracer, TracePlan};
use std::collections::{BTreeMap, VecDeque};

/// Work remaining below this many reference-nanoseconds counts as done
/// (guards floating-point residue after an exact-advance step).
const WORK_EPS: f64 = 1e-6;

/// Static server parameters.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads = physical cores (paper: 20, or 8 for Masstree).
    pub n_cores: usize,
    pub freq_plan: FreqPlan,
    pub power: PowerModel,
    pub contention: ContentionModel,
    /// Frequency every core starts at.
    pub initial_mhz: u32,
    /// Idle states governors may use (empty = the paper's main setting,
    /// where the `userspace` governor keeps cores clocked).
    pub cstates: CStatePlan,
    /// Per-core frequency ceilings for big.LITTLE-style mixes: core `i`
    /// never runs above `core_max_mhz[i]` (turbo included). Empty — the
    /// paper's homogeneous socket — leaves every core uncapped.
    pub core_max_mhz: Vec<u32>,
}

impl ServerConfig {
    /// The paper's testbed socket: 20 cores, Xeon plan, default power and
    /// contention models, starting at max nominal frequency.
    pub fn paper_default(n_cores: usize) -> Self {
        let freq_plan = FreqPlan::xeon_gold_5218r();
        let initial_mhz = freq_plan.max_mhz();
        Self {
            n_cores,
            freq_plan,
            power: PowerModel::xeon_gold_5218r(),
            contention: ContentionModel::default(),
            initial_mhz,
            cstates: CStatePlan::none(),
            core_max_mhz: Vec::new(),
        }
    }

    /// The ceiling core `i` may be commanded to, or `None` when uncapped.
    pub fn core_cap(&self, core: usize) -> Option<u32> {
        self.core_max_mhz.get(core).copied()
    }

    /// Paper testbed plus Xeon-like C1/C6 idle states — the substrate for
    /// the sleep-states extension (the paper's future work, §6).
    pub fn paper_with_cstates(n_cores: usize) -> Self {
        Self {
            cstates: CStatePlan::xeon(),
            ..Self::paper_default(n_cores)
        }
    }
}

/// Per-run options.
#[derive(Clone, Copy, Debug)]
pub struct RunOptions {
    /// Governor control period (`ShortTime`; 1 ms in the paper).
    pub tick_ns: Nanos,
    /// Trace collection (off by default — figure benches enable it).
    pub trace: TraceConfig,
    /// Deterministic fault injection (off by default; see
    /// [`crate::faults`]).
    pub faults: FaultPlan,
    /// Closed-loop client / admission model (off by default — the
    /// classic open-loop, unbounded-queue engine; see
    /// [`crate::overload`]).
    pub overload: OverloadPlan,
    /// Tumbling-window span for [`event::WindowRollup`] emission when a
    /// recorder is enabled (0 disables rollups). Windows close at
    /// governor-tick boundaries, so with the default one-second window
    /// and millisecond ticks every node on the same tick grid produces
    /// aligned window indices — the property the fleet health monitor
    /// merges on.
    pub window_ns: Nanos,
    /// Deterministic request-lifecycle tracing (off by default; see
    /// [`deeppower_telemetry::trace`]). Active only with an enabled
    /// recorder, and never perturbs results.
    pub rtrace: TracePlan,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            tick_ns: crate::clock::MILLISECOND,
            trace: TraceConfig::default(),
            faults: FaultPlan::none(),
            overload: OverloadPlan::none(),
            window_ns: crate::clock::SECOND,
            rtrace: TracePlan::none(),
        }
    }
}

/// Everything a run produces.
#[derive(Clone, Debug)]
pub struct SimResult {
    pub stats: LatencyStats,
    pub records: Vec<RequestRecord>,
    /// Total socket energy over the run, joules.
    pub energy_j: f64,
    /// Energy ÷ wall time.
    pub avg_power_w: f64,
    /// Simulated wall time from t=0 to the last completion.
    pub duration_ns: Nanos,
    pub traces: Traces,
    pub freq_transitions: u64,
    /// Discrete faults injected by the run's [`FaultPlan`] (0 when the
    /// plan is inactive).
    pub faults_injected: u64,
    /// Completions whose client was still waiting. Without an overload
    /// plan every completion is goodput, so `goodput == stats.count`.
    pub goodput: u64,
    /// Completions after the client abandoned (wasted work).
    pub wasted: u64,
    /// Requests shed at admission (queue full / admission controller).
    pub shed: u64,
    /// Attempts abandoned by their client before completion.
    pub abandoned: u64,
    /// Retries the closed-loop clients injected.
    pub retries: u64,
    /// Server busy-time burned on wasted completions, seconds.
    pub wasted_s: f64,
    /// Deepest the queue ever got.
    pub peak_queue_depth: u64,
}

/// Tumbling-window accumulator behind the per-window
/// [`event::WindowRollup`] stream the fleet health monitor consumes.
/// Active only when the session's recorder is enabled *and*
/// `RunOptions::window_ns > 0`; when inactive every hook is one branch,
/// preserving the telemetry-never-perturbs-results contract (windows
/// close at boundaries the engine visits anyway).
struct WindowTelemetry {
    enabled: bool,
    window_ns: Nanos,
    /// Open-window start and close boundary.
    start: Nanos,
    next: Nanos,
    /// Sequential window ordinal (aligned across same-grid nodes).
    index: u64,
    lat: Histogram,
    timeouts: u64,
    /// Per-window overload counters (goodput / wasted completions,
    /// requests shed at admission).
    good: u64,
    wasted: u64,
    shed: u64,
    /// True meter reading at window start (power = delta / span).
    energy_start_uj: u64,
    /// Tick-sampled mean commanded core frequency.
    freq_sum: f64,
    freq_samples: u64,
}

impl WindowTelemetry {
    fn new(enabled: bool, window_ns: Nanos) -> Self {
        Self {
            enabled: enabled && window_ns > 0,
            window_ns,
            start: 0,
            next: window_ns,
            index: 0,
            lat: Histogram::new(),
            timeouts: 0,
            good: 0,
            wasted: 0,
            shed: 0,
            energy_start_uj: 0,
            freq_sum: 0.0,
            freq_samples: 0,
        }
    }

    #[inline]
    fn on_completion(&mut self, latency_ns: Nanos, timed_out: bool, wasted: bool) {
        if self.enabled {
            self.lat.record(latency_ns);
            if timed_out {
                self.timeouts += 1;
            }
            if wasted {
                self.wasted += 1;
            } else {
                self.good += 1;
            }
        }
    }

    #[inline]
    fn on_shed(&mut self) {
        if self.enabled {
            self.shed += 1;
        }
    }

    /// Sample the commanded frequencies at a governor tick.
    fn on_tick(&mut self, cores: &[CoreState]) {
        let sum: u64 = cores.iter().map(|c| c.freq_mhz as u64).sum();
        self.freq_sum += sum as f64 / cores.len() as f64;
        self.freq_samples += 1;
    }

    /// Close the open window at `now`, emit its rollup, and open the
    /// next one. No-op when nothing has elapsed (a roll at the exact
    /// boundary already happened).
    fn roll(
        &mut self,
        now: Nanos,
        queue_len: u64,
        energy_uj: u64,
        rec: &Recorder,
        exemplars: Vec<u64>,
    ) {
        let span = now - self.start;
        if span == 0 {
            return;
        }
        let delta_uj = energy_uj - self.energy_start_uj;
        // µJ over ns → watts.
        let power_w = delta_uj as f64 * 1000.0 / span as f64;
        let avg_freq_mhz = if self.freq_samples > 0 {
            self.freq_sum / self.freq_samples as f64
        } else {
            0.0
        };
        let mut rollup = event::WindowRollup::from_histogram(
            now,
            self.index,
            span,
            &self.lat,
            self.timeouts,
            power_w,
            avg_freq_mhz,
            queue_len,
        );
        rollup.good = self.good;
        rollup.wasted = self.wasted;
        rollup.shed = self.shed;
        rollup.exemplars = exemplars;
        rec.emit(|| Event::WindowRollup(rollup));
        self.index += 1;
        self.start = now;
        self.next = now + self.window_ns;
        self.lat.reset();
        self.timeouts = 0;
        self.good = 0;
        self.wasted = 0;
        self.shed = 0;
        self.energy_start_uj = energy_uj;
        self.freq_sum = 0.0;
        self.freq_samples = 0;
    }
}

struct Running {
    req: Request,
    started: Nanos,
    remaining_ref_ns: f64,
    /// Real-time wake latency still to pay before work retires (set when
    /// a request is dispatched to a sleeping core; frequency- and
    /// contention-independent).
    wake_remaining_ns: f64,
}

struct CoreState {
    freq_mhz: u32,
    running: Option<Running>,
    /// Current C-state index while idle (`None` = C0).
    sleep: Option<usize>,
}

/// The simulated server.
pub struct Server {
    cfg: ServerConfig,
}

impl Server {
    pub fn new(cfg: ServerConfig) -> Self {
        assert!(cfg.n_cores > 0, "server needs at least one core");
        cfg.freq_plan.validate().expect("invalid frequency plan");
        cfg.cstates.validate().expect("invalid C-state plan");
        assert!(
            cfg.freq_plan.is_valid(cfg.initial_mhz),
            "initial frequency must be a legal level"
        );
        Self { cfg }
    }

    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Simulate `arrivals` (must be sorted by arrival time) to completion
    /// under `governor`. Returns all metrics, energy and traces.
    pub fn run(
        &self,
        arrivals: &[Request],
        governor: &mut dyn Governor,
        opts: RunOptions,
    ) -> SimResult {
        self.run_recorded(arrivals, governor, opts, &Recorder::disabled())
    }

    /// [`run`](Self::run) with a telemetry [`Recorder`]. An enabled
    /// recorder receives per-core [`event::CoreResidency`] at run end,
    /// once-per-simulated-second [`event::LatencySnapshot`]s (read at
    /// governor-tick boundaries from the incremental latency recorder),
    /// and, gated on the [`TraceConfig`] knobs that bound their volume:
    /// [`event::FreqTransition`] on every applied frequency change (when
    /// `freq_sample_ns > 0`) and
    /// [`event::RequestDispatch`]/[`event::RequestComplete`] marks (when
    /// `request_marks` is set).
    ///
    /// Telemetry never adds event times to the simulation (all emission
    /// happens at boundaries the engine visits anyway), so results are
    /// bit-identical whether the recorder is enabled or not.
    pub fn run_recorded(
        &self,
        arrivals: &[Request],
        governor: &mut dyn Governor,
        opts: RunOptions,
        rec: &Recorder,
    ) -> SimResult {
        self.session(arrivals, governor, opts, rec).finish()
    }

    /// [`run_recorded`](Self::run_recorded) with a span [`Profiler`]
    /// attached: engine phases (completions / arrivals+dispatch /
    /// governor tick / trace samples / advance) open wall-clock spans.
    /// Profiling reads the clock but writes nothing into the
    /// simulation, so results stay bit-identical to an unprofiled run.
    pub fn run_profiled(
        &self,
        arrivals: &[Request],
        governor: &mut dyn Governor,
        opts: RunOptions,
        rec: &Recorder,
        prof: &Profiler,
    ) -> SimResult {
        self.session(arrivals, governor, opts, rec)
            .with_profiler(prof)
            .finish()
    }

    /// Start a resumable simulation [`Session`] over `arrivals`.
    ///
    /// The session processes exactly the same event sequence as
    /// [`run_recorded`](Self::run_recorded) — that method is literally
    /// `session(..).finish()` — but can be paused at any simulated time
    /// via [`Session::advance_until`], letting a driver inspect the
    /// server state between events and steer the governor from outside
    /// (the fleet layer advances N node sessions in lockstep epochs and
    /// batches their policy inference).
    pub fn session<'a>(
        &'a self,
        arrivals: &'a [Request],
        governor: &'a mut dyn Governor,
        opts: RunOptions,
        rec: &'a Recorder,
    ) -> Session<'a> {
        assert!(opts.tick_ns > 0, "tick period must be positive");
        debug_assert!(
            arrivals.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "arrivals must be sorted by time"
        );
        let n = self.cfg.n_cores;
        Session {
            cores: (0..n)
                .map(|i| CoreState {
                    freq_mhz: match self.cfg.core_cap(i) {
                        Some(cap) => self.cfg.initial_mhz.min(cap),
                        None => self.cfg.initial_mhz,
                    },
                    running: None,
                    sleep: None,
                })
                .collect(),
            queue: VecDeque::new(),
            metrics: MetricsCollector::new(),
            energy: EnergyMeter::new(),
            traces: Traces::default(),
            cmds: FreqCommands::new(n, &self.cfg.freq_plan),
            freq_telem: FreqTelemetry::new(n, rec.enabled(), opts.trace.freq_sample_ns > 0),
            faults: FaultState::new(opts.faults, n),
            overload: OverloadState::new(opts.overload, n),
            dvfs: DvfsController::new(n),
            now: 0,
            arr_idx: 0,
            next_tick: 0,
            // Latency snapshots piggyback on governor ticks (existing
            // event times), at most one per simulated second.
            next_snapshot: crate::clock::SECOND,
            window: WindowTelemetry::new(rec.enabled(), opts.window_ns),
            rtrace: RequestTracer::new(opts.rtrace, rec.enabled()),
            next_freq_sample: if opts.trace.freq_sample_ns > 0 {
                0
            } else {
                Nanos::MAX
            },
            next_power_sample: if opts.trace.power_sample_ns > 0 {
                0
            } else {
                Nanos::MAX
            },
            primed: false,
            finished: false,
            cfg: &self.cfg,
            arrivals,
            governor,
            opts,
            rec,
            prof: Profiler::disabled(),
        }
    }
}

/// A paused-or-running simulation: the full state of one engine event
/// loop, advanceable in bounded time slices. Created by
/// [`Server::session`]; consumed by [`Session::finish`].
pub struct Session<'a> {
    cfg: &'a ServerConfig,
    arrivals: &'a [Request],
    governor: &'a mut dyn Governor,
    opts: RunOptions,
    rec: &'a Recorder,
    prof: Profiler,
    cores: Vec<CoreState>,
    /// The server queue. Unbounded by default — which silently encodes
    /// the paper's *open-loop* assumption: offered load never reacts to
    /// server state, every arrival is eventually served, and the only
    /// visible overload symptom is latency (see
    /// `MetricsCollector::peak_queue_depth` for the high-water mark).
    /// An active [`OverloadPlan`] replaces that assumption with a
    /// bounded queue, shedding and closed-loop clients.
    queue: VecDeque<Request>,
    metrics: MetricsCollector,
    energy: EnergyMeter,
    traces: Traces,
    cmds: FreqCommands,
    freq_telem: FreqTelemetry,
    faults: FaultState,
    overload: OverloadState,
    dvfs: DvfsController,
    now: Nanos,
    arr_idx: usize,
    next_tick: Nanos,
    next_snapshot: Nanos,
    window: WindowTelemetry,
    /// Request-lifecycle tracer (inactive plan = one branch per hook).
    rtrace: RequestTracer,
    next_freq_sample: Nanos,
    next_power_sample: Nanos,
    /// Whether the events at `now` (initially t=0) have been processed.
    primed: bool,
    finished: bool,
}

impl Session<'_> {
    /// Attach a span [`Profiler`] (a cheap handle clone; disabled by
    /// default). Engine phases then open `engine.*` spans; with the
    /// default disabled profiler every span call is one branch.
    pub fn with_profiler(mut self, prof: &Profiler) -> Self {
        self.prof = prof.clone();
        self
    }

    /// Simulated time of the last processed event.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Whether the run has terminated (all arrivals served, all cores
    /// idle; the governor's `on_run_end` has fired).
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Process every event at simulated times strictly below `t_stop`,
    /// then pause. Returns `true` when the run terminated instead of
    /// pausing. Calling again with a larger bound resumes seamlessly:
    /// the concatenation of any sequence of `advance_until` calls
    /// processes the identical event sequence as one uninterrupted run.
    pub fn advance_until(&mut self, t_stop: Nanos) -> bool {
        if self.finished {
            return true;
        }
        // One umbrella span over the whole event loop, so the profile
        // also accounts for the scheduling work *between* the phase
        // spans (event selection, loop control) — this is what lets a
        // profiled run's phase table cover ~all of the engine's wall
        // time rather than just the phase bodies.
        let _sp = self.prof.span("engine.run");
        loop {
            if !self.primed {
                self.primed = true;
                if self.process_now() {
                    return true;
                }
            }
            let t_next = self.next_event_time();
            if t_next >= t_stop {
                return false;
            }
            self.advance_to(t_next);
            if self.process_now() {
                return true;
            }
        }
    }

    /// Run to termination (if not already there) and assemble the
    /// [`SimResult`].
    pub fn finish(mut self) -> SimResult {
        // `next_event_time` is always finite (the governor tick never
        // stops), so an unbounded advance runs to termination.
        self.advance_until(Nanos::MAX);
        // Flush the trailing (possibly partial) monitor window before
        // the residency events close out the stream.
        if self.window.enabled {
            let queue_len = self.queue.len() as u64;
            let energy_uj = self.energy.read_energy_uj();
            // Tail exemplars of the trailing window emit first, then
            // their ids ride on its rollup.
            let exemplars = self.rtrace.roll(self.rec);
            self.window
                .roll(self.now, queue_len, energy_uj, self.rec, exemplars);
        } else if self.rtrace.enabled() {
            // No rollup stream to ride on; still flush tail exemplars.
            self.rtrace.roll(self.rec);
        }
        self.freq_telem.finish(self.now, &self.cores, self.rec);
        self.rec
            .set("queue.peak_depth", self.metrics.peak_queue_depth as f64);
        let oc = self.overload.counters;
        SimResult {
            stats: self.metrics.stats(),
            energy_j: self.energy.joules(),
            avg_power_w: self.energy.average_power_w(),
            duration_ns: self.now,
            records: std::mem::take(&mut self.metrics.records),
            traces: self.traces,
            freq_transitions: self.metrics.freq_transitions,
            faults_injected: self.faults.injected,
            goodput: oc.good,
            wasted: oc.wasted,
            shed: oc.shed,
            abandoned: oc.abandoned,
            retries: oc.retries,
            wasted_s: oc.wasted_service_ns as f64 / 1e9,
            peak_queue_depth: self.metrics.peak_queue_depth,
        }
    }

    /// Inspect the paused server through the same [`ServerView`] the
    /// governor sees (unperturbed sensors). The driver-side window into
    /// a node between epochs.
    pub fn with_view<T>(&self, f: impl FnOnce(&ServerView<'_>) -> T) -> T {
        let views = build_core_views(&self.cores, self.now);
        let view = make_view(
            self.now,
            &self.queue,
            &views,
            &self.metrics,
            &self.energy,
            &self.overload,
        );
        f(&view)
    }

    /// Process phases 0–6 at `self.now`; returns `true` on termination.
    fn process_now(&mut self) -> bool {
        let now = self.now;

        // ---- 0. Fault-plan boundaries at `now` ----
        // Stall windows open/close, and deferred (spiked) DVFS
        // transitions that came due take effect. With an inactive
        // plan both are single-branch no-ops.
        let sp = self.prof.span("engine.completions");
        self.faults.poll_stalls(now, self.rec);
        for (i, core) in self.cores.iter_mut().enumerate() {
            if let Some(target) = self.dvfs.poll(i, now) {
                if target != core.freq_mhz {
                    self.freq_telem
                        .on_transition(now, i, core.freq_mhz, target, self.rec);
                    core.freq_mhz = target;
                    self.metrics.freq_transitions += 1;
                }
            }
        }

        // ---- 1. Completions at `now` ----
        for (core_id, core) in self.cores.iter_mut().enumerate() {
            let done = matches!(&core.running,
                Some(r) if r.remaining_ref_ns <= WORK_EPS && r.wake_remaining_ns <= WORK_EPS);
            if done {
                let running = core.running.take().unwrap();
                // Client-perceived latency: measured from the *first*
                // submission for retried requests (equals the attempt
                // arrival for first attempts, i.e. every request of an
                // open-loop run).
                let latency = now - running.req.client_arrival();
                // Completions run before abandonments at the same
                // timestamp: finishing exactly at the deadline is good.
                let wasted = self
                    .overload
                    .on_completion(running.req.id, now - running.started);
                let record = RequestRecord {
                    id: running.req.id,
                    arrival: running.req.arrival,
                    started: running.started,
                    completed: now,
                    latency,
                    timed_out: latency > running.req.sla,
                };
                self.metrics.on_completion(record);
                self.window.on_completion(latency, record.timed_out, wasted);
                self.rtrace
                    .on_complete(now, running.req.id, wasted, self.rec);
                if self.opts.trace.request_marks {
                    self.traces
                        .marks
                        .push((now, core_id, running.req.id, false));
                    self.rec.emit(|| {
                        Event::RequestComplete(event::RequestComplete {
                            t: now,
                            core: core_id as u64,
                            id: running.req.id,
                            latency_ns: latency,
                            timed_out: record.timed_out,
                        })
                    });
                }
                self.governor
                    .on_request_complete(now, core_id, &running.req, latency);
            }
        }
        drop(sp);

        // ---- 1.5 Client abandonments at `now` ----
        // Deadlines are engine wakeups (see `next_event_time`), so
        // good/wasted classification is exact, not tick-sampled. Runs
        // after completions: a request finishing at its deadline counts
        // as goodput.
        self.overload.expire(now, self.rec, &mut self.rtrace);

        // ---- 2. Arrivals at `now` ----
        // Each workload arrival is offered through admission control,
        // immediately followed by its flash-crowd clones (if a burst
        // window is open); due client retries are offered last, in
        // (due-time, schedule-order) order.
        let sp = self.prof.span("engine.arrivals");
        while self.arr_idx < self.arrivals.len() && self.arrivals[self.arr_idx].arrival <= now {
            let req = self.arrivals[self.arr_idx].clone();
            self.arr_idx += 1;
            let clones = self.overload.burst_clones(req.arrival);
            let template = if clones > 0 { Some(req.clone()) } else { None };
            self.offer(now, req);
            if let Some(t) = template {
                for _ in 0..clones {
                    // A burst clone is a *new* client issuing the same
                    // request shape, not a retry of the original.
                    let id = self.overload.alloc_synth_id();
                    let mut clone = t.clone();
                    clone.id = id;
                    clone.client_id = id;
                    clone.attempt = 0;
                    clone.first_arrival = t.arrival;
                    self.offer(now, clone);
                }
            }
        }
        while let Some(retry) = self.overload.pop_due_retry(now) {
            self.offer(now, retry);
        }

        // ---- 3. Dispatch queued requests to idle cores ----
        // Awake idle cores are preferred; a sleeping core is woken
        // only when no awake core is free, and the request then pays
        // the C-state's wake latency. Stalled cores accept nothing.
        let newest_first = self.opts.overload.queue_policy.serves_newest_first();
        while !self.queue.is_empty() {
            let faults = &self.faults;
            let idle = |(i, c): &(usize, &CoreState)| c.running.is_none() && !faults.is_stalled(*i);
            let awake = self
                .cores
                .iter()
                .enumerate()
                .find(|e| idle(e) && e.1.sleep.is_none())
                .map(|(i, _)| i);
            let any_idle =
                awake.or_else(|| self.cores.iter().enumerate().find(idle).map(|(i, _)| i));
            let Some(core_id) = any_idle else { break };
            let req = if newest_first {
                self.queue.pop_back().unwrap()
            } else {
                self.queue.pop_front().unwrap()
            };
            {
                let views = build_core_views(&self.cores, now);
                let view = make_view(
                    now,
                    &self.queue,
                    &views,
                    &self.metrics,
                    &self.energy,
                    &self.overload,
                );
                self.governor
                    .on_request_start(&view, core_id, &req, &mut self.cmds);
            }
            apply_commands(
                now,
                &mut self.cores,
                &mut self.cmds,
                self.cfg,
                &mut self.metrics,
                self.rec,
                &mut self.freq_telem,
                &mut self.faults,
                &mut self.dvfs,
            );
            if let Some(frac) = self.cmds.take_admission() {
                self.overload.set_threshold(frac);
            }
            if self.opts.trace.request_marks {
                self.traces.marks.push((now, core_id, req.id, true));
                self.rec.emit(|| {
                    Event::RequestDispatch(event::RequestDispatch {
                        t: now,
                        core: core_id as u64,
                        id: req.id,
                    })
                });
            }
            // Post-command state: the service span records the core
            // frequency and admission threshold actually in effect.
            if self.rtrace.enabled() {
                self.rtrace.on_dispatch(
                    now,
                    req.id,
                    core_id,
                    self.cores[core_id].freq_mhz,
                    self.overload.admit_frac(),
                );
            }
            let wake_ns = self.cores[core_id]
                .sleep
                .take()
                .and_then(|i| self.cfg.cstates.get(i))
                .map(|st| st.wake_ns as f64)
                .unwrap_or(0.0);
            let remaining = req.work_ref_ns as f64;
            self.cores[core_id].running = Some(Running {
                req,
                started: now,
                remaining_ref_ns: remaining,
                wake_remaining_ns: wake_ns,
            });
        }
        drop(sp);

        // ---- 4. Governor tick ----
        if now >= self.next_tick {
            let _sp = self.prof.span("engine.tick");
            {
                // The tick observation goes through the sensor fault
                // model: the governor may see stale counters or a
                // noisy energy reading. Accounting is untouched.
                let reading = self.faults.observe(
                    now,
                    SensorReading {
                        arrived: self.metrics.arrived,
                        completed: self.metrics.completed,
                        timeouts: self.metrics.timeouts,
                        energy_uj: self.energy.read_energy_uj(),
                        shed: self.overload.counters.shed,
                        wasted: self.overload.counters.wasted,
                    },
                    self.rec,
                );
                let views = build_core_views(&self.cores, now);
                let view = make_view_with(now, &self.queue, &views, reading);
                self.governor.on_tick(&view, &mut self.cmds);
            }
            apply_commands(
                now,
                &mut self.cores,
                &mut self.cmds,
                self.cfg,
                &mut self.metrics,
                self.rec,
                &mut self.freq_telem,
                &mut self.faults,
                &mut self.dvfs,
            );
            if let Some(frac) = self.cmds.take_admission() {
                self.overload.set_threshold(frac);
            }
            self.next_tick = now + self.opts.tick_ns;
            if self.rec.enabled() && now >= self.next_snapshot {
                let s = self.metrics.quick_stats();
                self.rec.emit(|| {
                    Event::LatencySnapshot(event::LatencySnapshot {
                        t: now,
                        count: s.count,
                        p50_ns: s.p50_ns,
                        p95_ns: s.p95_ns,
                        p99_ns: s.p99_ns,
                        timeouts: s.timeouts,
                    })
                });
                self.next_snapshot = now + crate::clock::SECOND;
            }
            if self.window.enabled {
                self.window.on_tick(&self.cores);
                if now >= self.window.next {
                    let queue_len = self.queue.len() as u64;
                    let energy_uj = self.energy.read_energy_uj();
                    // Exemplar traces first, then the rollup that links
                    // to them (stream order the monitor relies on).
                    let exemplars = self.rtrace.roll(self.rec);
                    self.window
                        .roll(now, queue_len, energy_uj, self.rec, exemplars);
                }
            }
        }

        // ---- 5. Trace samples ----
        let sp = self.prof.span("engine.metrics");
        if now >= self.next_freq_sample {
            for (i, c) in self.cores.iter().enumerate() {
                self.traces.freq.push((now, i, c.freq_mhz));
            }
            self.next_freq_sample = now + self.opts.trace.freq_sample_ns;
        }
        if now >= self.next_power_sample {
            let p = socket_power(self.cfg, &self.cores);
            let busy = self.cores.iter().filter(|c| c.running.is_some()).count();
            self.traces.power.push((now, p, self.queue.len(), busy));
            self.next_power_sample = now + self.opts.trace.power_sample_ns;
        }
        drop(sp);

        // ---- 6. Termination ----
        let all_idle = self.cores.iter().all(|c| c.running.is_none());
        if self.arr_idx == self.arrivals.len()
            && self.queue.is_empty()
            && all_idle
            && !self.overload.retries_pending()
        {
            // The run-end flush is governor work (DRL governors close
            // their last window and may train here), so it gets its own
            // span — DDPG stage spans must never be roots.
            let _sp = self.prof.span("engine.finish");
            let views = build_core_views(&self.cores, now);
            let view = make_view(
                now,
                &self.queue,
                &views,
                &self.metrics,
                &self.energy,
                &self.overload,
            );
            self.governor.on_run_end(&view);
            self.finished = true;
            return true;
        }
        false
    }

    /// Offer one request (workload arrival, burst clone or retry) to
    /// the server: admission control, then capacity/overflow policy,
    /// then enqueue. Every offered request counts as arrived.
    fn offer(&mut self, now: Nanos, req: Request) {
        self.metrics.on_arrival();
        // Open (or extend) the request's trace chain before the
        // admission decision, so shed spans land on a known attempt.
        self.rtrace.on_offer(
            now,
            req.id,
            req.client_id,
            req.attempt,
            req.client_arrival(),
            req.sla,
        );
        match self.overload.admit(now, &self.queue) {
            Admit::Accept => {}
            Admit::Reject(reason) => {
                self.overload
                    .on_shed(now, &req, reason, self.rec, &mut self.rtrace);
                self.window.on_shed();
                return;
            }
            Admit::EvictOldest => {
                if let Some(old) = self.queue.pop_front() {
                    self.overload
                        .on_shed(now, &old, "evicted", self.rec, &mut self.rtrace);
                    self.window.on_shed();
                }
            }
        }
        self.overload.on_admitted(now, &req);
        self.queue.push_back(req);
        self.metrics.observe_queue_depth(self.queue.len());
    }

    /// Phase 7: earliest pending event time (always finite — the
    /// governor tick never stops).
    fn next_event_time(&self) -> Nanos {
        let plan = &self.cfg.freq_plan;
        let busy = self.cores.iter().filter(|c| c.running.is_some()).count();
        let inflation = self.cfg.contention.inflation(busy, self.cfg.n_cores);
        let mut t_next = self
            .next_tick
            .min(self.next_freq_sample)
            .min(self.next_power_sample);
        if self.arr_idx < self.arrivals.len() {
            t_next = t_next.min(self.arrivals[self.arr_idx].arrival);
        }
        if let Some(t) = self.dvfs.next_ready() {
            t_next = t_next.min(t);
        }
        if let Some(t) = self.faults.next_stall_change() {
            t_next = t_next.min(t);
        }
        // Client deadlines and due retries are engine wakeups: the
        // good/wasted split is exact, never tick-quantized. A stale
        // deadline (already-answered attempt) wakes the engine for a
        // deterministic no-op.
        if let Some(t) = self.overload.next_event_time() {
            t_next = t_next.min(t);
        }
        for (i, c) in self.cores.iter().enumerate() {
            // A stalled core retires no work: its request has no
            // completion time until the stall window closes (which is
            // itself in the event set above).
            if self.faults.is_stalled(i) {
                continue;
            }
            if let Some(r) = &c.running {
                let t = r.wake_remaining_ns
                    + Request::scaled_time(
                        r.remaining_ref_ns,
                        r.req.freq_sensitivity,
                        c.freq_mhz,
                        plan.reference_mhz,
                        inflation,
                    );
                let tc = self.now + (t.ceil().max(1.0)) as Nanos;
                t_next = t_next.min(tc);
            }
        }
        t_next
    }

    /// Phase 8: integrate energy and retire work up to `t_next`, then
    /// move the clock there.
    fn advance_to(&mut self, t_next: Nanos) {
        debug_assert!(t_next > self.now, "event time did not advance");
        let _sp = self.prof.span("engine.advance");
        let dt = t_next - self.now;
        let plan = &self.cfg.freq_plan;
        let busy = self.cores.iter().filter(|c| c.running.is_some()).count();
        let inflation = self.cfg.contention.inflation(busy, self.cfg.n_cores);
        let p = socket_power(self.cfg, &self.cores);
        self.energy.accumulate(p, dt);
        for (i, c) in self.cores.iter_mut().enumerate() {
            if self.faults.is_stalled(i) {
                continue;
            }
            if let Some(r) = &mut c.running {
                // Wake latency drains first, in real time.
                let mut dt_work = dt as f64;
                if r.wake_remaining_ns > 0.0 {
                    let waking = r.wake_remaining_ns.min(dt_work);
                    r.wake_remaining_ns -= waking;
                    dt_work -= waking;
                }
                if dt_work > 0.0 {
                    let retired = Request::retired_work(
                        dt_work,
                        r.req.freq_sensitivity,
                        c.freq_mhz,
                        plan.reference_mhz,
                        inflation,
                    );
                    r.remaining_ref_ns = (r.remaining_ref_ns - retired).max(0.0);
                }
            }
        }
        self.now = t_next;
    }
}

fn build_core_views(cores: &[CoreState], _now: Nanos) -> Vec<CoreView<'_>> {
    cores
        .iter()
        .map(|c| CoreView {
            freq_mhz: c.freq_mhz,
            running: c.running.as_ref().map(|r| RunningView {
                arrival: r.req.arrival,
                started: r.started,
                features: &r.req.features,
                sla: r.req.sla,
            }),
            sleeping: c.sleep,
        })
        .collect()
}

/// Socket power with C-states: a sleeping core draws its state's residual
/// power; an awake idle core its clocked-idle power; a busy core full
/// dynamic power (including while paying wake latency).
fn socket_power(cfg: &ServerConfig, cores: &[CoreState]) -> f64 {
    cfg.power.static_w
        + cores
            .iter()
            .map(|c| match (&c.running, c.sleep) {
                (Some(_), _) => cfg.power.core_power_w(c.freq_mhz, true),
                (None, Some(i)) => cfg.cstates.get(i).map(|s| s.power_w).unwrap_or(0.0),
                (None, None) => cfg.power.core_power_w(c.freq_mhz, false),
            })
            .sum::<f64>()
}

fn make_view<'a>(
    now: Nanos,
    queue: &'a VecDeque<Request>,
    cores: &'a [CoreView<'a>],
    metrics: &MetricsCollector,
    energy: &EnergyMeter,
    overload: &OverloadState,
) -> ServerView<'a> {
    make_view_with(
        now,
        queue,
        cores,
        SensorReading {
            arrived: metrics.arrived,
            completed: metrics.completed,
            timeouts: metrics.timeouts,
            energy_uj: energy.read_energy_uj(),
            shed: overload.counters.shed,
            wasted: overload.counters.wasted,
        },
    )
}

/// Build a view from an explicit (possibly fault-perturbed) sensor
/// reading.
fn make_view_with<'a>(
    now: Nanos,
    queue: &'a VecDeque<Request>,
    cores: &'a [CoreView<'a>],
    reading: SensorReading,
) -> ServerView<'a> {
    ServerView {
        now,
        queue,
        cores,
        total_arrived: reading.arrived,
        total_completed: reading.completed,
        total_timeouts: reading.timeouts,
        total_shed: reading.shed,
        total_wasted: reading.wasted,
        energy_uj: reading.energy_uj,
    }
}

/// Per-core frequency residency and transition telemetry. Inert (no
/// allocation beyond two empty vecs, no per-event work) when built
/// disabled; when enabled it accumulates residency only at transition
/// boundaries, so tracking cost is O(transitions), not O(events).
struct FreqTelemetry {
    enabled: bool,
    /// Per-transition events can reach ticks × cores over a run
    /// (millions for a long DeepPower rollout), so they are emitted only
    /// when the caller opted into frequency tracing
    /// (`TraceConfig::freq_sample_ns > 0`). Residency aggregates are
    /// bounded by cores × levels and always accompany an enabled
    /// recorder.
    emit_transitions: bool,
    /// When each core entered its current frequency.
    since: Vec<Nanos>,
    /// Core → frequency level → nanoseconds spent there.
    residency: Vec<BTreeMap<u32, Nanos>>,
}

impl FreqTelemetry {
    fn new(n_cores: usize, enabled: bool, emit_transitions: bool) -> Self {
        Self {
            enabled,
            emit_transitions: enabled && emit_transitions,
            since: if enabled {
                vec![0; n_cores]
            } else {
                Vec::new()
            },
            residency: if enabled {
                vec![BTreeMap::new(); n_cores]
            } else {
                Vec::new()
            },
        }
    }

    #[inline]
    fn on_transition(&mut self, now: Nanos, core: usize, from: u32, to: u32, rec: &Recorder) {
        if !self.enabled {
            return;
        }
        *self.residency[core].entry(from).or_insert(0) += now - self.since[core];
        self.since[core] = now;
        if self.emit_transitions {
            rec.emit(|| {
                Event::FreqTransition(event::FreqTransition {
                    t: now,
                    core: core as u64,
                    from_mhz: from,
                    to_mhz: to,
                })
            });
        }
    }

    /// Close every core's final residency interval and emit one
    /// [`event::CoreResidency`] per visited `(core, level)` pair with
    /// nonzero residency, cores then levels ascending.
    fn finish(&mut self, now: Nanos, cores: &[CoreState], rec: &Recorder) {
        if !self.enabled {
            return;
        }
        for (i, core) in cores.iter().enumerate() {
            *self.residency[i].entry(core.freq_mhz).or_insert(0) += now - self.since[i];
        }
        for (i, levels) in self.residency.iter().enumerate() {
            for (&mhz, &ns) in levels {
                if ns > 0 {
                    rec.emit(|| {
                        Event::CoreResidency(event::CoreResidency {
                            core: i as u64,
                            mhz,
                            ns,
                        })
                    });
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn apply_commands(
    now: Nanos,
    cores: &mut [CoreState],
    cmds: &mut FreqCommands,
    cfg: &ServerConfig,
    metrics: &mut MetricsCollector,
    rec: &Recorder,
    freq_telem: &mut FreqTelemetry,
    faults: &mut FaultState,
    dvfs: &mut DvfsController,
) {
    let plan = &cfg.freq_plan;
    let cstates = &cfg.cstates;
    for (i, core) in cores.iter_mut().enumerate() {
        if let Some(mhz) = cmds.take(i) {
            let snapped = if mhz == plan.turbo_mhz {
                mhz
            } else {
                plan.snap(mhz)
            };
            // big.LITTLE cap: a little core silently tops out at its
            // ceiling, whatever the governor commanded (turbo included).
            let snapped = match cfg.core_cap(i) {
                Some(cap) if snapped > cap => {
                    if plan.is_valid(cap) {
                        cap
                    } else {
                        plan.snap(cap)
                    }
                }
                _ => snapped,
            };
            if dvfs.in_transition(i) {
                // A write while a (spiked) transition is in flight is
                // rejected — the stuck-cpufreq case. Not an injected
                // fault itself, so it is only counted.
                rec.add("faults.dvfs_busy", 1);
            } else if snapped != core.freq_mhz {
                let fault = faults.draw_dvfs();
                match dvfs.request(i, now, core.freq_mhz, snapped, fault) {
                    TransitionOutcome::Applied => {
                        freq_telem.on_transition(now, i, core.freq_mhz, snapped, rec);
                        core.freq_mhz = snapped;
                        metrics.freq_transitions += 1;
                    }
                    TransitionOutcome::Deferred { ready_at } => {
                        faults.record(rec, now, "dvfs-spike", i as i64, (ready_at - now) as f64);
                    }
                    TransitionOutcome::Failed => {
                        faults.record(rec, now, "dvfs-fail", i as i64, snapped as f64);
                    }
                    TransitionOutcome::Rejected | TransitionOutcome::NoOp => {}
                }
            }
        }
        if let Some(level) = cmds.take_sleep(i) {
            // Only idle cores may sleep; invalid levels are ignored.
            if core.running.is_none() && cstates.get(level).is_some() {
                core.sleep = Some(level);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{MILLISECOND, SECOND};
    use crate::governor::FixedFrequency;

    fn req(id: u64, arrival: Nanos, work: Nanos) -> Request {
        Request {
            id,
            client_id: id,
            attempt: 0,
            arrival,
            first_arrival: arrival,
            work_ref_ns: work,
            freq_sensitivity: 1.0,
            sla: 10 * MILLISECOND,
            features: vec![],
        }
    }

    fn one_core_server() -> Server {
        Server::new(ServerConfig {
            n_cores: 1,
            freq_plan: FreqPlan::xeon_gold_5218r(),
            power: PowerModel::default(),
            contention: ContentionModel::none(),
            initial_mhz: 2100,
            cstates: crate::CStatePlan::none(),
            core_max_mhz: Vec::new(),
        })
    }

    #[test]
    fn single_request_latency_equals_work_at_reference_frequency() {
        let server = one_core_server();
        let arrivals = vec![req(0, 0, 2 * MILLISECOND)];
        let mut gov = FixedFrequency { mhz: 2100 };
        let res = server.run(&arrivals, &mut gov, RunOptions::default());
        assert_eq!(res.stats.count, 1);
        // Exact to within the 1 ns ceil.
        assert!(res.records[0].latency.abs_diff(2 * MILLISECOND) <= 1);
        assert_eq!(res.stats.timeouts, 0);
    }

    #[test]
    fn half_frequency_doubles_service_time() {
        let server = one_core_server();
        let arrivals = vec![req(0, 0, 2 * MILLISECOND)];
        // 1050 MHz is an available level? Nearest is 1000 or 1100; use 1050→snap.
        let mut gov = FixedFrequency { mhz: 1000 };
        let res = server.run(&arrivals, &mut gov, RunOptions::default());
        let expected = 2 * MILLISECOND * 2100 / 1000;
        assert!(
            res.records[0].latency.abs_diff(expected) <= 2,
            "latency {} vs expected {expected}",
            res.records[0].latency
        );
    }

    #[test]
    fn fifo_queueing_on_one_core() {
        let server = one_core_server();
        // Two requests arrive together; second waits for the first.
        let arrivals = vec![req(0, 0, MILLISECOND), req(1, 0, MILLISECOND)];
        let mut gov = FixedFrequency { mhz: 2100 };
        let res = server.run(&arrivals, &mut gov, RunOptions::default());
        let r0 = res.records.iter().find(|r| r.id == 0).unwrap();
        let r1 = res.records.iter().find(|r| r.id == 1).unwrap();
        assert!(r0.latency.abs_diff(MILLISECOND) <= 1);
        assert!(r1.latency.abs_diff(2 * MILLISECOND) <= 2);
        assert!(r1.started >= r0.completed);
    }

    #[test]
    fn two_cores_run_in_parallel() {
        let server = Server::new(ServerConfig {
            n_cores: 2,
            contention: ContentionModel::none(),
            ..ServerConfig::paper_default(2)
        });
        let arrivals = vec![req(0, 0, MILLISECOND), req(1, 0, MILLISECOND)];
        let mut gov = FixedFrequency { mhz: 2100 };
        let res = server.run(&arrivals, &mut gov, RunOptions::default());
        for r in &res.records {
            assert!(
                r.latency.abs_diff(MILLISECOND) <= 1,
                "latency {}",
                r.latency
            );
        }
    }

    #[test]
    fn little_core_cap_holds_for_initial_and_commanded_frequency() {
        let server = Server::new(ServerConfig {
            n_cores: 2,
            contention: ContentionModel::none(),
            core_max_mhz: vec![2100, 1100],
            ..ServerConfig::paper_default(2)
        });
        // Two simultaneous requests land on both cores; the governor
        // commands the full 2100 MHz everywhere but core 1 is capped.
        let arrivals = vec![req(0, 0, 2 * MILLISECOND), req(1, 0, 2 * MILLISECOND)];
        let mut gov = FixedFrequency { mhz: 2100 };
        let res = server.run(&arrivals, &mut gov, RunOptions::default());
        let mut lats: Vec<u64> = res.records.iter().map(|r| r.latency).collect();
        lats.sort_unstable();
        let big = 2 * MILLISECOND;
        let little = 2 * MILLISECOND * 2100 / 1100;
        assert!(lats[0].abs_diff(big) <= 2, "big-core latency {}", lats[0]);
        assert!(
            lats[1].abs_diff(little) <= 2,
            "little-core latency {} vs {little}",
            lats[1]
        );
    }

    #[test]
    fn timeout_flagged_when_latency_exceeds_sla() {
        let server = one_core_server();
        let mut r = req(0, 0, 20 * MILLISECOND);
        r.sla = 5 * MILLISECOND;
        let mut gov = FixedFrequency { mhz: 2100 };
        let res = server.run(&[r], &mut gov, RunOptions::default());
        assert_eq!(res.stats.timeouts, 1);
    }

    #[test]
    fn contention_slows_down_parallel_work() {
        let make = |contention| {
            Server::new(ServerConfig {
                n_cores: 2,
                contention,
                ..ServerConfig::paper_default(2)
            })
        };
        let arrivals = vec![req(0, 0, MILLISECOND), req(1, 0, MILLISECOND)];
        let mut gov = FixedFrequency { mhz: 2100 };
        let clean = make(ContentionModel::none()).run(&arrivals, &mut gov, RunOptions::default());
        let contended = make(ContentionModel {
            coeff: 0.5,
            exponent: 1.0,
        })
        .run(&arrivals, &mut gov, RunOptions::default());
        assert!(
            contended.stats.mean_ns > clean.stats.mean_ns * 1.3,
            "contention had no effect: {} vs {}",
            contended.stats.mean_ns,
            clean.stats.mean_ns
        );
    }

    #[test]
    fn energy_scales_with_frequency() {
        let server = one_core_server();
        let arrivals = vec![req(0, 0, 50 * MILLISECOND)];
        let mut hi = FixedFrequency { mhz: 2100 };
        let mut lo = FixedFrequency { mhz: 800 };
        let res_hi = server.run(&arrivals, &mut hi, RunOptions::default());
        let res_lo = server.run(&arrivals, &mut lo, RunOptions::default());
        // Low frequency: longer runtime but lower average power.
        assert!(res_lo.duration_ns > res_hi.duration_ns);
        assert!(res_lo.avg_power_w < res_hi.avg_power_w);
    }

    #[test]
    fn deterministic_across_runs() {
        let server = Server::new(ServerConfig::paper_default(4));
        let arrivals: Vec<Request> = (0..50)
            .map(|i| req(i, i * 100_000, 300_000 + (i % 7) * 50_000))
            .collect();
        let mut g1 = FixedFrequency { mhz: 1500 };
        let mut g2 = FixedFrequency { mhz: 1500 };
        let a = server.run(&arrivals, &mut g1, RunOptions::default());
        let b = server.run(&arrivals, &mut g2, RunOptions::default());
        assert_eq!(a.records, b.records);
        assert_eq!(a.energy_j, b.energy_j);
    }

    #[test]
    fn governor_tick_fires_at_requested_period() {
        struct TickCounter {
            ticks: u64,
        }
        impl Governor for TickCounter {
            fn on_tick(&mut self, _v: &ServerView<'_>, _c: &mut FreqCommands) {
                self.ticks += 1;
            }
        }
        let server = one_core_server();
        let arrivals = vec![req(0, 0, 10 * MILLISECOND)];
        let mut gov = TickCounter { ticks: 0 };
        let _ = server.run(
            &arrivals,
            &mut gov,
            RunOptions {
                tick_ns: MILLISECOND,
                ..Default::default()
            },
        );
        // ~10 ms of simulated time at a 1 ms tick → 10-11 ticks.
        assert!((10..=12).contains(&gov.ticks), "ticks {}", gov.ticks);
    }

    #[test]
    fn freq_trace_records_all_cores() {
        let server = Server::new(ServerConfig::paper_default(3));
        let arrivals = vec![req(0, 0, 5 * MILLISECOND)];
        let mut gov = FixedFrequency { mhz: 1200 };
        let res = server.run(
            &arrivals,
            &mut gov,
            RunOptions {
                trace: TraceConfig::millisecond(),
                ..Default::default()
            },
        );
        assert!(!res.traces.freq.is_empty());
        let core_ids: std::collections::HashSet<usize> =
            res.traces.freq.iter().map(|&(_, c, _)| c).collect();
        assert_eq!(core_ids.len(), 3);
        // Request marks: one start, one end.
        let starts = res.traces.marks.iter().filter(|m| m.3).count();
        let ends = res.traces.marks.iter().filter(|m| !m.3).count();
        assert_eq!(starts, 1);
        assert_eq!(ends, 1);
    }

    #[test]
    fn request_level_governor_hook_sets_frequency_at_start() {
        struct PerRequest;
        impl Governor for PerRequest {
            fn on_request_start(
                &mut self,
                _view: &ServerView<'_>,
                core_id: usize,
                _req: &Request,
                cmds: &mut FreqCommands,
            ) {
                cmds.set(core_id, 800);
            }
        }
        let server = one_core_server();
        let arrivals = vec![req(0, 0, MILLISECOND)];
        let mut gov = PerRequest;
        let res = server.run(&arrivals, &mut gov, RunOptions::default());
        // Work ran at 800 MHz instead of the initial 2100.
        let expected = MILLISECOND * 2100 / 800;
        assert!(
            res.records[0].latency.abs_diff(expected) <= 2,
            "latency {}",
            res.records[0].latency
        );
        assert_eq!(res.freq_transitions, 1);
    }

    #[test]
    fn idle_run_terminates_immediately() {
        let server = one_core_server();
        let mut gov = FixedFrequency { mhz: 2100 };
        let res = server.run(&[], &mut gov, RunOptions::default());
        assert_eq!(res.stats.count, 0);
        assert_eq!(res.duration_ns, 0);
    }

    #[test]
    fn long_workload_completes_and_conserves_requests() {
        let server = Server::new(ServerConfig::paper_default(8));
        let arrivals: Vec<Request> = (0..2000)
            .map(|i| req(i, i * 200_000, 500_000 + (i % 13) * 100_000))
            .collect();
        let mut gov = FixedFrequency { mhz: 2100 };
        let res = server.run(&arrivals, &mut gov, RunOptions::default());
        assert_eq!(res.stats.count, 2000);
        assert!(res.duration_ns >= 2000 * 200_000);
        assert!(res.energy_j > 0.0);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = ServerConfig::paper_default(0);
        cfg.n_cores = 0;
        assert!(std::panic::catch_unwind(|| Server::new(cfg)).is_err());
        let mut cfg = ServerConfig::paper_default(2);
        cfg.initial_mhz = 12345;
        assert!(std::panic::catch_unwind(|| Server::new(cfg)).is_err());
    }

    #[test]
    fn recorded_run_matches_plain_run_and_captures_events() {
        let server = Server::new(ServerConfig::paper_default(2));
        let arrivals: Vec<Request> = (0..200)
            .map(|i| req(i, i * 10_000_000, 400_000 + (i % 5) * 100_000))
            .collect();
        let opts = RunOptions {
            trace: TraceConfig::millisecond(),
            ..Default::default()
        };
        struct Stepper;
        impl Governor for Stepper {
            fn on_tick(&mut self, v: &ServerView<'_>, cmds: &mut FreqCommands) {
                // Alternate frequencies so transitions actually happen.
                let mhz = if (v.now / MILLISECOND).is_multiple_of(2) {
                    800
                } else {
                    2100
                };
                for i in 0..v.cores.len() {
                    cmds.set(i, mhz);
                }
            }
        }
        let plain = server.run(&arrivals, &mut Stepper, opts);
        let recorder = deeppower_telemetry::Recorder::ring(1 << 16);
        let recorded = server.run_recorded(&arrivals, &mut Stepper, opts, &recorder);

        // Telemetry must not perturb the simulation.
        assert_eq!(plain.records, recorded.records);
        assert_eq!(plain.energy_j, recorded.energy_j);
        assert_eq!(plain.freq_transitions, recorded.freq_transitions);

        let events = recorder.drain_events();
        let count = |kind: &str| events.iter().filter(|e| e.kind() == kind).count() as u64;
        assert_eq!(count("FreqTransition"), recorded.freq_transitions);
        assert_eq!(count("RequestDispatch"), 200);
        assert_eq!(count("RequestComplete"), 200);
        assert!(count("LatencySnapshot") >= 1, "run spans ~2 s");
        // Residency across levels sums to cores × duration.
        let total_residency: u64 = events
            .iter()
            .filter_map(|e| match e {
                Event::CoreResidency(r) => Some(r.ns),
                _ => None,
            })
            .sum();
        assert_eq!(total_residency, 2 * recorded.duration_ns);
        assert_eq!(recorder.dropped_events(), 0);
    }

    #[test]
    fn window_rollups_partition_the_run() {
        let server = Server::new(ServerConfig::paper_default(2));
        let arrivals: Vec<Request> = (0..300)
            .map(|i| req(i, i * 10_000_000, 400_000 + (i % 7) * 100_000))
            .collect();
        let mut gov = FixedFrequency { mhz: 2100 };
        let recorder = deeppower_telemetry::Recorder::ring(1 << 14);
        let res = server.run_recorded(&arrivals, &mut gov, RunOptions::default(), &recorder);
        let events = recorder.drain_events();
        let rollups: Vec<&event::WindowRollup> = events
            .iter()
            .filter_map(|e| match e {
                Event::WindowRollup(w) => Some(w),
                _ => None,
            })
            .collect();
        // ~3 s run, 1 s windows (plus a trailing partial window).
        assert!(rollups.len() >= 3, "got {} rollups", rollups.len());
        // Indices are sequential from 0 and times strictly increase.
        for (i, w) in rollups.iter().enumerate() {
            assert_eq!(w.index, i as u64);
            assert!(w.window_ns > 0);
            assert!(w.power_w > 0.0, "window {i} saw no energy");
        }
        assert!(rollups.windows(2).all(|p| p[0].t < p[1].t));
        // Windows partition the run: counts/timeouts sum to the run
        // totals, spans sum to the run duration, last window closes at
        // run end.
        assert_eq!(
            rollups.iter().map(|w| w.count).sum::<u64>(),
            res.stats.count
        );
        assert_eq!(
            rollups.iter().map(|w| w.timeouts).sum::<u64>(),
            res.stats.timeouts
        );
        assert_eq!(
            rollups.iter().map(|w| w.window_ns).sum::<u64>(),
            res.duration_ns
        );
        assert_eq!(rollups.last().unwrap().t, res.duration_ns);
        // All non-final windows span exactly the nominal second.
        for w in &rollups[..rollups.len() - 1] {
            assert_eq!(w.window_ns, crate::clock::SECOND);
        }
        // Per-window percentiles stay within the window extremes, and
        // the bucket arrays carry the whole window count.
        for w in &rollups {
            if w.count > 0 {
                assert!(w.min_ns <= w.p50_ns && w.p50_ns <= w.p99_ns && w.p99_ns <= w.max_ns);
                assert_eq!(w.bucket_counts.iter().sum::<u64>(), w.count);
                assert_eq!(w.bucket_ubs.len(), w.bucket_counts.len());
            }
        }

        // window_ns = 0 disables rollups without touching results.
        let mut gov2 = FixedFrequency { mhz: 2100 };
        let rec2 = deeppower_telemetry::Recorder::ring(1 << 14);
        let res2 = server.run_recorded(
            &arrivals,
            &mut gov2,
            RunOptions {
                window_ns: 0,
                ..Default::default()
            },
            &rec2,
        );
        assert_eq!(res.records, res2.records);
        assert_eq!(res.energy_j.to_bits(), res2.energy_j.to_bits());
        assert!(rec2
            .drain_events()
            .iter()
            .all(|e| e.kind() != "WindowRollup"));
    }

    #[test]
    fn profiled_run_is_bit_identical_and_captures_phase_spans() {
        let server = Server::new(ServerConfig::paper_default(2));
        let arrivals: Vec<Request> = (0..200)
            .map(|i| req(i, i * 10_000_000, 400_000 + (i % 5) * 100_000))
            .collect();
        let opts = RunOptions {
            trace: TraceConfig::millisecond(),
            ..Default::default()
        };
        let mut gov = FixedFrequency { mhz: 2100 };
        let plain = server.run(&arrivals, &mut gov, opts);
        let prof = deeppower_telemetry::Profiler::enabled();
        let profiled = server.run_profiled(
            &arrivals,
            &mut gov,
            opts,
            &deeppower_telemetry::Recorder::disabled(),
            &prof,
        );

        // Profiling reads the wall clock but must not perturb the
        // simulation: results are bit-identical.
        assert_eq!(plain.records, profiled.records);
        assert_eq!(plain.energy_j.to_bits(), profiled.energy_j.to_bits());
        assert_eq!(plain.freq_transitions, profiled.freq_transitions);

        let rows = prof.phase_table();
        let count = |name: &str| rows.iter().find(|r| r.name == name).map_or(0, |r| r.count);
        for phase in [
            "engine.completions",
            "engine.arrivals",
            "engine.tick",
            "engine.metrics",
            "engine.advance",
        ] {
            assert!(count(phase) > 0, "no {phase} spans recorded");
        }
        // Each processed event visits completions/arrivals/metrics once.
        assert_eq!(count("engine.completions"), count("engine.arrivals"));
        assert_eq!(count("engine.completions"), count("engine.metrics"));
    }

    #[test]
    fn fault_free_plan_with_nonzero_seed_is_transparent() {
        // A plan whose knobs are all zero must be bit-identical to the
        // default run regardless of its seed.
        let server = Server::new(ServerConfig::paper_default(4));
        let arrivals: Vec<Request> = (0..100)
            .map(|i| req(i, i * 150_000, 300_000 + (i % 5) * 80_000))
            .collect();
        let base = server.run(
            &arrivals,
            &mut FixedFrequency { mhz: 1500 },
            RunOptions::default(),
        );
        let seeded = server.run(
            &arrivals,
            &mut FixedFrequency { mhz: 1500 },
            RunOptions {
                faults: crate::FaultPlan {
                    seed: 12345,
                    ..crate::FaultPlan::none()
                },
                ..Default::default()
            },
        );
        assert_eq!(base.records, seeded.records);
        assert_eq!(base.energy_j.to_bits(), seeded.energy_j.to_bits());
        assert_eq!(seeded.faults_injected, 0);
    }

    #[test]
    fn certain_dvfs_failure_pins_initial_frequency() {
        let server = one_core_server();
        let arrivals = vec![req(0, 0, 2 * MILLISECOND)];
        let opts = RunOptions {
            faults: crate::FaultPlan {
                seed: 1,
                dvfs_fail_prob: 1.0,
                ..crate::FaultPlan::none()
            },
            ..Default::default()
        };
        let rec = deeppower_telemetry::Recorder::ring(1 << 12);
        let res = server.run_recorded(&arrivals, &mut FixedFrequency { mhz: 800 }, opts, &rec);
        // Every write is dropped: the core stays at the initial 2100 MHz.
        assert_eq!(res.freq_transitions, 0);
        assert!(res.records[0].latency.abs_diff(2 * MILLISECOND) <= 1);
        assert!(res.faults_injected > 0);
        let events = rec.drain_events();
        let fails = events
            .iter()
            .filter(|e| matches!(e, Event::FaultInjected(f) if f.kind == "dvfs-fail"))
            .count() as u64;
        assert_eq!(fails, res.faults_injected);
        assert_eq!(rec.counter("faults.injected"), res.faults_injected);
    }

    #[test]
    fn dvfs_spikes_defer_transitions_but_land() {
        let server = one_core_server();
        let arrivals = vec![req(0, 0, 10 * MILLISECOND)];
        let opts = RunOptions {
            faults: crate::FaultPlan {
                seed: 2,
                dvfs_spike_prob: 1.0,
                dvfs_spike_min_ns: 50_000,
                dvfs_spike_max_ns: 200_000,
                ..crate::FaultPlan::none()
            },
            ..Default::default()
        };
        let res = server.run(&arrivals, &mut FixedFrequency { mhz: 800 }, opts);
        // The spiked transition eventually lands (exactly one: after it,
        // commands target the current frequency and are no-ops).
        assert_eq!(res.freq_transitions, 1);
        // Work ran slower than at 2100 the whole way, but faster than if
        // the write had been dropped entirely.
        let at_800 = 10 * MILLISECOND * 2100 / 800;
        assert!(res.records[0].latency > 10 * MILLISECOND);
        assert!(res.records[0].latency <= at_800 + MILLISECOND);
    }

    #[test]
    fn core_stall_delays_service() {
        let server = one_core_server();
        let arrivals = vec![req(0, 0, 4 * MILLISECOND)];
        let stall = crate::FaultPlan {
            seed: 3,
            stall_period_ns: 2 * MILLISECOND,
            stall_duration_ns: MILLISECOND,
            ..crate::FaultPlan::none()
        };
        let opts = RunOptions {
            faults: stall,
            ..Default::default()
        };
        let clean = server.run(
            &arrivals,
            &mut FixedFrequency { mhz: 2100 },
            RunOptions::default(),
        );
        let faulted = server.run(&arrivals, &mut FixedFrequency { mhz: 2100 }, opts);
        // The request crosses one 1 ms stall window at t=2 ms.
        assert!(clean.records[0].latency.abs_diff(4 * MILLISECOND) <= 1);
        assert!(
            faulted.records[0].latency >= clean.records[0].latency + MILLISECOND,
            "stall did not delay the request: {} vs {}",
            faulted.records[0].latency,
            clean.records[0].latency
        );
        assert!(faulted.faults_injected >= 1);
    }

    #[test]
    fn faulted_runs_are_deterministic_and_replayable() {
        let server = Server::new(ServerConfig::paper_default(4));
        let arrivals: Vec<Request> = (0..300)
            .map(|i| req(i, i * 120_000, 250_000 + (i % 9) * 60_000))
            .collect();
        let plan = crate::FaultPlan {
            seed: 77,
            dvfs_fail_prob: 0.2,
            dvfs_spike_prob: 0.2,
            dvfs_spike_min_ns: 10_000,
            dvfs_spike_max_ns: 100_000,
            stall_period_ns: 5 * MILLISECOND,
            stall_duration_ns: MILLISECOND,
            sensor_drop_prob: 0.2,
            power_noise_frac: 0.1,
        };
        let opts = RunOptions {
            faults: plan,
            ..Default::default()
        };
        struct Stepper;
        impl Governor for Stepper {
            fn on_tick(&mut self, v: &ServerView<'_>, cmds: &mut FreqCommands) {
                let mhz = if (v.now / MILLISECOND).is_multiple_of(2) {
                    800
                } else {
                    2100
                };
                for i in 0..v.cores.len() {
                    cmds.set(i, mhz);
                }
            }
        }
        let rec_a = deeppower_telemetry::Recorder::ring(1 << 16);
        let rec_b = deeppower_telemetry::Recorder::ring(1 << 16);
        let a = server.run_recorded(&arrivals, &mut Stepper, opts, &rec_a);
        let b = server.run_recorded(&arrivals, &mut Stepper, opts, &rec_b);
        assert_eq!(a.records, b.records);
        assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());
        assert_eq!(a.faults_injected, b.faults_injected);
        assert!(a.faults_injected > 0, "matrix plan injected nothing");
        assert_eq!(rec_a.drain_events(), rec_b.drain_events());
        // And the faulted run differs from the fault-free one.
        let clean = server.run(&arrivals, &mut Stepper, RunOptions::default());
        assert_ne!(clean.records, a.records);
    }

    #[test]
    fn inactive_overload_plan_with_nonzero_seed_is_transparent() {
        // An overload plan with every knob at zero must be bit-identical
        // to the default run regardless of its seed, with every
        // completion counted as goodput.
        let server = Server::new(ServerConfig::paper_default(4));
        let arrivals: Vec<Request> = (0..100)
            .map(|i| req(i, i * 150_000, 300_000 + (i % 5) * 80_000))
            .collect();
        let base = server.run(
            &arrivals,
            &mut FixedFrequency { mhz: 1500 },
            RunOptions::default(),
        );
        let seeded = server.run(
            &arrivals,
            &mut FixedFrequency { mhz: 1500 },
            RunOptions {
                overload: crate::OverloadPlan {
                    seed: 98765,
                    ..crate::OverloadPlan::none()
                },
                ..Default::default()
            },
        );
        assert_eq!(base.records, seeded.records);
        assert_eq!(base.energy_j.to_bits(), seeded.energy_j.to_bits());
        assert_eq!(seeded.goodput, seeded.stats.count);
        assert_eq!(seeded.wasted, 0);
        assert_eq!(seeded.shed, 0);
        assert_eq!(seeded.retries, 0);
        assert!(seeded.peak_queue_depth >= 1);
    }

    #[test]
    fn bounded_queue_sheds_and_conserves_requests() {
        // One core, capacity 2, a burst of 10 simultaneous requests:
        // arrivals enqueue before dispatch at the same timestamp, so
        // two are admitted and eight shed.
        let server = one_core_server();
        let arrivals: Vec<Request> = (0..10).map(|i| req(i, 0, MILLISECOND)).collect();
        let opts = RunOptions {
            overload: crate::OverloadPlan {
                queue_capacity: 2,
                ..crate::OverloadPlan::none()
            },
            ..Default::default()
        };
        let rec = deeppower_telemetry::Recorder::ring(1 << 10);
        let res = server.run_recorded(&arrivals, &mut FixedFrequency { mhz: 2100 }, opts, &rec);
        assert_eq!(res.shed, 8);
        assert_eq!(res.stats.count, 2);
        assert_eq!(res.goodput + res.wasted, res.stats.count);
        assert_eq!(res.peak_queue_depth, 2);
        let events = rec.drain_events();
        let sheds = events.iter().filter(|e| e.kind() == "Shed").count() as u64;
        assert_eq!(sheds, res.shed);
        assert_eq!(rec.counter("overload.shed"), res.shed);
    }

    #[test]
    fn lifo_serves_newest_queued_request_first() {
        let server = one_core_server();
        // id 0 dispatches at t=0; 1..=3 arrive while it runs and queue
        // behind it. LIFO pops the newest (3) first, the oldest (1) last.
        let arrivals: Vec<Request> = (0..4)
            .map(|i| req(i, if i == 0 { 0 } else { 100_000 }, MILLISECOND))
            .collect();
        let opts = RunOptions {
            overload: crate::OverloadPlan {
                queue_policy: crate::QueuePolicy::Lifo,
                queue_capacity: 16,
                ..crate::OverloadPlan::none()
            },
            ..Default::default()
        };
        let res = server.run(&arrivals, &mut FixedFrequency { mhz: 2100 }, opts);
        let order: Vec<u64> = {
            let mut recs = res.records.clone();
            recs.sort_by_key(|r| r.started);
            recs.iter().map(|r| r.id).collect()
        };
        assert_eq!(order, vec![0, 3, 2, 1]);
    }

    #[test]
    fn drop_oldest_evicts_queue_head_for_new_arrivals() {
        let server = one_core_server();
        // Capacity 2: id 0 runs, 1 and 2 queue; 3 and 4 evict 1 and 2.
        let arrivals: Vec<Request> = (0..5)
            .map(|i| req(i, i * 1_000, 10 * MILLISECOND))
            .collect();
        let opts = RunOptions {
            overload: crate::OverloadPlan {
                queue_capacity: 2,
                queue_policy: crate::QueuePolicy::DropOldest,
                ..crate::OverloadPlan::none()
            },
            ..Default::default()
        };
        let res = server.run(&arrivals, &mut FixedFrequency { mhz: 2100 }, opts);
        assert_eq!(res.shed, 2);
        let served: Vec<u64> = {
            let mut ids: Vec<u64> = res.records.iter().map(|r| r.id).collect();
            ids.sort_unstable();
            ids
        };
        assert_eq!(served, vec![0, 3, 4]);
    }

    #[test]
    fn client_timeout_yields_wasted_work_and_retries_measure_from_first_submission() {
        // One slow request: the client abandons after 2 ms, retries
        // once (p=1), and the retry also runs to completion. The
        // original completion is wasted work; the retry's latency is
        // client-perceived (measured from the first submission).
        let server = one_core_server();
        let arrivals = vec![req(0, 0, 5 * MILLISECOND)];
        let opts = RunOptions {
            overload: crate::OverloadPlan {
                client_timeout_ns: 2 * MILLISECOND,
                retry_prob: 1.0,
                max_attempts: 2,
                retry_backoff_ns: MILLISECOND,
                ..crate::OverloadPlan::none()
            },
            ..Default::default()
        };
        let rec = deeppower_telemetry::Recorder::ring(1 << 10);
        let res = server.run_recorded(&arrivals, &mut FixedFrequency { mhz: 2100 }, opts, &rec);
        assert_eq!(res.abandoned, 2, "both attempts abandoned");
        assert_eq!(res.retries, 1);
        assert_eq!(res.wasted, 2, "both completions answered nobody");
        assert_eq!(res.goodput, 0);
        assert!(res.wasted_s > 0.0);
        let retry_rec = res
            .records
            .iter()
            .find(|r| r.id >= crate::SYNTH_ID_BASE)
            .expect("retry attempt completed");
        // Retry submitted at ~3 ms, served after the original drains at
        // ~5 ms, completes at ~10 ms: client-perceived latency spans
        // from t=0, well beyond the attempt's own service time.
        assert_eq!(retry_rec.latency, retry_rec.completed);
        assert!(retry_rec.latency > retry_rec.completed - retry_rec.arrival);
        let kinds: Vec<&str> = rec
            .drain_events()
            .iter()
            .map(|e| e.kind())
            .filter(|k| ["Shed", "Abandoned", "Retry"].contains(k))
            .collect();
        assert_eq!(kinds, vec!["Abandoned", "Retry", "Abandoned"]);
    }

    #[test]
    fn overloaded_faulted_runs_are_deterministic_and_replayable() {
        // Retry traffic and fault injection together replay
        // bit-identically: same seeds ⇒ identical records, energy,
        // counters and event stream.
        let server = Server::new(ServerConfig::paper_default(4));
        let arrivals: Vec<Request> = (0..300)
            .map(|i| req(i, i * 120_000, 250_000 + (i % 9) * 60_000))
            .collect();
        let opts = RunOptions {
            faults: crate::FaultPlan {
                seed: 77,
                dvfs_fail_prob: 0.2,
                stall_period_ns: 5 * MILLISECOND,
                stall_duration_ns: MILLISECOND,
                sensor_drop_prob: 0.2,
                ..crate::FaultPlan::none()
            },
            overload: crate::OverloadPlan {
                seed: 42,
                queue_capacity: 8,
                client_timeout_ns: 2 * MILLISECOND,
                retry_prob: 0.7,
                max_attempts: 3,
                retry_backoff_ns: 500_000,
                retry_jitter_ns: 200_000,
                ..crate::OverloadPlan::none()
            },
            ..Default::default()
        };
        let rec_a = deeppower_telemetry::Recorder::ring(1 << 16);
        let rec_b = deeppower_telemetry::Recorder::ring(1 << 16);
        let a = server.run_recorded(&arrivals, &mut FixedFrequency { mhz: 1000 }, opts, &rec_a);
        let b = server.run_recorded(&arrivals, &mut FixedFrequency { mhz: 1000 }, opts, &rec_b);
        assert_eq!(a.records, b.records);
        assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());
        assert_eq!(
            (a.goodput, a.wasted, a.shed, a.abandoned, a.retries),
            (b.goodput, b.wasted, b.shed, b.abandoned, b.retries)
        );
        assert_eq!(rec_a.drain_events(), rec_b.drain_events());
        assert!(a.retries > 0, "storm plan produced no retries");
        assert!(a.faults_injected > 0, "fault plan injected nothing");
        // Goodput + wasted partition the completions.
        assert_eq!(a.goodput + a.wasted, a.stats.count);
    }

    #[test]
    fn draining_respects_late_arrivals() {
        // A request arriving long after the first completes must still be
        // served (the engine idles forward to it).
        let server = one_core_server();
        let arrivals = vec![req(0, 0, MILLISECOND), req(1, 2 * SECOND, MILLISECOND)];
        let mut gov = FixedFrequency { mhz: 2100 };
        let res = server.run(&arrivals, &mut gov, RunOptions::default());
        assert_eq!(res.stats.count, 2);
        let r1 = res.records.iter().find(|r| r.id == 1).unwrap();
        assert!(r1.started >= 2 * SECOND);
    }

    /// Request-lifecycle tracing must never perturb the simulation:
    /// an overloaded, faulted run with tracing at full sampling is
    /// bit-identical (records, energy, counters) to the same run with
    /// tracing off — and the emitted traces are internally consistent:
    /// chain latency matches the completion record's client-perceived
    /// latency, rollup exemplar ids resolve to emitted traces, and
    /// retry chains carry their shed/backoff spans.
    #[test]
    fn request_tracing_never_perturbs_results_and_links_exemplars() {
        let server = Server::new(ServerConfig::paper_default(2));
        let arrivals: Vec<Request> = (0..400)
            .map(|i| req(i, i * 100_000, 300_000 + (i % 9) * 80_000))
            .collect();
        let base = RunOptions {
            overload: crate::OverloadPlan {
                seed: 42,
                queue_capacity: 4,
                client_timeout_ns: 2 * MILLISECOND,
                retry_prob: 0.9,
                max_attempts: 3,
                retry_backoff_ns: 500_000,
                retry_jitter_ns: 200_000,
                ..crate::OverloadPlan::none()
            },
            ..Default::default()
        };
        let traced_opts = RunOptions {
            rtrace: TracePlan::sampled(1.0, 3, 7),
            ..base
        };
        let rec_off = deeppower_telemetry::Recorder::ring(1 << 16);
        let rec_on = deeppower_telemetry::Recorder::ring(1 << 16);
        let off = server.run_recorded(&arrivals, &mut FixedFrequency { mhz: 1000 }, base, &rec_off);
        let on = server.run_recorded(
            &arrivals,
            &mut FixedFrequency { mhz: 1000 },
            traced_opts,
            &rec_on,
        );
        assert_eq!(off.records, on.records, "tracing perturbed the results");
        assert_eq!(off.energy_j.to_bits(), on.energy_j.to_bits());
        assert_eq!(
            (
                off.goodput,
                off.wasted,
                off.shed,
                off.abandoned,
                off.retries
            ),
            (on.goodput, on.wasted, on.shed, on.abandoned, on.retries)
        );
        assert!(on.shed > 0 && on.retries > 0, "plan produced no overload");

        let events = rec_on.drain_events();
        let mut seen_traces: std::collections::HashMap<u64, &deeppower_telemetry::RequestTrace> =
            std::collections::HashMap::new();
        for ev in &events {
            match ev {
                Event::RequestTrace(tr) => {
                    // Chain latency is client-visible: end − first submit.
                    assert_eq!(tr.latency_ns, tr.end - tr.first_submit);
                    seen_traces.insert(tr.client, tr);
                }
                Event::WindowRollup(w) => {
                    for ex in &w.exemplars {
                        assert!(
                            seen_traces.contains_key(ex),
                            "exemplar id {ex} has no emitted trace before its rollup"
                        );
                    }
                }
                _ => {}
            }
        }
        assert!(!seen_traces.is_empty(), "full sampling emitted no traces");
        // Completed chains agree with the engine's completion records.
        let mut checked = 0;
        for tr in seen_traces.values().filter(|t| t.outcome == "completed") {
            let last = tr.attempts.last().unwrap();
            let rec = on.records.iter().find(|r| r.id == last.id).unwrap();
            assert_eq!(tr.latency_ns, rec.latency);
            assert_eq!(tr.end, rec.completed);
            assert_eq!(tr.timed_out, rec.timed_out);
            checked += 1;
        }
        assert!(checked > 0);
        // At least one retry chain shows the shed → backoff ladder.
        assert!(
            seen_traces.values().any(|t| t.attempts.len() > 1
                && t.span_total_ns(deeppower_telemetry::SPAN_BACKOFF) > 0
                && t.spans_named(deeppower_telemetry::SPAN_SHED).count() > 0),
            "no retry chain with shed + backoff spans"
        );
    }

    mod trace_latency_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// For any overload plan, a chain trace's client-visible
            /// latency equals the SLA latency the overload accounting
            /// charges from first submission — the two accountings are
            /// pinned together.
            #[test]
            fn retry_chain_trace_latency_matches_sla_accounting(
                seed in 0u64..u64::MAX,
                queue_capacity in 1u32..16,
                timeout_ms in 0u64..6,
                retry_prob in 0.0f64..1.0,
                max_attempts in 1u32..5,
            ) {
                let plan = crate::OverloadPlan {
                    seed,
                    queue_capacity,
                    client_timeout_ns: timeout_ms * MILLISECOND,
                    retry_prob,
                    max_attempts,
                    retry_backoff_ns: 400_000,
                    retry_jitter_ns: 150_000,
                    ..crate::OverloadPlan::none()
                };
                let server = Server::new(ServerConfig::paper_default(2));
                let arrivals: Vec<Request> = (0..80)
                    .map(|i| req(i, i * 120_000, 400_000 + (i % 7) * 90_000))
                    .collect();
                let opts = RunOptions {
                    overload: plan,
                    rtrace: TracePlan::sampled(1.0, 2, seed),
                    ..Default::default()
                };
                let rec = deeppower_telemetry::Recorder::ring(1 << 16);
                let res = server.run_recorded(
                    &arrivals,
                    &mut FixedFrequency { mhz: 1200 },
                    opts,
                    &rec,
                );
                for ev in rec.drain_events() {
                    let Event::RequestTrace(tr) = ev else { continue };
                    prop_assert_eq!(tr.latency_ns, tr.end - tr.first_submit);
                    if tr.outcome == "completed" {
                        let last = tr.attempts.last().unwrap();
                        let record = res
                            .records
                            .iter()
                            .find(|r| r.id == last.id)
                            .expect("completed chain has a record");
                        // The engine charges SLA latency from the first
                        // submission (Request::client_arrival); the
                        // trace must agree exactly.
                        prop_assert_eq!(tr.latency_ns, record.latency);
                        prop_assert_eq!(tr.timed_out, record.timed_out);
                    }
                }
            }
        }
    }
}
