//! Requests.

use crate::clock::Nanos;
use serde::{Deserialize, Serialize};

/// One client request as seen by the server.
///
/// `work_ref_ns` is the request's *intrinsic* service time: the wall time it
/// would take on an otherwise-idle machine at the reference frequency.
/// Actual processing time depends on the core frequency (through
/// `freq_sensitivity`) and on contention from sibling cores — both applied
/// by the engine, never baked into the request.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Monotonically increasing id (assigned by the workload generator).
    /// Unique per *attempt*: a retry gets a fresh server id.
    pub id: u64,
    /// Stable client-visible id that survives retries: every attempt of
    /// the same logical client request carries the same `client_id`.
    pub client_id: u64,
    /// Zero-based attempt counter (0 = first submission).
    pub attempt: u32,
    /// Arrival time at the server queue (of *this* attempt).
    pub arrival: Nanos,
    /// Arrival time of the client's *first* attempt. Client-perceived
    /// latency — and SLA timeout accounting — is measured from here, not
    /// from the retry's re-submission.
    pub first_arrival: Nanos,
    /// Intrinsic service time at the reference frequency, uncontended.
    pub work_ref_ns: Nanos,
    /// Fraction of the work that scales with core frequency; the remainder
    /// is memory/IO-bound and frequency-insensitive. In `[0, 1]`.
    pub freq_sensitivity: f32,
    /// The request's latency SLA (same for all requests of an application).
    pub sla: Nanos,
    /// Observable features (e.g. input size, request type) — the inputs the
    /// service-time predictors of ReTail/Gemini are allowed to see. The
    /// true `work_ref_ns` is *not* observable.
    pub features: Vec<f32>,
}

impl Request {
    /// When the *client* submitted this logical request: the first
    /// attempt's arrival. Falls back to `arrival` for fresh requests
    /// whose constructor left `first_arrival` unset.
    pub fn client_arrival(&self) -> Nanos {
        if self.attempt == 0 {
            self.arrival
        } else {
            self.first_arrival
        }
    }

    /// Wall-clock time this request needs on a core at `freq_mhz`, given
    /// the reference frequency and a contention inflation factor, starting
    /// from `remaining_ref_ns` of intrinsic work.
    ///
    /// `time = remaining_ref · (s · f_ref/f + (1 − s)) · inflation`
    pub fn scaled_time(
        remaining_ref_ns: f64,
        freq_sensitivity: f32,
        freq_mhz: u32,
        reference_mhz: u32,
        inflation: f64,
    ) -> f64 {
        debug_assert!(freq_mhz > 0);
        let s = freq_sensitivity as f64;
        let scale = s * reference_mhz as f64 / freq_mhz as f64 + (1.0 - s);
        remaining_ref_ns * scale * inflation
    }

    /// Inverse of [`Request::scaled_time`]: how much intrinsic work is
    /// retired by running `dt` nanoseconds at the given conditions.
    pub fn retired_work(
        dt: f64,
        freq_sensitivity: f32,
        freq_mhz: u32,
        reference_mhz: u32,
        inflation: f64,
    ) -> f64 {
        let s = freq_sensitivity as f64;
        let scale = s * reference_mhz as f64 / freq_mhz as f64 + (1.0 - s);
        dt / (scale * inflation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_sensitive_work_scales_inversely_with_frequency() {
        // s = 1: halving the frequency doubles the time.
        let t_full = Request::scaled_time(1000.0, 1.0, 2100, 2100, 1.0);
        let t_half = Request::scaled_time(1000.0, 1.0, 1050, 2100, 1.0);
        assert!((t_full - 1000.0).abs() < 1e-9);
        assert!((t_half - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn insensitive_work_ignores_frequency() {
        let t_slow = Request::scaled_time(1000.0, 0.0, 800, 2100, 1.0);
        let t_fast = Request::scaled_time(1000.0, 0.0, 2100, 2100, 1.0);
        assert_eq!(t_slow, t_fast);
    }

    #[test]
    fn contention_inflates_linearly() {
        let base = Request::scaled_time(1000.0, 0.7, 1500, 2100, 1.0);
        let inflated = Request::scaled_time(1000.0, 0.7, 1500, 2100, 1.25);
        assert!((inflated / base - 1.25).abs() < 1e-9);
    }

    #[test]
    fn retired_work_inverts_scaled_time() {
        let remaining = 12345.0;
        let t = Request::scaled_time(remaining, 0.6, 1300, 2100, 1.1);
        let retired = Request::retired_work(t, 0.6, 1300, 2100, 1.1);
        assert!((retired - remaining).abs() < 1e-6);
    }

    #[test]
    fn partial_sensitivity_between_extremes() {
        let t_min = Request::scaled_time(1000.0, 0.0, 800, 2100, 1.0);
        let t_mid = Request::scaled_time(1000.0, 0.5, 800, 2100, 1.0);
        let t_max = Request::scaled_time(1000.0, 1.0, 800, 2100, 1.0);
        assert!(t_min < t_mid && t_mid < t_max);
        // s = 0.5 at f = f_ref/2.625 → scale = 0.5·2.625 + 0.5.
        assert!((t_mid - 1000.0 * (0.5 * 2100.0 / 800.0 + 0.5)).abs() < 1e-6);
    }
}
