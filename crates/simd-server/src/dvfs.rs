//! DVFS frequency plan: the discrete frequency levels a core may run at.
//!
//! Mirrors the paper's testbed: "The frequency range from 0.8GHz to 2.1GHz
//! and can be scaled with the help of the 'userspace' governor of the Linux
//! ACPI frequency driver" (§5.2), plus turbo boost (§4.3). On real hardware
//! a write to `scaling_setspeed` takes effect within a few microseconds;
//! the plan records a per-transition latency for the overhead accounting of
//! §5.5 but applies new frequencies at the commanded instant (the paper's
//! controller treats the switch as effectively immediate).

use crate::clock::Nanos;
use crate::faults::DvfsFault;
use serde::{Deserialize, Serialize};

/// MHz per GHz, for conversions in power/reporting code.
pub const MHZ_PER_GHZ: f64 = 1000.0;

/// The set of frequencies a core can be driven at.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FreqPlan {
    /// Nominal levels in MHz, ascending (turbo not included).
    pub levels_mhz: Vec<u32>,
    /// Turbo frequency in MHz (> max nominal level).
    pub turbo_mhz: u32,
    /// Reference frequency used for `work_ref_ns` calibration — the max
    /// nominal level, matching how the paper's "no power management"
    /// baseline runs.
    pub reference_mhz: u32,
    /// Cost of one frequency transition (accounting only; §5.5 reports
    /// "less than 10us" per set operation).
    pub transition_ns: u64,
}

impl FreqPlan {
    /// The paper's Xeon Gold 5218R plan: 0.8–2.1 GHz in 100 MHz steps plus
    /// a 3.0 GHz turbo level.
    pub fn xeon_gold_5218r() -> Self {
        let levels_mhz: Vec<u32> = (8..=21).map(|x| x * 100).collect();
        Self {
            levels_mhz,
            turbo_mhz: 3000,
            reference_mhz: 2100,
            transition_ns: 5_000,
        }
    }

    /// A tiny three-level plan for unit tests.
    pub fn test_plan() -> Self {
        Self {
            levels_mhz: vec![1000, 1500, 2000],
            turbo_mhz: 2500,
            reference_mhz: 2000,
            transition_ns: 1_000,
        }
    }

    pub fn min_mhz(&self) -> u32 {
        self.levels_mhz[0]
    }

    /// Highest nominal (non-turbo) level.
    pub fn max_mhz(&self) -> u32 {
        *self.levels_mhz.last().expect("empty frequency plan")
    }

    /// Validate invariants; call after hand-building a plan.
    pub fn validate(&self) -> Result<(), String> {
        if self.levels_mhz.is_empty() {
            return Err("no frequency levels".into());
        }
        if !self.levels_mhz.windows(2).all(|w| w[0] < w[1]) {
            return Err("levels must be strictly ascending".into());
        }
        if self.turbo_mhz <= self.max_mhz() {
            return Err("turbo must exceed the max nominal level".into());
        }
        // `reference_mhz` is a *calibration* frequency, not a commanded
        // one: heterogeneous fleets share one fleet-wide reference so
        // `work_ref_ns` means the same thing on every node, and a little
        // core's plan may top out below it. Anything at or above this
        // plan's max nominal level is therefore legal; below it, the
        // reference must be an actual level (or turbo).
        if self.reference_mhz < self.max_mhz()
            && !self.levels_mhz.contains(&self.reference_mhz)
            && self.reference_mhz != self.turbo_mhz
        {
            return Err("reference frequency must be an available level".into());
        }
        Ok(())
    }

    /// Snap an arbitrary MHz value to the nearest available nominal level
    /// (never snaps *to* turbo; turbo must be requested explicitly, as in
    /// Algorithm 1 line 7).
    pub fn snap(&self, mhz: u32) -> u32 {
        *self
            .levels_mhz
            .iter()
            .min_by_key(|&&l| l.abs_diff(mhz))
            .expect("empty frequency plan")
    }

    /// Linear interpolation of Algorithm 1 line 9:
    /// `freq = f_min + (f_max − f_min) · score`, snapped to a level.
    /// `score` is clamped to `[0, 1)` by the caller's turbo check.
    pub fn interpolate(&self, score: f32) -> u32 {
        let score = score.clamp(0.0, 1.0) as f64;
        let f = self.min_mhz() as f64 + (self.max_mhz() - self.min_mhz()) as f64 * score;
        self.snap(f.round() as u32)
    }

    /// Whether `mhz` is a legal commanded frequency (a nominal level or
    /// turbo).
    pub fn is_valid(&self, mhz: u32) -> bool {
        mhz == self.turbo_mhz || self.levels_mhz.contains(&mhz)
    }

    /// The next level strictly above `mhz`, or turbo if already at max
    /// nominal, or `None` at turbo.
    pub fn step_up(&self, mhz: u32) -> Option<u32> {
        if mhz == self.turbo_mhz {
            return None;
        }
        match self.levels_mhz.iter().find(|&&l| l > mhz) {
            Some(&l) => Some(l),
            None => Some(self.turbo_mhz),
        }
    }
}

/// What happened to one requested frequency transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransitionOutcome {
    /// The write landed instantly (the fault-free path).
    Applied,
    /// The write was accepted but takes effect only at `ready_at`
    /// (an injected extra-latency spike).
    Deferred { ready_at: Nanos },
    /// The core is mid-transition; the write was rejected (a stuck
    /// cpufreq write — retry on a later tick).
    Rejected,
    /// An injected failure silently dropped the write.
    Failed,
    /// The target equals the current frequency; nothing to do.
    NoOp,
}

#[derive(Clone, Copy, Debug)]
struct PendingTransition {
    target_mhz: u32,
    ready_at: Nanos,
}

/// Per-core DVFS transition state machine.
///
/// The paper's controller treats frequency writes as effectively
/// immediate, and with no faults injected this controller preserves that:
/// every request applies instantly ([`TransitionOutcome::Applied`]) and
/// nothing is ever pending. Injected faults surface the two real-hardware
/// failure modes: a dropped write ([`TransitionOutcome::Failed`]) and a
/// slow write that keeps the core busy until `ready_at`
/// ([`TransitionOutcome::Deferred`]), during which further writes are
/// [`TransitionOutcome::Rejected`].
#[derive(Clone, Debug)]
pub struct DvfsController {
    pending: Vec<Option<PendingTransition>>,
}

impl DvfsController {
    pub fn new(n_cores: usize) -> Self {
        assert!(n_cores > 0, "DvfsController needs at least one core");
        Self {
            pending: vec![None; n_cores],
        }
    }

    /// Whether `core` has a transition in flight.
    pub fn in_transition(&self, core: usize) -> bool {
        self.pending[core].is_some()
    }

    /// Request a transition for `core` from `current_mhz` to
    /// `target_mhz`, under the drawn `fault`. The caller applies the
    /// frequency itself on [`TransitionOutcome::Applied`]; deferred
    /// transitions land through [`poll`](Self::poll).
    pub fn request(
        &mut self,
        core: usize,
        now: Nanos,
        current_mhz: u32,
        target_mhz: u32,
        fault: DvfsFault,
    ) -> TransitionOutcome {
        if let Some(p) = &self.pending[core] {
            debug_assert!(now < p.ready_at, "pending transition not polled");
            return TransitionOutcome::Rejected;
        }
        if target_mhz == current_mhz {
            return TransitionOutcome::NoOp;
        }
        match fault {
            DvfsFault::None => TransitionOutcome::Applied,
            DvfsFault::Fail => TransitionOutcome::Failed,
            DvfsFault::Spike(extra_ns) => {
                let ready_at = now + extra_ns.max(1);
                self.pending[core] = Some(PendingTransition {
                    target_mhz,
                    ready_at,
                });
                TransitionOutcome::Deferred { ready_at }
            }
        }
    }

    /// Complete `core`'s pending transition if it is due at `now`,
    /// returning the frequency that just took effect.
    pub fn poll(&mut self, core: usize, now: Nanos) -> Option<u32> {
        match &self.pending[core] {
            Some(p) if now >= p.ready_at => {
                let target = p.target_mhz;
                self.pending[core] = None;
                Some(target)
            }
            _ => None,
        }
    }

    /// Earliest pending-transition completion time across all cores
    /// (feeds the engine's next-event computation).
    pub fn next_ready(&self) -> Option<Nanos> {
        self.pending.iter().flatten().map(|p| p.ready_at).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xeon_plan_is_valid_and_matches_paper_range() {
        let p = FreqPlan::xeon_gold_5218r();
        p.validate().unwrap();
        assert_eq!(p.min_mhz(), 800);
        assert_eq!(p.max_mhz(), 2100);
        assert_eq!(p.levels_mhz.len(), 14);
        assert!(p.turbo_mhz > 2100);
    }

    #[test]
    fn snap_picks_nearest_level() {
        let p = FreqPlan::xeon_gold_5218r();
        assert_eq!(p.snap(840), 800);
        assert_eq!(p.snap(860), 900);
        assert_eq!(p.snap(5_000), 2100);
        assert_eq!(p.snap(0), 800);
    }

    #[test]
    fn interpolate_endpoints_and_midpoint() {
        let p = FreqPlan::xeon_gold_5218r();
        assert_eq!(p.interpolate(0.0), 800);
        assert_eq!(p.interpolate(1.0), 2100);
        // midpoint: 800 + 1300*0.5 = 1450 → snaps to 1400 or 1500
        let mid = p.interpolate(0.5);
        assert!(mid == 1400 || mid == 1500);
        // Out-of-range scores clamp.
        assert_eq!(p.interpolate(-3.0), 800);
        assert_eq!(p.interpolate(7.0), 2100);
    }

    #[test]
    fn interpolation_is_monotone_in_score() {
        let p = FreqPlan::xeon_gold_5218r();
        let mut prev = 0;
        for i in 0..=20 {
            let f = p.interpolate(i as f32 / 20.0);
            assert!(f >= prev);
            prev = f;
        }
    }

    #[test]
    fn step_up_walks_levels_then_turbo() {
        let p = FreqPlan::test_plan();
        assert_eq!(p.step_up(1000), Some(1500));
        assert_eq!(p.step_up(2000), Some(2500));
        assert_eq!(p.step_up(2500), None);
    }

    #[test]
    fn validate_rejects_bad_plans() {
        let mut p = FreqPlan::test_plan();
        p.turbo_mhz = 1500;
        assert!(p.validate().is_err());
        let mut p = FreqPlan::test_plan();
        p.levels_mhz = vec![2000, 1000];
        assert!(p.validate().is_err());
        let mut p = FreqPlan::test_plan();
        p.levels_mhz.clear();
        assert!(p.validate().is_err());
        // A reference *below* the max level must be a real level...
        let mut p = FreqPlan::test_plan();
        p.reference_mhz = 1700;
        assert!(p.validate().is_err());
        // ...but a fleet-wide reference above this plan's range is fine
        // (a little core calibrated against the fleet's big cores).
        let mut p = FreqPlan::test_plan();
        p.reference_mhz = 2100;
        assert!(p.validate().is_ok());
    }

    #[test]
    fn is_valid_accepts_levels_and_turbo_only() {
        let p = FreqPlan::test_plan();
        assert!(p.is_valid(1500));
        assert!(p.is_valid(2500));
        assert!(!p.is_valid(1700));
    }

    #[test]
    fn controller_applies_instantly_without_faults() {
        let mut c = DvfsController::new(2);
        assert_eq!(
            c.request(0, 100, 1000, 2000, DvfsFault::None),
            TransitionOutcome::Applied
        );
        assert!(!c.in_transition(0));
        assert_eq!(c.next_ready(), None);
    }

    #[test]
    fn transition_to_current_level_is_a_noop() {
        let mut c = DvfsController::new(1);
        assert_eq!(
            c.request(0, 0, 1500, 1500, DvfsFault::None),
            TransitionOutcome::NoOp
        );
        // Even a drawn fault does not fire on a no-op target.
        assert_eq!(
            c.request(0, 0, 1500, 1500, DvfsFault::Spike(1_000)),
            TransitionOutcome::NoOp
        );
        assert!(!c.in_transition(0));
    }

    #[test]
    fn request_mid_transition_is_rejected_until_ready() {
        let mut c = DvfsController::new(1);
        let out = c.request(0, 1_000, 1000, 2000, DvfsFault::Spike(500));
        assert_eq!(out, TransitionOutcome::Deferred { ready_at: 1_500 });
        assert!(c.in_transition(0));
        // A second write while the first is in flight is rejected —
        // including a write back to the current frequency.
        assert_eq!(
            c.request(0, 1_200, 1000, 1500, DvfsFault::None),
            TransitionOutcome::Rejected
        );
        assert_eq!(
            c.request(0, 1_400, 1000, 1000, DvfsFault::None),
            TransitionOutcome::Rejected
        );
        // Not done early; done exactly at ready_at.
        assert_eq!(c.poll(0, 1_499), None);
        assert_eq!(c.next_ready(), Some(1_500));
        assert_eq!(c.poll(0, 1_500), Some(2000));
        assert!(!c.in_transition(0));
        assert_eq!(c.next_ready(), None);
        // After completion, new requests land again.
        assert_eq!(
            c.request(0, 1_500, 2000, 1000, DvfsFault::None),
            TransitionOutcome::Applied
        );
    }

    #[test]
    fn turbo_entry_under_injected_failure_then_retry() {
        let p = FreqPlan::test_plan();
        let mut c = DvfsController::new(1);
        // The turbo write is dropped: frequency must stay put.
        assert_eq!(
            c.request(0, 0, 2000, p.turbo_mhz, DvfsFault::Fail),
            TransitionOutcome::Failed
        );
        assert!(!c.in_transition(0));
        // Retrying on the next tick (fault-free draw) succeeds.
        assert_eq!(
            c.request(0, 1_000_000, 2000, p.turbo_mhz, DvfsFault::None),
            TransitionOutcome::Applied
        );
    }

    #[test]
    fn next_ready_reports_earliest_across_cores() {
        let mut c = DvfsController::new(3);
        c.request(2, 0, 1000, 1500, DvfsFault::Spike(900));
        c.request(0, 0, 1000, 2000, DvfsFault::Spike(300));
        assert_eq!(c.next_ready(), Some(300));
        assert_eq!(c.poll(0, 300), Some(2000));
        assert_eq!(c.next_ready(), Some(900));
    }
}
