//! Socket power model and energy meter — the RAPL stand-in.
//!
//! Paper §5.2: "The energy consumption is recorded in Machine Specific
//! Register (MSR) and can be read with Intel Running Average Power Limit
//! (RAPL) interface." RAPL exposes a monotone microjoule counter per
//! socket; [`EnergyMeter`] reproduces that interface over the simulated
//! power model.
//!
//! Power model (standard DVFS abstraction — dynamic power is `C·V²·f` and
//! voltage scales roughly linearly with frequency, giving a cubic term):
//!
//! `P_socket = P_static + Σ_cores u_c · (a·f_c³ + b·f_c)`
//!
//! where `u_c` is 1 for a busy core and `idle_activity` (< 1, the cost of a
//! clocked-but-idle core under the `userspace` governor, which does not
//! enter deep C-states) for an idle core. The defaults calibrate to the
//! Xeon Gold 5218R's ~125 W TDP with 20 busy cores at 2.1 GHz.

use crate::clock::Nanos;
use crate::dvfs::MHZ_PER_GHZ;
use serde::{Deserialize, Serialize};

/// Per-socket power model parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PowerModel {
    /// Static/uncore power of the socket in watts.
    pub static_w: f64,
    /// Cubic dynamic coefficient: watts per core per GHz³.
    pub dyn_coef: f64,
    /// Linear dynamic coefficient: watts per core per GHz (leakage and
    /// clock-tree power that scales with f but not f³).
    pub lin_coef: f64,
    /// Activity factor of an idle core relative to a busy one (clock still
    /// toggling at the commanded frequency, pipeline mostly quiescent).
    pub idle_activity: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::xeon_gold_5218r()
    }
}

impl PowerModel {
    /// Calibrated to the paper's socket: 20 cores × 4.5 W at 2.1 GHz busy
    /// + 25 W static/uncore ≈ 115 W, inside the 125 W TDP.
    pub fn xeon_gold_5218r() -> Self {
        Self {
            static_w: 25.0,
            dyn_coef: 0.35,
            lin_coef: 0.60,
            idle_activity: 0.20,
        }
    }

    /// Power draw of one core at `freq_mhz`, busy or idle.
    pub fn core_power_w(&self, freq_mhz: u32, busy: bool) -> f64 {
        let f_ghz = freq_mhz as f64 / MHZ_PER_GHZ;
        let dynamic = self.dyn_coef * f_ghz.powi(3) + self.lin_coef * f_ghz;
        if busy {
            dynamic
        } else {
            dynamic * self.idle_activity
        }
    }

    /// Socket power given each core's `(freq_mhz, busy)` state.
    pub fn socket_power_w(&self, cores: impl Iterator<Item = (u32, bool)>) -> f64 {
        self.static_w
            + cores
                .map(|(f, busy)| self.core_power_w(f, busy))
                .sum::<f64>()
    }
}

/// Monotone energy accumulator with a RAPL-like microjoule counter.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct EnergyMeter {
    joules: f64,
    /// Time over which energy was integrated (for average-power reporting).
    elapsed_ns: Nanos,
}

impl EnergyMeter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Integrate `power_w` over `dt` nanoseconds.
    pub fn accumulate(&mut self, power_w: f64, dt: Nanos) {
        debug_assert!(power_w >= 0.0, "negative power");
        self.joules += power_w * dt as f64 * 1e-9;
        self.elapsed_ns += dt;
    }

    /// Total energy in joules.
    pub fn joules(&self) -> f64 {
        self.joules
    }

    /// RAPL-style monotone counter in microjoules.
    pub fn read_energy_uj(&self) -> u64 {
        (self.joules * 1e6) as u64
    }

    /// Average power over everything integrated so far.
    pub fn average_power_w(&self) -> f64 {
        if self.elapsed_ns == 0 {
            0.0
        } else {
            self.joules / (self.elapsed_ns as f64 * 1e-9)
        }
    }

    pub fn elapsed_ns(&self) -> Nanos {
        self.elapsed_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SECOND;

    #[test]
    fn default_calibration_near_tdp_at_full_load() {
        let m = PowerModel::xeon_gold_5218r();
        let p = m.socket_power_w((0..20).map(|_| (2100u32, true)));
        assert!((100.0..130.0).contains(&p), "full-load power {p}");
    }

    #[test]
    fn idle_low_frequency_power_is_much_lower() {
        let m = PowerModel::xeon_gold_5218r();
        let p = m.socket_power_w((0..20).map(|_| (800u32, false)));
        // Mostly static power.
        assert!(p < 35.0, "idle power {p}");
        assert!(p > m.static_w);
    }

    #[test]
    fn power_is_monotone_in_frequency() {
        let m = PowerModel::default();
        let mut prev = 0.0;
        for f in [800u32, 1200, 1600, 2100, 3000] {
            let p = m.core_power_w(f, true);
            assert!(p > prev);
            prev = p;
        }
    }

    #[test]
    fn turbo_power_is_disproportionate() {
        // Cubic term: going 2.1 → 3.0 GHz (+43%) should cost more than
        // +43% extra power on the dynamic part.
        let m = PowerModel::default();
        let p21 = m.core_power_w(2100, true);
        let p30 = m.core_power_w(3000, true);
        assert!(p30 / p21 > 1.43 * 1.3, "turbo ratio {}", p30 / p21);
    }

    #[test]
    fn meter_integrates_power_over_time() {
        let mut e = EnergyMeter::new();
        e.accumulate(100.0, SECOND); // 100 W for 1 s = 100 J
        assert!((e.joules() - 100.0).abs() < 1e-9);
        assert_eq!(e.read_energy_uj(), 100_000_000);
        assert!((e.average_power_w() - 100.0).abs() < 1e-9);
        e.accumulate(0.0, SECOND);
        assert!((e.average_power_w() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn idle_core_cheaper_than_busy_at_same_frequency() {
        let m = PowerModel::default();
        assert!(m.core_power_w(2100, false) < m.core_power_w(2100, true));
    }
}
