//! Shared-resource contention.
//!
//! §3.1 of the paper: "Since many threads process the requests in the same
//! machine, different threads have contention for memory, cache, and disk
//! … When the RPS changes, the impact of this contention on service time
//! also varies together, which may mislead the prediction."
//!
//! The simulator models this as a multiplicative service-time inflation
//! that grows with the fraction of busy sibling cores:
//!
//! `inflation = 1 + coeff · (busy / total)^exponent`
//!
//! It is recomputed at every event boundary, so a request slows down while
//! the socket is crowded and speeds back up as siblings drain — exactly the
//! load-coupled drift that makes fixed-load service-time models (Fig. 2)
//! inaccurate across load levels.

use serde::{Deserialize, Serialize};

/// Load-dependent service-time inflation model.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ContentionModel {
    /// Inflation at full occupancy (e.g. 0.35 ⇒ 35 % slower when every
    /// core is busy).
    pub coeff: f64,
    /// Shape: 1 = linear in occupancy, 2 = convex (contention bites mostly
    /// near saturation — the realistic choice for shared caches/memory BW).
    pub exponent: f64,
}

impl Default for ContentionModel {
    fn default() -> Self {
        Self {
            coeff: 0.35,
            exponent: 2.0,
        }
    }
}

impl ContentionModel {
    /// No contention at all (useful for analytic unit tests).
    pub fn none() -> Self {
        Self {
            coeff: 0.0,
            exponent: 1.0,
        }
    }

    /// Inflation factor (≥ 1) given busy and total core counts.
    pub fn inflation(&self, busy: usize, total: usize) -> f64 {
        debug_assert!(busy <= total);
        if total == 0 || self.coeff == 0.0 {
            return 1.0;
        }
        let occupancy = busy as f64 / total as f64;
        1.0 + self.coeff * occupancy.powf(self.exponent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_contention_when_idle_or_disabled() {
        let m = ContentionModel::default();
        assert_eq!(m.inflation(0, 20), 1.0);
        assert_eq!(ContentionModel::none().inflation(20, 20), 1.0);
    }

    #[test]
    fn inflation_monotone_in_occupancy() {
        let m = ContentionModel::default();
        let mut prev = 0.0;
        for busy in 0..=20 {
            let i = m.inflation(busy, 20);
            assert!(i >= prev);
            prev = i;
        }
    }

    #[test]
    fn full_occupancy_matches_coeff() {
        let m = ContentionModel {
            coeff: 0.4,
            exponent: 2.0,
        };
        assert!((m.inflation(20, 20) - 1.4).abs() < 1e-12);
    }

    #[test]
    fn convex_shape_bites_near_saturation() {
        let m = ContentionModel {
            coeff: 0.4,
            exponent: 2.0,
        };
        let half = m.inflation(10, 20) - 1.0;
        let full = m.inflation(20, 20) - 1.0;
        assert!(half < full / 2.0, "convexity: {half} vs {full}");
    }

    #[test]
    fn zero_total_cores_is_safe() {
        assert_eq!(ContentionModel::default().inflation(0, 0), 1.0);
    }
}
