//! Measurement: per-request records, latency percentiles, and optional
//! time-series traces (frequency, power, queue depth) for the paper's
//! figures.

use crate::clock::{Nanos, MILLISECOND};
use deeppower_telemetry::LatencyRecorder;
use serde::{Deserialize, Serialize};

/// Completion record for one request.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    pub id: u64,
    pub arrival: Nanos,
    pub started: Nanos,
    pub completed: Nanos,
    /// End-to-end latency, the quantity the SLA constrains (§4.3:
    /// "Latency is defined as the time between when a request arrives at
    /// the server and when it is sent back"). For a retried request this
    /// is measured from the client's *first* submission
    /// (`Request::client_arrival`), matching how the client perceives
    /// it; for first attempts it equals `completed - arrival`.
    pub latency: Nanos,
    pub timed_out: bool,
}

/// Aggregate latency statistics over a set of records.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct LatencyStats {
    pub count: u64,
    pub mean_ns: f64,
    pub p50_ns: Nanos,
    pub p95_ns: Nanos,
    pub p99_ns: Nanos,
    pub max_ns: Nanos,
    pub timeouts: u64,
}

impl LatencyStats {
    /// Compute stats from records (sorts a copy of the latencies).
    pub fn from_records(records: &[RequestRecord]) -> Self {
        if records.is_empty() {
            return Self::default();
        }
        let mut lat: Vec<Nanos> = records.iter().map(|r| r.latency).collect();
        lat.sort_unstable();
        let count = lat.len() as u64;
        let sum: u128 = lat.iter().map(|&x| x as u128).sum();
        Self {
            count,
            mean_ns: sum as f64 / count as f64,
            p50_ns: percentile_sorted(&lat, 0.50),
            p95_ns: percentile_sorted(&lat, 0.95),
            p99_ns: percentile_sorted(&lat, 0.99),
            max_ns: *lat.last().unwrap(),
            timeouts: records.iter().filter(|r| r.timed_out).count() as u64,
        }
    }

    /// Fraction of requests that violated their SLA.
    pub fn timeout_rate(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.timeouts as f64 / self.count as f64
        }
    }

    /// The paper's Fig. 7c "mean/tail rate": mean latency ÷ p99 latency.
    /// Higher is better — it means short requests are not being dragged up
    /// to tail speed (i.e. the policy slows down only where it is safe).
    pub fn mean_tail_ratio(&self) -> f64 {
        if self.p99_ns == 0 {
            0.0
        } else {
            self.mean_ns / self.p99_ns as f64
        }
    }
}

/// Nearest-rank percentile on a sorted slice.
pub fn percentile_sorted(sorted: &[Nanos], q: f64) -> Nanos {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// What to trace during a run. Tracing is off by default: a 360 s run at
/// 1 ms sampling × 20 cores is 7.2 M samples, only the figure benches
/// need it.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceConfig {
    /// Sample per-core frequency every `freq_sample_ns` (0 disables).
    pub freq_sample_ns: Nanos,
    /// Sample socket power & queue depth every `power_sample_ns` (0 disables).
    pub power_sample_ns: Nanos,
    /// Record request start/end marks per core (Fig. 4's green/blue marks).
    pub request_marks: bool,
}

impl TraceConfig {
    /// Millisecond-resolution everything — what Figs. 4, 9, 10, 11 need.
    pub fn millisecond() -> Self {
        Self {
            freq_sample_ns: MILLISECOND,
            power_sample_ns: MILLISECOND,
            request_marks: true,
        }
    }
}

/// One frequency sample: `(time, core, commanded MHz)`.
pub type FreqSample = (Nanos, usize, u32);
/// One power/queue sample: `(time, socket watts, queue length, busy cores)`.
pub type PowerSample = (Nanos, f64, usize, usize);
/// Request lifecycle mark: `(time, core, request id, is_start)`.
pub type RequestMark = (Nanos, usize, u64, bool);

/// Collected time series.
#[derive(Clone, Debug, Default)]
pub struct Traces {
    pub freq: Vec<FreqSample>,
    pub power: Vec<PowerSample>,
    pub marks: Vec<RequestMark>,
}

/// Accumulates per-request records and counters during a run.
#[derive(Clone, Debug, Default)]
pub struct MetricsCollector {
    pub records: Vec<RequestRecord>,
    pub arrived: u64,
    pub completed: u64,
    pub timeouts: u64,
    /// Count of actual frequency transitions applied (a commanded value
    /// equal to the current one is not a transition).
    pub freq_transitions: u64,
    /// Deepest the queue ever got (the open-loop engine's queue is
    /// unbounded, so this is the only backpressure signal a plain run
    /// surfaces).
    pub peak_queue_depth: u64,
    /// Incremental latency aggregator: O(1) insert, O(buckets)
    /// percentile reads, feeding run-so-far snapshots without
    /// re-sorting `records` (see [`quick_stats`](Self::quick_stats)).
    pub latency: LatencyRecorder,
}

impl MetricsCollector {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn on_arrival(&mut self) {
        self.arrived += 1;
    }

    /// Track the queue's high-water mark after a push.
    pub fn observe_queue_depth(&mut self, depth: usize) {
        self.peak_queue_depth = self.peak_queue_depth.max(depth as u64);
    }

    pub fn on_completion(&mut self, rec: RequestRecord) {
        self.completed += 1;
        if rec.timed_out {
            self.timeouts += 1;
        }
        self.latency.record(rec.latency, rec.timed_out);
        self.records.push(rec);
    }

    pub fn stats(&self) -> LatencyStats {
        LatencyStats::from_records(&self.records)
    }

    /// Run-so-far stats from the incremental recorder. Count, mean, max
    /// and timeouts are exact; percentiles are histogram bucket bounds
    /// (within one log-bucket, ≤ 6.25 % relative error). This is the
    /// periodic-snapshot path: unlike [`stats`](Self::stats) it never
    /// clones or re-sorts the record vector.
    pub fn quick_stats(&self) -> LatencyStats {
        LatencyStats {
            count: self.latency.count(),
            mean_ns: self.latency.mean_ns(),
            p50_ns: self.latency.percentile_ns(0.50),
            p95_ns: self.latency.percentile_ns(0.95),
            p99_ns: self.latency.percentile_ns(0.99),
            max_ns: self.latency.max_ns(),
            timeouts: self.latency.timeouts(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(latency: Nanos, timed_out: bool) -> RequestRecord {
        RequestRecord {
            id: 0,
            arrival: 0,
            started: 0,
            completed: latency,
            latency,
            timed_out,
        }
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<Nanos> = (1..=100).collect();
        assert_eq!(percentile_sorted(&v, 0.50), 50);
        assert_eq!(percentile_sorted(&v, 0.99), 99);
        assert_eq!(percentile_sorted(&v, 1.0), 100);
        assert_eq!(percentile_sorted(&v, 0.0), 1);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile_sorted(&[42], 0.99), 42);
    }

    #[test]
    fn stats_from_records() {
        let records: Vec<RequestRecord> = (1..=100).map(|i| rec(i * 1000, i > 99)).collect();
        let s = LatencyStats::from_records(&records);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ns, 50_000);
        assert_eq!(s.p99_ns, 99_000);
        assert_eq!(s.max_ns, 100_000);
        assert_eq!(s.timeouts, 1);
        assert!((s.timeout_rate() - 0.01).abs() < 1e-12);
        assert!((s.mean_ns - 50_500.0).abs() < 1e-6);
    }

    #[test]
    fn mean_tail_ratio_sane() {
        // Uniform latencies → mean/p99 near 0.5; constant latencies → 1.0.
        let uniform: Vec<RequestRecord> = (1..=1000).map(|i| rec(i, false)).collect();
        let s = LatencyStats::from_records(&uniform);
        assert!((s.mean_tail_ratio() - 0.5).abs() < 0.02);
        let constant: Vec<RequestRecord> = (0..100).map(|_| rec(777, false)).collect();
        assert!((LatencyStats::from_records(&constant).mean_tail_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_records_yield_zero_stats() {
        let s = LatencyStats::from_records(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.timeout_rate(), 0.0);
        assert_eq!(s.mean_tail_ratio(), 0.0);
    }

    #[test]
    fn collector_counts() {
        let mut c = MetricsCollector::new();
        c.on_arrival();
        c.on_arrival();
        c.on_completion(rec(10, false));
        c.on_completion(rec(20, true));
        assert_eq!(c.arrived, 2);
        assert_eq!(c.completed, 2);
        assert_eq!(c.timeouts, 1);
        assert_eq!(c.stats().count, 2);
    }

    #[test]
    fn percentile_empty_slice_panics() {
        assert!(std::panic::catch_unwind(|| percentile_sorted(&[], 0.5)).is_err());
    }

    #[test]
    fn percentile_out_of_range_quantile_panics() {
        assert!(std::panic::catch_unwind(|| percentile_sorted(&[1], 1.5)).is_err());
        assert!(std::panic::catch_unwind(|| percentile_sorted(&[1], -0.1)).is_err());
    }

    #[test]
    fn quick_stats_tracks_exact_stats() {
        let mut c = MetricsCollector::new();
        for i in 1..=500u64 {
            c.on_completion(rec(i * 10_000, i % 100 == 0));
        }
        let exact = c.stats();
        let quick = c.quick_stats();
        assert_eq!(quick.count, exact.count);
        assert_eq!(quick.timeouts, exact.timeouts);
        assert_eq!(quick.max_ns, exact.max_ns);
        assert!((quick.mean_ns - exact.mean_ns).abs() < 1e-6);
        for (q, e) in [
            (quick.p50_ns, exact.p50_ns),
            (quick.p95_ns, exact.p95_ns),
            (quick.p99_ns, exact.p99_ns),
        ] {
            let err = (q as f64 - e as f64).abs() / e as f64;
            assert!(err < 0.07, "quick {q} vs exact {e} (err {err})");
        }
    }

    mod percentile_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// p=0 is the minimum, p=1 the maximum, any p within range.
            #[test]
            fn boundaries_hit_extremes(
                values in proptest::collection::vec(0u64..1_000_000, 1..100),
                q in 0.0f64..1.0,
            ) {
                let mut sorted = values;
                sorted.sort_unstable();
                prop_assert_eq!(percentile_sorted(&sorted, 0.0), sorted[0]);
                prop_assert_eq!(percentile_sorted(&sorted, 1.0), *sorted.last().unwrap());
                let p = percentile_sorted(&sorted, q);
                prop_assert!(p >= sorted[0] && p <= *sorted.last().unwrap());
            }

            /// Monotone in the quantile.
            #[test]
            fn monotone_in_q(
                values in proptest::collection::vec(0u64..1_000_000, 1..100),
                q1 in 0.0f64..1.0,
                q2 in 0.0f64..1.0,
            ) {
                let mut sorted = values;
                sorted.sort_unstable();
                let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
                prop_assert!(percentile_sorted(&sorted, lo) <= percentile_sorted(&sorted, hi));
            }

            /// A single element is every percentile.
            #[test]
            fn single_element_is_every_percentile(v in 0u64..1_000_000, q in 0.0f64..1.0) {
                prop_assert_eq!(percentile_sorted(&[v], q), v);
            }

            /// All-ties: every percentile is the tied value.
            #[test]
            fn ties_collapse(v in 0u64..1_000_000, n in 1usize..50, q in 0.0f64..1.0) {
                let sorted = vec![v; n];
                prop_assert_eq!(percentile_sorted(&sorted, q), v);
            }
        }
    }

    mod monitor_merge_props {
        use super::*;
        use deeppower_telemetry::{Event, FleetMonitor, Histogram, MonitorConfig, WindowRollup};
        use proptest::prelude::*;

        proptest! {
            /// When a single monitor window spans the whole run, the
            /// fleet-merged window stats equal the collector's
            /// whole-run `quick_stats` exactly: both read the same
            /// log-bucket histogram, rebuilding from per-node bucket
            /// (upper-bound, count) pairs preserves per-bucket counts,
            /// and both clamp percentiles to the exact extremes.
            #[test]
            fn fleet_merged_window_matches_whole_run_quick_stats(
                lats in proptest::collection::vec(1u64..50_000_000, 1..200),
                nodes in 1u64..4,
            ) {
                let samples: Vec<(u64, bool)> =
                    lats.into_iter().map(|l| (l, l % 5 == 0)).collect();
                let mut collector = MetricsCollector::new();
                let mut hists: Vec<Histogram> =
                    (0..nodes).map(|_| Histogram::new()).collect();
                let mut timeouts = vec![0u64; nodes as usize];
                for (i, &(lat, timed_out)) in samples.iter().enumerate() {
                    collector.on_completion(rec(lat, timed_out));
                    let n = (i as u64 % nodes) as usize;
                    hists[n].record(lat);
                    if timed_out {
                        timeouts[n] += 1;
                    }
                }
                const WINDOW: u64 = 1_000_000_000;
                let mut mon = FleetMonitor::new(MonitorConfig::default());
                for n in 0..nodes as usize {
                    if hists[n].count() == 0 {
                        continue;
                    }
                    let roll = WindowRollup::from_histogram(
                        WINDOW, 0, WINDOW, &hists[n], timeouts[n], 1.0, 1000.0, 0);
                    mon.observe(n as u64, &Event::WindowRollup(roll));
                }
                let report = mon.finish();
                prop_assert_eq!(report.window_series.len(), 1);
                let w = &report.window_series[0];
                let quick = collector.quick_stats();
                prop_assert_eq!(w.count, quick.count);
                prop_assert_eq!(w.timeouts, quick.timeouts);
                prop_assert_eq!(w.max_ns, quick.max_ns);
                prop_assert_eq!(w.p50_ns, quick.p50_ns);
                prop_assert_eq!(w.p95_ns, quick.p95_ns);
                prop_assert_eq!(w.p99_ns, quick.p99_ns);
                prop_assert!(
                    (w.mean_ns - quick.mean_ns).abs() <= 1e-6 * quick.mean_ns.max(1.0));
            }
        }
    }
}
