//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes the failure modes a run should experience —
//! DVFS writes that are dropped or pay an extra-latency spike, cores that
//! transiently stall (a bounded hotplug/offline episode), and sensor
//! faults (stale `MetricsCollector` observations, noisy energy readings).
//! Everything is drawn from seeded [`StdRng`] streams owned by the run's
//! [`FaultState`], one stream per fault axis, so the same
//! `(seed, config, FaultPlan)` replays bit-identically regardless of what
//! the other axes drew. A plan with every knob at zero
//! ([`FaultPlan::none`]) performs no draws and perturbs nothing: the run
//! is bit-identical to one without the fault subsystem.
//!
//! Every *discrete* injected fault is recorded as a typed
//! [`Event::FaultInjected`] plus the `faults.injected` counter;
//! continuous perturbations (per-refresh power-reading noise) are
//! parameters of the sensor model and show up only in counters.

use crate::clock::Nanos;
use deeppower_telemetry::{event, Event, Recorder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Outcome drawn for one attempted DVFS transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DvfsFault {
    /// The write lands instantly (the fault-free behaviour).
    None,
    /// The write is silently dropped: the core keeps its frequency.
    Fail,
    /// The write lands only after an extra latency of this many ns.
    Spike(Nanos),
}

/// Seeded, config-driven description of the faults to inject into a run.
///
/// `Copy` on purpose: it rides inside [`crate::RunOptions`] and job specs
/// without allocation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the fault streams (independent of the workload seed).
    pub seed: u64,
    /// Probability an attempted DVFS transition is silently dropped.
    pub dvfs_fail_prob: f64,
    /// Probability an attempted DVFS transition pays an extra-latency
    /// spike before taking effect (disjoint from `dvfs_fail_prob`; their
    /// sum must be ≤ 1).
    pub dvfs_spike_prob: f64,
    /// Spike duration bounds, ns (uniform draw, inclusive of min).
    pub dvfs_spike_min_ns: Nanos,
    pub dvfs_spike_max_ns: Nanos,
    /// A core stall window opens every `stall_period_ns` (0 disables):
    /// one core — drawn from the stall stream — retires no work and
    /// accepts no dispatches for `stall_duration_ns`.
    pub stall_period_ns: Nanos,
    pub stall_duration_ns: Nanos,
    /// Probability a governor-tick sensor refresh is dropped, leaving the
    /// governor observing the previous (stale) counters.
    pub sensor_drop_prob: f64,
    /// Relative noise on the energy-counter *reading* shown to governors
    /// (uniform in `±frac` per refresh, applied to the energy delta so
    /// the reading stays monotone). Accounting is never perturbed.
    pub power_noise_frac: f64,
}

impl FaultPlan {
    /// No faults: the plan every run uses unless told otherwise.
    pub fn none() -> Self {
        Self {
            seed: 0,
            dvfs_fail_prob: 0.0,
            dvfs_spike_prob: 0.0,
            dvfs_spike_min_ns: 0,
            dvfs_spike_max_ns: 0,
            stall_period_ns: 0,
            stall_duration_ns: 0,
            sensor_drop_prob: 0.0,
            power_noise_frac: 0.0,
        }
    }

    /// Whether any fault axis is enabled.
    pub fn is_active(&self) -> bool {
        self.dvfs_fail_prob > 0.0
            || self.dvfs_spike_prob > 0.0
            || self.stall_period_ns > 0
            || self.sensor_drop_prob > 0.0
            || self.power_noise_frac > 0.0
    }

    /// Validate invariants; called by the engine before a run.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("dvfs_fail_prob", self.dvfs_fail_prob),
            ("dvfs_spike_prob", self.dvfs_spike_prob),
            ("sensor_drop_prob", self.sensor_drop_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be in [0, 1], got {p}"));
            }
        }
        if self.dvfs_fail_prob + self.dvfs_spike_prob > 1.0 {
            return Err("dvfs_fail_prob + dvfs_spike_prob must be <= 1".into());
        }
        if self.dvfs_spike_prob > 0.0 && self.dvfs_spike_max_ns < self.dvfs_spike_min_ns {
            return Err("dvfs_spike_max_ns must be >= dvfs_spike_min_ns".into());
        }
        if self.stall_period_ns > 0 {
            if self.stall_duration_ns == 0 {
                return Err("stall_duration_ns must be positive when stalls are on".into());
            }
            if self.stall_duration_ns >= self.stall_period_ns {
                return Err("stall_duration_ns must be < stall_period_ns".into());
            }
        }
        if !(0.0..1.0).contains(&self.power_noise_frac) {
            return Err(format!(
                "power_noise_frac must be in [0, 1), got {}",
                self.power_noise_frac
            ));
        }
        Ok(())
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// Counter values a governor observes through its [`crate::ServerView`].
/// With sensor faults on, these may be stale or carry a noisy energy
/// reading; the engine's own accounting always uses the true values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SensorReading {
    pub arrived: u64,
    pub completed: u64,
    pub timeouts: u64,
    pub energy_uj: u64,
    /// Requests shed at admission (overload plans only; 0 otherwise).
    pub shed: u64,
    /// Completions after client abandonment (wasted work).
    pub wasted: u64,
}

/// Per-run fault machinery: the seeded streams plus stall/sensor state.
#[derive(Clone, Debug)]
pub struct FaultState {
    plan: FaultPlan,
    n_cores: usize,
    dvfs_rng: StdRng,
    stall_rng: StdRng,
    sensor_rng: StdRng,
    /// Stall windows opened so far (window `k` starts at `(k+1)·period`).
    stall_windows: u64,
    /// Currently stalled core and when it comes back.
    stalled: Option<(usize, Nanos)>,
    /// Last reading served to the governor (sensor faults only).
    latched: Option<SensorReading>,
    /// True energy at the last refresh, and the noisy running reading.
    true_energy_prev: u64,
    noisy_energy: u64,
    /// Discrete faults injected so far.
    pub injected: u64,
}

impl FaultState {
    /// Build the per-run state. Panics on an invalid plan (mirrors the
    /// engine's config validation).
    pub fn new(plan: FaultPlan, n_cores: usize) -> Self {
        plan.validate().expect("invalid fault plan");
        // Decoupled streams per fault axis: each axis's draws are
        // independent of how many draws the others made.
        Self {
            plan,
            n_cores,
            dvfs_rng: StdRng::seed_from_u64(plan.seed.wrapping_mul(3).wrapping_add(0x0d5f5)),
            stall_rng: StdRng::seed_from_u64(plan.seed.wrapping_mul(5).wrapping_add(0x57a11)),
            sensor_rng: StdRng::seed_from_u64(plan.seed.wrapping_mul(7).wrapping_add(0x5e502)),
            stall_windows: 0,
            stalled: None,
            latched: None,
            true_energy_prev: 0,
            noisy_energy: 0,
            injected: 0,
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Record one discrete injected fault: counter + typed event.
    pub fn record(&mut self, rec: &Recorder, t: Nanos, kind: &str, core: i64, magnitude: f64) {
        self.injected += 1;
        rec.add("faults.injected", 1);
        rec.emit(|| {
            Event::FaultInjected(event::FaultInjected {
                t,
                kind: kind.to_string(),
                core,
                magnitude,
            })
        });
    }

    // ---- DVFS faults ----

    /// Draw the fate of one attempted DVFS transition.
    pub fn draw_dvfs(&mut self) -> DvfsFault {
        let (pf, ps) = (self.plan.dvfs_fail_prob, self.plan.dvfs_spike_prob);
        if pf <= 0.0 && ps <= 0.0 {
            return DvfsFault::None;
        }
        let u: f64 = self.dvfs_rng.random();
        if u < pf {
            DvfsFault::Fail
        } else if u < pf + ps {
            let extra = if self.plan.dvfs_spike_max_ns > self.plan.dvfs_spike_min_ns {
                self.dvfs_rng
                    .random_range(self.plan.dvfs_spike_min_ns..self.plan.dvfs_spike_max_ns + 1)
            } else {
                self.plan.dvfs_spike_min_ns
            };
            DvfsFault::Spike(extra.max(1))
        } else {
            DvfsFault::None
        }
    }

    // ---- Core stalls ----

    /// The next time the stall state machine changes (window opens or
    /// closes), if stalls are enabled.
    pub fn next_stall_change(&self) -> Option<Nanos> {
        if self.plan.stall_period_ns == 0 {
            return None;
        }
        match self.stalled {
            Some((_, until)) => Some(until),
            None => Some((self.stall_windows + 1) * self.plan.stall_period_ns),
        }
    }

    /// Advance the stall state machine to `now`, emitting begin/end
    /// events. Call at the top of every engine iteration.
    pub fn poll_stalls(&mut self, now: Nanos, rec: &Recorder) {
        if self.plan.stall_period_ns == 0 {
            return;
        }
        while let Some(t) = self.next_stall_change() {
            if now < t {
                break;
            }
            match self.stalled.take() {
                Some((core, until)) => {
                    rec.emit(|| {
                        Event::FaultInjected(event::FaultInjected {
                            t: until,
                            kind: "core-online".to_string(),
                            core: core as i64,
                            magnitude: 0.0,
                        })
                    });
                }
                None => {
                    let core = self.stall_rng.random_range(0..self.n_cores);
                    let until = t + self.plan.stall_duration_ns;
                    self.stalled = Some((core, until));
                    self.stall_windows += 1;
                    self.record(
                        rec,
                        t,
                        "core-stall",
                        core as i64,
                        self.plan.stall_duration_ns as f64,
                    );
                }
            }
        }
    }

    /// Whether `core` is currently stalled (retires no work, accepts no
    /// dispatches).
    pub fn is_stalled(&self, core: usize) -> bool {
        matches!(self.stalled, Some((c, _)) if c == core)
    }

    // ---- Sensor faults ----

    /// Pass one governor-tick sensor refresh through the fault model:
    /// either the fresh reading (with the energy delta possibly scaled by
    /// noise, keeping the reading monotone) or the previous stale one.
    pub fn observe(&mut self, now: Nanos, fresh: SensorReading, rec: &Recorder) -> SensorReading {
        if self.plan.sensor_drop_prob <= 0.0 && self.plan.power_noise_frac <= 0.0 {
            return fresh;
        }
        if self.latched.is_some() && self.plan.sensor_drop_prob > 0.0 {
            let u: f64 = self.sensor_rng.random();
            if u < self.plan.sensor_drop_prob {
                self.record(rec, now, "sensor-stale", -1, 0.0);
                return self.latched.expect("latched reading present");
            }
        }
        let delta = fresh.energy_uj - self.true_energy_prev;
        let noisy_delta = if self.plan.power_noise_frac > 0.0 {
            let u: f64 = self.sensor_rng.random();
            let factor = 1.0 + self.plan.power_noise_frac * (2.0 * u - 1.0);
            rec.add("faults.power_noise", 1);
            (delta as f64 * factor).round() as u64
        } else {
            delta
        };
        self.true_energy_prev = fresh.energy_uj;
        self.noisy_energy += noisy_delta;
        let served = SensorReading {
            energy_uj: self.noisy_energy,
            ..fresh
        };
        self.latched = Some(served);
        served
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reading(e: u64) -> SensorReading {
        SensorReading {
            arrived: 10,
            completed: 8,
            timeouts: 1,
            energy_uj: e,
            shed: 0,
            wasted: 0,
        }
    }

    #[test]
    fn inactive_plan_is_transparent() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        plan.validate().unwrap();
        let mut st = FaultState::new(plan, 4);
        assert_eq!(st.draw_dvfs(), DvfsFault::None);
        assert_eq!(st.next_stall_change(), None);
        assert!(!st.is_stalled(0));
        let r = reading(12345);
        assert_eq!(st.observe(0, r, &Recorder::disabled()), r);
        assert_eq!(st.injected, 0);
    }

    #[test]
    fn validate_rejects_bad_plans() {
        let mut p = FaultPlan::none();
        p.dvfs_fail_prob = 1.5;
        assert!(p.validate().is_err());
        let mut p = FaultPlan::none();
        p.dvfs_fail_prob = 0.7;
        p.dvfs_spike_prob = 0.7;
        assert!(p.validate().is_err());
        let mut p = FaultPlan::none();
        p.dvfs_spike_prob = 0.1;
        p.dvfs_spike_min_ns = 10;
        p.dvfs_spike_max_ns = 5;
        assert!(p.validate().is_err());
        let mut p = FaultPlan::none();
        p.stall_period_ns = 100;
        p.stall_duration_ns = 100;
        assert!(p.validate().is_err());
        let mut p = FaultPlan::none();
        p.power_noise_frac = 1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn dvfs_draws_are_deterministic_per_seed() {
        let plan = FaultPlan {
            seed: 9,
            dvfs_fail_prob: 0.3,
            dvfs_spike_prob: 0.3,
            dvfs_spike_min_ns: 1_000,
            dvfs_spike_max_ns: 9_000,
            ..FaultPlan::none()
        };
        let mut a = FaultState::new(plan, 4);
        let mut b = FaultState::new(plan, 4);
        let seq_a: Vec<DvfsFault> = (0..64).map(|_| a.draw_dvfs()).collect();
        let seq_b: Vec<DvfsFault> = (0..64).map(|_| b.draw_dvfs()).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(|f| matches!(f, DvfsFault::Fail)));
        assert!(seq_a.iter().any(|f| matches!(f, DvfsFault::Spike(_))));
        for f in &seq_a {
            if let DvfsFault::Spike(ns) = f {
                assert!((1_000..=9_000).contains(ns));
            }
        }
    }

    #[test]
    fn stall_windows_open_and_close_on_schedule() {
        let plan = FaultPlan {
            seed: 1,
            stall_period_ns: 1_000,
            stall_duration_ns: 200,
            ..FaultPlan::none()
        };
        let rec = Recorder::ring(64);
        let mut st = FaultState::new(plan, 3);
        assert_eq!(st.next_stall_change(), Some(1_000));
        st.poll_stalls(999, &rec);
        assert!((0..3).all(|c| !st.is_stalled(c)));
        st.poll_stalls(1_000, &rec);
        let stalled: Vec<usize> = (0..3).filter(|&c| st.is_stalled(c)).collect();
        assert_eq!(stalled.len(), 1);
        assert_eq!(st.next_stall_change(), Some(1_200));
        st.poll_stalls(1_200, &rec);
        assert!((0..3).all(|c| !st.is_stalled(c)));
        // Next window opens one period after the previous one.
        assert_eq!(st.next_stall_change(), Some(2_000));
        let events = rec.drain_events();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds, vec!["FaultInjected", "FaultInjected"]);
        assert_eq!(rec.counter("faults.injected"), 1); // only the stall begin
    }

    #[test]
    fn sensor_drops_serve_stale_readings() {
        let plan = FaultPlan {
            seed: 3,
            sensor_drop_prob: 0.5,
            ..FaultPlan::none()
        };
        let rec = Recorder::ring(1024);
        let mut st = FaultState::new(plan, 2);
        let mut served = Vec::new();
        for i in 0..200u64 {
            served.push(st.observe(i, reading(i * 100), &rec));
        }
        // The very first observation is always fresh.
        assert_eq!(served[0], reading(0));
        // Some observations must be stale (equal to their predecessor).
        let stale = served.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(stale > 20, "expected stale readings, got {stale}");
        assert_eq!(st.injected as usize, stale);
        // Energy readings stay monotone.
        assert!(served.windows(2).all(|w| w[0].energy_uj <= w[1].energy_uj));
    }

    #[test]
    fn power_noise_keeps_energy_monotone_and_close() {
        let plan = FaultPlan {
            seed: 5,
            power_noise_frac: 0.2,
            ..FaultPlan::none()
        };
        let rec = Recorder::disabled();
        let mut st = FaultState::new(plan, 2);
        let mut last = 0u64;
        for i in 1..=500u64 {
            let r = st.observe(i, reading(i * 1_000), &rec);
            assert!(r.energy_uj >= last);
            last = r.energy_uj;
        }
        // Zero-mean noise: the cumulative reading stays within the band.
        let true_total = 500_000f64;
        assert!((last as f64 - true_total).abs() < true_total * 0.2);
    }
}
