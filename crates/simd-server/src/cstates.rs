//! CPU idle (sleep) states — the paper's future work (§6).
//!
//! "Entering the sleep state significantly reduces the power consumption
//! of a core, but returning it to normal state takes a considerable amount
//! of time (i.e. about 100us for C6 state). … The integration of sleep
//! states into our methods represents a significant challenge. We leave
//! this to future work."
//!
//! This module models that trade-off so sleep-aware governors (DynSleep-
//! or µDPM-style, and DeepPower's own sleep extension in
//! `deeppower-core::sleep`) can be built and evaluated: an idle core may
//! be commanded into a [`CState`], where it draws a small fixed power
//! instead of its clocked-idle power; dispatching a request to a sleeping
//! core first pays the state's wake latency.

/// One idle state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CState {
    pub name: &'static str,
    /// Residual core power while in this state, watts.
    pub power_w: f64,
    /// Latency to return to C0 and start executing, nanoseconds.
    pub wake_ns: u64,
}

/// The set of idle states a core may enter (ordered shallow → deep:
/// increasing savings, increasing wake latency).
#[derive(Clone, Debug, PartialEq)]
pub struct CStatePlan {
    pub states: Vec<CState>,
}

impl CStatePlan {
    /// No sleep states available (the paper's main evaluation setting —
    /// the `userspace` governor keeps cores clocked).
    pub fn none() -> Self {
        Self { states: Vec::new() }
    }

    /// Xeon-like plan: C1 (halt) and C6 (deep), with the paper's ~100 µs
    /// C6 wake latency.
    pub fn xeon() -> Self {
        Self {
            states: vec![
                // Residual powers sit below clocked idle at any frequency
                // (clocked idle at 800 MHz ≈ 0.13 W in the default model):
                // C1 halts the pipeline, C6 power-gates the core.
                CState {
                    name: "C1",
                    power_w: 0.08,
                    wake_ns: 2_000,
                },
                CState {
                    name: "C6",
                    power_w: 0.01,
                    wake_ns: 100_000,
                },
            ],
        }
    }

    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Validate ordering invariants: deeper states save more and wake
    /// slower.
    pub fn validate(&self) -> Result<(), String> {
        for w in self.states.windows(2) {
            if w[1].power_w >= w[0].power_w {
                return Err("deeper C-state must draw less power".into());
            }
            if w[1].wake_ns <= w[0].wake_ns {
                return Err("deeper C-state must wake slower".into());
            }
        }
        if self.states.iter().any(|s| s.power_w < 0.0) {
            return Err("negative residual power".into());
        }
        Ok(())
    }

    pub fn get(&self, idx: usize) -> Option<&CState> {
        self.states.get(idx)
    }

    /// Index of the deepest state, if any.
    pub fn deepest(&self) -> Option<usize> {
        self.states.len().checked_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xeon_plan_is_valid_and_matches_paper_wake_latency() {
        let p = CStatePlan::xeon();
        p.validate().unwrap();
        let c6 = p.get(p.deepest().unwrap()).unwrap();
        assert_eq!(c6.name, "C6");
        assert_eq!(c6.wake_ns, 100_000, "paper: ~100 us for C6");
        assert!(c6.power_w < p.get(0).unwrap().power_w);
    }

    #[test]
    fn empty_plan_is_valid() {
        let p = CStatePlan::none();
        assert!(p.is_empty());
        p.validate().unwrap();
        assert_eq!(p.deepest(), None);
    }

    #[test]
    fn validate_rejects_disordered_plans() {
        let mut p = CStatePlan::xeon();
        p.states.swap(0, 1);
        assert!(p.validate().is_err());
        let p = CStatePlan {
            states: vec![
                CState {
                    name: "a",
                    power_w: 1.0,
                    wake_ns: 10,
                },
                CState {
                    name: "b",
                    power_w: 0.5,
                    wake_ns: 5,
                },
            ],
        };
        assert!(p.validate().is_err());
    }
}
