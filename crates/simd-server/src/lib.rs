//! # deeppower-simd-server
//!
//! An event-driven simulator of a multi-core latency-critical server with
//! per-core DVFS — the stand-in for the paper's physical testbed (a
//! 2-socket Intel Xeon Gold 5218R with the Linux `userspace` cpufreq
//! governor and RAPL energy counters; see DESIGN.md for the substitution
//! argument).
//!
//! The model matches §2.1/§4.1 of the paper:
//!
//! * Requests arrive into a single FIFO queue; `n` worker threads (one per
//!   physical core) fetch and process them **without preemption**.
//! * Each core's frequency can be set independently, in microseconds, to
//!   one of a discrete set of levels (0.8–2.1 GHz in 100 MHz steps) or to a
//!   turbo level.
//! * A request's service time scales with core frequency through a
//!   frequency-sensitivity split (compute-bound fraction scales, the
//!   memory-bound remainder does not) and inflates under contention when
//!   many sibling cores are busy — the effect §3.1 shows breaks
//!   fixed-load service-time predictors.
//! * Socket power is static + per-core dynamic (`a·f³ + b·f`), integrated
//!   exactly over every inter-event interval into joules, exposed through a
//!   RAPL-like microjoule counter.
//!
//! Control planes plug in through the [`Governor`] trait: the engine calls
//! `on_tick` every control period (the paper's `ShortTime`) and
//! `on_request_start` whenever a core picks up a request (the hook
//! request-level baselines like ReTail and Gemini need).
//!
//! The engine is fully deterministic: identical inputs produce identical
//! traces, energies and latencies.

pub mod clock;
pub mod contention;
pub mod cstates;
pub mod dvfs;
pub mod faults;
pub mod governor;
pub mod metrics;
pub mod overload;
pub mod power;
pub mod request;
pub mod server;

pub use clock::{Nanos, MICROSECOND, MILLISECOND, SECOND};
pub use contention::ContentionModel;
pub use cstates::{CState, CStatePlan};
pub use dvfs::{DvfsController, FreqPlan, TransitionOutcome, MHZ_PER_GHZ};
pub use faults::{DvfsFault, FaultPlan, FaultState, SensorReading};
pub use governor::{CoreView, FixedFrequency, FreqCommands, Governor, RunningView, ServerView};
pub use metrics::{LatencyStats, MetricsCollector, RequestRecord, TraceConfig, Traces};
pub use overload::{
    AdmissionController, AdmissionMode, AdmitAll, CoDelAdmission, DrlAdmission, OverloadCounters,
    OverloadPlan, OverloadState, QueuePolicy, StaticThreshold, SYNTH_ID_BASE,
};
pub use power::{EnergyMeter, PowerModel};
pub use request::Request;
pub use server::{RunOptions, Server, ServerConfig, Session, SimResult};
