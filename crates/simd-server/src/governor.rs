//! The control-plane interface: everything a power-management policy may
//! observe and command.
//!
//! A [`Governor`] is the simulator's equivalent of "the process that writes
//! `scaling_setspeed`": DeepPower's thread controller, ReTail, Gemini and
//! the fixed/max baselines all implement this trait. The engine calls
//! [`Governor::on_tick`] every control period (the paper's `ShortTime`,
//! 1 ms by default) and [`Governor::on_request_start`] whenever a core
//! dequeues a request — the hook the request-granularity baselines need.
//!
//! Observability is deliberately restricted to what a real deployment can
//! see: queue contents, per-core elapsed processing time, request
//! *features*, cumulative counters, and the RAPL energy counter. Intrinsic
//! service times (`work_ref_ns`) are never exposed.

use crate::clock::Nanos;
use crate::dvfs::FreqPlan;
use crate::request::Request;
use std::collections::VecDeque;

/// What a governor may see about one in-flight request.
#[derive(Clone, Copy, Debug)]
pub struct RunningView<'a> {
    /// When the request arrived at the server queue.
    pub arrival: Nanos,
    /// When this core started processing it.
    pub started: Nanos,
    /// Observable request features.
    pub features: &'a [f32],
    /// The request SLA.
    pub sla: Nanos,
}

/// What a governor may see about one core.
#[derive(Clone, Copy, Debug)]
pub struct CoreView<'a> {
    /// Commanded frequency in MHz.
    pub freq_mhz: u32,
    /// The request being processed, if any.
    pub running: Option<RunningView<'a>>,
    /// Which C-state the core currently sleeps in (`None` = C0/awake).
    /// Always `None` while a request is running.
    pub sleeping: Option<usize>,
}

impl CoreView<'_> {
    pub fn busy(&self) -> bool {
        self.running.is_some()
    }
}

/// Snapshot of server state handed to the governor.
#[derive(Debug)]
pub struct ServerView<'a> {
    pub now: Nanos,
    /// Queued (not yet started) requests in FIFO order.
    pub queue: &'a VecDeque<Request>,
    pub cores: &'a [CoreView<'a>],
    /// Cumulative counters since the run began.
    pub total_arrived: u64,
    pub total_completed: u64,
    pub total_timeouts: u64,
    /// Requests shed at admission (0 unless an overload plan is active).
    pub total_shed: u64,
    /// Completions whose client had already abandoned (wasted work).
    pub total_wasted: u64,
    /// RAPL-style monotone energy counter in microjoules.
    pub energy_uj: u64,
}

impl ServerView<'_> {
    /// Number of currently busy cores.
    pub fn busy_cores(&self) -> usize {
        self.cores.iter().filter(|c| c.busy()).count()
    }

    /// Queue length (requests waiting, not counting in-service).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

/// Frequency commands issued by a governor during one callback.
///
/// Commands are validated and applied by the engine after the callback
/// returns; the last write to a core wins. Invalid frequencies are snapped
/// to the nearest legal level.
#[derive(Debug)]
pub struct FreqCommands {
    targets: Vec<Option<u32>>,
    sleep_targets: Vec<Option<usize>>,
    admission: Option<f32>,
    turbo_mhz: u32,
    min_mhz: u32,
    max_mhz: u32,
}

impl FreqCommands {
    /// Build a command buffer for `n_cores` cores against `plan` (the
    /// engine does this internally; public for governor micro-benchmarks
    /// and tests).
    pub fn new(n_cores: usize, plan: &FreqPlan) -> Self {
        Self {
            targets: vec![None; n_cores],
            sleep_targets: vec![None; n_cores],
            admission: None,
            turbo_mhz: plan.turbo_mhz,
            min_mhz: plan.min_mhz(),
            max_mhz: plan.max_mhz(),
        }
    }

    /// The plan's nominal (non-turbo) frequency band, in MHz.
    pub fn freq_band_mhz(&self) -> (u32, u32) {
        (self.min_mhz, self.max_mhz)
    }

    /// Algorithm 1 line 9 against the *actual* plan band:
    /// `f_min + (f_max − f_min) · score` in MHz (the engine snaps the
    /// result to the nearest legal level). Governors must use this
    /// instead of hardcoding a frequency range so any [`FreqPlan`] gets
    /// correct commands.
    pub fn interpolate(&self, score: f32) -> u32 {
        let score = score.clamp(0.0, 1.0) as f64;
        let f = self.min_mhz as f64 + (self.max_mhz - self.min_mhz) as f64 * score;
        f.round() as u32
    }

    #[allow(dead_code)]
    pub(crate) fn reset(&mut self) {
        self.targets.iter_mut().for_each(|t| *t = None);
    }

    /// Command core `core_id` to `mhz` (snapped to a legal level by the
    /// engine if needed).
    pub fn set(&mut self, core_id: usize, mhz: u32) {
        self.targets[core_id] = Some(mhz);
    }

    /// Peek the pending command for `core_id` without consuming it.
    /// Wrapper governors (e.g. a safety layer) use this to observe what
    /// the wrapped policy commanded before deciding to override it.
    pub fn get(&self, core_id: usize) -> Option<u32> {
        self.targets[core_id]
    }

    /// Command core `core_id` to the turbo frequency (Algorithm 1 line 7).
    pub fn set_turbo(&mut self, core_id: usize) {
        self.targets[core_id] = Some(self.turbo_mhz);
    }

    /// Command every core to the same frequency.
    pub fn set_all(&mut self, mhz: u32) {
        self.targets.iter_mut().for_each(|t| *t = Some(mhz));
    }

    pub(crate) fn take(&mut self, core_id: usize) -> Option<u32> {
        self.targets[core_id].take()
    }

    /// Command an *idle* core into C-state `level` (an index into the
    /// server's [`crate::CStatePlan`]). Ignored for busy cores; the core
    /// wakes automatically — paying the state's wake latency — when the
    /// engine dispatches a request to it.
    pub fn set_sleep(&mut self, core_id: usize, level: usize) {
        self.sleep_targets[core_id] = Some(level);
    }

    pub(crate) fn take_sleep(&mut self, core_id: usize) -> Option<usize> {
        self.sleep_targets[core_id].take()
    }

    /// Command an admission threshold as a fraction of the admission
    /// scale (clamped to `[0, 1]`). Consumed only by runs whose
    /// [`crate::OverloadPlan`] uses [`crate::AdmissionMode::Drl`];
    /// ignored everywhere else. Last write wins.
    ///
    /// The value is sanitized *here*, before it can reach the queue or a
    /// step CSV: non-finite input (a NaN-poisoned actor head) falls back
    /// to fully open (`1.0`), and finite input is clamped — `f32::clamp`
    /// alone would pass NaN straight through.
    pub fn set_admission(&mut self, frac: f32) {
        let frac = if frac.is_finite() { frac } else { 1.0 };
        self.admission = Some(frac.clamp(0.0, 1.0));
    }

    /// Peek the pending admission command without consuming it.
    pub fn get_admission(&self) -> Option<f32> {
        self.admission
    }

    pub(crate) fn take_admission(&mut self) -> Option<f32> {
        self.admission.take()
    }

    pub fn n_cores(&self) -> usize {
        self.targets.len()
    }
}

/// A power-management policy.
///
/// Default method bodies are no-ops so minimal governors (e.g. a fixed
/// frequency) only implement what they use.
pub trait Governor {
    /// Called every control tick (`RunOptions::tick_ns`).
    fn on_tick(&mut self, _view: &ServerView<'_>, _cmds: &mut FreqCommands) {}

    /// Called when `core_id` dequeues `req` and is about to start
    /// processing it. The view reflects the state *after* the dequeue.
    fn on_request_start(
        &mut self,
        _view: &ServerView<'_>,
        _core_id: usize,
        _req: &Request,
        _cmds: &mut FreqCommands,
    ) {
    }

    /// Called when `core_id` finishes `req` with the given latency.
    fn on_request_complete(
        &mut self,
        _now: Nanos,
        _core_id: usize,
        _req: &Request,
        _latency: Nanos,
    ) {
    }

    /// Called exactly once when the run terminates (all arrivals served,
    /// queue drained). The view reflects the final server state; no
    /// commands can be issued. Learning governors use this to flush
    /// their last pending transition as terminal.
    fn on_run_end(&mut self, _view: &ServerView<'_>) {}

    /// Human-readable policy name (reporting).
    fn name(&self) -> &str {
        "unnamed"
    }

    /// Whether the policy is currently producing well-formed (finite)
    /// actions. Learning governors override this to report `false` after
    /// emitting a non-finite action; a safety wrapper polls it every tick
    /// and falls back to max frequency while it returns `false`.
    fn healthy(&self) -> bool {
        true
    }
}

/// Forwarding impl so wrapper governors can be built over a borrowed
/// `&mut dyn Governor` (the harness wraps heterogeneous policies this
/// way without boxing).
impl<G: Governor + ?Sized> Governor for &mut G {
    fn on_tick(&mut self, view: &ServerView<'_>, cmds: &mut FreqCommands) {
        (**self).on_tick(view, cmds);
    }

    fn on_request_start(
        &mut self,
        view: &ServerView<'_>,
        core_id: usize,
        req: &Request,
        cmds: &mut FreqCommands,
    ) {
        (**self).on_request_start(view, core_id, req, cmds);
    }

    fn on_request_complete(&mut self, now: Nanos, core_id: usize, req: &Request, latency: Nanos) {
        (**self).on_request_complete(now, core_id, req, latency);
    }

    fn on_run_end(&mut self, view: &ServerView<'_>) {
        (**self).on_run_end(view);
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn healthy(&self) -> bool {
        (**self).healthy()
    }
}

/// Runs every core at a fixed frequency forever. The paper's "baseline
/// without any power management" is `FixedFrequency` at the reference
/// (max nominal) frequency.
#[derive(Clone, Copy, Debug)]
pub struct FixedFrequency {
    pub mhz: u32,
}

impl Governor for FixedFrequency {
    fn on_tick(&mut self, _view: &ServerView<'_>, cmds: &mut FreqCommands) {
        cmds.set_all(self.mhz);
    }

    fn name(&self) -> &str {
        "fixed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freq_commands_last_write_wins_and_take_clears() {
        let plan = FreqPlan::test_plan();
        let mut cmds = FreqCommands::new(3, &plan);
        cmds.set(1, 1000);
        cmds.set(1, 1500);
        cmds.set_turbo(2);
        assert_eq!(cmds.take(0), None);
        assert_eq!(cmds.take(1), Some(1500));
        assert_eq!(cmds.take(1), None);
        assert_eq!(cmds.take(2), Some(2500));
    }

    #[test]
    fn set_all_covers_every_core() {
        let plan = FreqPlan::test_plan();
        let mut cmds = FreqCommands::new(4, &plan);
        cmds.set_all(2000);
        for i in 0..4 {
            assert_eq!(cmds.take(i), Some(2000));
        }
    }

    #[test]
    fn set_admission_clamps_and_sanitizes_nan() {
        let plan = FreqPlan::test_plan();
        let mut cmds = FreqCommands::new(1, &plan);
        cmds.set_admission(0.42);
        assert_eq!(cmds.get_admission(), Some(0.42));
        cmds.set_admission(7.0);
        assert_eq!(cmds.get_admission(), Some(1.0));
        cmds.set_admission(-3.0);
        assert_eq!(cmds.get_admission(), Some(0.0));
        cmds.set_admission(f32::NAN);
        assert_eq!(cmds.get_admission(), Some(1.0));
        cmds.set_admission(f32::NEG_INFINITY);
        assert_eq!(cmds.get_admission(), Some(1.0));
    }

    #[test]
    fn view_helpers_count_busy_cores() {
        let running = RunningView {
            arrival: 0,
            started: 0,
            features: &[],
            sla: 0,
        };
        let cores = [
            CoreView {
                freq_mhz: 800,
                running: Some(running),
                sleeping: None,
            },
            CoreView {
                freq_mhz: 800,
                running: None,
                sleeping: Some(1),
            },
        ];
        let empty_queue = VecDeque::new();
        let view = ServerView {
            now: 0,
            queue: &empty_queue,
            cores: &cores,
            total_arrived: 0,
            total_completed: 0,
            total_timeouts: 0,
            total_shed: 0,
            total_wasted: 0,
            energy_uj: 0,
        };
        assert_eq!(view.busy_cores(), 1);
        assert_eq!(view.queue_len(), 0);
    }
}
