//! Simulated time.
//!
//! All simulation time is integer nanoseconds (`u64`), which keeps event
//! ordering exact and replayable — no floating-point drift across the
//! hundreds of millions of events in a 360-second run.

/// Simulated time or duration in nanoseconds.
pub type Nanos = u64;

/// One microsecond in [`Nanos`].
pub const MICROSECOND: Nanos = 1_000;
/// One millisecond in [`Nanos`].
pub const MILLISECOND: Nanos = 1_000_000;
/// One second in [`Nanos`].
pub const SECOND: Nanos = 1_000_000_000;

/// Convert nanoseconds to fractional milliseconds (reporting only).
pub fn ns_to_ms(ns: Nanos) -> f64 {
    ns as f64 / MILLISECOND as f64
}

/// Convert nanoseconds to fractional seconds (reporting only).
pub fn ns_to_s(ns: Nanos) -> f64 {
    ns as f64 / SECOND as f64
}

/// Convert fractional milliseconds to nanoseconds (rounding to nearest).
pub fn ms_to_ns(ms: f64) -> Nanos {
    (ms * MILLISECOND as f64).round() as Nanos
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_relationships() {
        assert_eq!(MILLISECOND, 1_000 * MICROSECOND);
        assert_eq!(SECOND, 1_000 * MILLISECOND);
    }

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(ns_to_ms(1_500_000), 1.5);
        assert_eq!(ms_to_ns(1.5), 1_500_000);
        assert_eq!(ns_to_s(2 * SECOND), 2.0);
        assert_eq!(ms_to_ns(ns_to_ms(123_456_789)), 123_456_789);
    }
}
