//! CLI error handling: every bad-input path must exit non-zero with a
//! one-line diagnostic on stderr — never a panic, never a zero exit
//! with garbage on stdout. Exercised against the real binary via
//! `std::process::Command`, so the whole arg-parse → dispatch → error
//! reporting chain is covered.

use std::path::Path;
use std::process::{Command, Output};

fn deeppower(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_deeppower"))
        .args(args)
        .output()
        .expect("spawn deeppower binary")
}

/// The failure contract: non-zero exit, a diagnostic on stderr, no panic.
fn assert_clean_failure(out: &Output, expect_in_stderr: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "expected non-zero exit, got {:?}; stderr: {stderr}",
        out.status
    );
    assert!(
        !stderr.contains("panicked"),
        "CLI panicked instead of reporting an error: {stderr}"
    );
    assert!(
        stderr.contains(expect_in_stderr),
        "stderr missing `{expect_in_stderr}`:\n{stderr}"
    );
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = deeppower(&[]);
    assert_clean_failure(&out, "USAGE");
}

#[test]
fn unknown_subcommand_fails() {
    let out = deeppower(&["frobnicate"]);
    assert_clean_failure(&out, "unknown command `frobnicate`");
}

#[test]
fn missing_policy_file_fails() {
    let out = deeppower(&["eval", "--policy", "/nonexistent/policy.json"]);
    assert_clean_failure(&out, "");
    // The message should mention the underlying I/O failure, not panic.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("No such file") || stderr.contains("not found"),
        "stderr should explain the missing file:\n{stderr}"
    );
}

#[test]
fn malformed_policy_file_fails() {
    let dir = std::env::temp_dir().join("deeppower-cli-errors");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("garbage-policy.json");
    std::fs::write(&path, "{ this is not a policy").unwrap();
    let out = deeppower(&["eval", "--policy", path.to_str().unwrap()]);
    assert_clean_failure(&out, "");
    std::fs::remove_file(&path).ok();
}

#[test]
fn bad_flag_value_fails() {
    let out = deeppower(&["grid", "--apps", "xapian", "--duration-s", "soon"]);
    assert_clean_failure(&out, "bad value for --duration-s");
}

#[test]
fn unknown_app_fails() {
    let out = deeppower(&["robustness", "--app", "doom"]);
    assert_clean_failure(&out, "unknown app `doom`");
}

#[test]
fn unknown_governor_fails() {
    let out = deeppower(&["robustness", "--app", "xapian", "--governors", "psychic"]);
    assert_clean_failure(&out, "unknown governor `psychic`");
}

#[test]
fn flag_missing_value_fails() {
    let out = deeppower(&["grid", "--apps"]);
    assert_clean_failure(&out, "needs a value");
}

#[test]
fn positional_argument_is_rejected() {
    let out = deeppower(&["grid", "xapian"]);
    assert_clean_failure(&out, "unexpected argument `xapian`");
}

#[test]
fn monitor_without_input_fails() {
    let out = deeppower(&["monitor"]);
    assert_clean_failure(&out, "monitor needs --input");
}

#[test]
fn monitor_missing_artifact_fails() {
    let out = deeppower(&["monitor", "--input", "/nonexistent/node00.jsonl"]);
    assert_clean_failure(&out, "cannot read telemetry artifact");
}

#[test]
fn monitor_corrupt_artifact_fails() {
    let dir = std::env::temp_dir().join("deeppower-cli-errors");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("truncated.jsonl");
    // A truncated write: valid first line, garbage second.
    std::fs::write(&path, "{\"t\":0,\"kind\":\"nope\"\n{half a li").unwrap();
    let out = deeppower(&["monitor", "--input", path.to_str().unwrap()]);
    assert_clean_failure(&out, "corrupt artifact");
    // The diagnostic must point at the offending line.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 1"), "no line number in:\n{stderr}");
    std::fs::remove_file(&path).ok();
}

/// An artifact with events but no `WindowRollup`s (e.g. recorded before
/// windows existed, or with windowing disabled) has nothing for the
/// monitor to evaluate — that is an error, not an empty healthy report.
#[test]
fn monitor_artifact_without_rollups_fails() {
    let dir = std::env::temp_dir().join("deeppower-cli-errors");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("no-rollups.jsonl");
    std::fs::write(
        &path,
        "{\"LatencySnapshot\":{\"t\":1000000000,\"count\":10,\"p50_ns\":1,\"p95_ns\":2,\"p99_ns\":3,\"timeouts\":0}}\n",
    )
    .unwrap();
    let out = deeppower(&["monitor", "--input", path.to_str().unwrap()]);
    assert_clean_failure(&out, "no window rollups");
    std::fs::remove_file(&path).ok();
}

#[test]
fn monitor_bad_slo_spec_fails() {
    let dir = std::env::temp_dir().join("deeppower-cli-errors");
    std::fs::create_dir_all(&dir).unwrap();
    let slo = dir.join("bad-slo.json");
    std::fs::write(&slo, "{ not an slo").unwrap();
    // The SLO parse happens before artifacts are opened, so the input
    // path never being read is fine here.
    let out = deeppower(&[
        "monitor",
        "--input",
        "/nonexistent/node00.jsonl",
        "--slo",
        slo.to_str().unwrap(),
    ]);
    assert_clean_failure(&out, "bad SLO spec");
    std::fs::remove_file(&slo).ok();
}

#[test]
fn robustness_unknown_scenario_fails() {
    let out = deeppower(&[
        "robustness",
        "--app",
        "masstree",
        "--scenario",
        "retry-strom",
    ]);
    assert_clean_failure(
        &out,
        "unknown scenario `retry-strom` (none|dvfs|sensor|stall|all|retry-storm|flash-crowd|collapse)",
    );
    assert_one_line_error(&out);
}

#[test]
fn robustness_unknown_queue_policy_fails() {
    let out = deeppower(&[
        "robustness",
        "--app",
        "masstree",
        "--queue-policy",
        "random",
    ]);
    assert_clean_failure(
        &out,
        "unknown queue policy `random` (fifo|lifo|drop-newest|drop-oldest)",
    );
    assert_one_line_error(&out);
}

#[test]
fn robustness_zero_queue_capacity_fails() {
    let out = deeppower(&["robustness", "--app", "masstree", "--queue-capacity", "0"]);
    assert_clean_failure(&out, "queue capacity must be at least 1");
    assert_one_line_error(&out);
}

#[test]
fn robustness_unparseable_queue_capacity_fails() {
    let out = deeppower(&["robustness", "--app", "masstree", "--queue-capacity", "-3"]);
    assert_clean_failure(&out, "bad value for --queue-capacity");
    assert_one_line_error(&out);
}

#[test]
fn robustness_retry_prob_out_of_range_fails() {
    for bad in ["1.5", "-0.1"] {
        let out = deeppower(&["robustness", "--app", "masstree", "--retry-prob", bad]);
        assert_clean_failure(&out, "retry probability must be within [0, 1]");
        assert_one_line_error(&out);
    }
    let out = deeppower(&["robustness", "--app", "masstree", "--retry-prob", "often"]);
    assert_clean_failure(&out, "bad value for --retry-prob");
    assert_one_line_error(&out);
}

/// The diagnostic itself is a single `error: ...` line (the usage block
/// that follows is separated by a blank line).
fn assert_one_line_error(out: &Output) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    let first = stderr.lines().next().unwrap_or("");
    assert!(
        first.starts_with("[error] "),
        "diagnostic must lead stderr:\n{stderr}"
    );
    assert_eq!(
        stderr.lines().nth(1).unwrap_or(""),
        "",
        "diagnostic must be one line:\n{stderr}"
    );
}

#[test]
fn fleet_unknown_fault_scenario_fails() {
    let out = deeppower(&["fleet", "--app", "masstree", "--fault", "gremlins"]);
    assert_clean_failure(&out, "unknown fault scenario `gremlins`");
}

#[test]
fn fleet_monitor_and_telemetry_are_exclusive() {
    let out = deeppower(&[
        "fleet",
        "--app",
        "masstree",
        "--monitor",
        "--telemetry",
        "/tmp/deeppower-cli-errors-tele",
    ]);
    assert_clean_failure(&out, "mutually exclusive");
}

/// A report path whose parent directory does not exist must surface the
/// I/O error (from the atomic temp-file create) instead of panicking —
/// and fast, so use the cheapest possible grid cell.
#[test]
fn unwritable_report_path_fails() {
    let out = deeppower(&[
        "grid",
        "--apps",
        "masstree",
        "--governors",
        "baseline",
        "--seeds",
        "1",
        "--duration-s",
        "1",
        "-o",
        "/nonexistent-dir/report.json",
    ]);
    assert_clean_failure(&out, "");
    assert!(
        !Path::new("/nonexistent-dir/report.json").exists(),
        "no partial report may appear at the target path"
    );
}

#[test]
fn rtrace_sample_out_of_range_fails() {
    let out = deeppower(&["rtrace", "--app", "masstree", "--sample", "1.5"]);
    assert_clean_failure(&out, "bad value for --sample");
    let out = deeppower(&["rtrace", "--app", "masstree", "--sample", "-0.1"]);
    assert_clean_failure(&out, "bad value for --sample");
}

#[test]
fn rtrace_non_numeric_exemplars_fails() {
    let out = deeppower(&["rtrace", "--app", "masstree", "--exemplars", "many"]);
    assert_clean_failure(&out, "bad value for --exemplars");
}

#[test]
fn rtrace_missing_input_file_fails() {
    let out = deeppower(&["rtrace", "--input", "/nonexistent/traces.jsonl"]);
    assert_clean_failure(&out, "cannot read trace artifact");
}

#[test]
fn rtrace_corrupt_input_fails() {
    let dir = std::env::temp_dir().join("deeppower-cli-errors");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("corrupt-traces.jsonl");
    std::fs::write(&path, "this is not jsonl\n").unwrap();
    let out = deeppower(&["rtrace", "--input", path.to_str().unwrap()]);
    assert_clean_failure(&out, "corrupt artifact");
    std::fs::remove_file(&path).ok();
}

#[test]
fn rtrace_input_without_traces_fails() {
    // A valid telemetry artifact that holds no RequestTrace events must
    // say so, and point at how to record one.
    let dir = std::env::temp_dir().join("deeppower-cli-errors");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("no-traces.jsonl");
    std::fs::write(
        &path,
        "{\"JobStart\":{\"job\":0,\"app\":\"masstree\",\"governor\":\"max-freq\",\"seed\":1}}\n",
    )
    .unwrap();
    let out = deeppower(&["rtrace", "--input", path.to_str().unwrap()]);
    assert_clean_failure(&out, "no request traces");
    std::fs::remove_file(&path).ok();
}

#[test]
fn rtrace_input_and_live_run_are_mutually_exclusive() {
    let out = deeppower(&["rtrace", "--input", "x.jsonl", "--app", "masstree"]);
    assert_clean_failure(&out, "pick one");
}

#[test]
fn rtrace_unknown_scenario_fails() {
    let out = deeppower(&["rtrace", "--app", "masstree", "--scenario", "bogus"]);
    assert_clean_failure(&out, "unknown overload scenario `bogus`");
}

#[test]
fn fleet_trace_without_sink_fails() {
    let out = deeppower(&["fleet", "--app", "masstree", "--trace"]);
    assert_clean_failure(&out, "--trace needs a sink");
}

#[test]
fn fleet_trace_sample_out_of_range_fails() {
    let out = deeppower(&[
        "fleet",
        "--app",
        "masstree",
        "--monitor",
        "--trace",
        "--trace-sample",
        "7",
    ]);
    assert_clean_failure(&out, "bad value for --trace-sample");
}

#[test]
fn fleet_flight_dump_without_trace_fails() {
    let out = deeppower(&[
        "fleet",
        "--app",
        "masstree",
        "--monitor",
        "--flight-dump",
        "/tmp/deeppower-cli-errors-dumps",
    ]);
    assert_clean_failure(&out, "--flight-dump needs --trace --monitor");
}
