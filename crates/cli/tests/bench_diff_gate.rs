//! End-to-end exit-code contract of `deeppower bench-diff` — the CI
//! perf-gate depends on it: zero against a clean candidate, non-zero
//! the moment any gated metric regresses beyond tolerance.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn deeppower(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_deeppower"))
        .args(args)
        .output()
        .expect("spawn deeppower binary")
}

fn repo_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop(); // crates/
    p.pop(); // workspace root
    p
}

fn baseline_path() -> String {
    repo_root()
        .join("BENCH_fleet.json")
        .to_str()
        .unwrap()
        .to_string()
}

fn write_temp(name: &str, contents: &str) -> String {
    let dir = std::env::temp_dir().join("deeppower-bench-diff-gate");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path.to_str().unwrap().to_string()
}

#[test]
fn committed_baseline_passes_against_itself() {
    let baseline = baseline_path();
    assert!(Path::new(&baseline).exists(), "BENCH_fleet.json missing");
    let out = deeppower(&[
        "bench-diff",
        "--baseline",
        &baseline,
        "--candidate",
        &baseline,
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "self-diff must pass: {stderr}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("wall_s"));
}

#[test]
fn inflated_metric_exits_nonzero() {
    let baseline = baseline_path();
    let text = std::fs::read_to_string(&baseline).unwrap();
    // Inflate one wall-clock metric far past any tolerance.
    let inflated = text.replace("\"wall_s\": 2.139", "\"wall_s\": 999.0");
    assert_ne!(text, inflated, "baseline schema changed; update this test");
    let candidate = write_temp("inflated.json", &inflated);
    let out = deeppower(&[
        "bench-diff",
        "--baseline",
        &baseline,
        "--candidate",
        &candidate,
    ]);
    assert!(
        !out.status.success(),
        "inflated wall_s must fail the gate; stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("REGRESSION"));
    assert!(String::from_utf8_lossy(&out.stderr).contains("regression"));
}

#[test]
fn drift_within_tolerance_passes() {
    let baseline = baseline_path();
    let text = std::fs::read_to_string(&baseline).unwrap();
    // +10 % on one wall-clock metric — inside the default 35 % budget.
    let drifted = text.replace("\"wall_s\": 2.139", "\"wall_s\": 2.353");
    assert_ne!(text, drifted, "baseline schema changed; update this test");
    let candidate = write_temp("drifted.json", &drifted);
    let out = deeppower(&[
        "bench-diff",
        "--baseline",
        &baseline,
        "--candidate",
        &candidate,
    ]);
    assert!(
        out.status.success(),
        "10% drift must pass the default gate: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn missing_files_and_flags_fail_cleanly() {
    let out = deeppower(&["bench-diff"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--baseline"));

    let out = deeppower(&[
        "bench-diff",
        "--baseline",
        "/nonexistent/base.json",
        "--candidate",
        "/nonexistent/cand.json",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("panicked"), "CLI panicked: {stderr}");
    assert!(stderr.contains("cannot read baseline"));
}

#[test]
fn malformed_candidate_fails_cleanly() {
    let baseline = baseline_path();
    let candidate = write_temp("garbage.json", "{ not json");
    let out = deeppower(&[
        "bench-diff",
        "--baseline",
        &baseline,
        "--candidate",
        &candidate,
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("panicked"), "CLI panicked: {stderr}");
    assert!(stderr.contains("candidate is not valid JSON"));
}
