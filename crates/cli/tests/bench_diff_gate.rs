//! End-to-end exit-code contract of `deeppower bench-diff` — the CI
//! perf-gate depends on it: zero against a clean candidate, non-zero
//! the moment any gated metric regresses beyond tolerance.

use serde_json::Value;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn deeppower(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_deeppower"))
        .args(args)
        .output()
        .expect("spawn deeppower binary")
}

fn repo_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop(); // crates/
    p.pop(); // workspace root
    p
}

fn baseline_path() -> String {
    repo_root()
        .join("BENCH_fleet.json")
        .to_str()
        .unwrap()
        .to_string()
}

fn write_temp(name: &str, contents: &str) -> String {
    let dir = std::env::temp_dir().join("deeppower-bench-diff-gate");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path.to_str().unwrap().to_string()
}

/// Parse the committed baseline, apply `mutate`, write the result to a
/// temp candidate file. Mutating through the JSON tree (rather than
/// string replacement) keeps these tests alive across re-baselines.
fn mutated_candidate(name: &str, mutate: impl FnOnce(&mut Value)) -> String {
    let text = std::fs::read_to_string(baseline_path()).unwrap();
    let mut v: Value = serde_json::from_str(&text).expect("committed baseline parses");
    mutate(&mut v);
    write_temp(name, &serde_json::to_string_pretty(&v).unwrap())
}

/// `fleet[0].wall_s` of the parsed artifact, as a mutable slot.
fn first_wall_s(v: &mut Value) -> &mut Value {
    v.get_mut("fleet")
        .and_then(|f| f.at_mut(0))
        .and_then(|row| row.get_mut("wall_s"))
        .expect("baseline has fleet[0].wall_s")
}

#[test]
fn committed_baseline_passes_against_itself() {
    let baseline = baseline_path();
    assert!(Path::new(&baseline).exists(), "BENCH_fleet.json missing");
    let out = deeppower(&[
        "bench-diff",
        "--baseline",
        &baseline,
        "--candidate",
        &baseline,
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "self-diff must pass: {stderr}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("wall_s"));
}

#[test]
fn inflated_metric_exits_nonzero() {
    let baseline = baseline_path();
    let candidate = mutated_candidate("inflated.json", |v| {
        *first_wall_s(v) = Value::from(999.0);
    });
    let out = deeppower(&[
        "bench-diff",
        "--baseline",
        &baseline,
        "--candidate",
        &candidate,
    ]);
    assert!(
        !out.status.success(),
        "inflated wall_s must fail the gate; stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("REGRESSION"));
    assert!(String::from_utf8_lossy(&out.stderr).contains("regression"));
}

#[test]
fn drift_within_tolerance_passes() {
    let baseline = baseline_path();
    let candidate = mutated_candidate("drifted.json", |v| {
        // +10 % on one wall-clock metric — inside the default 35 % budget.
        let slot = first_wall_s(v);
        let drifted = slot.as_f64().unwrap() * 1.10;
        *slot = Value::from(drifted);
    });
    let out = deeppower(&[
        "bench-diff",
        "--baseline",
        &baseline,
        "--candidate",
        &candidate,
    ]);
    assert!(
        out.status.success(),
        "10% drift must pass the default gate: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn batched_losing_to_reference_exits_nonzero() {
    // The regression this gate exists for: PR 4's batched fleet ran
    // slower than the per-node reference and sailed through CI because
    // batched_s and reference_s were only compared to their own
    // baselines. The ratio leaf is gated against unity — and stays
    // gated across a smoke-scale mismatch, exactly the CI shape
    // (smoke candidate vs full-scale committed baseline).
    let baseline = baseline_path();
    fn ratio_slot(v: &mut Value) -> &mut Value {
        v.get_mut("end_to_end_8_nodes")
            .and_then(|e| e.get_mut("batched_over_reference_ratio"))
            .expect("baseline carries the batched/reference ratio — the gate depends on it")
    }
    let candidate = mutated_candidate("batched-lost.json", |v| {
        *v.get_mut("smoke").unwrap() = Value::from(true);
        *ratio_slot(v) = Value::from(1.9);
    });
    let out = deeppower(&[
        "bench-diff",
        "--baseline",
        &baseline,
        "--candidate",
        &candidate,
    ]);
    assert!(
        !out.status.success(),
        "batched/reference ratio 1.9 must fail the gate; stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("batched_over_reference_ratio"));

    // A near-unity tie passes: the gate flags pathology, not noise.
    let candidate = mutated_candidate("batched-tie.json", |v| {
        *ratio_slot(v) = Value::from(0.99);
    });
    let out = deeppower(&[
        "bench-diff",
        "--baseline",
        &baseline,
        "--candidate",
        &candidate,
    ]);
    assert!(
        out.status.success(),
        "near-unity ratio must pass: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn missing_files_and_flags_fail_cleanly() {
    let out = deeppower(&["bench-diff"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--baseline"));

    let out = deeppower(&[
        "bench-diff",
        "--baseline",
        "/nonexistent/base.json",
        "--candidate",
        "/nonexistent/cand.json",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("panicked"), "CLI panicked: {stderr}");
    assert!(stderr.contains("cannot read baseline"));
}

#[test]
fn malformed_candidate_fails_cleanly() {
    let baseline = baseline_path();
    let candidate = write_temp("garbage.json", "{ not json");
    let out = deeppower(&[
        "bench-diff",
        "--baseline",
        &baseline,
        "--candidate",
        &candidate,
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("panicked"), "CLI panicked: {stderr}");
    assert!(stderr.contains("candidate is not valid JSON"));
}
