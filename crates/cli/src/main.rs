//! `deeppower` — command-line driver for the reproduction.
//!
//! ```text
//! deeppower train   --app xapian [--episodes N] [--episode-s S] [--seed K] -o policy.json
//! deeppower eval    --policy policy.json [--duration-s S] [--peak-load F] [--seed K]
//! deeppower compare --app xapian [--duration-s S] [--seed K]
//! deeppower trace   --period-s S --base-rps R [--seed K] -o trace.csv
//! ```
//!
//! Argument parsing is hand-rolled (no CLI dependency is in the
//! sanctioned offline set); every flag has a sane default.

use deeppower_baselines::{
    collect_profile, max_freq_governor, GeminiConfig, GeminiGovernor, RetailConfig,
    RetailGovernor,
};
use deeppower_core::train::{default_peak_load, trace_for};
use deeppower_core::{evaluate, train, DeepPowerGovernor, Mode, TrainConfig, TrainedPolicy};
use deeppower_simd_server::{
    FreqPlan, RunOptions, Server, ServerConfig, TraceConfig, MILLISECOND,
};
use deeppower_workload::{save_trace_csv, trace_arrivals, App, AppSpec, DiurnalConfig, DiurnalTrace};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "train" => cmd_train(&flags),
        "eval" => cmd_eval(&flags),
        "compare" => cmd_compare(&flags),
        "trace" => cmd_trace(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
deeppower — DRL power management for latency-critical applications (ICPP'23 reproduction)

USAGE:
  deeppower train   --app <name> [--episodes N] [--episode-s S] [--peak-load F] [--seed K] [-o FILE]
  deeppower eval    --policy FILE [--duration-s S] [--peak-load F] [--seed K]
  deeppower compare --app <name> [--duration-s S] [--seed K]
  deeppower trace   [--period-s S] [--base-rps R] [--seed K] -o FILE

APPS: xapian | masstree | moses | sphinx | img-dnn";

type Flags = HashMap<String, String>;

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let key = match a.as_str() {
            "-o" => "out".to_string(),
            s if s.starts_with("--") => s.trim_start_matches("--").to_string(),
            other => return Err(format!("unexpected argument `{other}`")),
        };
        let val = it.next().ok_or_else(|| format!("flag `{a}` needs a value"))?;
        out.insert(key, val.clone());
    }
    Ok(out)
}

fn get<T: std::str::FromStr>(flags: &Flags, key: &str, default: T) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad value for --{key}: {v}")),
    }
}

fn parse_app(flags: &Flags) -> Result<App, String> {
    let name = flags.get("app").ok_or("missing --app")?;
    match name.as_str() {
        "xapian" => Ok(App::Xapian),
        "masstree" => Ok(App::Masstree),
        "moses" => Ok(App::Moses),
        "sphinx" => Ok(App::Sphinx),
        "img-dnn" | "imgdnn" => Ok(App::ImgDnn),
        other => Err(format!("unknown app `{other}`")),
    }
}

fn cmd_train(flags: &Flags) -> Result<(), String> {
    let app = parse_app(flags)?;
    let mut cfg = TrainConfig::for_app(app);
    cfg.episodes = get(flags, "episodes", 8usize)?;
    cfg.episode_s = get(flags, "episode-s", 120u64)?;
    cfg.peak_load = get(flags, "peak-load", cfg.peak_load)?;
    cfg.seed = get(flags, "seed", 0u64)?;
    let out: PathBuf = get(flags, "out", PathBuf::from("policy.json"))?;

    println!(
        "training DeepPower for {:?}: {} episodes x {} s (peak load {:.2})",
        app, cfg.episodes, cfg.episode_s, cfg.peak_load
    );
    let t0 = std::time::Instant::now();
    let (policy, report) = train(&cfg);
    for (i, ((r, p), to)) in report
        .episode_rewards
        .iter()
        .zip(&report.episode_power_w)
        .zip(&report.episode_timeout_rate)
        .enumerate()
    {
        println!(
            "  episode {i:>2}: mean reward {r:>7.3}  power {p:>6.1} W  timeouts {:>5.2}%",
            to * 100.0
        );
    }
    policy.save(&out).map_err(|e| e.to_string())?;
    println!(
        "{} DDPG updates in {:.1} s; policy written to {}",
        report.updates,
        t0.elapsed().as_secs_f64(),
        out.display()
    );
    Ok(())
}

fn cmd_eval(flags: &Flags) -> Result<(), String> {
    let path: PathBuf = get(flags, "policy", PathBuf::from("policy.json"))?;
    let policy = TrainedPolicy::load(Path::new(&path)).map_err(|e| e.to_string())?;
    let duration_s = get(flags, "duration-s", 60u64)?;
    let peak = get(flags, "peak-load", default_peak_load(policy.app))?;
    let seed = get(flags, "seed", 999u64)?;

    let spec = AppSpec::get(policy.app);
    println!("evaluating {:?} policy: {duration_s} s at peak load {peak:.2}", policy.app);
    let out = evaluate(&policy, peak, duration_s, seed, TraceConfig::default());
    let s = &out.sim.stats;
    println!(
        "power {:.1} W | mean {:.3} ms | p99 {:.3} ms (SLA {} ms) | timeouts {:.2}% | {} requests",
        out.sim.avg_power_w,
        s.mean_ns / MILLISECOND as f64,
        s.p99_ns as f64 / MILLISECOND as f64,
        spec.sla / MILLISECOND,
        s.timeout_rate() * 100.0,
        s.count
    );
    Ok(())
}

fn cmd_compare(flags: &Flags) -> Result<(), String> {
    let app = parse_app(flags)?;
    let duration_s = get(flags, "duration-s", 60u64)?;
    let seed = get(flags, "seed", 999u64)?;
    let spec = AppSpec::get(app);
    let server = Server::new(ServerConfig::paper_default(spec.n_threads));
    let trace = trace_for(&spec, default_peak_load(app), duration_s, seed);
    let arrivals = trace_arrivals(&spec, &trace, seed.wrapping_mul(41) + 3);
    let profile = collect_profile(&spec, 0.5, 3, 77);
    let opts = RunOptions::default();

    println!("comparing policies on {:?} ({} requests over {duration_s} s)", app, arrivals.len());
    let mut maxf = max_freq_governor();
    let base = server.run(&arrivals, &mut maxf, opts);
    let mut retail =
        RetailGovernor::train(&profile, FreqPlan::xeon_gold_5218r(), RetailConfig::default());
    let r_retail = server.run(&arrivals, &mut retail, opts);
    let mut gemini = GeminiGovernor::train(
        &profile,
        FreqPlan::xeon_gold_5218r(),
        spec.n_threads,
        GeminiConfig::default(),
        5,
    );
    let r_gemini = server.run(&arrivals, &mut gemini, opts);

    println!("training DeepPower (8 episodes x 120 s)...");
    let mut cfg = TrainConfig::for_app(app);
    cfg.episodes = 8;
    cfg.episode_s = 120;
    cfg.seed = 11;
    let (policy, _) = train(&cfg);
    let mut agent = policy.build_agent();
    let mut dp = DeepPowerGovernor::new(&mut agent, policy.deeppower, Mode::Eval);
    let r_dp = server.run(
        &arrivals,
        &mut dp,
        RunOptions { tick_ns: policy.deeppower.short_time, ..Default::default() },
    );

    println!(
        "\n{:<11} {:>9} {:>8} {:>10} {:>9}",
        "policy", "power(W)", "saving%", "p99(ms)", "timeout%"
    );
    for (name, r) in [
        ("baseline", &base),
        ("retail", &r_retail),
        ("gemini", &r_gemini),
        ("deeppower", &r_dp),
    ] {
        println!(
            "{:<11} {:>9.1} {:>7.1}% {:>10.2} {:>8.2}%",
            name,
            r.avg_power_w,
            100.0 * (1.0 - r.avg_power_w / base.avg_power_w),
            r.stats.p99_ns as f64 / MILLISECOND as f64,
            r.stats.timeout_rate() * 100.0,
        );
    }
    Ok(())
}

fn cmd_trace(flags: &Flags) -> Result<(), String> {
    let period_s = get(flags, "period-s", 360u64)?;
    let base_rps = get(flags, "base-rps", 1000.0f64)?;
    let seed = get(flags, "seed", 0u64)?;
    let out: PathBuf = get(flags, "out", PathBuf::from("trace.csv"))?;
    let cfg = DiurnalConfig { period_s, base_rps, ..Default::default() };
    let trace = DiurnalTrace::generate(&cfg, seed);
    save_trace_csv(&trace, Path::new(&out)).map_err(|e| e.to_string())?;
    println!(
        "wrote {} slots ({} s) to {} — mean {:.0} rps, peak {:.0} rps",
        trace.n_slots(),
        period_s,
        out.display(),
        trace.mean_rps(),
        trace.max_rps()
    );
    Ok(())
}
