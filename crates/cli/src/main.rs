//! `deeppower` — command-line driver for the reproduction.
//!
//! ```text
//! deeppower train   --app xapian [--episodes N] [--episode-s S] [--seed K] -o policy.json
//! deeppower eval    --policy policy.json [--duration-s S] [--peak-load F] [--seed K]
//! deeppower compare --app xapian [--duration-s S] [--seed K] [--threads N] [--telemetry DIR]
//! deeppower grid    --apps a,b --governors g1,g2 --seeds 1,2 [--threads N] [--telemetry DIR]
//! deeppower trace   --policy policy.json [--duration-s S] -o trace.jsonl [--csv steps.csv]
//! deeppower workload-trace [--period-s S] [--base-rps R] [--seed K] -o trace.csv
//! ```
//!
//! Argument parsing is hand-rolled (no CLI dependency is in the
//! sanctioned offline set); every flag has a sane default. `-v` and
//! `--quiet` select the stderr log level; everything written to stdout
//! is data (tables, CSV, JSON), everything human-facing goes through
//! the leveled [`Logger`] on stderr.
//!
//! `compare` and `grid` run on the `deeppower-harness` engine: every
//! (app, governor, seed) cell is an independent job executed by a
//! work-stealing thread pool, with results deterministic in the job
//! specs regardless of `--threads`. With `--telemetry DIR` each job
//! additionally writes its full event stream as one JSONL artifact,
//! byte-identical at any thread count.

use deeppower_core::train::default_peak_load;
use deeppower_core::{
    action_surface, decisions_to_csv, decisions_to_jsonl, evaluate, evaluate_profiled,
    evaluate_recorded, explain_decisions, mean_abs_saliency, surface_to_csv, train, train_profiled,
    TrainConfig, TrainedPolicy, STATE_DIM_NAMES,
};
use deeppower_fleet::{run_fleet_monitored_full, run_fleet_recorded, BalancerPolicy, FleetSpec};
use deeppower_harness::{
    calibrated_train_seed, fault_scenarios, fleet_grid, grid, overload_scenarios,
    robustness_matrix_for, run_fleet_grid, run_grid, run_grid_telemetry, select_scenarios,
    summarize, GovernorSpec, JobResult, WorkloadKind,
};
use deeppower_simd_server::{OverloadPlan, QueuePolicy, TraceConfig, MILLISECOND};
use deeppower_telemetry::{
    atomic_write, from_jsonl, render_phase_table, steps_to_csv, to_jsonl, traces_to_chrome,
    BurnRateRule, Event, FleetMonitor, FlightRecorder, HealthReport, Logger, MonitorConfig,
    Profiler, Recorder, RequestTrace, SloSpec, TracePlan, SPAN_BACKOFF, SPAN_QUEUE, SPAN_SERVICE,
};
use deeppower_workload::{save_trace_csv, App, AppSpec, DiurnalConfig, DiurnalTrace};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let log = Logger::from_flags(
        flags.contains_key("quiet"),
        flags.contains_key("verbose"),
        Recorder::ring(64),
    );
    let result = match cmd.as_str() {
        "train" => cmd_train(&flags, &log),
        "eval" => cmd_eval(&flags, &log),
        "compare" => cmd_compare(&flags, &log),
        "grid" => cmd_grid(&flags, &log),
        "robustness" => cmd_robustness(&flags, &log),
        "fleet" => cmd_fleet(&flags, &log),
        "monitor" => cmd_monitor(&flags, &log),
        "trace" => cmd_trace(&flags, &log),
        "rtrace" => cmd_rtrace(&flags, &log),
        "profile" => cmd_profile(&flags, &log),
        "explain" => cmd_explain(&flags, &log),
        "bench-diff" => cmd_bench_diff(&flags, &log),
        "workload-trace" => cmd_workload_trace(&flags, &log),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            log.error(&e);
            eprintln!("\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
deeppower — DRL power management for latency-critical applications (ICPP'23 reproduction)

USAGE:
  deeppower train   --app <name> [--episodes N] [--episode-s S] [--peak-load F] [--seed K] [-o FILE]
  deeppower eval    --policy FILE [--duration-s S] [--peak-load F] [--seed K]
  deeppower compare --app <name> [--duration-s S] [--seed K] [--train-seed K] [--threads N]
                    [--telemetry DIR]
  deeppower grid    --apps a,b [--governors LIST] [--seeds LIST] [--duration-s S]
                    [--peak-load F] [--workload diurnal|constant] [--threads N] [-o FILE]
                    [--telemetry DIR]
  deeppower robustness --app <name> [--governors LIST] [--scenario LIST] [--duration-s S]
                    [--peak-load F] [--seed K] [--threads N] [-o FILE]
                    [--queue-policy fifo|lifo|drop-newest|drop-oldest]
                    [--queue-capacity N] [--retry-prob F]
  deeppower fleet   --policy FILE | --app <name> [--nodes N1,N2] [--balancer LIST]
                    [--profiles FILE] [--duration-s S] [--peak-load F] [--seed K]
                    [--train-seed K] [--fault none|dvfs|sensor|stall|all]
                    [--overload none|retry-storm|flash-crowd|collapse] [--monitor]
                    [--trace] [--trace-sample F] [--trace-exemplars K] [--flight-dump DIR]
                    [--slo FILE] [--health FILE] [--threads N] [-o FILE] [--telemetry DIR]
  deeppower monitor --input FILE[,FILE...] [--slo FILE | --app <name>] [-o FILE]
                    [--log FILE]
  deeppower trace   --policy FILE | --app <name> [--duration-s S] [--peak-load F] [--seed K]
                    [-o FILE.jsonl] [--csv FILE.csv]
  deeppower rtrace  --input FILE | (--policy FILE | --app <name>)
                    [--scenario retry-storm|flash-crowd|collapse] [--sample F] [--exemplars K]
                    [--nodes N] [--duration-s S] [--peak-load F] [--seed K]
                    [--slo FILE] [--flight-dump DIR] [-o FILE.jsonl]
  deeppower profile --policy FILE | --app <name> [--duration-s S] [--peak-load F] [--seed K]
                    [-o FILE.json] [--table FILE.txt]
  deeppower explain --policy FILE | --app <name> [--duration-s S] [--peak-load F] [--seed K]
                    [--points N] [--eps F] [--jsonl FILE] [--csv FILE] [--surface FILE]
  deeppower bench-diff --baseline FILE --candidate FILE [--tolerance F]
  deeppower workload-trace [--period-s S] [--base-rps R] [--seed K] -o FILE

Global: -v (debug logging) | --quiet (errors only); logs go to stderr, data to stdout.

APPS:      xapian | masstree | moses | sphinx | img-dnn
GOVERNORS: baseline | fixed-<mhz> | thread-controller | retail | gemini | deeppower
           (`deeppower` trains an agent per (app, seed) cell; --threads 0 = all cores)

`trace` replays a trained policy with full instrumentation and writes the
decision trace (DrlStep, FreqTransition, RequestDispatch/Complete, ...) as
JSONL; --csv additionally writes the per-second DrlStep table. For
request-lifecycle traces (retry chains, queue-vs-service) see `rtrace`.
`rtrace` records request-lifecycle traces: each sampled client request
becomes a retry-chain trace (submit, queue residency, service with
core/frequency/admission context, shed/abandon/backoff spans) measured
from first submission — the latency the SLA is charged against. Online
mode runs a monitored fleet under an overload scenario (--sample is the
head-sampling rate in [0,1], keyed on client id; --exemplars K always
traces the K slowest completions per window); offline mode (--input)
renders the queue-vs-service breakdown of a recorded JSONL artifact.
--flight-dump DIR writes each fired alert's flight-recorder contents
(the retained trailing windows of traces) as replayable `traces.jsonl`
plus a Chrome trace-event `trace.json` under
DIR/incident-NN-<metric>/.
`--telemetry DIR` on compare/grid writes one JSONL artifact per job,
named job-NNN-<app>-<governor>-seed<K>.jsonl.
`robustness` sweeps every governor (plain and wrapped in the safety
layer, shown as `<governor>+safe`) across the seeded fault scenarios
(none | dvfs | sensor | stall | all) *and* the closed-loop overload
scenarios (retry-storm | flash-crowd | collapse) and prints the
degradation table with goodput/wasted-work accounting; -o writes the
full matrix as JSON. --scenario takes a comma list restricting the sweep
(the `none` delta baseline always runs); --queue-policy,
--queue-capacity and --retry-prob override the overload scenarios'
bounded-queue and retry knobs.
`fleet` runs N server nodes behind a deterministic load balancer
(round-robin | jsq | power-aware), all steered by one shared policy via
batched actor inference; --nodes/--balancer take comma lists and expand
to a grid. -o writes the fleet reports as JSON; --telemetry DIR writes
one JSONL artifact per node per cell. --threads N (0 = all cores) splits
across grid cells first, then leftover cores parallelize the node
sessions *inside* each fleet — results are byte-identical either way.
--profiles FILE loads a heterogeneous fleet description (a JSON list of
node profiles: name/count/cores/DVFS range/power coefficients/optional
big.LITTLE core caps — see EXPERIMENTS.md); it replaces --nodes, and the
coordinator batches inference per profile group.
--fault applies one of the seeded robustness fault scenarios to every
node; --overload applies one of the seeded closed-loop overload
scenarios; --monitor attaches the fleet health monitor inline (SLO from
--slo FILE or the app's SLA) and prints each cell's incident log;
--health FILE writes the per-cell health reports as JSON. --trace
samples request-lifecycle traces on every node (--trace-sample /
--trace-exemplars, defaults 0.01 / 2); with --monitor the traces feed
each cell's flight recorder and --flight-dump DIR dumps the traces
behind every fired alert (see `rtrace`); with --telemetry the traces
ride in the per-node artifacts.
`monitor` replays telemetry JSONL artifacts offline — one file per node,
e.g. the per-node artifacts of `fleet --telemetry` — through the fleet
health monitor: tumbling-window SLO evaluation, multi-window burn-rate
alerts with incident timelines, EWMA anomaly flags. The SLO comes from
--slo FILE (JSON SloSpec), --app (the app's Table-3 SLA as p99 target),
or defaults to a timeout-rate ceiling; -o writes the health report JSON
and --log the human-readable incident log.
`profile` runs training (without --policy) plus an evaluation under the
span profiler and writes a Chrome trace-event JSON (load it at
ui.perfetto.dev or chrome://tracing) plus a per-phase aggregate table.
`explain` introspects a trained policy: the actor's action surface per
state dimension, and per-decision Q-values + finite-difference saliency
along an evaluation trajectory.
`bench-diff` compares a fresh bench artifact against a committed
BENCH_*.json baseline; exits non-zero on any gated regression.";

type Flags = HashMap<String, String>;

/// Flags that take no value; their presence maps to `"true"`.
const BOOL_FLAGS: &[&str] = &["quiet", "verbose", "monitor", "trace"];

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let key = match a.as_str() {
            "-o" => "out".to_string(),
            "-v" => "verbose".to_string(),
            s if s.starts_with("--") => s.trim_start_matches("--").to_string(),
            other => return Err(format!("unexpected argument `{other}`")),
        };
        if BOOL_FLAGS.contains(&key.as_str()) {
            out.insert(key, "true".to_string());
            continue;
        }
        let val = it
            .next()
            .ok_or_else(|| format!("flag `{a}` needs a value"))?;
        out.insert(key, val.clone());
    }
    Ok(out)
}

fn get<T: std::str::FromStr>(flags: &Flags, key: &str, default: T) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad value for --{key}: {v}")),
    }
}

fn app_by_name(name: &str) -> Result<App, String> {
    match name {
        "xapian" => Ok(App::Xapian),
        "masstree" => Ok(App::Masstree),
        "moses" => Ok(App::Moses),
        "sphinx" => Ok(App::Sphinx),
        "img-dnn" | "imgdnn" => Ok(App::ImgDnn),
        other => Err(format!("unknown app `{other}`")),
    }
}

fn parse_app(flags: &Flags) -> Result<App, String> {
    app_by_name(flags.get("app").ok_or("missing --app")?)
}

/// Resolve a governor name to a [`GovernorSpec`]. `deeppower` expands to
/// `DeepPowerTrain`, so each grid cell trains its own agent from the
/// cell's seed — self-contained and deterministic, no policy file needed.
fn governor_by_name(name: &str, train_cfg: &TrainConfig) -> Result<GovernorSpec, String> {
    match name {
        "baseline" | "max-freq" => Ok(GovernorSpec::MaxFreq),
        "thread-controller" => Ok(GovernorSpec::ThreadController(0.3, 1.0)),
        "retail" => Ok(GovernorSpec::Retail),
        "gemini" => Ok(GovernorSpec::Gemini),
        "deeppower" => Ok(GovernorSpec::DeepPowerTrain(*train_cfg)),
        other => match other.strip_prefix("fixed-").and_then(|m| m.parse().ok()) {
            Some(mhz) => Ok(GovernorSpec::FixedMhz(mhz)),
            None => Err(format!("unknown governor `{other}`")),
        },
    }
}

fn parse_list<T>(
    flags: &Flags,
    key: &str,
    default: &str,
    parse: impl Fn(&str) -> Result<T, String>,
) -> Result<Vec<T>, String> {
    flags
        .get(key)
        .map(String::as_str)
        .unwrap_or(default)
        .split(',')
        .filter(|s| !s.is_empty())
        .map(parse)
        .collect()
}

/// Write one JSONL artifact per job into `dir`:
/// `job-NNN-<app>-<governor>-seed<K>.jsonl`. Job index, app, governor
/// and seed come from the (deterministically ordered) results, so the
/// file set — names and bytes — is a pure function of the job specs.
fn write_telemetry_artifacts(
    dir: &str,
    results: &[JobResult],
    events: &[Vec<Event>],
    log: &Logger,
) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
    for (i, (r, ev)) in results.iter().zip(events).enumerate() {
        let path = Path::new(dir).join(format!(
            "job-{i:03}-{}-{}-seed{}.jsonl",
            r.app, r.governor, r.seed
        ));
        atomic_write(&path, to_jsonl(ev)).map_err(|e| e.to_string())?;
        log.debug(&format!("{} events -> {}", ev.len(), path.display()));
    }
    log.info(&format!(
        "{} telemetry artifacts written to {dir}/",
        results.len()
    ));
    Ok(())
}

fn cmd_train(flags: &Flags, log: &Logger) -> Result<(), String> {
    let app = parse_app(flags)?;
    let mut cfg = TrainConfig::for_app(app);
    cfg.episodes = get(flags, "episodes", 8usize)?;
    cfg.episode_s = get(flags, "episode-s", 120u64)?;
    cfg.peak_load = get(flags, "peak-load", cfg.peak_load)?;
    cfg.seed = get(flags, "seed", 0u64)?;
    let out: PathBuf = get(flags, "out", PathBuf::from("policy.json"))?;

    log.info(&format!(
        "training DeepPower for {:?}: {} episodes x {} s (peak load {:.2})",
        app, cfg.episodes, cfg.episode_s, cfg.peak_load
    ));
    let t0 = std::time::Instant::now();
    let (policy, report) = train(&cfg);
    for (i, ((r, p), to)) in report
        .episode_rewards
        .iter()
        .zip(&report.episode_power_w)
        .zip(&report.episode_timeout_rate)
        .enumerate()
    {
        log.info(&format!(
            "  episode {i:>2}: mean reward {r:>7.3}  power {p:>6.1} W  timeouts {:>5.2}%",
            to * 100.0
        ));
    }
    policy.save(&out).map_err(|e| e.to_string())?;
    log.info(&format!(
        "{} DDPG updates in {:.1} s; policy written to {}",
        report.updates,
        t0.elapsed().as_secs_f64(),
        out.display()
    ));
    Ok(())
}

fn cmd_eval(flags: &Flags, log: &Logger) -> Result<(), String> {
    let path: PathBuf = get(flags, "policy", PathBuf::from("policy.json"))?;
    let policy = TrainedPolicy::load(Path::new(&path)).map_err(|e| e.to_string())?;
    let duration_s = get(flags, "duration-s", 60u64)?;
    let peak = get(flags, "peak-load", default_peak_load(policy.app))?;
    let seed = get(flags, "seed", 999u64)?;

    let spec = AppSpec::get(policy.app);
    log.info(&format!(
        "evaluating {:?} policy: {duration_s} s at peak load {peak:.2}",
        policy.app
    ));
    let out = evaluate(&policy, peak, duration_s, seed, TraceConfig::default());
    let s = &out.sim.stats;
    println!(
        "power {:.1} W | mean {:.3} ms | p99 {:.3} ms (SLA {} ms) | timeouts {:.2}% | {} requests",
        out.sim.avg_power_w,
        s.mean_ns / MILLISECOND as f64,
        s.p99_ns as f64 / MILLISECOND as f64,
        spec.sla / MILLISECOND,
        s.timeout_rate() * 100.0,
        s.count
    );
    Ok(())
}

fn cmd_compare(flags: &Flags, log: &Logger) -> Result<(), String> {
    let app = parse_app(flags)?;
    let duration_s = get(flags, "duration-s", 60u64)?;
    let seed = get(flags, "seed", 999u64)?;
    let threads = get(flags, "threads", 0usize)?;
    let train_seed = get(flags, "train-seed", calibrated_train_seed(app))?;

    log.info(&format!(
        "training DeepPower (8 episodes x 120 s, seed {train_seed})..."
    ));
    let mut cfg = TrainConfig::for_app(app);
    cfg.episodes = 8;
    cfg.episode_s = 120;
    cfg.seed = train_seed;
    let (policy, _) = train(&cfg);

    // All four rollouts are independent jobs on the same workload seed —
    // the harness fans them out across the thread pool.
    let governors = [
        GovernorSpec::MaxFreq,
        GovernorSpec::Retail,
        GovernorSpec::Gemini,
        GovernorSpec::DeepPower(policy),
    ];
    let jobs = grid(
        &[app],
        &governors,
        &[seed],
        default_peak_load(app),
        duration_s,
        WorkloadKind::Diurnal,
    );
    log.info(&format!(
        "comparing {} policies on {app:?} over {duration_s} s",
        jobs.len()
    ));
    let results = match flags.get("telemetry") {
        Some(dir) => {
            let (results, events) = run_grid_telemetry(&jobs, threads);
            write_telemetry_artifacts(dir, &results, &events, log)?;
            results
        }
        None => run_grid(&jobs, threads),
    };

    let base_power = results[0].avg_power_w;
    println!(
        "\n{:<11} {:>9} {:>8} {:>10} {:>9}",
        "policy", "power(W)", "saving%", "p99(ms)", "timeout%"
    );
    for r in &results {
        println!(
            "{:<11} {:>9.1} {:>7.1}% {:>10.2} {:>8.2}%",
            r.governor,
            r.avg_power_w,
            100.0 * (1.0 - r.avg_power_w / base_power),
            r.p99_ms,
            r.timeout_rate * 100.0,
        );
    }
    Ok(())
}

fn cmd_grid(flags: &Flags, log: &Logger) -> Result<(), String> {
    let apps = parse_list(flags, "apps", "xapian,masstree", app_by_name)?;
    let seeds = parse_list(flags, "seeds", "1,2,3", |s| {
        s.parse().map_err(|_| format!("bad seed `{s}`"))
    })?;
    let duration_s = get(flags, "duration-s", 60u64)?;
    let peak_load = get(flags, "peak-load", 0.7f64)?;
    let threads = get(flags, "threads", 0usize)?;
    let workload = match flags
        .get("workload")
        .map(String::as_str)
        .unwrap_or("diurnal")
    {
        "diurnal" => WorkloadKind::Diurnal,
        "constant" => WorkloadKind::Constant,
        other => return Err(format!("unknown workload `{other}`")),
    };
    if apps.is_empty() {
        return Err("--apps needs at least one app".into());
    }
    if seeds.is_empty() {
        return Err("--seeds needs at least one seed".into());
    }
    // One shared training recipe; each DeepPower cell re-seeds it from its
    // own JobSpec, so cells stay independent.
    let train_cfg = TrainConfig::for_app(apps[0]);
    let governors = parse_list(flags, "governors", "baseline,retail,gemini", |s| {
        governor_by_name(s, &train_cfg)
    })?;
    if governors.is_empty() {
        return Err("--governors needs at least one governor".into());
    }

    let jobs = grid(&apps, &governors, &seeds, peak_load, duration_s, workload);
    log.info(&format!(
        "running {} jobs ({} apps x {} governors x {} seeds), {} threads",
        jobs.len(),
        apps.len(),
        governors.len(),
        seeds.len(),
        if threads == 0 {
            "all".to_string()
        } else {
            threads.to_string()
        }
    ));
    let t0 = std::time::Instant::now();
    let results = match flags.get("telemetry") {
        Some(dir) => {
            let (results, events) = run_grid_telemetry(&jobs, threads);
            write_telemetry_artifacts(dir, &results, &events, log)?;
            results
        }
        None => run_grid(&jobs, threads),
    };
    let report = summarize(results);
    log.info(&format!("finished in {:.1} s", t0.elapsed().as_secs_f64()));

    println!(
        "\n{:<10} {:<17} {:>5} {:>9} {:>10} {:>10} {:>9}",
        "app", "governor", "runs", "power(W)", "mean(ms)", "p99(ms)", "timeout%"
    );
    for g in &report.groups {
        println!(
            "{:<10} {:<17} {:>5} {:>9.1} {:>10.3} {:>10.2} {:>8.2}%",
            g.app,
            g.governor,
            g.runs,
            g.avg_power_w,
            g.mean_ms,
            g.p99_ms,
            g.timeout_rate * 100.0,
        );
    }
    if let Some(out) = flags.get("out") {
        atomic_write(Path::new(out), report.to_json()).map_err(|e| e.to_string())?;
        log.info(&format!("report written to {out}"));
    }
    Ok(())
}

/// Governors × fault-scenarios degradation sweep. Every requested
/// governor runs plain *and* wrapped in the [`SafetyGovernor`] layer
/// (`<governor>+safe` rows), across the five seeded fault scenarios;
/// deltas in the table are against the same row-group's fault-free run.
fn cmd_robustness(flags: &Flags, log: &Logger) -> Result<(), String> {
    let app = parse_app(flags)?;
    let duration_s = get(flags, "duration-s", 20u64)?;
    let peak_load = get(flags, "peak-load", 0.7f64)?;
    let seed = get(flags, "seed", 1u64)?;
    let threads = get(flags, "threads", 0usize)?;
    let train_cfg = TrainConfig::for_app(app);
    let governors = parse_list(flags, "governors", "baseline,thread-controller", |s| {
        governor_by_name(s, &train_cfg)
    })?;
    if governors.is_empty() {
        return Err("--governors needs at least one governor".into());
    }

    // --scenario restricts the matrix to `none` + the named scenarios;
    // default is all eight (5 fault + 3 overload).
    let wanted = parse_list(flags, "scenario", "", |s| Ok(s.to_string()))?;
    let mut scenarios = select_scenarios(seed, AppSpec::get(app).sla, &wanted)?;

    // Overload knobs tune every *overload* scenario's plan in the
    // selection; fault scenarios and the `none` baseline are untouched.
    if let Some(p) = flags.get("queue-policy") {
        let policy = QueuePolicy::parse(p).ok_or_else(|| {
            format!("unknown queue policy `{p}` (fifo|lifo|drop-newest|drop-oldest)")
        })?;
        for (_, _, ov) in scenarios.iter_mut().filter(|(_, _, ov)| ov.is_active()) {
            ov.queue_policy = policy;
        }
    }
    if flags.contains_key("queue-capacity") {
        let cap = get(flags, "queue-capacity", 0u32)?;
        if cap == 0 {
            return Err("queue capacity must be at least 1".into());
        }
        for (_, _, ov) in scenarios.iter_mut().filter(|(_, _, ov)| ov.is_active()) {
            ov.queue_capacity = cap;
        }
    }
    if flags.contains_key("retry-prob") {
        let prob = get(flags, "retry-prob", 0.0f64)?;
        if !(0.0..=1.0).contains(&prob) {
            return Err(format!(
                "retry probability must be within [0, 1], got {prob}"
            ));
        }
        for (_, _, ov) in scenarios.iter_mut().filter(|(_, _, ov)| ov.is_active()) {
            ov.retry_prob = prob;
        }
    }

    log.info(&format!(
        "robustness matrix on {app:?}: {} governors x 2 (plain, +safe) x {} scenarios, {duration_s} s each",
        governors.len(),
        scenarios.len()
    ));
    let t0 = std::time::Instant::now();
    let report = robustness_matrix_for(
        &scenarios, app, &governors, true, seed, peak_load, duration_s, threads,
    );
    log.info(&format!("finished in {:.1} s", t0.elapsed().as_secs_f64()));

    println!("\n{}", report.render_table());
    if let Some(out) = flags.get("out") {
        atomic_write(Path::new(out), report.to_json()).map_err(|e| e.to_string())?;
        log.info(&format!("robustness report written to {out}"));
    }
    Ok(())
}

/// Fleet-scale evaluation: node counts × balancer policies, every cell
/// N lockstep node simulations sharing one policy through batched actor
/// inference. The policy comes from `--policy FILE` or is trained
/// in-process from `--app` (same recipe as `compare`).
fn cmd_fleet(flags: &Flags, log: &Logger) -> Result<(), String> {
    let profiles = match flags.get("profiles") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read profile file {path}: {e}"))?;
            let ps =
                deeppower_fleet::profiles_from_json(&text).map_err(|e| format!("{path}: {e}"))?;
            Some(ps)
        }
        None => None,
    };
    if profiles.is_some() && flags.contains_key("nodes") {
        return Err(
            "--profiles and --nodes are mutually exclusive (profile counts set the fleet size)"
                .into(),
        );
    }
    let node_counts = parse_list(flags, "nodes", "4", |s| {
        s.parse::<usize>()
            .map_err(|_| format!("bad node count `{s}`"))
    })?;
    // With a profile file the fleet size comes from the profile counts;
    // the grid collapses to one cell per balancer.
    let node_counts = match &profiles {
        Some(ps) => vec![ps.iter().map(|p| p.count).sum()],
        None => node_counts,
    };
    let balancers = parse_list(flags, "balancer", "round-robin", |s| {
        BalancerPolicy::parse(s)
            .ok_or_else(|| format!("unknown balancer `{s}` (round-robin|jsq|power-aware)"))
    })?;
    if node_counts.is_empty() || node_counts.contains(&0) {
        return Err("--nodes needs positive node counts".into());
    }
    if balancers.is_empty() {
        return Err("--balancer needs at least one policy".into());
    }
    let duration_s = get(flags, "duration-s", 60u64)?;
    let seed = get(flags, "seed", 999u64)?;
    let threads = get(flags, "threads", 0usize)?;

    let fault = flags.get("fault").map(String::as_str).unwrap_or("none");
    let faults = fault_scenarios(seed)
        .into_iter()
        .find(|(name, _)| *name == fault)
        .map(|(_, plan)| plan)
        .ok_or_else(|| format!("unknown fault scenario `{fault}` (none|dvfs|sensor|stall|all)"))?;
    let monitor = flags.contains_key("monitor");
    if monitor && flags.contains_key("telemetry") {
        return Err(
            "--monitor and --telemetry are mutually exclusive; write artifacts first, then \
             `deeppower monitor --input node0.jsonl,node1.jsonl,...`"
                .into(),
        );
    }
    let trace = flags.contains_key("trace");
    let trace_sample = get(flags, "trace-sample", 0.01f64)?;
    let trace_exemplars = get(flags, "trace-exemplars", 2u32)?;
    if !(0.0..=1.0).contains(&trace_sample) {
        return Err(format!(
            "bad value for --trace-sample: {trace_sample} (sampling rate must be in [0, 1])"
        ));
    }
    if trace && !monitor && !flags.contains_key("telemetry") {
        return Err(
            "--trace needs a sink: add --monitor (flight recorder + incident dumps) or \
             --telemetry DIR (traces ride in the per-node artifacts)"
                .into(),
        );
    }
    if flags.contains_key("flight-dump") && !(trace && monitor) {
        return Err("--flight-dump needs --trace --monitor (the flight recorder is the monitor's trace ring)".into());
    }
    let overload_name = flags.get("overload").map(String::as_str).unwrap_or("none");
    // Name check up front, before the (possibly expensive) policy
    // load / in-process training; the real plan needs the app's SLA.
    overload_plan_by_name(overload_name, seed, MILLISECOND)?;

    let policy = policy_or_train(flags, log, "fleet", &Profiler::disabled())?;
    let app = policy.app;
    let peak_load = get(flags, "peak-load", default_peak_load(app))?;
    let overload = overload_plan_by_name(overload_name, seed, AppSpec::get(app).sla)?;

    let mut jobs = fleet_grid(
        app,
        &node_counts,
        &balancers,
        seed,
        peak_load,
        duration_s,
        &policy,
    );
    for job in &mut jobs {
        job.fleet.faults = faults;
        job.fleet.overload = overload;
        if trace {
            job.fleet.rtrace = TracePlan::sampled(trace_sample, trace_exemplars, seed);
        }
        if let Some(ps) = &profiles {
            job.fleet = job.fleet.clone().with_profiles(ps.clone());
        }
    }
    if let Some(ps) = &profiles {
        let groups: Vec<String> = ps
            .iter()
            .map(|p| format!("{}x {} ({}c)", p.count, p.name, p.cores))
            .collect();
        log.info(&format!("fleet profiles: {}", groups.join(", ")));
    }
    log.info(&format!(
        "running {} fleet cells on {app:?}: nodes {node_counts:?} x balancers {:?}, {duration_s} s each, faults `{fault}`",
        jobs.len(),
        balancers.iter().map(|b| b.label()).collect::<Vec<_>>(),
    ));
    let t0 = std::time::Instant::now();
    let mut healths: Vec<HealthReport> = Vec::new();
    let results = if monitor {
        let app_spec = AppSpec::get(app);
        let slo = slo_from_flags(flags, SloSpec::for_sla_ns(app_spec.name, app_spec.sla))?;
        let mut results = Vec::with_capacity(jobs.len());
        for (j, job) in jobs.iter().enumerate() {
            let cfg = MonitorConfig::with_slo(slo.clone());
            let keep = cfg.flight_windows;
            let (res, mon) = run_fleet_monitored_full(&job.fleet, &job.policy, threads, cfg);
            let mut rep = mon.finish();
            if let Some(dir) = flags.get("flight-dump") {
                let cell_dir = Path::new(dir).join(format!("cell-{j:02}"));
                let dumped = dump_flight_recorder(&cell_dir, &mut rep, mon.flight(), keep)?;
                if dumped > 0 {
                    log.info(&format!(
                        "cell {j}: {dumped} incident dump(s) -> {}",
                        cell_dir.display()
                    ));
                }
            }
            healths.push(rep);
            results.push(res);
        }
        results
    } else {
        match flags.get("telemetry") {
            Some(dir) => {
                // Per-node JSONL artifacts want live recorders, so telemetry
                // cells run in-process (each fleet is itself N sessions).
                std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
                let mut results = Vec::with_capacity(jobs.len());
                for (j, job) in jobs.iter().enumerate() {
                    let recs: Vec<Recorder> = (0..job.fleet.nodes)
                        .map(|_| Recorder::ring(1 << 16))
                        .collect();
                    let res = run_fleet_recorded(&job.fleet, &job.policy, &recs);
                    for (i, rec) in recs.iter().enumerate() {
                        let path = Path::new(dir).join(format!(
                            "fleet-{j:02}-{}-{}nodes-node{i:02}.jsonl",
                            res.balancer, res.nodes
                        ));
                        atomic_write(&path, to_jsonl(&rec.drain_events()))
                            .map_err(|e| e.to_string())?;
                    }
                    log.debug(&format!(
                        "cell {j}: {} nodes, {} artifacts",
                        job.fleet.nodes, job.fleet.nodes
                    ));
                    results.push(res);
                }
                results
            }
            None => run_fleet_grid(&jobs, threads),
        }
    };
    log.info(&format!("finished in {:.1} s", t0.elapsed().as_secs_f64()));

    println!(
        "\n{:<6} {:<20} {:>9} {:>10} {:>10} {:>10} {:>9}",
        "nodes", "balancer", "requests", "power(W)", "p95(ms)", "p99(ms)", "timeout%"
    );
    for r in &results {
        println!(
            "{:<6} {:<20} {:>9} {:>10.1} {:>10.2} {:>10.2} {:>8.2}%",
            r.nodes,
            r.balancer,
            r.total_requests,
            r.total_power_w,
            r.fleet_p95_ms,
            r.fleet_p99_ms,
            r.fleet_timeout_rate * 100.0,
        );
    }
    if monitor {
        for (r, rep) in results.iter().zip(&healths) {
            println!("\n== cell: {} nodes, {} ==", r.nodes, r.balancer);
            print!("{}", rep.render_incident_log());
        }
        if let Some(path) = flags.get("health") {
            let json = serde_json::to_string_pretty(&healths).expect("health report serialization");
            atomic_write(Path::new(path), json).map_err(|e| e.to_string())?;
            log.info(&format!("health reports written to {path}"));
        }
    }
    if let Some(out) = flags.get("out") {
        let json = serde_json::to_string_pretty(&results).expect("fleet results serialization");
        atomic_write(Path::new(out), json).map_err(|e| e.to_string())?;
        log.info(&format!("fleet report written to {out}"));
    }
    Ok(())
}

/// SLO spec selection shared by `fleet --monitor` and `monitor`:
/// `--slo FILE` (JSON [`SloSpec`]) wins, otherwise the caller's default
/// (the `--app` SLA, or `SloSpec::default()` for offline artifacts).
fn slo_from_flags(flags: &Flags, default: SloSpec) -> Result<SloSpec, String> {
    match flags.get("slo") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read SLO spec {path}: {e}"))?;
            SloSpec::from_json(&text).map_err(|e| format!("bad SLO spec {path}: {e}"))
        }
        None => Ok(default),
    }
}

/// Offline health plane: replay per-node telemetry artifacts (one JSONL
/// file per node, in node order) through a [`FleetMonitor`] and emit the
/// same health report / incident log an inline `fleet --monitor` run
/// produces. Deterministic: a pure function of the artifact bytes and
/// the SLO spec.
fn cmd_monitor(flags: &Flags, log: &Logger) -> Result<(), String> {
    let inputs = parse_list(flags, "input", "", |s| Ok::<_, String>(s.to_string()))?;
    let inputs: Vec<String> = inputs.into_iter().filter(|s| !s.is_empty()).collect();
    if inputs.is_empty() {
        return Err("monitor needs --input FILE[,FILE...] (one JSONL artifact per node)".into());
    }

    let default_slo = match flags.get("app") {
        Some(name) => {
            let spec = AppSpec::get(app_by_name(name)?);
            SloSpec::for_sla_ns(spec.name, spec.sla)
        }
        None => SloSpec::default(),
    };
    let slo = slo_from_flags(flags, default_slo)?;
    log.info(&format!(
        "evaluating SLO `{}` over {} node artifact(s)",
        slo.name,
        inputs.len()
    ));

    let mut mon = FleetMonitor::new(MonitorConfig::with_slo(slo));
    for (node, path) in inputs.iter().enumerate() {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read telemetry artifact {path}: {e}"))?;
        let events = from_jsonl(&text).map_err(|e| format!("corrupt artifact {path}: {e}"))?;
        mon.ingest(node as u64, &events);
    }
    let report = mon.finish();
    if report.windows == 0 {
        return Err(format!(
            "no window rollups in {} artifact(s) — re-record with a window-enabled run \
             (`deeppower fleet --telemetry DIR`)",
            inputs.len()
        ));
    }

    print!("{}", report.render_incident_log());
    if let Some(out) = flags.get("out") {
        atomic_write(Path::new(out), report.to_json()).map_err(|e| e.to_string())?;
        log.info(&format!("health report written to {out}"));
    }
    if let Some(path) = flags.get("log") {
        atomic_write(Path::new(path), report.render_incident_log()).map_err(|e| e.to_string())?;
        log.info(&format!("incident log written to {path}"));
    }
    Ok(())
}

/// `--policy FILE` or in-process training from `--app` (the recipe the
/// `compare`/`trace` commands share; `--episodes`/`--episode-s` resize
/// it). Training runs under `prof`, so `profile` captures the training
/// phases too; pass a disabled profiler everywhere else.
fn policy_or_train(
    flags: &Flags,
    log: &Logger,
    cmd: &str,
    prof: &Profiler,
) -> Result<TrainedPolicy, String> {
    match flags.get("policy") {
        Some(p) => TrainedPolicy::load(Path::new(p)).map_err(|e| e.to_string()),
        None => {
            let app = app_by_name(
                flags
                    .get("app")
                    .ok_or_else(|| format!("{cmd} needs --policy FILE or --app <name>"))?,
            )?;
            let train_seed = get(flags, "train-seed", calibrated_train_seed(app))?;
            let episodes = get(flags, "episodes", 8usize)?;
            let episode_s = get(flags, "episode-s", 120u64)?;
            log.info(&format!(
                "no --policy given; training DeepPower for {app:?} ({episodes} episodes x {episode_s} s, seed {train_seed})..."
            ));
            let mut cfg = TrainConfig::for_app(app);
            cfg.episodes = episodes;
            cfg.episode_s = episode_s;
            cfg.seed = train_seed;
            Ok(train_profiled(&cfg, &Recorder::disabled(), prof).0)
        }
    }
}

/// Replay a policy with full instrumentation and dump the decision
/// trace. The recorder ring is sized for the worst case — one
/// `FreqTransition` per core per 1 ms tick plus two request marks per
/// request — so nothing is evicted on sane durations.
fn cmd_trace(flags: &Flags, log: &Logger) -> Result<(), String> {
    log.info(
        "`trace` records the governor decision trace; for request-lifecycle traces \
         (retry chains, queue-vs-service breakdown) use `deeppower rtrace`",
    );
    let policy = policy_or_train(flags, log, "trace", &Profiler::disabled())?;
    let duration_s = get(flags, "duration-s", 10u64)?;
    let peak = get(flags, "peak-load", default_peak_load(policy.app))?;
    let seed = get(flags, "seed", 999u64)?;
    let out: PathBuf = get(flags, "out", PathBuf::from("trace.jsonl"))?;

    let spec = AppSpec::get(policy.app);
    let capacity = duration_s as usize * 1000 * spec.n_threads * 2 + (1 << 16);
    let rec = Recorder::ring(capacity);
    log.info(&format!(
        "tracing {:?} policy: {duration_s} s at peak load {peak:.2} (event capacity {capacity})",
        policy.app
    ));
    let outcome = evaluate_recorded(
        &policy,
        peak,
        duration_s,
        seed,
        TraceConfig::millisecond(),
        &rec,
    );
    let events = rec.drain_events();
    if rec.dropped_events() > 0 {
        log.warn(&format!(
            "{} events dropped (ring overflow) — trace is incomplete",
            rec.dropped_events()
        ));
    }
    atomic_write(&out, to_jsonl(&events)).map_err(|e| e.to_string())?;
    log.info(&format!(
        "{} events ({} DRL steps) -> {}",
        events.len(),
        outcome.log.len(),
        out.display()
    ));
    if let Some(csv) = flags.get("csv") {
        atomic_write(Path::new(csv), steps_to_csv(&events)).map_err(|e| e.to_string())?;
        log.info(&format!("DrlStep table -> {csv}"));
    }
    let s = &outcome.sim.stats;
    println!(
        "power {:.1} W | p99 {:.3} ms | timeouts {:.2}% | {} requests | {} events",
        outcome.sim.avg_power_w,
        s.p99_ns as f64 / MILLISECOND as f64,
        s.timeout_rate() * 100.0,
        s.count,
        events.len()
    );
    Ok(())
}

/// Resolve an overload scenario name (`none` or one of the harness's
/// seeded closed-loop scenarios) to its [`OverloadPlan`].
fn overload_plan_by_name(name: &str, seed: u64, sla_ns: u64) -> Result<OverloadPlan, String> {
    if name == "none" {
        return Ok(OverloadPlan::none());
    }
    overload_scenarios(seed, sla_ns)
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, plan)| plan)
        .ok_or_else(|| {
            format!("unknown overload scenario `{name}` (none|retry-storm|flash-crowd|collapse)")
        })
}

/// Write one flight-recorder dump per fired alert: the traces the
/// monitor retained for the alert's trailing windows, as replayable
/// JSONL (`traces.jsonl`, one [`Event::RequestTrace`] per line — feed
/// it back through `rtrace --input`) plus a Chrome trace-event view
/// (`trace.json`, loadable at ui.perfetto.dev), under
/// `dir/incident-NN-<metric>/`. Each dumped alert's `flight_dump`
/// field points at its directory, so the incident log names the
/// artifact. Returns how many alerts got a dump (alerts whose windows
/// were already pruned from the ring get none).
fn dump_flight_recorder(
    dir: &Path,
    report: &mut HealthReport,
    flight: &FlightRecorder,
    keep_windows: u64,
) -> Result<usize, String> {
    if flight.is_empty() || report.alerts.is_empty() {
        return Ok(0);
    }
    let mut dumped = 0;
    for (i, alert) in report.alerts.iter_mut().enumerate() {
        let lo = (alert.window + 1).saturating_sub(keep_windows);
        let traces = flight.traces_in(lo, alert.window);
        if traces.is_empty() {
            continue;
        }
        let sub = dir.join(format!("incident-{i:02}-{}", alert.metric));
        std::fs::create_dir_all(&sub)
            .map_err(|e| format!("cannot create {}: {e}", sub.display()))?;
        let events: Vec<Event> = traces
            .iter()
            .map(|(_, _, t)| Event::RequestTrace((*t).clone()))
            .collect();
        atomic_write(sub.join("traces.jsonl"), to_jsonl(&events)).map_err(|e| e.to_string())?;
        atomic_write(sub.join("trace.json"), traces_to_chrome(&traces))
            .map_err(|e| e.to_string())?;
        alert.flight_dump = sub.display().to_string();
        dumped += 1;
    }
    Ok(dumped)
}

/// Queue-vs-service breakdown of a trace set: per-outcome aggregates
/// plus the slowest chains, so the first question an incident raises —
/// "was the tail waiting or working?" — is answered offline.
fn render_trace_breakdown(traces: &[&RequestTrace]) -> String {
    use std::fmt::Write as _;
    let ms = |ns: u64| ns as f64 / MILLISECOND as f64;
    let mut out = String::new();
    let (mut q_total, mut s_total, mut b_total) = (0u64, 0u64, 0u64);
    let mut by_outcome: std::collections::BTreeMap<&str, u64> = Default::default();
    for t in traces {
        q_total += t.span_total_ns(SPAN_QUEUE);
        s_total += t.span_total_ns(SPAN_SERVICE);
        b_total += t.span_total_ns(SPAN_BACKOFF);
        *by_outcome.entry(t.outcome.as_str()).or_default() += 1;
    }
    let outcomes: Vec<String> = by_outcome.iter().map(|(k, v)| format!("{v} {k}")).collect();
    let active = (q_total + s_total).max(1);
    writeln!(
        out,
        "{} trace(s) ({}); queue {:.1}% vs service {:.1}% of in-server time, {:.1} ms total client backoff",
        traces.len(),
        outcomes.join(", "),
        100.0 * q_total as f64 / active as f64,
        100.0 * s_total as f64 / active as f64,
        ms(b_total),
    )
    .unwrap();
    let mut worst: Vec<&&RequestTrace> = traces.iter().collect();
    worst.sort_by(|a, b| (b.latency_ns, a.client).cmp(&(a.latency_ns, b.client)));
    writeln!(
        out,
        "{:>10} {:>5} {:>9} {:>10} {:>9} {:>11} {:>10} {:>12} {:>12}",
        "client",
        "node",
        "attempts",
        "outcome",
        "sampled",
        "latency(ms)",
        "queue(ms)",
        "service(ms)",
        "backoff(ms)"
    )
    .unwrap();
    for t in worst.iter().take(10) {
        writeln!(
            out,
            "{:>10} {:>5} {:>9} {:>10} {:>9} {:>11.3} {:>10.3} {:>12.3} {:>12.3}",
            t.client,
            t.node,
            t.attempts.len(),
            t.outcome,
            t.sampled,
            ms(t.latency_ns),
            ms(t.span_total_ns(SPAN_QUEUE)),
            ms(t.span_total_ns(SPAN_SERVICE)),
            ms(t.span_total_ns(SPAN_BACKOFF)),
        )
        .unwrap();
    }
    out
}

/// Request-lifecycle tracing. Offline (`--input FILE`): render the
/// queue-vs-service breakdown of a recorded JSONL artifact (a
/// `--telemetry` node artifact, an `rtrace -o` file, or a flight
/// dump's `traces.jsonl`). Online: run a monitored fleet under a
/// seeded overload scenario with head sampling + tail exemplars, print
/// the incident log and breakdown, and optionally write all traces
/// (`-o`) and per-alert flight dumps (`--flight-dump DIR`).
fn cmd_rtrace(flags: &Flags, log: &Logger) -> Result<(), String> {
    let sample = get(flags, "sample", 0.01f64)?;
    let exemplars = get(flags, "exemplars", 2u32)?;
    if !(0.0..=1.0).contains(&sample) {
        return Err(format!(
            "bad value for --sample: {sample} (sampling rate must be in [0, 1])"
        ));
    }
    if let Some(path) = flags.get("input") {
        if flags.contains_key("app") || flags.contains_key("policy") {
            return Err(
                "--input replays a recorded artifact; --app/--policy run a live fleet — pick one"
                    .into(),
            );
        }
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read trace artifact {path}: {e}"))?;
        let events = from_jsonl(&text).map_err(|e| format!("corrupt artifact {path}: {e}"))?;
        let traces: Vec<&RequestTrace> = events
            .iter()
            .filter_map(|e| match e {
                Event::RequestTrace(t) => Some(t),
                _ => None,
            })
            .collect();
        if traces.is_empty() {
            return Err(format!(
                "no request traces in {path} — record one with `deeppower rtrace --app <name>` \
                 or `deeppower fleet --trace`"
            ));
        }
        print!("{}", render_trace_breakdown(&traces));
        return Ok(());
    }

    let scenario = flags
        .get("scenario")
        .map(String::as_str)
        .unwrap_or("collapse");
    let duration_s = get(flags, "duration-s", 6u64)?;
    let seed = get(flags, "seed", 999u64)?;
    let nodes = get(flags, "nodes", 1usize)?;
    if nodes == 0 {
        return Err("--nodes needs a positive node count".into());
    }
    // Validate the scenario name before the (possibly expensive)
    // policy load / in-process training.
    if !overload_plan_by_name(scenario, seed, MILLISECOND)?.is_active() {
        return Err(
            "rtrace needs an overload scenario (retry-storm|flash-crowd|collapse) — \
             open-loop runs have no retry chains to trace"
                .into(),
        );
    }
    let policy = policy_or_train(flags, log, "rtrace", &Profiler::disabled())?;
    let app = policy.app;
    let app_spec = AppSpec::get(app);
    let peak_load = get(flags, "peak-load", default_peak_load(app))?;
    let overload = overload_plan_by_name(scenario, seed, app_spec.sla)?;

    let mut spec = FleetSpec::uniform(
        app,
        nodes,
        BalancerPolicy::JoinShortestQueue,
        seed,
        peak_load,
        duration_s,
    );
    spec.overload = overload;
    spec.rtrace = TracePlan::sampled(sample, exemplars, seed);
    log.info(&format!(
        "tracing {app:?} under `{scenario}` overload: {nodes} node(s), {duration_s} s at peak \
         load {peak_load:.2}, sampling {sample} + {exemplars} tail exemplar(s) per window"
    ));

    // Ring recorders keep the full event stream (the monitor's flight
    // ring only retains trailing windows), so `-o` gets every sampled
    // trace; the monitor then replays the same streams offline.
    let recs: Vec<Recorder> = (0..spec.nodes).map(|_| Recorder::ring(1 << 18)).collect();
    let res = run_fleet_recorded(&spec, &policy, &recs);
    let streams: Vec<Vec<Event>> = recs.iter().map(|r| r.drain_events()).collect();
    // Overload runs are short, so the default SLO uses single-window
    // burn rules (plus a goodput floor) — a collapse inside the run
    // trips an alert and fills the flight recorder instead of hiding
    // under a 15-window trailing average. `--slo FILE` overrides.
    let default_slo = {
        let mut s = SloSpec::for_sla_ns(app_spec.name, app_spec.sla);
        s.goodput_ratio = 0.9;
        s.rules = vec![
            BurnRateRule {
                long_windows: 2,
                short_windows: 1,
                max_burn: 2.0,
            },
            BurnRateRule {
                long_windows: 1,
                short_windows: 1,
                max_burn: 4.0,
            },
        ];
        s
    };
    let slo = slo_from_flags(flags, default_slo)?;
    let cfg = MonitorConfig::with_slo(slo);
    let keep = cfg.flight_windows;
    let mut mon = FleetMonitor::new(cfg);
    for (node, ev) in streams.iter().enumerate() {
        mon.ingest(node as u64, ev);
    }
    let mut report = mon.finish();

    let trace_events: Vec<Event> = streams
        .iter()
        .flat_map(|ev| ev.iter().filter(|e| matches!(e, Event::RequestTrace(_))))
        .cloned()
        .collect();
    let traces: Vec<&RequestTrace> = trace_events
        .iter()
        .filter_map(|e| match e {
            Event::RequestTrace(t) => Some(t),
            _ => None,
        })
        .collect();
    if traces.is_empty() {
        return Err(format!(
            "run produced no traces (sampling {sample}, {exemplars} exemplar(s)) — raise --sample \
             or --exemplars"
        ));
    }

    if let Some(dir) = flags.get("flight-dump") {
        let dumped = dump_flight_recorder(Path::new(dir), &mut report, mon.flight(), keep)?;
        log.info(&format!("{dumped} incident dump(s) -> {dir}"));
    }
    if let Some(out) = flags.get("out") {
        atomic_write(Path::new(out), to_jsonl(&trace_events)).map_err(|e| e.to_string())?;
        log.info(&format!("{} traces -> {out}", traces.len()));
    }
    print!("{}", report.render_incident_log());
    println!(
        "\nfleet: {} requests, goodput {}, shed {}, p99 {:.2} ms",
        res.total_requests, res.total_goodput, res.total_shed, res.fleet_p99_ms
    );
    print!("{}", render_trace_breakdown(&traces));
    Ok(())
}

/// Run training (unless `--policy` is given) plus an evaluation rollout
/// under the span profiler and export the wall-clock profile: a Chrome
/// trace-event JSON (`-o`, loadable at ui.perfetto.dev) and a per-phase
/// aggregate table (stdout; `--table FILE` to save).
///
/// The coverage line reports which share of the command's wall time the
/// root spans account for — engine, DDPG and export phases should cover
/// ≥ 90 %; much less means unprofiled work crept in somewhere.
fn cmd_profile(flags: &Flags, log: &Logger) -> Result<(), String> {
    let out: PathBuf = get(flags, "out", PathBuf::from("profile-trace.json"))?;
    let prof = Profiler::enabled();
    let t0 = std::time::Instant::now();

    let policy = policy_or_train(flags, log, "profile", &prof)?;
    let duration_s = get(flags, "duration-s", 10u64)?;
    let peak = get(flags, "peak-load", default_peak_load(policy.app))?;
    let seed = get(flags, "seed", 999u64)?;
    log.info(&format!(
        "profiling {:?} evaluation: {duration_s} s at peak load {peak:.2}",
        policy.app
    ));
    let outcome = evaluate_profiled(
        &policy,
        peak,
        duration_s,
        seed,
        TraceConfig::default(),
        &Recorder::disabled(),
        &prof,
    );

    // Artifact serialization is profiled work too; the export span
    // closes before the phase table renders, so it shows up there (the
    // Chrome trace itself cannot contain its own still-open export).
    let sp = prof.span("export.chrome_trace");
    let trace_json = prof.to_chrome_trace();
    atomic_write(&out, trace_json).map_err(|e| e.to_string())?;
    drop(sp);

    if prof.dropped_spans() > 0 {
        log.warn(&format!(
            "{} spans dropped (record cap) — the Chrome trace is truncated; the table stays exact",
            prof.dropped_spans()
        ));
    }
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let table = render_phase_table(&prof.phase_table(), wall_ns);
    println!("{table}");
    let coverage = prof.root_total_ns() as f64 / wall_ns.max(1) as f64;
    println!(
        "profiled coverage: {:.1}% of {:.2} s wall ({} requests evaluated)",
        coverage * 100.0,
        wall_ns as f64 / 1e9,
        outcome.sim.stats.count
    );
    if coverage < 0.90 {
        log.warn("profiled phases cover < 90% of wall time — unprofiled work crept in");
    }
    if let Some(path) = flags.get("table") {
        atomic_write(Path::new(path), table).map_err(|e| e.to_string())?;
        log.info(&format!("phase table -> {path}"));
    }
    log.info(&format!("Chrome trace -> {}", out.display()));
    Ok(())
}

/// Introspect a trained policy: sweep the actor's action surface along
/// every state dimension, and annotate an evaluation trajectory's
/// decisions with critic Q-values and finite-difference saliency.
fn cmd_explain(flags: &Flags, log: &Logger) -> Result<(), String> {
    let policy = policy_or_train(flags, log, "explain", &Profiler::disabled())?;
    let duration_s = get(flags, "duration-s", 10u64)?;
    let peak = get(flags, "peak-load", default_peak_load(policy.app))?;
    let seed = get(flags, "seed", 999u64)?;
    let points = get(flags, "points", 9usize)?;
    let eps = get(flags, "eps", 0.05f32)?;
    let jsonl: PathBuf = get(flags, "jsonl", PathBuf::from("explain-decisions.jsonl"))?;
    let surface_out: PathBuf = get(flags, "surface", PathBuf::from("explain-surface.csv"))?;

    let agent = policy.build_agent();
    log.info(&format!(
        "explaining {:?} policy over a {duration_s} s evaluation at peak load {peak:.2}",
        policy.app
    ));
    let outcome = evaluate_recorded(
        &policy,
        peak,
        duration_s,
        seed,
        TraceConfig::default(),
        &Recorder::disabled(),
    );
    if outcome.log.is_empty() {
        return Err("evaluation produced no DRL decisions — nothing to explain".into());
    }
    let decisions = explain_decisions(&agent, &outcome.log, eps);

    // Action surface around the trajectory's mean state, so the sweeps
    // cut through the region the policy actually operated in.
    let mut base = [0.0f32; deeppower_core::STATE_DIM];
    for row in &outcome.log {
        for (b, s) in base.iter_mut().zip(&row.state) {
            *b += s / outcome.log.len() as f32;
        }
    }
    let surface = action_surface(&agent, &base, points);

    atomic_write(&jsonl, decisions_to_jsonl(&decisions)).map_err(|e| e.to_string())?;
    log.info(&format!(
        "{} decisions -> {}",
        decisions.len(),
        jsonl.display()
    ));
    atomic_write(&surface_out, surface_to_csv(&surface)).map_err(|e| e.to_string())?;
    log.info(&format!(
        "{} surface points -> {}",
        surface.len(),
        surface_out.display()
    ));
    if let Some(csv) = flags.get("csv") {
        atomic_write(Path::new(csv), decisions_to_csv(&decisions)).map_err(|e| e.to_string())?;
        log.info(&format!("decision table -> {csv}"));
    }

    let sal = mean_abs_saliency(&decisions);
    let mut ranked: Vec<(usize, f32)> = sal.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!(
        "\nmean |saliency| per state dimension ({} decisions, eps {eps}):",
        decisions.len()
    );
    for (dim, s) in &ranked {
        println!("  {:<10} {s:.6}", STATE_DIM_NAMES[*dim]);
    }
    let q_mean = decisions.iter().map(|d| d.q_value as f64).sum::<f64>() / decisions.len() as f64;
    println!("mean Q-value along trajectory: {q_mean:.4}");
    if ranked[0].1 == 0.0 {
        log.warn("saliency is all-zero — the actor is constant around every visited state");
    }
    Ok(())
}

/// Perf-regression gate: diff a fresh bench artifact against a
/// committed `BENCH_*.json` baseline. Exits non-zero when any gated
/// metric regresses beyond the tolerance (see `deeppower_bench::diff`
/// for the metric classification and smoke-scale rules).
fn cmd_bench_diff(flags: &Flags, log: &Logger) -> Result<(), String> {
    let baseline = flags
        .get("baseline")
        .ok_or("bench-diff needs --baseline FILE")?;
    let candidate = flags
        .get("candidate")
        .ok_or("bench-diff needs --candidate FILE")?;
    let tolerance = get(flags, "tolerance", 0.35f64)?;
    let b = std::fs::read_to_string(baseline)
        .map_err(|e| format!("cannot read baseline {baseline}: {e}"))?;
    let c = std::fs::read_to_string(candidate)
        .map_err(|e| format!("cannot read candidate {candidate}: {e}"))?;
    let report = deeppower_bench::diff::diff_str(&b, &c, tolerance)?;
    print!("{}", report.render_table());
    let regressions = report.regressions().count();
    if regressions > 0 {
        return Err(format!(
            "{regressions} perf regression(s) beyond {:.0}% tolerance vs {baseline}",
            tolerance * 100.0
        ));
    }
    log.info(&format!(
        "no perf regressions vs {baseline} ({} metrics compared, tolerance {:.0}%)",
        report.rows.len(),
        tolerance * 100.0
    ));
    Ok(())
}

fn cmd_workload_trace(flags: &Flags, log: &Logger) -> Result<(), String> {
    let period_s = get(flags, "period-s", 360u64)?;
    let base_rps = get(flags, "base-rps", 1000.0f64)?;
    let seed = get(flags, "seed", 0u64)?;
    let out: PathBuf = get(flags, "out", PathBuf::from("trace.csv"))?;
    let cfg = DiurnalConfig {
        period_s,
        base_rps,
        ..Default::default()
    };
    let trace = DiurnalTrace::generate(&cfg, seed);
    save_trace_csv(&trace, Path::new(&out)).map_err(|e| e.to_string())?;
    log.info(&format!(
        "wrote {} slots ({} s) to {} — mean {:.0} rps, peak {:.0} rps",
        trace.n_slots(),
        period_s,
        out.display(),
        trace.mean_rps(),
        trace.max_rps()
    ));
    Ok(())
}
