//! Offline profiling: the training data for the predictor baselines.
//!
//! ReTail and Gemini both learn `features → service time` from data
//! collected at a fixed load (§2.2, §3.1). [`collect_profile`] reproduces
//! that procedure: run the application at a constant request rate with all
//! cores pinned at the reference frequency, and record each request's
//! observed *processing* time (start → completion, which is what a
//! server-side profiler sees) alongside its observable features.
//!
//! Because processing time includes the load-dependent contention
//! inflation, a model fitted at load *i* systematically mispredicts load
//! *j* — the Fig. 2 effect the motivation section quantifies.

use deeppower_simd_server::SECOND;
use deeppower_simd_server::{
    FixedFrequency, FreqCommands, Governor, Nanos, Request, RunOptions, Server, ServerConfig,
    ServerView,
};
use deeppower_workload::{constant_rate_arrivals, AppSpec};

/// One profiling observation.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileSample {
    pub features: Vec<f32>,
    /// Observed processing time (dequeue → completion) in nanoseconds.
    pub service_ns: f64,
}

/// A governor wrapper that records `(features, processing time)` pairs
/// while delegating frequency control.
struct RecordingGovernor<G> {
    inner: G,
    starts: Vec<Option<(Nanos, Vec<f32>)>>,
    samples: Vec<ProfileSample>,
}

impl<G: Governor> Governor for RecordingGovernor<G> {
    fn on_tick(&mut self, view: &ServerView<'_>, cmds: &mut FreqCommands) {
        self.inner.on_tick(view, cmds);
    }

    fn on_request_start(
        &mut self,
        view: &ServerView<'_>,
        core_id: usize,
        req: &Request,
        cmds: &mut FreqCommands,
    ) {
        self.starts[core_id] = Some((view.now, req.features.clone()));
        self.inner.on_request_start(view, core_id, req, cmds);
    }

    fn on_request_complete(&mut self, now: Nanos, core_id: usize, req: &Request, latency: Nanos) {
        if let Some((started, features)) = self.starts[core_id].take() {
            self.samples.push(ProfileSample {
                features,
                service_ns: (now - started) as f64,
            });
        }
        self.inner.on_request_complete(now, core_id, req, latency);
    }

    fn name(&self) -> &str {
        "recording"
    }
}

/// Collect `duration_s` seconds of profiling data for `spec` at
/// utilization `load`, with all cores at the reference frequency.
pub fn collect_profile(
    spec: &AppSpec,
    load: f64,
    duration_s: u64,
    seed: u64,
) -> Vec<ProfileSample> {
    let server = Server::new(ServerConfig::paper_default(spec.n_threads));
    let ref_mhz = server.config().freq_plan.reference_mhz;
    let arrivals = constant_rate_arrivals(spec, spec.rps_for_load(load), duration_s * SECOND, seed);
    let mut gov = RecordingGovernor {
        inner: FixedFrequency { mhz: ref_mhz },
        starts: vec![None; spec.n_threads],
        samples: Vec::with_capacity(arrivals.len()),
    };
    let _ = server.run(&arrivals, &mut gov, RunOptions::default());
    gov.samples
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linreg::LinReg;
    use deeppower_workload::App;

    #[test]
    fn profile_captures_every_request() {
        let spec = AppSpec::get(App::Xapian);
        let samples = collect_profile(&spec, 0.3, 2, 1);
        // 2 s at 30 % of 22.2k RPS ≈ 13k requests.
        assert!(samples.len() > 8_000, "only {} samples", samples.len());
        assert!(samples.iter().all(|s| s.service_ns > 0.0));
        assert!(samples.iter().all(|s| s.features.len() == 1));
    }

    #[test]
    fn linear_fit_on_profile_is_informative_at_same_load() {
        // The ReTail premise, tempered by the hidden variance: linreg over
        // the observable feature explains a good part of the service time
        // at a fixed load (clearly better than predicting the mean), but
        // far from all of it — the unpredictable remainder is what
        // motivates DeepPower's feature-free design.
        let spec = AppSpec::get(App::Xapian);
        let samples = collect_profile(&spec, 0.3, 3, 2);
        let xs: Vec<Vec<f32>> = samples.iter().map(|s| s.features.clone()).collect();
        let ys: Vec<f64> = samples.iter().map(|s| s.service_ns).collect();
        let model = LinReg::fit(&xs, &ys).unwrap();
        let rmse = model.rmse(&xs, &ys);
        let mean: f64 = ys.iter().sum::<f64>() / ys.len() as f64;
        let var = ys.iter().map(|y| (y - mean) * (y - mean)).sum::<f64>() / ys.len() as f64;
        let std = var.sqrt();
        assert!(
            rmse < std * 0.85,
            "model no better than the mean: rmse {rmse} vs std {std}"
        );
        assert!(
            rmse / mean < 0.7,
            "relative RMSE implausibly high: {}",
            rmse / mean
        );
    }

    #[test]
    fn higher_load_inflates_observed_service_time() {
        // The Fig. 2 driver: contention makes the same work take longer at
        // high load.
        let spec = AppSpec::get(App::Xapian);
        let low = collect_profile(&spec, 0.2, 2, 3);
        let high = collect_profile(&spec, 0.8, 2, 3);
        let mean =
            |s: &[ProfileSample]| s.iter().map(|x| x.service_ns).sum::<f64>() / s.len() as f64;
        assert!(
            mean(&high) > mean(&low) * 1.05,
            "no contention drift: {} vs {}",
            mean(&high),
            mean(&low)
        );
    }

    #[test]
    fn profile_deterministic_per_seed() {
        let spec = AppSpec::get(App::Masstree);
        let a = collect_profile(&spec, 0.3, 1, 7);
        let b = collect_profile(&spec, 0.3, 1, 7);
        assert_eq!(a, b);
    }
}
