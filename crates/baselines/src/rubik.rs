//! Rubik (Kasture et al., MICRO 2015), as characterized by the DeepPower
//! paper's related work (§6):
//!
//! "Rubik goes ahead by modeling the latency distribution. In order to
//! avoid SLA violation, Rubik takes the tail of the distribution as the
//! predicted latency. Considering the long-tailed distribution of request
//! service times, this prediction is overestimated."
//!
//! The governor is therefore **feature-free and conservative**: it learns
//! the empirical service-time distribution from profiling data, uses a
//! high quantile (p99 by default) as every request's predicted service
//! time, and — like ReTail — walks the frequency levels from low to high
//! until the (over-)prediction fits the request's remaining budget.
//! Against DeepPower this is the "statistical tail planning" point in the
//! design space: safe, simple, and systematically over-provisioned for
//! the short requests that dominate the workload.

use crate::profile::ProfileSample;
use deeppower_simd_server::{FreqCommands, FreqPlan, Governor, Request, ServerView};

/// Rubik tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct RubikConfig {
    /// Quantile of the profiled service-time distribution used as the
    /// per-request prediction (the paper: "the tail of the distribution").
    pub quantile: f64,
    /// Fraction of the SLA the backlog ahead of a queued request may
    /// consume before the dequeue frequency is raised (same queue guard
    /// as ReTail, so the comparison isolates the prediction policy).
    pub queue_budget_frac: f64,
}

impl Default for RubikConfig {
    fn default() -> Self {
        Self {
            quantile: 0.99,
            queue_budget_frac: 0.2,
        }
    }
}

/// The Rubik governor.
pub struct RubikGovernor {
    /// Tail service-time estimate at the reference frequency, ns.
    tail_pred_ns: f64,
    /// Mean service time (backlog estimates), ns.
    mean_ns: f64,
    plan: FreqPlan,
    cfg: RubikConfig,
}

impl RubikGovernor {
    /// Fit the empirical distribution from profiling samples.
    pub fn train(samples: &[ProfileSample], plan: FreqPlan, cfg: RubikConfig) -> Self {
        assert!(
            !samples.is_empty(),
            "cannot train Rubik on an empty profile"
        );
        assert!(
            (0.5..1.0).contains(&cfg.quantile),
            "quantile must be in [0.5, 1)"
        );
        let mut times: Vec<f64> = samples.iter().map(|s| s.service_ns).collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((cfg.quantile * times.len() as f64).ceil() as usize).clamp(1, times.len());
        let tail_pred_ns = times[rank - 1];
        let mean_ns = times.iter().sum::<f64>() / times.len() as f64;
        Self {
            tail_pred_ns,
            mean_ns,
            plan,
            cfg,
        }
    }

    /// The tail estimate used for every request.
    pub fn tail_prediction_ns(&self) -> f64 {
        self.tail_pred_ns
    }

    fn select_freq(&self, view: &ServerView<'_>, req: &Request) -> u32 {
        let budget = (req.arrival + req.sla).saturating_sub(view.now) as f64;
        let n_cores = view.cores.len().max(1) as f64;
        let backlog_ref = view.queue.len() as f64 * self.mean_ns / n_cores;
        let queue_budget = req.sla as f64 * self.cfg.queue_budget_frac;
        for &level in &self.plan.levels_mhz {
            let scale = self.plan.reference_mhz as f64 / level as f64;
            if self.tail_pred_ns * scale <= budget && backlog_ref * scale <= queue_budget {
                return level;
            }
        }
        self.plan.turbo_mhz
    }
}

impl Governor for RubikGovernor {
    fn on_request_start(
        &mut self,
        view: &ServerView<'_>,
        core_id: usize,
        req: &Request,
        cmds: &mut FreqCommands,
    ) {
        cmds.set(core_id, self.select_freq(view, req));
    }

    fn on_tick(&mut self, view: &ServerView<'_>, cmds: &mut FreqCommands) {
        for (i, core) in view.cores.iter().enumerate() {
            if !core.busy() {
                cmds.set(i, self.plan.min_mhz());
            }
        }
    }

    fn name(&self) -> &str {
        "rubik"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::collect_profile;
    use crate::retail::{RetailConfig, RetailGovernor};
    use deeppower_workload::{App, AppSpec};

    fn profiled(spec: &AppSpec) -> Vec<ProfileSample> {
        collect_profile(spec, 0.3, 2, 71)
    }

    #[test]
    fn tail_prediction_exceeds_mean_substantially() {
        let spec = AppSpec::get(App::Xapian);
        let samples = profiled(&spec);
        let gov = RubikGovernor::train(
            &samples,
            FreqPlan::xeon_gold_5218r(),
            RubikConfig::default(),
        );
        let mean = samples.iter().map(|s| s.service_ns).sum::<f64>() / samples.len() as f64;
        // "the prediction is overestimated" — tail over mean by the
        // long-tail factor (~3x for Xapian).
        assert!(gov.tail_prediction_ns() > 2.0 * mean);
    }

    #[test]
    fn rubik_overprovisions_short_requests_under_tight_budgets() {
        // §6's critique at the decision level: for a *short* request (small
        // observable feature) with a tight remaining budget, ReTail sizes
        // the frequency to the request's own (small) prediction, while
        // Rubik sizes it to the distribution tail — a strictly higher
        // frequency. Whole-run power differences can drown in queue-guard
        // noise, so the decision itself is what we pin down.
        let spec = AppSpec::get(App::Xapian);
        let samples = profiled(&spec);
        let plan = FreqPlan::xeon_gold_5218r();
        let rubik = RubikGovernor::train(&samples, plan.clone(), RubikConfig::default());
        let retail = RetailGovernor::train(&samples, plan, RetailConfig::default());

        let cores: Vec<deeppower_simd_server::CoreView<'_>> = Vec::new();
        let queue = std::collections::VecDeque::new();
        // 3 ms of budget left out of the 8 ms SLA.
        let view = ServerView {
            now: 5_000_000,
            queue: &queue,
            cores: &cores,
            total_arrived: 0,
            total_completed: 0,
            total_timeouts: 0,
            total_shed: 0,
            total_wasted: 0,
            energy_uj: 0,
        };
        let short_req = deeppower_simd_server::Request {
            id: 0,
            client_id: 0,
            attempt: 0,
            arrival: 0,
            first_arrival: 0,
            work_ref_ns: 0,
            freq_sensitivity: 1.0,
            sla: 8_000_000,
            features: vec![0.3], // well below the mean size
        };
        let f_rubik = rubik.select_freq(&view, &short_req);
        let f_retail = retail_freq(&retail, &view, &short_req);
        assert!(
            f_rubik > f_retail,
            "rubik must over-clock a short request vs retail: {f_rubik} vs {f_retail}"
        );
        // And Rubik treats *every* request identically (feature-free).
        let long_req = deeppower_simd_server::Request {
            features: vec![4.0],
            ..short_req.clone()
        };
        assert_eq!(rubik.select_freq(&view, &long_req), f_rubik);
    }

    /// ReTail's selection via its public interface (a one-shot run of the
    /// `on_request_start` hook).
    fn retail_freq(
        gov: &RetailGovernor,
        view: &ServerView<'_>,
        req: &deeppower_simd_server::Request,
    ) -> u32 {
        // The governor exposes prediction; replicate its level walk
        // through the same public pieces it uses.
        let plan = FreqPlan::xeon_gold_5218r();
        let pred = gov.predict_ns(&req.features) * RetailConfig::default().margin;
        let budget = (req.arrival + req.sla).saturating_sub(view.now) as f64;
        for &level in &plan.levels_mhz {
            let scale = plan.reference_mhz as f64 / level as f64;
            if pred * scale <= budget {
                return level;
            }
        }
        plan.turbo_mhz
    }

    #[test]
    fn quantile_bounds_enforced() {
        let spec = AppSpec::get(App::Masstree);
        let samples = profiled(&spec);
        let bad = RubikConfig {
            quantile: 1.5,
            ..Default::default()
        };
        let res = std::panic::catch_unwind(|| {
            RubikGovernor::train(&samples, FreqPlan::xeon_gold_5218r(), bad)
        });
        assert!(res.is_err());
    }
}
