//! Gemini (Zhou et al., MICRO 2020), as described by the DeepPower paper.
//!
//! §2.2: "Gemini created a two-stage frequency boost method utilizing the
//! prediction model. The method sets a baseline frequency, and will
//! increase it to the maximum frequency if the queue of waiting requests
//! risks timing out." And §6: "Gemini … uses a neural network for service
//! time prediction. Gemini selects a low frequency of a request and boosts
//! the frequency when the request is going to time out."
//!
//! Two stages per request:
//!
//! 1. **Base stage** (at dequeue): pick the lowest level whose scaled
//!    NN-predicted service time fits in a fraction of the remaining
//!    budget.
//! 2. **Boost stage** (checked every tick): if the predicted remaining
//!    work no longer fits the remaining budget — or queued requests are
//!    close to their deadlines — jump the core to the maximum frequency.
//!    The boost is one-way for the request's lifetime (the "once or twice
//!    per request" granularity Fig. 9c shows).

use crate::profile::ProfileSample;
use deeppower_nn::{mse_loss, ActivationKind, Adam, AdamConfig, Matrix, Optimizer, Sequential};
use deeppower_simd_server::{FreqCommands, FreqPlan, Governor, Nanos, Request, ServerView};
use rand::{rngs::StdRng, SeedableRng};

/// Small-MLP service-time predictor (Gemini's neural network).
pub struct NnPredictor {
    net: Sequential,
    /// Feature/target scales for stable training.
    y_scale: f64,
}

impl NnPredictor {
    /// Train on profiling samples: features → service time (ns).
    pub fn train(samples: &[ProfileSample], epochs: usize, seed: u64) -> Self {
        assert!(
            !samples.is_empty(),
            "cannot train predictor on empty profile"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let in_dim = samples[0].features.len();
        let mut net = Sequential::mlp(
            &mut rng,
            &[in_dim, 16, 8, 1],
            ActivationKind::Relu,
            ActivationKind::Identity,
        );
        let y_scale = samples.iter().map(|s| s.service_ns).sum::<f64>() / samples.len() as f64;
        let mut opt = Adam::new(
            AdamConfig {
                lr: 3e-3,
                ..Default::default()
            },
            &net,
        );

        // Mini-batch SGD over shuffled windows.
        let batch = 64.min(samples.len());
        let n_batches = samples.len() / batch;
        for epoch in 0..epochs {
            for b in 0..n_batches {
                // Deterministic "shuffle": stride through the data with an
                // epoch-dependent offset.
                let rows: Vec<&ProfileSample> = (0..batch)
                    .map(|i| &samples[(b * batch + i * 7 + epoch * 13) % samples.len()])
                    .collect();
                let x = Matrix::from_rows(
                    &rows
                        .iter()
                        .map(|s| s.features.as_slice())
                        .collect::<Vec<_>>(),
                );
                let t_rows: Vec<Vec<f32>> = rows
                    .iter()
                    .map(|s| vec![(s.service_ns / y_scale) as f32])
                    .collect();
                let t = Matrix::from_rows(&t_rows.iter().map(|r| r.as_slice()).collect::<Vec<_>>());
                net.zero_grad();
                let y = net.forward(&x);
                let (_, g) = mse_loss(&y, &t);
                let _ = net.backward(&g);
                opt.step(&mut net);
            }
        }
        Self { net, y_scale }
    }

    /// Predicted service time at the reference frequency, ns.
    pub fn predict_ns(&self, features: &[f32]) -> f64 {
        let y = self.net.forward_inference(&Matrix::from_row(features));
        (y.as_slice()[0] as f64 * self.y_scale).max(0.0)
    }
}

/// Gemini tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct GeminiConfig {
    /// Fraction of the remaining budget the base-stage prediction may
    /// consume (the rest is boost headroom).
    pub base_budget_frac: f64,
    /// Safety margin on predictions.
    pub margin: f64,
    /// Boost when remaining budget falls below `boost_slack_frac · SLA`
    /// with predicted work still outstanding.
    pub boost_slack_frac: f64,
}

impl Default for GeminiConfig {
    fn default() -> Self {
        Self {
            base_budget_frac: 0.7,
            margin: 1.1,
            boost_slack_frac: 0.25,
        }
    }
}

struct InFlight {
    /// Predicted total service time at reference frequency.
    pred_ref_ns: f64,
    base_mhz: u32,
    started: Nanos,
    deadline: Nanos,
    boosted: bool,
}

/// The Gemini governor.
pub struct GeminiGovernor {
    predictor: NnPredictor,
    plan: FreqPlan,
    cfg: GeminiConfig,
    inflight: Vec<Option<InFlight>>,
}

impl GeminiGovernor {
    pub fn new(predictor: NnPredictor, plan: FreqPlan, n_cores: usize, cfg: GeminiConfig) -> Self {
        Self {
            predictor,
            plan,
            cfg,
            inflight: (0..n_cores).map(|_| None).collect(),
        }
    }

    /// Train the NN predictor from profile data and build the governor.
    pub fn train(
        samples: &[ProfileSample],
        plan: FreqPlan,
        n_cores: usize,
        cfg: GeminiConfig,
        seed: u64,
    ) -> Self {
        Self::new(NnPredictor::train(samples, 12, seed), plan, n_cores, cfg)
    }

    fn base_freq_for(&self, pred_ns: f64, budget_ns: f64) -> u32 {
        let usable = budget_ns * self.cfg.base_budget_frac;
        for &level in &self.plan.levels_mhz {
            let scale = self.plan.reference_mhz as f64 / level as f64;
            if pred_ns * scale <= usable {
                return level;
            }
        }
        self.plan.max_mhz()
    }
}

impl Governor for GeminiGovernor {
    fn on_request_start(
        &mut self,
        view: &ServerView<'_>,
        core_id: usize,
        req: &Request,
        cmds: &mut FreqCommands,
    ) {
        let pred = self.predictor.predict_ns(&req.features) * self.cfg.margin;
        let deadline = req.arrival + req.sla;
        let budget = deadline.saturating_sub(view.now) as f64;
        let base = self.base_freq_for(pred, budget);
        cmds.set(core_id, base);
        self.inflight[core_id] = Some(InFlight {
            pred_ref_ns: pred,
            base_mhz: base,
            started: view.now,
            deadline,
            boosted: false,
        });
    }

    fn on_tick(&mut self, view: &ServerView<'_>, cmds: &mut FreqCommands) {
        for (core_id, core) in view.cores.iter().enumerate() {
            match (&core.running, &mut self.inflight[core_id]) {
                (Some(run), Some(fl)) if !fl.boosted => {
                    // Work retired so far, in reference time, assuming the
                    // base frequency's linear scaling.
                    let elapsed = view.now.saturating_sub(fl.started) as f64;
                    let scale = self.plan.reference_mhz as f64 / fl.base_mhz as f64;
                    let retired_ref = elapsed / scale;
                    let remaining_ref = (fl.pred_ref_ns - retired_ref).max(0.0);
                    let remaining_budget = fl.deadline.saturating_sub(view.now) as f64;
                    let slack_floor = run.sla as f64 * self.cfg.boost_slack_frac;
                    let at_risk = remaining_ref * scale + slack_floor > remaining_budget;
                    if at_risk {
                        cmds.set(core_id, self.plan.max_mhz());
                        fl.boosted = true;
                    }
                }
                (None, slot @ Some(_)) => {
                    // Completed since the last tick; idle to the floor.
                    *slot = None;
                    cmds.set(core_id, self.plan.min_mhz());
                }
                (None, None) => cmds.set(core_id, self.plan.min_mhz()),
                _ => {}
            }
        }
    }

    fn on_request_complete(&mut self, _now: Nanos, core_id: usize, _req: &Request, _lat: Nanos) {
        self.inflight[core_id] = None;
    }

    fn name(&self) -> &str {
        "gemini"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::collect_profile;
    use deeppower_simd_server::{RunOptions, Server, ServerConfig, SECOND};
    use deeppower_workload::{constant_rate_arrivals, App, AppSpec};

    fn trained(spec: &AppSpec) -> GeminiGovernor {
        let samples = collect_profile(spec, 0.3, 2, 31);
        GeminiGovernor::train(
            &samples,
            FreqPlan::xeon_gold_5218r(),
            spec.n_threads,
            GeminiConfig::default(),
            5,
        )
    }

    #[test]
    fn nn_predictor_learns_service_time() {
        let spec = AppSpec::get(App::Xapian);
        let samples = collect_profile(&spec, 0.3, 2, 41);
        let predictor = NnPredictor::train(&samples, 12, 1);
        // Relative RMSE against held-in data should be small.
        let sse: f64 = samples
            .iter()
            .map(|s| {
                let e = predictor.predict_ns(&s.features) - s.service_ns;
                e * e
            })
            .sum();
        let rmse = (sse / samples.len() as f64).sqrt();
        let mean = samples.iter().map(|s| s.service_ns).sum::<f64>() / samples.len() as f64;
        // The hidden service-time variance bounds how good any predictor
        // can be; the NN should still clearly beat a mean predictor.
        assert!(rmse / mean < 0.7, "NN relative RMSE {}", rmse / mean);
        // Larger feature → longer prediction.
        assert!(predictor.predict_ns(&[3.0]) > predictor.predict_ns(&[0.3]));
    }

    #[test]
    fn base_stage_picks_low_frequency_with_ample_budget() {
        let spec = AppSpec::get(App::Xapian);
        let gov = trained(&spec);
        let pred = 500_000.0; // 0.5 ms
        let f = gov.base_freq_for(pred, 8_000_000.0);
        assert_eq!(f, gov.plan.min_mhz());
        // Tight budget → max.
        let f = gov.base_freq_for(pred, 520_000.0);
        assert!(f >= 2000, "tight budget got {f}");
    }

    #[test]
    fn gemini_saves_power_and_roughly_meets_sla() {
        let spec = AppSpec::get(App::Xapian);
        let server = Server::new(ServerConfig::paper_default(spec.n_threads));
        let arrivals = constant_rate_arrivals(&spec, spec.rps_for_load(0.4), 5 * SECOND, 51);

        let mut gem = trained(&spec);
        let res_gem = server.run(&arrivals, &mut gem, RunOptions::default());
        let mut maxf = crate::max_freq_governor();
        let res_max = server.run(&arrivals, &mut maxf, RunOptions::default());

        assert!(
            res_gem.avg_power_w < res_max.avg_power_w * 0.95,
            "gemini saved no power: {} vs {}",
            res_gem.avg_power_w,
            res_max.avg_power_w
        );
        assert!(
            res_gem.stats.timeout_rate() < 0.05,
            "gemini timeout rate {}",
            res_gem.stats.timeout_rate()
        );
    }

    #[test]
    fn boost_fires_when_request_runs_long() {
        // Build a predictor that underestimates: a request that actually
        // takes much longer than predicted must get boosted to max.
        let spec = AppSpec::get(App::Xapian);
        let server = Server::new(ServerConfig::paper_default(1));
        let samples = collect_profile(&spec, 0.2, 1, 61);
        let mut gov = GeminiGovernor::train(
            &samples,
            FreqPlan::xeon_gold_5218r(),
            1,
            GeminiConfig::default(),
            5,
        );
        // True work far above what feature 0.5 suggests (~0.45 ms).
        let req = deeppower_simd_server::Request {
            id: 0,
            client_id: 0,
            attempt: 0,
            arrival: 0,
            first_arrival: 0,
            work_ref_ns: 5_000_000,
            freq_sensitivity: 1.0,
            sla: 8_000_000,
            features: vec![0.5],
        };
        let res = server.run(
            &[req],
            &mut gov,
            RunOptions {
                trace: deeppower_simd_server::TraceConfig::millisecond(),
                ..Default::default()
            },
        );
        let max_seen = res.traces.freq.iter().map(|&(_, _, f)| f).max().unwrap();
        assert_eq!(max_seen, 2100, "boost to max never happened");
        assert_eq!(res.stats.count, 1);
    }
}
