//! # deeppower-baselines
//!
//! The state-of-the-art comparison points of the paper's evaluation (§5.2):
//!
//! * **ReTail** (Chen et al., HPCA 2022) — "argues that linear regression
//!   is accurate enough for applications in Tailbench … When a request
//!   arrives, Retail enumerates all the frequency levels from small to
//!   large and stops when the frequency level is large enough to avoid
//!   timing out." Implemented in [`retail`] over an OLS predictor
//!   ([`linreg`]).
//! * **Gemini** (Zhou et al., MICRO 2020) — "uses a neural network for
//!   service time prediction … selects a low frequency of a request and
//!   boosts the frequency when the request is going to time out."
//!   Implemented in [`gemini`] over a small MLP predictor.
//! * **Rubik** (Kasture et al., MICRO 2015) — related work (§6): feature-
//!   free statistical tail planning; "takes the tail of the distribution
//!   as the predicted latency", implemented in [`rubik`].
//! * **MaxFreq** — the paper's no-power-management baseline (all cores at
//!   the maximum nominal frequency), plus arbitrary fixed frequencies.
//!
//! Both predictor-based baselines train on profiling data collected from a
//! fixed-load run ([`profile::collect_profile`]) — exactly the static-load
//! modeling assumption §3.1 shows breaks under dynamic load (Fig. 2).

pub mod gemini;
pub mod linreg;
pub mod profile;
pub mod retail;
pub mod rubik;

pub use gemini::{GeminiConfig, GeminiGovernor, NnPredictor};
pub use linreg::LinReg;
pub use profile::{collect_profile, ProfileSample};
pub use retail::{RetailConfig, RetailGovernor};
pub use rubik::{RubikConfig, RubikGovernor};

/// The paper's unmanaged baseline: every core pinned at max nominal
/// frequency.
pub fn max_freq_governor() -> deeppower_simd_server::FixedFrequency {
    deeppower_simd_server::FixedFrequency {
        mhz: deeppower_simd_server::FreqPlan::xeon_gold_5218r().max_mhz(),
    }
}
