//! ReTail (Chen et al., HPCA 2022), as described by the DeepPower paper.
//!
//! §2.2: "Retail selects the minimum frequency at which the execution of
//! all requests in the queue will not result in a timeout. Then Retail
//! uses this frequency to execute the first request in the queue." And
//! §6: "When a request arrives, Retail enumerates all the frequency levels
//! from small to large and stops when the frequency level is large enough
//! to avoid timing out."
//!
//! Frequency is therefore chosen **once per request**, at dequeue time
//! (the coarse granularity Fig. 9b contrasts against DeepPower's ramps):
//!
//! 1. predict the request's service time at the reference frequency with
//!    an OLS model over observable features;
//! 2. walk the levels from lowest to highest and pick the first `f` whose
//!    scaled prediction `pred · f_ref / f` (plus a safety margin) meets
//!    the request's remaining latency budget **and** drains the current
//!    backlog fast enough that queued requests keep their budgets;
//! 3. fall back to turbo if no level suffices.

use crate::linreg::LinReg;
use crate::profile::ProfileSample;
use deeppower_simd_server::{FreqCommands, FreqPlan, Governor, Request, ServerView};

/// ReTail tuning knobs.
#[derive(Clone, Debug)]
pub struct RetailConfig {
    /// Multiplicative safety margin on predictions (ReTail over-provisions
    /// slightly to absorb model error).
    pub margin: f64,
    /// Fraction of the SLA the backlog ahead of a queued request may
    /// consume before the dequeue frequency is raised.
    pub queue_budget_frac: f64,
}

impl Default for RetailConfig {
    fn default() -> Self {
        Self {
            margin: 1.25,
            queue_budget_frac: 0.2,
        }
    }
}

/// The ReTail governor.
pub struct RetailGovernor {
    model: LinReg,
    plan: FreqPlan,
    cfg: RetailConfig,
    /// Mean predicted service time (for backlog estimates).
    mean_pred_ns: f64,
}

impl RetailGovernor {
    /// Train from profiling samples (collected at a fixed load — the
    /// assumption §3.1 critiques).
    pub fn train(samples: &[ProfileSample], plan: FreqPlan, cfg: RetailConfig) -> Self {
        let xs: Vec<Vec<f32>> = samples.iter().map(|s| s.features.clone()).collect();
        let ys: Vec<f64> = samples.iter().map(|s| s.service_ns).collect();
        let model = LinReg::fit(&xs, &ys).expect("profile data degenerate");
        let mean_pred_ns = ys.iter().sum::<f64>() / ys.len() as f64;
        Self {
            model,
            plan,
            cfg,
            mean_pred_ns,
        }
    }

    /// Construct with an explicit model (tests).
    pub fn with_model(model: LinReg, mean_pred_ns: f64, plan: FreqPlan, cfg: RetailConfig) -> Self {
        Self {
            model,
            plan,
            cfg,
            mean_pred_ns,
        }
    }

    /// Predicted service time of a request at the reference frequency.
    pub fn predict_ns(&self, features: &[f32]) -> f64 {
        self.model.predict(features).max(0.0)
    }

    /// The per-request frequency selection described above.
    fn select_freq(&self, view: &ServerView<'_>, req: &Request) -> u32 {
        let pred = self.predict_ns(&req.features) * self.cfg.margin;
        let budget = (req.arrival + req.sla).saturating_sub(view.now) as f64;
        let n_cores = view.cores.len().max(1) as f64;
        // Backlog the queue represents, per core, at reference frequency.
        let backlog_ref = view.queue.len() as f64 * self.mean_pred_ns / n_cores;
        let queue_budget = req.sla as f64 * self.cfg.queue_budget_frac;

        for &level in &self.plan.levels_mhz {
            let scale = self.plan.reference_mhz as f64 / level as f64;
            let own_ok = pred * scale <= budget;
            let queue_ok = backlog_ref * scale <= queue_budget;
            if own_ok && queue_ok {
                return level;
            }
        }
        self.plan.turbo_mhz
    }
}

impl Governor for RetailGovernor {
    fn on_request_start(
        &mut self,
        view: &ServerView<'_>,
        core_id: usize,
        req: &Request,
        cmds: &mut FreqCommands,
    ) {
        cmds.set(core_id, self.select_freq(view, req));
    }

    fn on_tick(&mut self, view: &ServerView<'_>, cmds: &mut FreqCommands) {
        // Idle cores drop to the lowest level (ReTail only raises
        // frequency while a request is executing).
        for (i, core) in view.cores.iter().enumerate() {
            if !core.busy() {
                cmds.set(i, self.plan.min_mhz());
            }
        }
    }

    fn name(&self) -> &str {
        "retail"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::collect_profile;
    use deeppower_simd_server::SECOND;
    use deeppower_simd_server::{
        ContentionModel, PowerModel, RunOptions, Server, ServerConfig, MILLISECOND,
    };
    use deeppower_workload::{constant_rate_arrivals, App, AppSpec};

    fn trained(spec: &AppSpec) -> RetailGovernor {
        let samples = collect_profile(spec, 0.3, 2, 11);
        RetailGovernor::train(
            &samples,
            FreqPlan::xeon_gold_5218r(),
            RetailConfig::default(),
        )
    }

    #[test]
    fn short_requests_get_low_frequency_long_ones_high() {
        let spec = AppSpec::get(App::Xapian);
        let gov = trained(&spec);
        // A tiny predicted request with full budget → minimum level.
        // Feature ≈ normalized size; size 0.2 → short, size 5 → long tail.
        let plan = FreqPlan::xeon_gold_5218r();
        let mk = |feat: f32, budget_ms: u64| Request {
            id: 0,
            client_id: 0,
            attempt: 0,
            arrival: 0,
            first_arrival: 0,
            work_ref_ns: 0,
            freq_sensitivity: 1.0,
            sla: budget_ms * MILLISECOND,
            features: vec![feat],
        };
        let cores: Vec<deeppower_simd_server::CoreView<'_>> = Vec::new();
        let queue = std::collections::VecDeque::new();
        let view = ServerView {
            now: 0,
            queue: &queue,
            cores: &cores,
            total_arrived: 0,
            total_completed: 0,
            total_timeouts: 0,
            total_shed: 0,
            total_wasted: 0,
            energy_uj: 0,
        };
        let f_short = gov.select_freq(&view, &mk(0.2, 8));
        let f_long = gov.select_freq(&view, &mk(5.0, 8));
        assert!(f_short < f_long, "short {f_short} vs long {f_long}");
        assert_eq!(f_short, plan.min_mhz());
    }

    #[test]
    fn meets_sla_at_moderate_load_with_less_energy_than_max() {
        let spec = AppSpec::get(App::Xapian);
        let server = Server::new(ServerConfig {
            n_cores: spec.n_threads,
            freq_plan: FreqPlan::xeon_gold_5218r(),
            power: PowerModel::default(),
            contention: ContentionModel::default(),
            initial_mhz: 2100,
            cstates: deeppower_simd_server::CStatePlan::none(),
            core_max_mhz: Vec::new(),
        });
        let arrivals = constant_rate_arrivals(&spec, spec.rps_for_load(0.4), 5 * SECOND, 21);

        let mut retail = trained(&spec);
        let res_retail = server.run(&arrivals, &mut retail, RunOptions::default());

        let mut maxf = crate::max_freq_governor();
        let res_max = server.run(&arrivals, &mut maxf, RunOptions::default());

        assert!(
            res_retail.avg_power_w < res_max.avg_power_w * 0.95,
            "retail saved no power: {} vs {}",
            res_retail.avg_power_w,
            res_max.avg_power_w
        );
        // The paper's Fig. 7c shows ReTail with a small but non-zero
        // timeout rate (it "slightly violate[s] the SLA in Xapian").
        assert!(
            res_retail.stats.timeout_rate() < 0.03,
            "retail violated SLA: {}",
            res_retail.stats.timeout_rate()
        );
    }

    #[test]
    fn congested_queue_forces_higher_frequency() {
        let spec = AppSpec::get(App::Xapian);
        let gov = trained(&spec);
        let req = Request {
            id: 0,
            client_id: 0,
            attempt: 0,
            arrival: 0,
            first_arrival: 0,
            work_ref_ns: 0,
            freq_sensitivity: 1.0,
            sla: 8 * MILLISECOND,
            features: vec![0.2],
        };
        let cores: Vec<deeppower_simd_server::CoreView<'_>> = Vec::new();
        let empty = std::collections::VecDeque::new();
        let mut crowded = std::collections::VecDeque::new();
        for i in 0..400 {
            crowded.push_back(Request {
                id: i,
                client_id: i,
                attempt: 0,
                arrival: 0,
                first_arrival: 0,
                work_ref_ns: 0,
                freq_sensitivity: 1.0,
                sla: 8 * MILLISECOND,
                features: vec![1.0],
            });
        }
        let view_of = |q| ServerView {
            now: 0,
            queue: q,
            cores: &cores,
            total_arrived: 0,
            total_completed: 0,
            total_timeouts: 0,
            total_shed: 0,
            total_wasted: 0,
            energy_uj: 0,
        };
        let f_idle = gov.select_freq(&view_of(&empty), &req);
        let f_crowded = gov.select_freq(&view_of(&crowded), &req);
        assert!(
            f_crowded > f_idle,
            "queue pressure ignored: {f_crowded} vs {f_idle}"
        );
    }

    #[test]
    fn exhausted_budget_falls_back_to_turbo() {
        let spec = AppSpec::get(App::Xapian);
        let gov = trained(&spec);
        let req = Request {
            id: 0,
            client_id: 0,
            attempt: 0,
            arrival: 0,
            first_arrival: 0,
            work_ref_ns: 0,
            freq_sensitivity: 1.0,
            sla: 8 * MILLISECOND,
            features: vec![3.0],
        };
        let cores: Vec<deeppower_simd_server::CoreView<'_>> = Vec::new();
        let queue = std::collections::VecDeque::new();
        // The request has been queued for almost its whole SLA.
        let view = ServerView {
            now: 7_900_000,
            queue: &queue,
            cores: &cores,
            total_arrived: 0,
            total_completed: 0,
            total_timeouts: 0,
            total_shed: 0,
            total_wasted: 0,
            energy_uj: 0,
        };
        assert_eq!(
            gov.select_freq(&view, &req),
            FreqPlan::xeon_gold_5218r().turbo_mhz
        );
    }
}
