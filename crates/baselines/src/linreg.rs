//! Ordinary least squares — ReTail's service-time model.
//!
//! Fits `y ≈ w₀ + w·x` by solving the normal equations
//! `(XᵀX) w = Xᵀy` with Gaussian elimination and partial pivoting
//! (feature dimension is tiny — one or two observables per request — so
//! nothing fancier is warranted). Also used directly by the Fig. 2
//! cross-load RMSE experiment.

use serde::{Deserialize, Serialize};

/// A fitted linear model `y = w₀ + Σ wᵢ·xᵢ`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinReg {
    /// `[intercept, w₁, …, w_d]`.
    pub weights: Vec<f64>,
}

impl LinReg {
    /// Fit from feature rows and targets. Panics on empty/ragged input;
    /// returns an error string if the normal equations are singular
    /// (degenerate features).
    pub fn fit(xs: &[Vec<f32>], ys: &[f64]) -> Result<Self, String> {
        assert_eq!(xs.len(), ys.len(), "feature/target length mismatch");
        assert!(!xs.is_empty(), "cannot fit on empty data");
        let d = xs[0].len() + 1; // +1 intercept
        let mut xtx = vec![vec![0.0f64; d]; d];
        let mut xty = vec![0.0f64; d];
        let mut row = vec![0.0f64; d];
        for (x, &y) in xs.iter().zip(ys) {
            assert_eq!(x.len() + 1, d, "ragged feature rows");
            row[0] = 1.0;
            for (r, &f) in row[1..].iter_mut().zip(x) {
                *r = f as f64;
            }
            for i in 0..d {
                for j in 0..d {
                    xtx[i][j] += row[i] * row[j];
                }
                xty[i] += row[i] * y;
            }
        }
        // Tikhonov nudge keeps near-singular systems solvable without
        // visibly biasing well-conditioned fits.
        for (i, r) in xtx.iter_mut().enumerate() {
            r[i] += 1e-9;
        }
        let weights = solve(xtx, xty)?;
        Ok(Self { weights })
    }

    /// Predict one target.
    pub fn predict(&self, x: &[f32]) -> f64 {
        assert_eq!(x.len() + 1, self.weights.len(), "feature width mismatch");
        self.weights[0]
            + self.weights[1..]
                .iter()
                .zip(x)
                .map(|(&w, &f)| w * f as f64)
                .sum::<f64>()
    }

    /// Root mean square error over a dataset.
    pub fn rmse(&self, xs: &[Vec<f32>], ys: &[f64]) -> f64 {
        assert_eq!(xs.len(), ys.len());
        assert!(!xs.is_empty(), "rmse of empty data");
        let sse: f64 = xs
            .iter()
            .zip(ys)
            .map(|(x, &y)| {
                let e = self.predict(x) - y;
                e * e
            })
            .sum();
        (sse / xs.len() as f64).sqrt()
    }
}

/// Solve `A·w = b` by Gaussian elimination with partial pivoting.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Result<Vec<f64>, String> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap())
            .unwrap();
        if a[pivot][col].abs() < 1e-12 {
            return Err("singular system in linear regression".into());
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        let (upper, lower) = a.split_at_mut(col + 1);
        let pivot_row = &upper[col];
        for (off, row_v) in lower.iter_mut().enumerate() {
            let factor = row_v[col] / pivot_row[col];
            if factor != 0.0 {
                for (rv, pv) in row_v[col..].iter_mut().zip(&pivot_row[col..]) {
                    *rv -= factor * pv;
                }
                b[col + 1 + off] -= factor * b[col];
            }
        }
    }
    // Back substitution.
    let mut w = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * w[k];
        }
        w[row] = acc / a[row][row];
    }
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn recovers_exact_linear_relationship() {
        let xs: Vec<Vec<f32>> = (0..50).map(|i| vec![i as f32, (i * i) as f32]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 3.0 + 2.0 * x[0] as f64 - 0.5 * x[1] as f64)
            .collect();
        let model = LinReg::fit(&xs, &ys).unwrap();
        assert!((model.weights[0] - 3.0).abs() < 1e-6);
        assert!((model.weights[1] - 2.0).abs() < 1e-6);
        assert!((model.weights[2] + 0.5).abs() < 1e-6);
        assert!(model.rmse(&xs, &ys) < 1e-6);
    }

    #[test]
    fn robust_to_noise() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<Vec<f32>> = (0..2000)
            .map(|_| vec![rng.random_range(0.0..10.0)])
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 5.0 + 1.5 * x[0] as f64 + rng.random_range(-0.5..0.5))
            .collect();
        let model = LinReg::fit(&xs, &ys).unwrap();
        assert!((model.weights[0] - 5.0).abs() < 0.1, "{:?}", model.weights);
        assert!((model.weights[1] - 1.5).abs() < 0.05);
        // RMSE ≈ std of uniform(-0.5, 0.5) ≈ 0.29.
        let rmse = model.rmse(&xs, &ys);
        assert!((rmse - 0.289).abs() < 0.05, "rmse {rmse}");
    }

    #[test]
    fn intercept_only_fit() {
        let xs: Vec<Vec<f32>> = (0..10).map(|_| vec![]).collect();
        let ys = vec![4.0; 10];
        let model = LinReg::fit(&xs, &ys).unwrap();
        assert!((model.predict(&[]) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn duplicate_feature_survives_via_ridge_nudge() {
        // Perfectly collinear features: x1 == x2. The tiny ridge term keeps
        // the system solvable; predictions must still be right.
        let xs: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32, i as f32]).collect();
        let ys: Vec<f64> = (0..20).map(|i| 2.0 * i as f64).collect();
        let model = LinReg::fit(&xs, &ys).unwrap();
        assert!((model.predict(&[10.0, 10.0]) - 20.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "cannot fit on empty data")]
    fn empty_fit_panics() {
        let _ = LinReg::fit(&[], &[]);
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn predict_rejects_wrong_width() {
        let model = LinReg {
            weights: vec![1.0, 2.0],
        };
        let _ = model.predict(&[1.0, 2.0]);
    }
}
