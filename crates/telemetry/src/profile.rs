//! Hierarchical wall-clock span profiler.
//!
//! A [`Profiler`] is the *where-does-the-time-go* counterpart of the
//! [`Recorder`](crate::Recorder): instrumented code holds one cheap
//! handle and opens RAII [`Span`]s around hot phases (engine event
//! phases, DDPG update stages, fleet lockstep epochs, harness jobs).
//! It follows the recorder's cost contract — a disabled profiler is a
//! `None` inside, so every `span()` call is a single branch and the
//! returned guard's `Drop` is another — but unlike the recorder it is
//! **thread-safe** (`Send + Sync`): one handle can be shared across the
//! harness worker pool, with every span tagged by a per-thread id.
//!
//! Spans carry *wall-clock* nanoseconds and therefore live outside the
//! deterministic [`Event`](crate::Event) stream: profiling output is a
//! separate artifact channel that must never influence simulation
//! results (tests across the workspace pin byte-identical results with
//! profiling on and off).
//!
//! Two exports:
//! * a per-phase aggregate table ([`Profiler::phase_table`] /
//!   [`render_phase_table`]) with exact totals — aggregation happens on
//!   every span close, so it never truncates;
//! * Chrome trace-event JSON ([`Profiler::to_chrome_trace`]), loadable
//!   in `chrome://tracing` and Perfetto. Detailed span records are
//!   capped (`max_records`, drops counted) so multi-million-event runs
//!   can't exhaust memory.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde_json::{Number, Value};

/// Default cap on stored [`SpanRecord`]s (aggregates are never capped).
pub const DEFAULT_MAX_SPANS: usize = 1 << 18;

/// Process-wide thread-id allocator: ids are small, dense and stable
/// for the life of each thread (assigned on the thread's first span).
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
std::thread_local! {
    static TID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

fn current_tid() -> u64 {
    TID.with(|c| {
        let mut v = c.get();
        if v == 0 {
            v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            c.set(v);
        }
        v
    })
}

/// One closed span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    pub name: &'static str,
    /// Profiler-assigned thread id (dense, starts at 1).
    pub tid: u64,
    /// Nesting depth on its thread at open time (0 = root).
    pub depth: u32,
    /// Nanoseconds since the profiler's epoch.
    pub start_ns: u64,
    pub dur_ns: u64,
}

/// Aggregate row for one span name.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseRow {
    pub name: &'static str,
    pub count: u64,
    /// Total time inside spans of this name (children included).
    pub total_ns: u64,
    /// Total minus time spent in child spans.
    pub self_ns: u64,
    /// Total over *root* (depth-0) spans only — the non-overlapping
    /// share of wall time, safe to sum across names.
    pub root_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
}

#[derive(Clone, Debug, Default)]
struct Agg {
    count: u64,
    total_ns: u64,
    self_ns: u64,
    root_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

struct OpenSpan {
    name: &'static str,
    start_ns: u64,
    child_ns: u64,
}

enum Clock {
    Wall(Instant),
    /// Test clock advanced explicitly via [`Profiler::advance`].
    Manual(AtomicU64),
}

struct State {
    records: Vec<SpanRecord>,
    max_records: usize,
    dropped: u64,
    /// Per-thread stacks of open spans.
    open: BTreeMap<u64, Vec<OpenSpan>>,
    agg: BTreeMap<&'static str, Agg>,
}

struct Shared {
    clock: Clock,
    state: Mutex<State>,
}

impl Shared {
    fn now_ns(&self) -> u64 {
        match &self.clock {
            Clock::Wall(epoch) => epoch.elapsed().as_nanos() as u64,
            Clock::Manual(t) => t.load(Ordering::SeqCst),
        }
    }

    fn open_span(&self, name: &'static str, tid: u64) {
        let start_ns = self.now_ns();
        let mut st = self.state.lock().expect("profiler lock");
        st.open.entry(tid).or_default().push(OpenSpan {
            name,
            start_ns,
            child_ns: 0,
        });
    }

    fn close_span(&self, tid: u64) {
        let end_ns = self.now_ns();
        let mut st = self.state.lock().expect("profiler lock");
        let stack = st.open.get_mut(&tid).expect("close without open");
        let span = stack.pop().expect("close without open");
        let depth = stack.len() as u32;
        let dur_ns = end_ns.saturating_sub(span.start_ns);
        let self_ns = dur_ns.saturating_sub(span.child_ns);
        if let Some(parent) = stack.last_mut() {
            parent.child_ns += dur_ns;
        }
        let agg = st.agg.entry(span.name).or_default();
        agg.count += 1;
        agg.total_ns += dur_ns;
        agg.self_ns += self_ns;
        if depth == 0 {
            agg.root_ns += dur_ns;
        }
        agg.min_ns = if agg.count == 1 {
            dur_ns
        } else {
            agg.min_ns.min(dur_ns)
        };
        agg.max_ns = agg.max_ns.max(dur_ns);
        if st.records.len() < st.max_records {
            st.records.push(SpanRecord {
                name: span.name,
                tid,
                depth,
                start_ns: span.start_ns,
                dur_ns,
            });
        } else {
            st.dropped += 1;
        }
    }
}

/// Cheap, cloneable, `Send + Sync` profiling handle. See the module
/// docs; the disabled/enabled contract mirrors [`crate::Recorder`].
#[derive(Clone, Default)]
pub struct Profiler {
    inner: Option<Arc<Shared>>,
}

impl Profiler {
    /// A profiler that records nothing: every operation is one branch.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled wall-clock profiler with the default span cap.
    pub fn enabled() -> Self {
        Self::with_capacity(DEFAULT_MAX_SPANS)
    }

    /// An enabled wall-clock profiler keeping at most `max_records`
    /// detailed spans (aggregates are exact regardless).
    pub fn with_capacity(max_records: usize) -> Self {
        Self::build(Clock::Wall(Instant::now()), max_records)
    }

    /// An enabled profiler on a manual clock starting at 0 — time moves
    /// only through [`advance`](Self::advance). For tests.
    pub fn manual(max_records: usize) -> Self {
        Self::build(Clock::Manual(AtomicU64::new(0)), max_records)
    }

    fn build(clock: Clock, max_records: usize) -> Self {
        Self {
            inner: Some(Arc::new(Shared {
                clock,
                state: Mutex::new(State {
                    records: Vec::new(),
                    max_records: max_records.max(1),
                    dropped: 0,
                    open: BTreeMap::new(),
                    agg: BTreeMap::new(),
                }),
            })),
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Advance a [`manual`](Self::manual) clock by `ns`. No-op on
    /// wall-clock or disabled profilers.
    pub fn advance(&self, ns: u64) {
        if let Some(sh) = &self.inner {
            if let Clock::Manual(t) = &sh.clock {
                t.fetch_add(ns, Ordering::SeqCst);
            }
        }
    }

    /// Open a span; it closes when the returned guard drops. Disabled:
    /// one branch here, one in the guard's `Drop`.
    #[inline]
    #[must_use = "a span measures the scope holding its guard"]
    pub fn span(&self, name: &'static str) -> Span {
        match &self.inner {
            None => Span { shared: None },
            Some(sh) => {
                let tid = current_tid();
                sh.open_span(name, tid);
                Span {
                    shared: Some((Arc::clone(sh), tid)),
                }
            }
        }
    }

    /// Snapshot of the closed-span records, in close order.
    pub fn records(&self) -> Vec<SpanRecord> {
        match &self.inner {
            Some(sh) => sh.state.lock().expect("profiler lock").records.clone(),
            None => Vec::new(),
        }
    }

    /// Detailed spans discarded after `max_records` was reached.
    pub fn dropped_spans(&self) -> u64 {
        match &self.inner {
            Some(sh) => sh.state.lock().expect("profiler lock").dropped,
            None => 0,
        }
    }

    /// Per-phase aggregate rows, heaviest total first (ties by name).
    pub fn phase_table(&self) -> Vec<PhaseRow> {
        let Some(sh) = &self.inner else {
            return Vec::new();
        };
        let st = sh.state.lock().expect("profiler lock");
        let mut rows: Vec<PhaseRow> = st
            .agg
            .iter()
            .map(|(&name, a)| PhaseRow {
                name,
                count: a.count,
                total_ns: a.total_ns,
                self_ns: a.self_ns,
                root_ns: a.root_ns,
                min_ns: a.min_ns,
                max_ns: a.max_ns,
            })
            .collect();
        rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(b.name)));
        rows
    }

    /// Sum of root-span time across all phases: the profiled share of
    /// wall time (root spans never overlap on a thread, so the sum is
    /// meaningful against a single-threaded wall measurement).
    pub fn root_total_ns(&self) -> u64 {
        self.phase_table().iter().map(|r| r.root_ns).sum()
    }

    /// Serialize every stored span as Chrome trace-event JSON
    /// (`chrome://tracing` / Perfetto "complete" events, `ph: "X"`,
    /// microsecond `ts`/`dur`).
    pub fn to_chrome_trace(&self) -> String {
        let records = self.records();
        let events: Vec<Value> = records.iter().map(record_to_chrome).collect();
        let root = Value::Object(vec![
            ("traceEvents".to_string(), Value::Array(events)),
            (
                "displayTimeUnit".to_string(),
                Value::String("ms".to_string()),
            ),
        ]);
        serde_json::to_string_pretty(&root).expect("chrome trace serialization")
    }
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// RAII span guard returned by [`Profiler::span`].
pub struct Span {
    shared: Option<(Arc<Shared>, u64)>,
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if let Some((sh, tid)) = &self.shared {
            sh.close_span(*tid);
        }
    }
}

fn record_to_chrome(r: &SpanRecord) -> Value {
    let us = |ns: u64| Value::Number(Number::F64(ns as f64 / 1000.0));
    Value::Object(vec![
        ("name".to_string(), Value::String(r.name.to_string())),
        ("cat".to_string(), Value::String("deeppower".to_string())),
        ("ph".to_string(), Value::String("X".to_string())),
        ("ts".to_string(), us(r.start_ns)),
        ("dur".to_string(), us(r.dur_ns)),
        ("pid".to_string(), Value::Number(Number::U64(1))),
        ("tid".to_string(), Value::Number(Number::U64(r.tid))),
    ])
}

/// One event parsed back out of a Chrome trace (times restored to
/// nanoseconds; exact for spans below ~3 days).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChromeEvent {
    pub name: String,
    pub tid: u64,
    pub start_ns: u64,
    pub dur_ns: u64,
}

impl ChromeEvent {
    /// Projection of a [`SpanRecord`] for round-trip comparisons.
    pub fn from_record(r: &SpanRecord) -> Self {
        Self {
            name: r.name.to_string(),
            tid: r.tid,
            start_ns: r.start_ns,
            dur_ns: r.dur_ns,
        }
    }
}

/// Parse Chrome trace-event JSON produced by
/// [`Profiler::to_chrome_trace`] (or any trace using complete events
/// with numeric `ts`/`dur`/`tid`).
pub fn from_chrome_trace(text: &str) -> Result<Vec<ChromeEvent>, String> {
    let root: Value = serde_json::from_str(text).map_err(|e| format!("bad JSON: {e:?}"))?;
    let Some(Value::Array(events)) = root.get("traceEvents") else {
        return Err("missing traceEvents array".to_string());
    };
    let ns = |v: &Value| -> Option<u64> {
        match v {
            Value::Number(n) => Some((n.as_f64() * 1000.0).round() as u64),
            _ => None,
        }
    };
    events
        .iter()
        .enumerate()
        .map(|(i, ev)| {
            let field = |k: &str| ev.get(k).ok_or_else(|| format!("event {i}: missing {k}"));
            let name = match field("name")? {
                Value::String(s) => s.clone(),
                _ => return Err(format!("event {i}: name is not a string")),
            };
            let tid = match field("tid")? {
                Value::Number(n) => n.as_f64() as u64,
                _ => return Err(format!("event {i}: tid is not a number")),
            };
            let start_ns = ns(field("ts")?).ok_or_else(|| format!("event {i}: bad ts"))?;
            let dur_ns = ns(field("dur")?).ok_or_else(|| format!("event {i}: bad dur"))?;
            Ok(ChromeEvent {
                name,
                tid,
                start_ns,
                dur_ns,
            })
        })
        .collect()
}

/// Render phase rows as an aligned text table. `wall_ns > 0` adds a
/// `%wall` column from each row's root (non-overlapping) time.
pub fn render_phase_table(rows: &[PhaseRow], wall_ns: u64) -> String {
    let ms = |ns: u64| ns as f64 / 1e6;
    let us = |ns: u64| ns as f64 / 1e3;
    let mut out = format!(
        "{:<20} {:>9} {:>11} {:>11} {:>10} {:>10} {:>10}",
        "phase", "count", "total(ms)", "self(ms)", "mean(us)", "max(us)", "%wall"
    );
    out.push('\n');
    for r in rows {
        let mean_us = if r.count > 0 {
            us(r.total_ns) / r.count as f64
        } else {
            0.0
        };
        let pct = if wall_ns > 0 {
            format!("{:>9.1}%", 100.0 * r.root_ns as f64 / wall_ns as f64)
        } else {
            format!("{:>10}", "-")
        };
        out.push_str(&format!(
            "{:<20} {:>9} {:>11.3} {:>11.3} {:>10.2} {:>10.2} {pct}\n",
            r.name,
            r.count,
            ms(r.total_ns),
            ms(r.self_ns),
            mean_us,
            us(r.max_ns),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_is_inert() {
        let p = Profiler::disabled();
        assert!(!p.is_enabled());
        {
            let _s = p.span("anything");
        }
        assert!(p.records().is_empty());
        assert!(p.phase_table().is_empty());
        assert_eq!(p.dropped_spans(), 0);
        assert_eq!(p.root_total_ns(), 0);
    }

    #[test]
    fn nested_spans_account_self_and_child_time() {
        let p = Profiler::manual(64);
        {
            let _a = p.span("outer");
            p.advance(100);
            {
                let _b = p.span("inner");
                p.advance(40);
            }
            p.advance(10);
        }
        let recs = p.records();
        assert_eq!(recs.len(), 2);
        // Children close first.
        assert_eq!(recs[0].name, "inner");
        assert_eq!(recs[0].depth, 1);
        assert_eq!(recs[0].start_ns, 100);
        assert_eq!(recs[0].dur_ns, 40);
        assert_eq!(recs[1].name, "outer");
        assert_eq!(recs[1].depth, 0);
        assert_eq!(recs[1].start_ns, 0);
        assert_eq!(recs[1].dur_ns, 150);

        let rows = p.phase_table();
        let outer = rows.iter().find(|r| r.name == "outer").unwrap();
        assert_eq!(outer.total_ns, 150);
        assert_eq!(outer.self_ns, 110);
        assert_eq!(outer.root_ns, 150);
        let inner = rows.iter().find(|r| r.name == "inner").unwrap();
        assert_eq!(inner.self_ns, 40);
        assert_eq!(inner.root_ns, 0, "nested spans contribute no root time");
        assert_eq!(p.root_total_ns(), 150);
    }

    #[test]
    fn record_cap_drops_but_aggregates_stay_exact() {
        let p = Profiler::manual(2);
        for _ in 0..5 {
            let _s = p.span("tick");
            p.advance(10);
        }
        assert_eq!(p.records().len(), 2);
        assert_eq!(p.dropped_spans(), 3);
        let rows = p.phase_table();
        assert_eq!(rows[0].count, 5);
        assert_eq!(rows[0].total_ns, 50);
    }

    #[test]
    fn phase_table_sorted_by_total_desc() {
        let p = Profiler::manual(64);
        {
            let _s = p.span("small");
            p.advance(5);
        }
        {
            let _s = p.span("big");
            p.advance(500);
        }
        let rows = p.phase_table();
        assert_eq!(rows[0].name, "big");
        assert_eq!(rows[1].name, "small");
        let table = render_phase_table(&rows, 505);
        assert!(table.contains("big"), "{table}");
        assert!(table.contains("%wall"), "{table}");
    }

    #[test]
    fn chrome_trace_round_trips() {
        let p = Profiler::manual(64);
        {
            let _a = p.span("engine.tick");
            p.advance(1_234);
            {
                let _b = p.span("ddpg.update");
                p.advance(567);
            }
        }
        let json = p.to_chrome_trace();
        assert!(json.contains("traceEvents"), "{json}");
        assert!(json.contains("\"ph\": \"X\""), "{json}");
        let back = from_chrome_trace(&json).unwrap();
        let want: Vec<ChromeEvent> = p.records().iter().map(ChromeEvent::from_record).collect();
        assert_eq!(back, want);
    }

    #[test]
    fn from_chrome_trace_rejects_garbage() {
        assert!(from_chrome_trace("{}").is_err());
        assert!(from_chrome_trace("not json").is_err());
    }

    #[test]
    fn spans_on_different_threads_get_distinct_tids() {
        let p = Profiler::with_capacity(64);
        {
            let _s = p.span("main");
        }
        let p2 = p.clone();
        std::thread::spawn(move || {
            let _s = p2.span("worker");
        })
        .join()
        .unwrap();
        let recs = p.records();
        assert_eq!(recs.len(), 2);
        assert_ne!(recs[0].tid, recs[1].tid);
    }

    #[test]
    fn wall_clock_spans_have_monotone_nonzero_bounds() {
        let p = Profiler::enabled();
        {
            let _a = p.span("a");
            std::hint::black_box((0..1000).sum::<u64>());
        }
        {
            let _b = p.span("b");
        }
        let recs = p.records();
        assert_eq!(recs.len(), 2);
        assert!(recs[1].start_ns >= recs[0].start_ns);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

        #[derive(Clone, Debug)]
        enum Op {
            Open(usize),
            Advance(u64),
            Close,
        }

        fn ops() -> impl Strategy<Value = Vec<Op>> {
            // One integer encodes (op kind, advance amount): the
            // vendored prop_oneof! needs same-typed alternatives.
            // Advances stay under 1e9 ns so cumulative time is far
            // below the f64-exact range for microsecond Chrome times.
            proptest::collection::vec(
                (0u64..8_000_000_000u64).prop_map(|x| {
                    let kind = (x % 8) as usize;
                    match kind {
                        k if k < NAMES.len() => Op::Open(k),
                        4 | 5 => Op::Advance(x / 8),
                        _ => Op::Close,
                    }
                }),
                0..60,
            )
        }

        /// Run ops on a manual-clock profiler; unmatched closes are
        /// skipped, unmatched opens are closed at the end. Also returns
        /// the expected depth of each record in close order, from a
        /// reference stack simulation.
        fn run_ops(ops: &[Op]) -> (Profiler, Vec<u32>) {
            let p = Profiler::manual(1 << 12);
            let mut guards: Vec<Span> = Vec::new();
            let mut depths = Vec::new();
            for op in ops {
                match op {
                    Op::Open(i) => guards.push(p.span(NAMES[*i])),
                    Op::Advance(ns) => p.advance(*ns),
                    Op::Close => {
                        if guards.pop().is_some() {
                            depths.push(guards.len() as u32);
                        }
                    }
                }
            }
            while guards.pop().is_some() {
                depths.push(guards.len() as u32);
            }
            (p, depths)
        }

        proptest! {
            #[test]
            fn span_intervals_are_laminar_and_depths_consistent(ops in ops()) {
                let (p, want_depths) = run_ops(&ops);
                let recs = p.records();
                for r in &recs {
                    prop_assert!(r.start_ns.checked_add(r.dur_ns).is_some());
                }
                // Any two spans on one thread either nest or are
                // disjoint (children sit inside their parents), and
                // depth matches the reference open-stack simulation.
                for (i, a) in recs.iter().enumerate() {
                    let (a0, a1) = (a.start_ns, a.start_ns + a.dur_ns);
                    for (j, b) in recs.iter().enumerate() {
                        if i == j || a.tid != b.tid {
                            continue;
                        }
                        let (b0, b1) = (b.start_ns, b.start_ns + b.dur_ns);
                        let nested = (b0 <= a0 && a1 <= b1) || (a0 <= b0 && b1 <= a1);
                        let disjoint = a1 <= b0 || b1 <= a0;
                        prop_assert!(
                            nested || disjoint,
                            "spans {i} and {j} partially overlap"
                        );
                    }
                }
                let got_depths: Vec<u32> = recs.iter().map(|r| r.depth).collect();
                prop_assert_eq!(got_depths, want_depths);
            }

            #[test]
            fn close_timestamps_monotone_within_thread(ops in ops()) {
                let (p, _) = run_ops(&ops);
                let recs = p.records();
                // Records are pushed at close time; end timestamps on a
                // thread must be non-decreasing in record order.
                let mut last_end = 0u64;
                for r in &recs {
                    let end = r.start_ns + r.dur_ns;
                    prop_assert!(end >= last_end, "close times went backwards");
                    last_end = end;
                }
            }

            #[test]
            fn chrome_export_import_round_trips(ops in ops()) {
                let (p, _) = run_ops(&ops);
                let want: Vec<ChromeEvent> =
                    p.records().iter().map(ChromeEvent::from_record).collect();
                let back = from_chrome_trace(&p.to_chrome_trace()).unwrap();
                prop_assert_eq!(back, want);
            }

            #[test]
            fn aggregate_totals_match_records_when_uncapped(ops in ops()) {
                let (p, _) = run_ops(&ops);
                let recs = p.records();
                prop_assert_eq!(p.dropped_spans(), 0, "cap must not bind at this size");
                for row in p.phase_table() {
                    let total: u64 = recs
                        .iter()
                        .filter(|r| r.name == row.name)
                        .map(|r| r.dur_ns)
                        .sum();
                    let count = recs.iter().filter(|r| r.name == row.name).count() as u64;
                    prop_assert_eq!(row.total_ns, total);
                    prop_assert_eq!(row.count, count);
                }
            }
        }
    }
}
