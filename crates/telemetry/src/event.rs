//! The typed event stream.
//!
//! Each variant wraps a named payload struct (the vendored serde derive
//! supports unit and tuple enum variants, so payloads live in their own
//! structs), serializing externally tagged:
//! `{"DrlStep":{"t":1000000000,...}}` — one JSON object per line in the
//! JSONL artifacts. Field names and meanings are documented in
//! EXPERIMENTS.md ("Telemetry artifacts"); changing them is a schema
//! change and must update that section (CI uploads an artifact so drift
//! is visible in review).
//!
//! All timestamps are **simulated** nanoseconds since run start. Events
//! deliberately carry no wall-clock data so an event stream is a pure
//! function of the job spec (the harness's byte-identical-across-
//! threads guarantee extends to telemetry artifacts).

use serde::{Deserialize, Serialize};

/// One DRL step of the hierarchical governor: the action taken for the
/// next `LongTime` window plus the reward decomposition of the window
/// that just closed. The raw material for Fig. 8's time series.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DrlStep {
    /// Step end time (simulated ns).
    pub t: u64,
    /// Arrivals during the step (the RPS curve).
    pub num_req: u64,
    /// Average socket power over the step, watts.
    pub power_w: f64,
    /// Action applied for the *next* window.
    pub base_freq: f64,
    pub scaling_coef: f64,
    /// Mean commanded core frequency at the step boundary, MHz.
    pub avg_freq_mhz: f64,
    pub queue_len: u64,
    /// Timeouts during the step.
    pub timeouts: u64,
    /// Total reward granted for the elapsed step.
    pub reward: f64,
    /// Reward decomposition (pre-weighting, all >= 0).
    pub r_energy: f64,
    pub r_timeout: f64,
    pub r_queue: f64,
}

/// A core's commanded frequency actually changed (a command equal to
/// the current frequency is not a transition).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FreqTransition {
    pub t: u64,
    pub core: u64,
    pub from_mhz: u32,
    pub to_mhz: u32,
}

/// Time one core spent at one frequency level over the whole run
/// (emitted once per visited `(core, mhz)` pair at run end, cores then
/// levels ascending). The Figs. 9/10 residency data.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CoreResidency {
    pub core: u64,
    pub mhz: u32,
    pub ns: u64,
}

/// A core dequeued a request and started processing it (Fig. 4's green
/// marks). Gated on `TraceConfig::request_marks`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RequestDispatch {
    pub t: u64,
    pub core: u64,
    pub id: u64,
}

/// A request completed (Fig. 4's blue marks). Gated on
/// `TraceConfig::request_marks`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RequestComplete {
    pub t: u64,
    pub core: u64,
    pub id: u64,
    pub latency_ns: u64,
    pub timed_out: bool,
}

/// Periodic snapshot of the run-so-far latency distribution, read from
/// the server's incremental [`crate::LatencyRecorder`] (percentiles are
/// histogram upper bounds, within one log-bucket of exact).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LatencySnapshot {
    pub t: u64,
    pub count: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub timeouts: u64,
}

/// DDPG training internals after the updates of one DRL step (one event
/// per step, not per gradient step — `updates` is cumulative, so update
/// throughput is its slope over `t`).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrainUpdate {
    pub t: u64,
    /// Cumulative DDPG updates performed so far.
    pub updates: u64,
    /// Diagnostics of the last update of the step.
    pub critic_loss: f64,
    /// Mean `Q(s, pi(s))` over the batch — what the actor ascends.
    pub actor_q: f64,
    /// Global L2 gradient norms before clipping.
    pub actor_grad_norm: f64,
    pub critic_grad_norm: f64,
    /// Replay-pool occupancy.
    pub replay_len: u64,
    pub replay_capacity: u64,
}

/// One training episode finished.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EpisodeEnd {
    pub episode: u64,
    /// DRL steps logged during the episode.
    pub steps: u64,
    pub mean_reward: f64,
    pub avg_power_w: f64,
    pub timeout_rate: f64,
    /// Cumulative DDPG updates after the episode.
    pub updates: u64,
}

/// A harness job began (first event of a per-job artifact).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobStart {
    pub job: u64,
    pub app: String,
    pub governor: String,
    pub seed: u64,
}

/// A harness job finished (last event of a per-job artifact). Carries
/// simulated-time lifecycle data only; wall-clock timings go through
/// the logger, never into artifacts.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobEnd {
    pub job: u64,
    /// Simulated run length (t=0 to last completion).
    pub sim_ns: u64,
    pub requests: u64,
    pub energy_j: f64,
    pub drl_steps: u64,
}

/// One discrete injected fault (from the simulator's `FaultPlan`) or a
/// detected internal fault (training divergence, rejected replay
/// transition). `kind` is a stable tag: `dvfs-fail`, `dvfs-spike`,
/// `core-stall`, `core-online`, `sensor-stale`, `train-diverged`,
/// `replay-reject`, `action-nan`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultInjected {
    pub t: u64,
    pub kind: String,
    /// Affected core, or -1 when the fault is not core-scoped.
    pub core: i64,
    /// Fault-specific magnitude (spike/stall ns, dropped target MHz…),
    /// 0 when not applicable.
    pub magnitude: f64,
}

/// The `SafetyGovernor` intervened on behalf of its wrapped policy.
/// `action` is a stable tag: `watchdog-turbo`, `hold-decay`,
/// `maxfreq-fallback`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SafetyAction {
    pub t: u64,
    pub action: String,
    /// Affected core, or -1 when the action covers the whole socket.
    pub core: i64,
}

/// The unified telemetry event.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Event {
    DrlStep(DrlStep),
    FreqTransition(FreqTransition),
    CoreResidency(CoreResidency),
    RequestDispatch(RequestDispatch),
    RequestComplete(RequestComplete),
    LatencySnapshot(LatencySnapshot),
    TrainUpdate(TrainUpdate),
    EpisodeEnd(EpisodeEnd),
    JobStart(JobStart),
    JobEnd(JobEnd),
    FaultInjected(FaultInjected),
    SafetyAction(SafetyAction),
}

impl Event {
    /// Stable kind tag (matches the JSONL object key).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::DrlStep(_) => "DrlStep",
            Event::FreqTransition(_) => "FreqTransition",
            Event::CoreResidency(_) => "CoreResidency",
            Event::RequestDispatch(_) => "RequestDispatch",
            Event::RequestComplete(_) => "RequestComplete",
            Event::LatencySnapshot(_) => "LatencySnapshot",
            Event::TrainUpdate(_) => "TrainUpdate",
            Event::EpisodeEnd(_) => "EpisodeEnd",
            Event::JobStart(_) => "JobStart",
            Event::JobEnd(_) => "JobEnd",
            Event::FaultInjected(_) => "FaultInjected",
            Event::SafetyAction(_) => "SafetyAction",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_roundtrip_through_json() {
        let events = vec![
            Event::DrlStep(DrlStep {
                t: 1_000_000_000,
                num_req: 1200,
                power_w: 87.5,
                base_freq: 0.3,
                scaling_coef: 0.9,
                avg_freq_mhz: 1450.0,
                queue_len: 4,
                timeouts: 0,
                reward: -0.25,
                r_energy: 0.4,
                r_timeout: 0.0,
                r_queue: 0.1,
            }),
            Event::FreqTransition(FreqTransition {
                t: 5,
                core: 3,
                from_mhz: 800,
                to_mhz: 2100,
            }),
            Event::JobStart(JobStart {
                job: 7,
                app: "xapian".into(),
                governor: "deeppower".into(),
                seed: 42,
            }),
            Event::FaultInjected(FaultInjected {
                t: 2_000_000,
                kind: "dvfs-fail".into(),
                core: 3,
                magnitude: 2100.0,
            }),
            Event::SafetyAction(SafetyAction {
                t: 3_000_000,
                action: "watchdog-turbo".into(),
                core: -1,
            }),
        ];
        for ev in &events {
            let json = serde_json::to_string(ev).unwrap();
            assert!(json.contains(ev.kind()), "{json}");
            let back: Event = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, ev);
        }
    }

    #[test]
    fn kind_matches_serialized_tag() {
        let ev = Event::CoreResidency(CoreResidency {
            core: 0,
            mhz: 800,
            ns: 10,
        });
        let json = serde_json::to_string(&ev).unwrap();
        assert!(json.starts_with(&format!("{{\"{}\"", ev.kind())));
    }
}
