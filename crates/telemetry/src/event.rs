//! The typed event stream.
//!
//! Each variant wraps a named payload struct (the vendored serde derive
//! supports unit and tuple enum variants, so payloads live in their own
//! structs), serializing externally tagged:
//! `{"DrlStep":{"t":1000000000,...}}` — one JSON object per line in the
//! JSONL artifacts. Field names and meanings are documented in
//! EXPERIMENTS.md ("Telemetry artifacts"); changing them is a schema
//! change and must update that section (CI uploads an artifact so drift
//! is visible in review).
//!
//! All timestamps are **simulated** nanoseconds since run start. Events
//! deliberately carry no wall-clock data so an event stream is a pure
//! function of the job spec (the harness's byte-identical-across-
//! threads guarantee extends to telemetry artifacts).

use serde::{Deserialize, Serialize};

/// One DRL step of the hierarchical governor: the action taken for the
/// next `LongTime` window plus the reward decomposition of the window
/// that just closed. The raw material for Fig. 8's time series.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DrlStep {
    /// Step end time (simulated ns).
    pub t: u64,
    /// Arrivals during the step (the RPS curve).
    pub num_req: u64,
    /// Average socket power over the step, watts.
    pub power_w: f64,
    /// Action applied for the *next* window.
    pub base_freq: f64,
    pub scaling_coef: f64,
    /// Commanded admission threshold (1.0 for freq-only agents).
    pub admit_frac: f64,
    /// Mean commanded core frequency at the step boundary, MHz.
    pub avg_freq_mhz: f64,
    pub queue_len: u64,
    /// Timeouts during the step.
    pub timeouts: u64,
    /// Total reward granted for the elapsed step.
    pub reward: f64,
    /// Reward decomposition (pre-weighting, all >= 0).
    pub r_energy: f64,
    pub r_timeout: f64,
    pub r_queue: f64,
    /// Wasted-work term (overload extension; 0 without an overload plan).
    pub r_wasted: f64,
}

/// A core's commanded frequency actually changed (a command equal to
/// the current frequency is not a transition).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FreqTransition {
    pub t: u64,
    pub core: u64,
    pub from_mhz: u32,
    pub to_mhz: u32,
}

/// Time one core spent at one frequency level over the whole run
/// (emitted once per visited `(core, mhz)` pair at run end, cores then
/// levels ascending). The Figs. 9/10 residency data.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CoreResidency {
    pub core: u64,
    pub mhz: u32,
    pub ns: u64,
}

/// A core dequeued a request and started processing it (Fig. 4's green
/// marks). Gated on `TraceConfig::request_marks`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RequestDispatch {
    pub t: u64,
    pub core: u64,
    pub id: u64,
}

/// A request completed (Fig. 4's blue marks). Gated on
/// `TraceConfig::request_marks`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RequestComplete {
    pub t: u64,
    pub core: u64,
    pub id: u64,
    pub latency_ns: u64,
    pub timed_out: bool,
}

/// Periodic snapshot of the run-so-far latency distribution, read from
/// the server's incremental [`crate::LatencyRecorder`] (percentiles are
/// histogram upper bounds, within one log-bucket of exact).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LatencySnapshot {
    pub t: u64,
    pub count: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub timeouts: u64,
}

/// DDPG training internals after the updates of one DRL step (one event
/// per step, not per gradient step — `updates` is cumulative, so update
/// throughput is its slope over `t`).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrainUpdate {
    pub t: u64,
    /// Cumulative DDPG updates performed so far.
    pub updates: u64,
    /// Diagnostics of the last update of the step.
    pub critic_loss: f64,
    /// Mean `Q(s, pi(s))` over the batch — what the actor ascends.
    pub actor_q: f64,
    /// Global L2 gradient norms before clipping.
    pub actor_grad_norm: f64,
    pub critic_grad_norm: f64,
    /// Replay-pool occupancy.
    pub replay_len: u64,
    pub replay_capacity: u64,
}

/// One training episode finished.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EpisodeEnd {
    pub episode: u64,
    /// DRL steps logged during the episode.
    pub steps: u64,
    pub mean_reward: f64,
    pub avg_power_w: f64,
    pub timeout_rate: f64,
    /// Cumulative DDPG updates after the episode.
    pub updates: u64,
}

/// A harness job began (first event of a per-job artifact).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobStart {
    pub job: u64,
    pub app: String,
    pub governor: String,
    pub seed: u64,
}

/// A harness job finished (last event of a per-job artifact). Carries
/// simulated-time lifecycle data only; wall-clock timings go through
/// the logger, never into artifacts.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobEnd {
    pub job: u64,
    /// Simulated run length (t=0 to last completion).
    pub sim_ns: u64,
    pub requests: u64,
    pub energy_j: f64,
    pub drl_steps: u64,
}

/// A request was rejected at admission time — bounded-queue overflow,
/// an admission-controller decision, or eviction by `DropOldest` —
/// and its client received an immediate failure. `reason` is a stable
/// tag: `queue-full`, `admission`, `evicted`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Shed {
    pub t: u64,
    /// Server-side id of the rejected attempt.
    pub id: u64,
    /// Stable client-visible id (survives retries).
    pub client: u64,
    /// Attempt ordinal (0 = first submission).
    pub attempt: u32,
    pub reason: String,
}

/// A client's per-attempt deadline expired before the server answered:
/// the client walked away. Any later completion of this attempt is
/// wasted work.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Abandoned {
    pub t: u64,
    pub id: u64,
    pub client: u64,
    pub attempt: u32,
    /// How long the client waited before giving up, ns.
    pub waited_ns: u64,
}

/// A client scheduled a retry after a shed or an abandonment. Emitted
/// at scheduling time; the retried attempt arrives `delay_ns` later
/// under the new server-side `id` (the client id is unchanged).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Retry {
    pub t: u64,
    /// Server-side id the retried attempt will arrive under.
    pub id: u64,
    pub client: u64,
    /// Attempt ordinal of the *retry* (≥ 1).
    pub attempt: u32,
    /// Backoff + jitter until the retry arrives, ns.
    pub delay_ns: u64,
}

/// One discrete injected fault (from the simulator's `FaultPlan`) or a
/// detected internal fault (training divergence, rejected replay
/// transition). `kind` is a stable tag: `dvfs-fail`, `dvfs-spike`,
/// `core-stall`, `core-online`, `sensor-stale`, `train-diverged`,
/// `replay-reject`, `action-nan`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultInjected {
    pub t: u64,
    pub kind: String,
    /// Affected core, or -1 when the fault is not core-scoped.
    pub core: i64,
    /// Fault-specific magnitude (spike/stall ns, dropped target MHz…),
    /// 0 when not applicable.
    pub magnitude: f64,
}

/// The `SafetyGovernor` intervened on behalf of its wrapped policy.
/// `action` is a stable tag: `watchdog-turbo`, `hold-decay`,
/// `maxfreq-fallback`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SafetyAction {
    pub t: u64,
    pub action: String,
    /// Affected core, or -1 when the action covers the whole socket.
    pub core: i64,
}

/// Tumbling-window rollup emitted by the server session once per
/// monitor window (default one simulated second, tick-aligned). The
/// raw material of the fleet health plane: windows with equal `index`
/// across nodes cover the same simulated interval, so a fleet monitor
/// can merge them commutatively. `bucket_ubs`/`bucket_counts` are the
/// nonzero log-histogram buckets of the window's latency distribution
/// (parallel arrays), enough to rebuild merged percentiles exactly as
/// [`crate::Histogram`] would report them; `min_ns`/`max_ns` are exact
/// so merged percentiles clamp to true extremes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WindowRollup {
    /// Window close time (simulated ns).
    pub t: u64,
    /// Tumbling-window ordinal since run start (aligned across nodes).
    pub index: u64,
    /// Actual covered span, ns (the final window may be partial).
    pub window_ns: u64,
    /// Completions inside the window.
    pub count: u64,
    pub timeouts: u64,
    /// Exact latency extremes over the window (0 when `count == 0`).
    pub min_ns: u64,
    pub max_ns: u64,
    pub mean_ns: f64,
    /// Histogram-bucket percentiles clamped to the exact extremes.
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    /// Mean socket power over the window, watts (true meter, un-noised).
    pub power_w: f64,
    /// Tick-sampled mean commanded core frequency, MHz.
    pub avg_freq_mhz: f64,
    /// Queue length at window close.
    pub queue_len: u64,
    /// Completions whose client was still waiting (goodput).
    pub good: u64,
    /// Completions after the client abandoned (wasted work).
    pub wasted: u64,
    /// Requests shed at admission inside the window.
    pub shed: u64,
    /// Nonzero latency-histogram buckets: upper bounds and counts.
    pub bucket_ubs: Vec<u64>,
    pub bucket_counts: Vec<u64>,
    /// Tail-exemplar trace links: client ids of the window's slowest
    /// traced chains, latency-descending (empty when request tracing is
    /// off). Each id resolves to a `RequestTrace` event emitted just
    /// before this rollup.
    #[serde(default)]
    pub exemplars: Vec<u64>,
}

impl WindowRollup {
    /// Assemble a rollup from a window's latency histogram plus the
    /// window scalars — the single code path used by the server session
    /// and by tests, so merged percentiles stay reproducible.
    #[allow(clippy::too_many_arguments)]
    pub fn from_histogram(
        t: u64,
        index: u64,
        window_ns: u64,
        hist: &crate::histogram::Histogram,
        timeouts: u64,
        power_w: f64,
        avg_freq_mhz: f64,
        queue_len: u64,
    ) -> Self {
        let (bucket_ubs, bucket_counts) = hist.nonzero_buckets().into_iter().unzip();
        Self {
            t,
            index,
            window_ns,
            count: hist.count(),
            timeouts,
            min_ns: hist.min(),
            max_ns: hist.max(),
            mean_ns: hist.mean(),
            p50_ns: hist.percentile(0.50),
            p95_ns: hist.percentile(0.95),
            p99_ns: hist.percentile(0.99),
            power_w,
            avg_freq_mhz,
            queue_len,
            good: 0,
            wasted: 0,
            shed: 0,
            bucket_ubs,
            bucket_counts,
            exemplars: Vec::new(),
        }
    }
}

/// One monitor window breached an SLO threshold (instantaneous, per
/// window — sustained breaches escalate to [`Alert`] via burn-rate
/// rules). `metric` is a stable tag: `p99-latency`, `timeout-rate`,
/// `power`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SloViolation {
    /// Close time of the violating window (simulated ns).
    pub t: u64,
    /// Tumbling-window ordinal.
    pub window: u64,
    pub metric: String,
    /// Observed value in the metric's native unit (ms, rate, watts).
    pub observed: f64,
    pub target: f64,
    /// Error-budget burn rate of the window (1.0 = exactly on budget).
    pub burn: f64,
}

/// One line of an [`Alert`]'s incident timeline: context events
/// (`FaultInjected` / `SafetyAction` / `DrlStep`) aggregated per
/// window, node and kind in the windows preceding the trip.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IncidentEntry {
    /// Simulated time of the last occurrence.
    pub t: u64,
    pub node: u64,
    /// Context tag (`dvfs-fail`, `core-stall`, `watchdog-turbo`,
    /// `drl-step`, …).
    pub kind: String,
    /// Occurrences of this kind on this node in this window.
    pub count: u64,
    /// Human-readable detail of the last occurrence.
    pub detail: String,
}

/// A burn-rate rule tripped: both its long and short trailing window
/// averages of the error-budget burn rate met the threshold. Carries
/// the incident timeline — recent fault/safety/decision context
/// preceding the trip.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// Close time of the window that tripped the rule (simulated ns).
    pub t: u64,
    pub metric: String,
    /// Rule label, e.g. `burn>=2/5w:2w`.
    pub rule: String,
    /// Short-window average burn at the trip.
    pub burn: f64,
    pub timeline: Vec<IncidentEntry>,
}

/// A previously fired [`Alert`] recovered: the short-window average
/// burn fell back below the rule threshold.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AlertResolved {
    /// Close time of the recovering window (simulated ns).
    pub t: u64,
    pub metric: String,
    pub rule: String,
    /// Time from trip to recovery, simulated ns.
    pub duration_ns: u64,
}

/// The unified telemetry event.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Event {
    DrlStep(DrlStep),
    FreqTransition(FreqTransition),
    CoreResidency(CoreResidency),
    RequestDispatch(RequestDispatch),
    RequestComplete(RequestComplete),
    LatencySnapshot(LatencySnapshot),
    TrainUpdate(TrainUpdate),
    EpisodeEnd(EpisodeEnd),
    JobStart(JobStart),
    JobEnd(JobEnd),
    FaultInjected(FaultInjected),
    SafetyAction(SafetyAction),
    Shed(Shed),
    Abandoned(Abandoned),
    Retry(Retry),
    WindowRollup(WindowRollup),
    SloViolation(SloViolation),
    Alert(Alert),
    AlertResolved(AlertResolved),
    RequestTrace(crate::trace::RequestTrace),
}

impl Event {
    /// Stable kind tag (matches the JSONL object key).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::DrlStep(_) => "DrlStep",
            Event::FreqTransition(_) => "FreqTransition",
            Event::CoreResidency(_) => "CoreResidency",
            Event::RequestDispatch(_) => "RequestDispatch",
            Event::RequestComplete(_) => "RequestComplete",
            Event::LatencySnapshot(_) => "LatencySnapshot",
            Event::TrainUpdate(_) => "TrainUpdate",
            Event::EpisodeEnd(_) => "EpisodeEnd",
            Event::JobStart(_) => "JobStart",
            Event::JobEnd(_) => "JobEnd",
            Event::FaultInjected(_) => "FaultInjected",
            Event::SafetyAction(_) => "SafetyAction",
            Event::Shed(_) => "Shed",
            Event::Abandoned(_) => "Abandoned",
            Event::Retry(_) => "Retry",
            Event::WindowRollup(_) => "WindowRollup",
            Event::SloViolation(_) => "SloViolation",
            Event::Alert(_) => "Alert",
            Event::AlertResolved(_) => "AlertResolved",
            Event::RequestTrace(_) => "RequestTrace",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_roundtrip_through_json() {
        let events = vec![
            Event::DrlStep(DrlStep {
                t: 1_000_000_000,
                num_req: 1200,
                power_w: 87.5,
                base_freq: 0.3,
                scaling_coef: 0.9,
                admit_frac: 1.0,
                avg_freq_mhz: 1450.0,
                queue_len: 4,
                timeouts: 0,
                reward: -0.25,
                r_energy: 0.4,
                r_timeout: 0.0,
                r_queue: 0.1,
                r_wasted: 0.0,
            }),
            Event::FreqTransition(FreqTransition {
                t: 5,
                core: 3,
                from_mhz: 800,
                to_mhz: 2100,
            }),
            Event::JobStart(JobStart {
                job: 7,
                app: "xapian".into(),
                governor: "deeppower".into(),
                seed: 42,
            }),
            Event::FaultInjected(FaultInjected {
                t: 2_000_000,
                kind: "dvfs-fail".into(),
                core: 3,
                magnitude: 2100.0,
            }),
            Event::SafetyAction(SafetyAction {
                t: 3_000_000,
                action: "watchdog-turbo".into(),
                core: -1,
            }),
            Event::WindowRollup(WindowRollup {
                t: 1_000_000_000,
                index: 0,
                window_ns: 1_000_000_000,
                count: 1200,
                timeouts: 3,
                min_ns: 90_000,
                max_ns: 9_100_000,
                mean_ns: 640_000.0,
                p50_ns: 540_000,
                p95_ns: 2_100_000,
                p99_ns: 8_900_000,
                power_w: 84.0,
                avg_freq_mhz: 1900.0,
                queue_len: 2,
                good: 1190,
                wasted: 10,
                shed: 7,
                bucket_ubs: vec![98_303, 589_823, 9_437_183],
                bucket_counts: vec![1, 1195, 4],
                exemplars: vec![41, 12],
            }),
            Event::Shed(Shed {
                t: 1_500_000,
                id: (1 << 48) + 3,
                client: 41,
                attempt: 1,
                reason: "queue-full".into(),
            }),
            Event::Abandoned(Abandoned {
                t: 2_500_000,
                id: 41,
                client: 41,
                attempt: 0,
                waited_ns: 2_000_000,
            }),
            Event::Retry(Retry {
                t: 2_500_000,
                id: (1 << 48) + 4,
                client: 41,
                attempt: 1,
                delay_ns: 650_000,
            }),
            Event::SloViolation(SloViolation {
                t: 2_000_000_000,
                window: 1,
                metric: "timeout-rate".into(),
                observed: 0.12,
                target: 0.05,
                burn: 2.4,
            }),
            Event::Alert(Alert {
                t: 5_000_000_000,
                metric: "p99-latency".into(),
                rule: "burn>=2/5w:2w".into(),
                burn: 3.1,
                timeline: vec![IncidentEntry {
                    t: 4_400_000_000,
                    node: 1,
                    kind: "core-stall".into(),
                    count: 2,
                    detail: "core 5, 20.0 ms".into(),
                }],
            }),
            Event::AlertResolved(AlertResolved {
                t: 9_000_000_000,
                metric: "p99-latency".into(),
                rule: "burn>=2/5w:2w".into(),
                duration_ns: 4_000_000_000,
            }),
            Event::RequestTrace(crate::trace::RequestTrace {
                client: 41,
                node: 2,
                first_submit: 1_500_000,
                end: 4_100_000,
                latency_ns: 2_600_000,
                sla_ns: 2_000_000,
                timed_out: true,
                outcome: "completed".into(),
                sampled: "exemplar".into(),
                attempts: vec![crate::trace::AttemptTrace {
                    id: (1 << 48) + 4,
                    attempt: 1,
                    outcome: "completed".into(),
                    spans: vec![crate::trace::TraceSpan {
                        name: "service".into(),
                        start: 3_600_000,
                        end: 4_100_000,
                        core: 3,
                        freq_mhz: 1800,
                        admit_frac: 0.5,
                        detail: String::new(),
                    }],
                }],
            }),
        ];
        for ev in &events {
            let json = serde_json::to_string(ev).unwrap();
            assert!(json.contains(ev.kind()), "{json}");
            let back: Event = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, ev);
        }
    }

    #[test]
    fn kind_matches_serialized_tag() {
        let ev = Event::CoreResidency(CoreResidency {
            core: 0,
            mhz: 800,
            ns: 10,
        });
        let json = serde_json::to_string(&ev).unwrap();
        assert!(json.starts_with(&format!("{{\"{}\"", ev.kind())));
    }
}
