//! Artifact exporters: JSONL (the canonical per-job artifact format),
//! a CSV projection of the DRL step series, and series reconstruction
//! helpers for the figure benches.

use crate::event::{DrlStep, Event};

/// Serialize events to JSON Lines: one externally-tagged event object
/// per line, in stream order, `\n`-terminated. Field order is the
/// struct declaration order (the vendored serde_json preserves
/// insertion order), so equal event streams produce byte-identical
/// output.
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for ev in events {
        out.push_str(&serde_json::to_string(ev).expect("telemetry events always serialize"));
        out.push('\n');
    }
    out
}

/// Parse a JSONL artifact back into events. Blank lines are skipped;
/// a malformed line yields an error naming its 1-based line number.
pub fn from_jsonl(text: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev: Event = serde_json::from_str(line).map_err(|e| format!("line {}: {e:?}", i + 1))?;
        events.push(ev);
    }
    Ok(events)
}

/// Column order of [`steps_to_csv`] (documented in EXPERIMENTS.md).
pub const STEP_CSV_HEADER: &str =
    "t_ns,num_req,power_w,base_freq,scaling_coef,admit_frac,avg_freq_mhz,queue_len,timeouts,reward,r_energy,r_timeout,r_queue,r_wasted";

/// Project the `DrlStep` events out of a stream as a CSV table, one
/// row per step in stream order.
pub fn steps_to_csv(events: &[Event]) -> String {
    let mut out = String::from(STEP_CSV_HEADER);
    out.push('\n');
    for ev in events {
        if let Event::DrlStep(s) = ev {
            let DrlStep {
                t,
                num_req,
                power_w,
                base_freq,
                scaling_coef,
                admit_frac,
                avg_freq_mhz,
                queue_len,
                timeouts,
                reward,
                r_energy,
                r_timeout,
                r_queue,
                r_wasted,
            } = s;
            out.push_str(&format!(
                "{t},{num_req},{power_w},{base_freq},{scaling_coef},{admit_frac},{avg_freq_mhz},{queue_len},{timeouts},{reward},{r_energy},{r_timeout},{r_queue},{r_wasted}\n"
            ));
        }
    }
    out
}

/// Reconstruct one core's commanded-frequency time series from its
/// `FreqTransition` events: samples at `0, step_ns, 2*step_ns, ...`
/// up to and including the last point `<= t_end`. The core holds
/// `initial_mhz` until its first transition. Transition events must be
/// in time order (they are, in any recorder-produced stream).
pub fn freq_series(
    events: &[Event],
    core: u64,
    initial_mhz: u32,
    t_end: u64,
    step_ns: u64,
) -> Vec<(u64, u32)> {
    assert!(step_ns > 0, "step_ns must be positive");
    let mut transitions = events.iter().filter_map(|ev| match ev {
        Event::FreqTransition(f) if f.core == core => Some((f.t, f.to_mhz)),
        _ => None,
    });
    let mut next = transitions.next();
    let mut mhz = initial_mhz;
    let mut out = Vec::with_capacity((t_end / step_ns + 1) as usize);
    let mut t = 0u64;
    loop {
        while let Some((tt, to)) = next {
            if tt <= t {
                mhz = to;
                next = transitions.next();
            } else {
                break;
            }
        }
        out.push((t, mhz));
        t += step_ns;
        if t > t_end {
            break;
        }
    }
    out
}

/// Slice one training episode out of a concatenated multi-episode
/// stream: everything after the previous `EpisodeEnd` (or the stream
/// start, for the first episode) up to and *including* the `EpisodeEnd`
/// whose `episode` field equals `episode`. `None` when the stream holds
/// no such episode.
///
/// Training artifacts concatenate per-episode engine runs, and each
/// run's event timestamps restart at `t = 0`. Time-series
/// reconstructions ([`freq_series`], or plotting [`steps_to_csv`]'s `t`
/// column) assume monotone time, so they must be fed one episode slice
/// at a time — on a raw multi-episode stream the `t`-reset at each
/// boundary silently corrupts them (see
/// `freq_series_on_concatenated_episodes_is_wrong_use_slices`).
pub fn episode_events(events: &[Event], episode: u64) -> Option<&[Event]> {
    let mut start = 0;
    for (i, ev) in events.iter().enumerate() {
        if let Event::EpisodeEnd(e) = ev {
            if e.episode == episode {
                return Some(&events[start..=i]);
            }
            start = i + 1;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EpisodeEnd, FreqTransition, JobEnd, JobStart};

    fn sample_events() -> Vec<Event> {
        vec![
            Event::JobStart(JobStart {
                job: 0,
                app: "xapian".into(),
                governor: "deeppower".into(),
                seed: 42,
            }),
            Event::DrlStep(DrlStep {
                t: 1_000_000_000,
                num_req: 900,
                power_w: 80.0,
                base_freq: 0.25,
                scaling_coef: 1.0,
                admit_frac: 1.0,
                avg_freq_mhz: 1300.0,
                queue_len: 2,
                timeouts: 1,
                reward: -0.5,
                r_energy: 0.4,
                r_timeout: 0.1,
                r_queue: 0.0,
                r_wasted: 0.0,
            }),
            Event::FreqTransition(FreqTransition {
                t: 500,
                core: 1,
                from_mhz: 800,
                to_mhz: 1600,
            }),
            Event::JobEnd(JobEnd {
                job: 0,
                sim_ns: 2_000_000_000,
                requests: 1800,
                energy_j: 160.0,
                drl_steps: 2,
            }),
        ]
    }

    /// One instance of **every** `Event` variant. The `match` in
    /// `assert_covers_every_variant` has no wildcard arm, so adding a
    /// variant without extending this list is a compile error — the
    /// JSONL exporter and the offline monitor replay can never silently
    /// drop a variant.
    fn one_of_every_variant() -> Vec<Event> {
        use crate::event::*;
        use crate::trace::{AttemptTrace, RequestTrace, TraceSpan};
        vec![
            Event::DrlStep(DrlStep {
                t: 1_000_000_000,
                num_req: 900,
                power_w: 80.0,
                base_freq: 0.25,
                scaling_coef: 1.0,
                admit_frac: 0.75,
                avg_freq_mhz: 1300.0,
                queue_len: 2,
                timeouts: 1,
                reward: -0.5,
                r_energy: 0.4,
                r_timeout: 0.1,
                r_queue: 0.0,
                r_wasted: 0.05,
            }),
            Event::FreqTransition(FreqTransition {
                t: 500,
                core: 1,
                from_mhz: 800,
                to_mhz: 1600,
            }),
            Event::CoreResidency(CoreResidency {
                core: 0,
                mhz: 2100,
                ns: 77,
            }),
            Event::RequestDispatch(RequestDispatch {
                t: 10,
                core: 2,
                id: 5,
            }),
            Event::RequestComplete(RequestComplete {
                t: 20,
                core: 2,
                id: 5,
                latency_ns: 10,
                timed_out: false,
            }),
            Event::LatencySnapshot(LatencySnapshot {
                t: 30,
                count: 100,
                p50_ns: 1,
                p95_ns: 2,
                p99_ns: 3,
                timeouts: 0,
            }),
            Event::TrainUpdate(TrainUpdate {
                t: 40,
                updates: 12,
                critic_loss: 0.5,
                actor_q: -1.0,
                actor_grad_norm: 0.1,
                critic_grad_norm: 0.2,
                replay_len: 64,
                replay_capacity: 128,
            }),
            Event::EpisodeEnd(EpisodeEnd {
                episode: 0,
                steps: 2,
                mean_reward: -0.5,
                avg_power_w: 80.0,
                timeout_rate: 0.01,
                updates: 10,
            }),
            Event::JobStart(JobStart {
                job: 0,
                app: "xapian".into(),
                governor: "deeppower".into(),
                seed: 42,
            }),
            Event::JobEnd(JobEnd {
                job: 0,
                sim_ns: 2_000_000_000,
                requests: 1800,
                energy_j: 160.0,
                drl_steps: 2,
            }),
            Event::FaultInjected(FaultInjected {
                t: 50,
                kind: "dvfs-fail".into(),
                core: 3,
                magnitude: 2100.0,
            }),
            Event::SafetyAction(SafetyAction {
                t: 60,
                action: "watchdog-turbo".into(),
                core: -1,
            }),
            Event::Shed(Shed {
                t: 70,
                id: 9,
                client: 9,
                attempt: 0,
                reason: "queue-full".into(),
            }),
            Event::Abandoned(Abandoned {
                t: 80,
                id: 9,
                client: 9,
                attempt: 0,
                waited_ns: 10,
            }),
            Event::Retry(Retry {
                t: 80,
                id: (1 << 48) + 1,
                client: 9,
                attempt: 1,
                delay_ns: 100,
            }),
            Event::WindowRollup(WindowRollup {
                t: 1_000_000_000,
                index: 0,
                window_ns: 1_000_000_000,
                count: 10,
                timeouts: 1,
                min_ns: 1,
                max_ns: 9,
                mean_ns: 5.0,
                p50_ns: 5,
                p95_ns: 9,
                p99_ns: 9,
                power_w: 84.0,
                avg_freq_mhz: 1900.0,
                queue_len: 2,
                good: 9,
                wasted: 1,
                shed: 1,
                bucket_ubs: vec![15],
                bucket_counts: vec![10],
                exemplars: vec![9],
            }),
            Event::SloViolation(SloViolation {
                t: 1_000_000_000,
                window: 0,
                metric: "timeout-rate".into(),
                observed: 0.12,
                target: 0.05,
                burn: 2.4,
            }),
            Event::Alert(Alert {
                t: 5_000_000_000,
                metric: "p99-latency".into(),
                rule: "burn>=2/5w:2w".into(),
                burn: 3.1,
                timeline: vec![IncidentEntry {
                    t: 4_400_000_000,
                    node: 1,
                    kind: "tail-exemplar".into(),
                    count: 1,
                    detail: "trace ids [9]".into(),
                }],
            }),
            Event::AlertResolved(AlertResolved {
                t: 9_000_000_000,
                metric: "p99-latency".into(),
                rule: "burn>=2/5w:2w".into(),
                duration_ns: 4_000_000_000,
            }),
            Event::RequestTrace(RequestTrace {
                client: 9,
                node: 0,
                first_submit: 70,
                end: 200,
                latency_ns: 130,
                sla_ns: 100,
                timed_out: true,
                outcome: "completed".into(),
                sampled: "head".into(),
                attempts: vec![AttemptTrace {
                    id: (1 << 48) + 1,
                    attempt: 1,
                    outcome: "completed".into(),
                    spans: vec![TraceSpan {
                        name: "queue".into(),
                        start: 180,
                        end: 190,
                        core: -1,
                        freq_mhz: 0,
                        admit_frac: 1.0,
                        detail: String::new(),
                    }],
                }],
            }),
        ]
    }

    /// Compile-time exhaustiveness: this match has no `_` arm, so a new
    /// `Event` variant breaks this test's build until
    /// `one_of_every_variant` covers it.
    fn assert_covers_every_variant(events: &[Event]) {
        let mut kinds: Vec<&'static str> = events.iter().map(Event::kind).collect();
        kinds.sort_unstable();
        let before = kinds.len();
        kinds.dedup();
        assert_eq!(kinds.len(), before, "duplicate variant in the fixture");
        for ev in events {
            match ev {
                Event::DrlStep(_)
                | Event::FreqTransition(_)
                | Event::CoreResidency(_)
                | Event::RequestDispatch(_)
                | Event::RequestComplete(_)
                | Event::LatencySnapshot(_)
                | Event::TrainUpdate(_)
                | Event::EpisodeEnd(_)
                | Event::JobStart(_)
                | Event::JobEnd(_)
                | Event::FaultInjected(_)
                | Event::SafetyAction(_)
                | Event::Shed(_)
                | Event::Abandoned(_)
                | Event::Retry(_)
                | Event::WindowRollup(_)
                | Event::SloViolation(_)
                | Event::Alert(_)
                | Event::AlertResolved(_)
                | Event::RequestTrace(_) => {}
            }
        }
        // Count the arms above: they are the enum, exactly.
        assert_eq!(before, 20, "fixture count != variant count — extend both");
    }

    #[test]
    fn jsonl_roundtrips_every_event_variant() {
        let events = one_of_every_variant();
        assert_covers_every_variant(&events);
        let text = to_jsonl(&events);
        assert_eq!(text.lines().count(), events.len());
        let back = from_jsonl(&text).unwrap();
        assert_eq!(back, events, "round trip must preserve every variant");
        assert_eq!(to_jsonl(&back), text, "re-serialization is byte-identical");
        // The offline monitor replay path accepts the full stream (the
        // `monitor` CLI command feeds from_jsonl output straight in).
        let mut mon = crate::FleetMonitor::new(crate::MonitorConfig::default());
        mon.ingest(0, &back);
        let report = mon.finish();
        assert_eq!(report.windows, 1, "the rollup variant must be consumed");
    }

    #[test]
    fn jsonl_roundtrips() {
        let events = sample_events();
        let text = to_jsonl(&events);
        assert_eq!(text.lines().count(), events.len());
        let back = from_jsonl(&text).unwrap();
        assert_eq!(back, events);
        // Byte-identical re-serialization (determinism contract).
        assert_eq!(to_jsonl(&back), text);
    }

    #[test]
    fn from_jsonl_reports_bad_line() {
        let err = from_jsonl("{\"nope\"").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }

    #[test]
    fn csv_projects_steps_only() {
        let csv = steps_to_csv(&sample_events());
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(STEP_CSV_HEADER));
        let row = lines.next().unwrap();
        assert!(row.starts_with("1000000000,900,80,"), "{row}");
        assert_eq!(lines.next(), None);
        assert_eq!(STEP_CSV_HEADER.split(',').count(), row.split(',').count());
    }

    #[test]
    fn freq_series_steps_through_transitions() {
        let events = vec![
            Event::FreqTransition(FreqTransition {
                t: 150,
                core: 0,
                from_mhz: 800,
                to_mhz: 1600,
            }),
            Event::FreqTransition(FreqTransition {
                t: 300,
                core: 1, // other core: ignored
                from_mhz: 800,
                to_mhz: 2100,
            }),
            Event::FreqTransition(FreqTransition {
                t: 400,
                core: 0,
                from_mhz: 1600,
                to_mhz: 2100,
            }),
        ];
        let series = freq_series(&events, 0, 800, 500, 100);
        assert_eq!(
            series,
            vec![
                (0, 800),
                (100, 800),
                (200, 1600),
                (300, 1600),
                (400, 2100),
                (500, 2100),
            ]
        );
    }

    #[test]
    fn freq_series_no_transitions_holds_initial() {
        let series = freq_series(&[], 0, 1234, 200, 100);
        assert_eq!(series, vec![(0, 1234), (100, 1234), (200, 1234)]);
    }

    /// Boundary semantics pin: a transition at exactly a sample time is
    /// visible *at* that sample (`tt <= t`), and the series includes the
    /// final point at exactly `t_end`. Both are `<=`, not `<` — an
    /// off-by-one here would shift every epoch-aligned DVFS decision by
    /// one sample in the figure benches.
    #[test]
    fn freq_series_boundaries_are_inclusive() {
        let events = vec![Event::FreqTransition(FreqTransition {
            t: 100,
            core: 0,
            from_mhz: 800,
            to_mhz: 1600,
        })];
        let series = freq_series(&events, 0, 800, 200, 100);
        assert_eq!(series, vec![(0, 800), (100, 1600), (200, 1600)]);
    }

    fn episode_end(episode: u64, steps: u64) -> Event {
        Event::EpisodeEnd(EpisodeEnd {
            episode,
            steps,
            mean_reward: -0.5,
            avg_power_w: 80.0,
            timeout_rate: 0.01,
            updates: 10 * (episode + 1),
        })
    }

    fn freq(t: u64, from_mhz: u32, to_mhz: u32) -> Event {
        Event::FreqTransition(FreqTransition {
            t,
            core: 0,
            from_mhz,
            to_mhz,
        })
    }

    fn step(t: u64) -> Event {
        Event::DrlStep(DrlStep {
            t,
            num_req: 100,
            power_w: 80.0,
            base_freq: 0.25,
            scaling_coef: 1.0,
            admit_frac: 1.0,
            avg_freq_mhz: 1300.0,
            queue_len: 0,
            timeouts: 0,
            reward: -0.5,
            r_energy: 0.4,
            r_timeout: 0.1,
            r_queue: 0.0,
            r_wasted: 0.0,
        })
    }

    /// Two training episodes concatenated: timestamps restart at the
    /// `EpisodeEnd` boundary.
    fn two_episode_stream() -> Vec<Event> {
        vec![
            step(1_000),
            freq(900, 800, 2100),
            step(2_000),
            episode_end(0, 2),
            freq(100, 800, 1600), // episode 1 restarts at t = 0
            step(1_000),
            episode_end(1, 1),
        ]
    }

    #[test]
    fn episode_events_slices_inclusive_of_episode_end() {
        let events = two_episode_stream();
        let ep0 = episode_events(&events, 0).unwrap();
        assert_eq!(ep0.len(), 4);
        assert!(matches!(ep0.last(), Some(Event::EpisodeEnd(e)) if e.episode == 0));
        let ep1 = episode_events(&events, 1).unwrap();
        assert_eq!(ep1.len(), 3);
        assert!(matches!(ep1.first(), Some(Event::FreqTransition(f)) if f.t == 100));
        assert!(matches!(ep1.last(), Some(Event::EpisodeEnd(e)) if e.episode == 1));
        assert!(episode_events(&events, 2).is_none());
        assert!(episode_events(&[], 0).is_none());
    }

    /// Regression pin for the epoch-boundary hazard: on the raw
    /// concatenated stream, episode 1's `t`-reset makes its first
    /// transition (`t = 100`) look *earlier* than episode 0's (`t =
    /// 900`), so the reconstruction swallows episode 0's step the
    /// moment it applies — the series lands on 1600 MHz where episode 0
    /// actually ran at 2100 MHz. Per-episode slices reconstruct both
    /// correctly; that is the only supported way to build time series
    /// from training artifacts.
    #[test]
    fn freq_series_on_concatenated_episodes_is_wrong_use_slices() {
        let events = two_episode_stream();

        // Correct: slice first.
        let ep0 = freq_series(episode_events(&events, 0).unwrap(), 0, 800, 1_000, 500);
        assert_eq!(ep0, vec![(0, 800), (500, 800), (1_000, 2100)]);
        let ep1 = freq_series(episode_events(&events, 1).unwrap(), 0, 800, 1_000, 500);
        assert_eq!(ep1, vec![(0, 800), (500, 1600), (1_000, 1600)]);

        // Hazard: the raw stream reconstructs neither episode — at
        // t = 1000 both transitions have "passed" and the later event
        // in stream order (episode 1's 1600 MHz) wins.
        let raw = freq_series(&events, 0, 800, 1_000, 500);
        assert_eq!(raw, vec![(0, 800), (500, 800), (1_000, 1600)]);
        assert_ne!(raw, ep0, "raw multi-episode series must not be trusted");
    }

    /// `steps_to_csv` projects in stream order, so the raw multi-episode
    /// table has a non-monotone `t` column at the boundary; per-episode
    /// slices have monotone time and exactly `EpisodeEnd::steps` rows.
    #[test]
    fn steps_to_csv_per_episode_slices_are_monotone() {
        let events = two_episode_stream();
        let t_column = |csv: &str| -> Vec<u64> {
            csv.lines()
                .skip(1)
                .map(|l| l.split(',').next().unwrap().parse().unwrap())
                .collect()
        };
        let raw = t_column(&steps_to_csv(&events));
        assert_eq!(raw, vec![1_000, 2_000, 1_000], "t resets at the boundary");

        for episode in [0u64, 1] {
            let slice = episode_events(&events, episode).unwrap();
            let ts = t_column(&steps_to_csv(slice));
            assert!(ts.windows(2).all(|w| w[0] < w[1]), "non-monotone: {ts:?}");
            let declared = slice
                .iter()
                .find_map(|ev| match ev {
                    Event::EpisodeEnd(e) if e.episode == episode => Some(e.steps),
                    _ => None,
                })
                .unwrap();
            assert_eq!(ts.len() as u64, declared, "row count vs EpisodeEnd::steps");
        }
    }
}
