//! Artifact exporters: JSONL (the canonical per-job artifact format),
//! a CSV projection of the DRL step series, and series reconstruction
//! helpers for the figure benches.

use crate::event::{DrlStep, Event};

/// Serialize events to JSON Lines: one externally-tagged event object
/// per line, in stream order, `\n`-terminated. Field order is the
/// struct declaration order (the vendored serde_json preserves
/// insertion order), so equal event streams produce byte-identical
/// output.
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for ev in events {
        out.push_str(&serde_json::to_string(ev).expect("telemetry events always serialize"));
        out.push('\n');
    }
    out
}

/// Parse a JSONL artifact back into events. Blank lines are skipped;
/// a malformed line yields an error naming its 1-based line number.
pub fn from_jsonl(text: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev: Event = serde_json::from_str(line).map_err(|e| format!("line {}: {e:?}", i + 1))?;
        events.push(ev);
    }
    Ok(events)
}

/// Column order of [`steps_to_csv`] (documented in EXPERIMENTS.md).
pub const STEP_CSV_HEADER: &str =
    "t_ns,num_req,power_w,base_freq,scaling_coef,avg_freq_mhz,queue_len,timeouts,reward,r_energy,r_timeout,r_queue";

/// Project the `DrlStep` events out of a stream as a CSV table, one
/// row per step in stream order.
pub fn steps_to_csv(events: &[Event]) -> String {
    let mut out = String::from(STEP_CSV_HEADER);
    out.push('\n');
    for ev in events {
        if let Event::DrlStep(s) = ev {
            let DrlStep {
                t,
                num_req,
                power_w,
                base_freq,
                scaling_coef,
                avg_freq_mhz,
                queue_len,
                timeouts,
                reward,
                r_energy,
                r_timeout,
                r_queue,
            } = s;
            out.push_str(&format!(
                "{t},{num_req},{power_w},{base_freq},{scaling_coef},{avg_freq_mhz},{queue_len},{timeouts},{reward},{r_energy},{r_timeout},{r_queue}\n"
            ));
        }
    }
    out
}

/// Reconstruct one core's commanded-frequency time series from its
/// `FreqTransition` events: samples at `0, step_ns, 2*step_ns, ...`
/// up to and including the last point `<= t_end`. The core holds
/// `initial_mhz` until its first transition. Transition events must be
/// in time order (they are, in any recorder-produced stream).
pub fn freq_series(
    events: &[Event],
    core: u64,
    initial_mhz: u32,
    t_end: u64,
    step_ns: u64,
) -> Vec<(u64, u32)> {
    assert!(step_ns > 0, "step_ns must be positive");
    let mut transitions = events.iter().filter_map(|ev| match ev {
        Event::FreqTransition(f) if f.core == core => Some((f.t, f.to_mhz)),
        _ => None,
    });
    let mut next = transitions.next();
    let mut mhz = initial_mhz;
    let mut out = Vec::with_capacity((t_end / step_ns + 1) as usize);
    let mut t = 0u64;
    loop {
        while let Some((tt, to)) = next {
            if tt <= t {
                mhz = to;
                next = transitions.next();
            } else {
                break;
            }
        }
        out.push((t, mhz));
        t += step_ns;
        if t > t_end {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{FreqTransition, JobEnd, JobStart};

    fn sample_events() -> Vec<Event> {
        vec![
            Event::JobStart(JobStart {
                job: 0,
                app: "xapian".into(),
                governor: "deeppower".into(),
                seed: 42,
            }),
            Event::DrlStep(DrlStep {
                t: 1_000_000_000,
                num_req: 900,
                power_w: 80.0,
                base_freq: 0.25,
                scaling_coef: 1.0,
                avg_freq_mhz: 1300.0,
                queue_len: 2,
                timeouts: 1,
                reward: -0.5,
                r_energy: 0.4,
                r_timeout: 0.1,
                r_queue: 0.0,
            }),
            Event::FreqTransition(FreqTransition {
                t: 500,
                core: 1,
                from_mhz: 800,
                to_mhz: 1600,
            }),
            Event::JobEnd(JobEnd {
                job: 0,
                sim_ns: 2_000_000_000,
                requests: 1800,
                energy_j: 160.0,
                drl_steps: 2,
            }),
        ]
    }

    #[test]
    fn jsonl_roundtrips() {
        let events = sample_events();
        let text = to_jsonl(&events);
        assert_eq!(text.lines().count(), events.len());
        let back = from_jsonl(&text).unwrap();
        assert_eq!(back, events);
        // Byte-identical re-serialization (determinism contract).
        assert_eq!(to_jsonl(&back), text);
    }

    #[test]
    fn from_jsonl_reports_bad_line() {
        let err = from_jsonl("{\"nope\"").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }

    #[test]
    fn csv_projects_steps_only() {
        let csv = steps_to_csv(&sample_events());
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(STEP_CSV_HEADER));
        let row = lines.next().unwrap();
        assert!(row.starts_with("1000000000,900,80,"), "{row}");
        assert_eq!(lines.next(), None);
        assert_eq!(STEP_CSV_HEADER.split(',').count(), row.split(',').count());
    }

    #[test]
    fn freq_series_steps_through_transitions() {
        let events = vec![
            Event::FreqTransition(FreqTransition {
                t: 150,
                core: 0,
                from_mhz: 800,
                to_mhz: 1600,
            }),
            Event::FreqTransition(FreqTransition {
                t: 300,
                core: 1, // other core: ignored
                from_mhz: 800,
                to_mhz: 2100,
            }),
            Event::FreqTransition(FreqTransition {
                t: 400,
                core: 0,
                from_mhz: 1600,
                to_mhz: 2100,
            }),
        ];
        let series = freq_series(&events, 0, 800, 500, 100);
        assert_eq!(
            series,
            vec![
                (0, 800),
                (100, 800),
                (200, 1600),
                (300, 1600),
                (400, 2100),
                (500, 2100),
            ]
        );
    }

    #[test]
    fn freq_series_no_transitions_holds_initial() {
        let series = freq_series(&[], 0, 1234, 200, 100);
        assert_eq!(series, vec![(0, 1234), (100, 1234), (200, 1234)]);
    }
}
