//! Leveled logging for the CLI, counted through the telemetry sink.
//!
//! Logs are human-facing wall-clock-side output and go to stderr; they
//! are never part of a run artifact (artifacts must stay a pure
//! function of the job spec). The logger counts emissions per level
//! into the recorder (`log.error`, `log.warn`, ...) so a run artifact
//! records *how much* was logged without capturing the text.

use crate::recorder::Recorder;

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    Error,
    Warn,
    Info,
    Debug,
}

impl LogLevel {
    pub fn label(self) -> &'static str {
        match self {
            LogLevel::Error => "error",
            LogLevel::Warn => "warn",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
        }
    }

    fn counter(self) -> &'static str {
        match self {
            LogLevel::Error => "log.error",
            LogLevel::Warn => "log.warn",
            LogLevel::Info => "log.info",
            LogLevel::Debug => "log.debug",
        }
    }
}

/// A leveled stderr logger. `--quiet` maps to `Error`, the default to
/// `Info`, `-v` to `Debug`.
#[derive(Clone, Debug)]
pub struct Logger {
    level: LogLevel,
    recorder: Recorder,
}

impl Logger {
    pub fn new(level: LogLevel, recorder: Recorder) -> Self {
        Self { level, recorder }
    }

    /// Logger from CLI flags: `--quiet` wins over `-v`.
    pub fn from_flags(quiet: bool, verbose: bool, recorder: Recorder) -> Self {
        let level = if quiet {
            LogLevel::Error
        } else if verbose {
            LogLevel::Debug
        } else {
            LogLevel::Info
        };
        Self::new(level, recorder)
    }

    pub fn level(&self) -> LogLevel {
        self.level
    }

    pub fn enabled(&self, level: LogLevel) -> bool {
        level <= self.level
    }

    pub fn log(&self, level: LogLevel, msg: &str) {
        self.recorder.add(level.counter(), 1);
        if self.enabled(level) {
            eprintln!("[{}] {msg}", level.label());
        }
    }

    pub fn error(&self, msg: &str) {
        self.log(LogLevel::Error, msg);
    }

    pub fn warn(&self, msg: &str) {
        self.log(LogLevel::Warn, msg);
    }

    pub fn info(&self, msg: &str) {
        self.log(LogLevel::Info, msg);
    }

    pub fn debug(&self, msg: &str) {
        self.log(LogLevel::Debug, msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_matches_verbosity() {
        assert!(LogLevel::Error < LogLevel::Warn);
        assert!(LogLevel::Warn < LogLevel::Info);
        assert!(LogLevel::Info < LogLevel::Debug);
    }

    #[test]
    fn from_flags_maps_levels() {
        let r = Recorder::disabled();
        assert_eq!(
            Logger::from_flags(true, false, r.clone()).level(),
            LogLevel::Error
        );
        assert_eq!(
            Logger::from_flags(false, true, r.clone()).level(),
            LogLevel::Debug
        );
        assert_eq!(
            Logger::from_flags(false, false, r.clone()).level(),
            LogLevel::Info
        );
        // --quiet wins over -v.
        assert_eq!(Logger::from_flags(true, true, r).level(), LogLevel::Error);
    }

    #[test]
    fn suppressed_levels_still_count() {
        let r = Recorder::ring(4);
        let log = Logger::from_flags(true, false, r.clone());
        log.info("not printed");
        log.error("printed");
        assert_eq!(r.counter("log.info"), 1);
        assert_eq!(r.counter("log.error"), 1);
    }
}
