//! The recorder handle and its sinks.
//!
//! A [`Recorder`] is the single object instrumented code holds. It is
//! either *disabled* (`Recorder::disabled()`) — a `None` inside, so
//! every emission is one branch and no allocation ever happens — or
//! backed by shared state holding a [`TelemetrySink`] for the event
//! stream plus counters, gauges and log-bucketed histograms.
//!
//! Recorders are deliberately `!Send`: the harness gives every job its
//! own recorder on the worker thread that runs it and drains the events
//! into the job's per-index result slot, which is what keeps artifacts
//! byte-identical across `--threads` values.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::event::Event;
use crate::histogram::Histogram;

/// Destination for the typed event stream.
pub trait TelemetrySink {
    /// Accept one event. Sinks must not block or fail.
    fn record(&mut self, event: Event);
    /// Take every buffered event, oldest first. Sinks that forward
    /// events elsewhere may return nothing.
    fn drain(&mut self) -> Vec<Event> {
        Vec::new()
    }
    /// Events discarded due to capacity (0 for unbounded sinks).
    fn dropped(&self) -> u64 {
        0
    }
}

/// Discards every event. Used by the overhead bench to measure the
/// cost of an *enabled* recorder minus any buffering work, and as the
/// stand-in sink wherever only counters/histograms matter.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {
    #[inline]
    fn record(&mut self, _event: Event) {}
}

/// Preallocated ring buffer: keeps the most recent `capacity` events,
/// overwriting the oldest and counting what it dropped.
#[derive(Clone, Debug)]
pub struct RingSink {
    buf: Vec<Event>,
    capacity: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl RingSink {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RingSink capacity must be positive");
        Self {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TelemetrySink for RingSink {
    #[inline]
    fn record(&mut self, event: Event) {
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    fn drain(&mut self) -> Vec<Event> {
        let head = std::mem::take(&mut self.head);
        let mut buf = std::mem::take(&mut self.buf);
        buf.rotate_left(head);
        buf
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

struct Inner {
    sink: Box<dyn TelemetrySink>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

/// Cheap, cloneable telemetry handle. See the module docs.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Rc<RefCell<Inner>>>,
}

impl Recorder {
    /// A recorder that records nothing: every operation is one branch.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled recorder over a [`RingSink`] of `capacity` events.
    pub fn ring(capacity: usize) -> Self {
        Self::with_sink(Box::new(RingSink::new(capacity)))
    }

    /// An enabled recorder over an arbitrary sink.
    pub fn with_sink(sink: Box<dyn TelemetrySink>) -> Self {
        Self {
            inner: Some(Rc::new(RefCell::new(Inner {
                sink,
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                histograms: BTreeMap::new(),
            }))),
        }
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Push an event into the sink. `event` is a closure so that
    /// callers pay for constructing the payload only when enabled.
    #[inline]
    pub fn emit(&self, event: impl FnOnce() -> Event) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().sink.record(event());
        }
    }

    /// Add `delta` to the named counter.
    #[inline]
    pub fn add(&self, name: &'static str, delta: u64) {
        if let Some(inner) = &self.inner {
            *inner.borrow_mut().counters.entry(name).or_insert(0) += delta;
        }
    }

    /// Set the named gauge to `value`.
    #[inline]
    pub fn set(&self, name: &'static str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().gauges.insert(name, value);
        }
    }

    /// Record `value` into the named log-bucketed histogram.
    #[inline]
    pub fn observe(&self, name: &'static str, value: u64) {
        if let Some(inner) = &self.inner {
            inner
                .borrow_mut()
                .histograms
                .entry(name)
                .or_insert_with(Histogram::new)
                .record(value);
        }
    }

    /// Take every buffered event, oldest first (empty when disabled).
    pub fn drain_events(&self) -> Vec<Event> {
        match &self.inner {
            Some(inner) => inner.borrow_mut().sink.drain(),
            None => Vec::new(),
        }
    }

    /// Snapshot of the counters (name order).
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        match &self.inner {
            Some(inner) => inner
                .borrow()
                .counters
                .iter()
                .map(|(&k, &v)| (k, v))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Value of one counter (0 when absent or disabled).
    pub fn counter(&self, name: &str) -> u64 {
        match &self.inner {
            Some(inner) => inner.borrow().counters.get(name).copied().unwrap_or(0),
            None => 0,
        }
    }

    /// Snapshot of the gauges (name order).
    pub fn gauges(&self) -> Vec<(&'static str, f64)> {
        match &self.inner {
            Some(inner) => inner
                .borrow()
                .gauges
                .iter()
                .map(|(&k, &v)| (k, v))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Clone of one histogram, if recorded.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner
            .as_ref()
            .and_then(|inner| inner.borrow().histograms.get(name).cloned())
    }

    /// Events the sink discarded due to capacity.
    pub fn dropped_events(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.borrow().sink.dropped(),
            None => 0,
        }
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, FreqTransition};

    fn ft(t: u64) -> Event {
        Event::FreqTransition(FreqTransition {
            t,
            core: 0,
            from_mhz: 800,
            to_mhz: 2100,
        })
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::disabled();
        assert!(!r.enabled());
        r.emit(|| panic!("payload must not be constructed when disabled"));
        r.add("x", 1);
        r.observe("h", 5);
        assert!(r.drain_events().is_empty());
        assert!(r.counters().is_empty());
        assert_eq!(r.counter("x"), 0);
        assert!(r.histogram("h").is_none());
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut ring = RingSink::new(3);
        for t in 0..5 {
            ring.record(ft(t));
        }
        assert_eq!(ring.dropped(), 2);
        let events = ring.drain();
        let ts: Vec<u64> = events
            .iter()
            .map(|e| match e {
                Event::FreqTransition(f) => f.t,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ts, vec![2, 3, 4]);
    }

    #[test]
    fn recorder_counters_gauges_histograms() {
        let r = Recorder::ring(16);
        let r2 = r.clone(); // handles share state
        r.add("steps", 2);
        r2.add("steps", 3);
        r.set("load", 0.7);
        r.observe("latency", 100);
        r.observe("latency", 200);
        assert_eq!(r.counter("steps"), 5);
        assert_eq!(r.gauges(), vec![("load", 0.7)]);
        assert_eq!(r.histogram("latency").unwrap().count(), 2);
        r.emit(|| ft(1));
        assert_eq!(r2.drain_events().len(), 1);
        assert!(r.drain_events().is_empty());
        assert_eq!(r.dropped_events(), 0);
    }
}
