//! Crash-safe artifact writes.
//!
//! Every persistent artifact the workspace produces (policy checkpoints,
//! grid reports, JSONL/CSV traces) goes through [`atomic_write`]: the
//! content lands in a sibling temp file first and is renamed into place,
//! so a crash mid-write can never leave a torn file at the destination —
//! readers either see the complete old version or the complete new one.

use std::ffi::OsString;
use std::io;
use std::path::Path;

/// Write `contents` to `path` atomically: write a sibling `.tmp` file in
/// the same directory (rename is only atomic within one filesystem),
/// flush it, then rename it over `path`.
pub fn atomic_write(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> io::Result<()> {
    let path = path.as_ref();
    let file_name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("path has no file name: {}", path.display()),
        )
    })?;
    let mut tmp_name = OsString::from(".");
    tmp_name.push(file_name);
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let write_and_rename = || -> io::Result<()> {
        std::fs::write(&tmp, contents.as_ref())?;
        std::fs::rename(&tmp, path)
    };
    write_and_rename().inspect_err(|_| {
        // Best-effort cleanup; the original error is what matters.
        let _ = std::fs::remove_file(&tmp);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("deeppower-fs-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_roundtrips_and_overwrites() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("artifact.json");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer contents").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer contents");
        // No temp residue.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp file left behind");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_write_rejects_directoryless_target() {
        let err = atomic_write("/", b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn failed_write_leaves_destination_untouched() {
        let dir = tmp_dir("failkeep");
        let path = dir.join("artifact.json");
        atomic_write(&path, b"good").unwrap();
        // Writing into a missing directory fails; the original survives.
        let missing = dir.join("nope").join("artifact.json");
        assert!(atomic_write(&missing, b"bad").is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"good");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
