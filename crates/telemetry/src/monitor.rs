//! The fleet health monitor: windowed SLO tracking, burn-rate
//! alerting, and incident timelines.
//!
//! A [`FleetMonitor`] consumes per-node [`Event`] streams — primarily
//! the [`WindowRollup`]s the server session emits once per tumbling
//! window — and merges windows with equal index across nodes into a
//! fleet-level series. At [`FleetMonitor::finish`] it evaluates the
//! configured [`SloSpec`] over that series:
//!
//! * each window gets a per-objective **burn rate** (how fast it burns
//!   the error budget; 1.0 = exactly on budget) and an instantaneous
//!   violation check, emitted as typed `SloViolation` events;
//! * every [`BurnRateRule`] runs as a fire/resolve state machine over
//!   the trailing burn averages, emitting `Alert`/`AlertResolved`
//!   events — alerts carry an **incident timeline**: the
//!   `FaultInjected`/`SafetyAction`/`DrlStep` context observed in the
//!   windows preceding the trip, aggregated per (window, node, kind);
//! * EWMA z-score detectors flag anomalies on the fleet power and p99
//!   series and on per-node training loss/grad-norm series.
//!
//! Determinism: merged state is keyed `(window index, node)` and every
//! fold at `finish` runs in ascending node order, so the produced
//! [`HealthReport`] is a pure function of the *set* of per-node
//! streams — independent of node interleaving (asserted by proptest)
//! and therefore byte-identical between the serial and threaded fleet
//! drivers. A disabled monitor ([`FleetMonitor::disabled`]) costs one
//! branch per observed event, matching the `Recorder` contract.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use serde::{Deserialize, Serialize};

use crate::event::{Alert, AlertResolved, Event, IncidentEntry, SloViolation, WindowRollup};
use crate::histogram::Histogram;
use crate::recorder::TelemetrySink;
use crate::slo::{
    EwmaConfig, EwmaDetector, SloSpec, LATENCY_BUDGET, METRIC_GOODPUT, METRIC_P99, METRIC_POWER,
    METRIC_TIMEOUT,
};

/// Monitor configuration: the SLO under evaluation plus alerting knobs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MonitorConfig {
    pub slo: SloSpec,
    pub anomaly: EwmaConfig,
    /// Max incident-timeline entries attached to one alert.
    pub timeline_cap: usize,
    /// Windows of context (ending at the tripping window) a timeline
    /// draws from.
    pub context_windows: u64,
    /// Flight-recorder depth: request traces of the last N windows are
    /// retained per node for dump-on-alert (0 disables the ring).
    #[serde(default = "default_flight_windows")]
    pub flight_windows: u64,
}

fn default_flight_windows() -> u64 {
    8
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            slo: SloSpec::default(),
            anomaly: EwmaConfig::default(),
            timeline_cap: 16,
            context_windows: 3,
            flight_windows: default_flight_windows(),
        }
    }
}

impl MonitorConfig {
    pub fn with_slo(slo: SloSpec) -> Self {
        Self {
            slo,
            ..Self::default()
        }
    }
}

/// Context aggregate: occurrences of one event kind on one node inside
/// one window.
#[derive(Clone, Debug)]
struct CtxAgg {
    t_last: u64,
    count: u64,
    detail: String,
}

/// Per-node training diagnostics sample (from `TrainUpdate`).
#[derive(Clone, Copy, Debug)]
struct TrainSample {
    t: u64,
    critic_loss: f64,
    actor_grad_norm: f64,
}

/// The fleet health monitor. See the module docs.
#[derive(Clone, Debug)]
pub struct FleetMonitor {
    cfg: MonitorConfig,
    enabled: bool,
    /// window index -> node -> that node's rollup.
    windows: BTreeMap<u64, BTreeMap<u64, WindowRollup>>,
    /// (window index, node, kind) -> aggregated context.
    context: BTreeMap<(u64, u64, String), CtxAgg>,
    /// node -> window index new context is attributed to (advances when
    /// the node's rollup for a window arrives).
    cur_window: BTreeMap<u64, u64>,
    /// node -> training diagnostics series, stream order.
    train: BTreeMap<u64, Vec<TrainSample>>,
    /// Bounded ring of received request traces (dump-on-alert source).
    flight: crate::trace::FlightRecorder,
}

impl FleetMonitor {
    pub fn new(cfg: MonitorConfig) -> Self {
        Self {
            cfg,
            enabled: true,
            windows: BTreeMap::new(),
            context: BTreeMap::new(),
            cur_window: BTreeMap::new(),
            train: BTreeMap::new(),
            flight: crate::trace::FlightRecorder::new(),
        }
    }

    /// A monitor that observes nothing: every `observe` is one branch.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::new(MonitorConfig::default())
        }
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    pub fn config(&self) -> &MonitorConfig {
        &self.cfg
    }

    /// Feed one event from `node`'s stream. Events must arrive in each
    /// node's stream order; different nodes may interleave arbitrarily.
    pub fn observe(&mut self, node: u64, event: &Event) {
        if !self.enabled {
            return;
        }
        match event {
            Event::WindowRollup(w) => {
                // Tail-exemplar links land on the *closing* window's
                // context (cur_window still points at it here), so an
                // alert tripping on this window carries the trace ids.
                if !w.exemplars.is_empty() {
                    self.context_entry(
                        node,
                        w.t,
                        "tail-exemplar".into(),
                        format!("trace ids {:?}", w.exemplars),
                    );
                }
                self.cur_window.insert(node, w.index + 1);
                if self.cfg.flight_windows > 0 {
                    self.flight.seal(node, w.index, self.cfg.flight_windows);
                }
                self.windows
                    .entry(w.index)
                    .or_default()
                    .insert(node, w.clone());
            }
            Event::RequestTrace(tr) if self.cfg.flight_windows > 0 => {
                self.flight.push(node, tr.clone());
            }
            Event::FaultInjected(f) => {
                self.context_entry(
                    node,
                    f.t,
                    f.kind.clone(),
                    format!("core {}, magnitude {}", f.core, f.magnitude),
                );
            }
            Event::SafetyAction(a) => {
                self.context_entry(node, a.t, a.action.clone(), format!("core {}", a.core));
            }
            Event::DrlStep(s) => {
                self.context_entry(
                    node,
                    s.t,
                    "drl-step".into(),
                    format!(
                        "base_freq {:.3}, coef {:.3}, queue {}, timeouts {}",
                        s.base_freq, s.scaling_coef, s.queue_len, s.timeouts
                    ),
                );
            }
            Event::TrainUpdate(u) => {
                self.train.entry(node).or_default().push(TrainSample {
                    t: u.t,
                    critic_loss: u.critic_loss,
                    actor_grad_norm: u.actor_grad_norm,
                });
            }
            _ => {}
        }
    }

    /// Feed a whole per-node stream (stream order).
    pub fn ingest(&mut self, node: u64, events: &[Event]) {
        if !self.enabled {
            return;
        }
        for ev in events {
            self.observe(node, ev);
        }
    }

    /// Fold another monitor's state in. The two monitors must have
    /// observed **disjoint node sets** (the threaded fleet driver gives
    /// each worker its own monitor over its owned nodes); merged state
    /// is identical to one monitor having observed every stream.
    pub fn merge(&mut self, other: FleetMonitor) {
        if !self.enabled {
            return;
        }
        for (idx, per_node) in other.windows {
            self.windows.entry(idx).or_default().extend(per_node);
        }
        self.context.extend(other.context);
        self.cur_window.extend(other.cur_window);
        self.train.extend(other.train);
        self.flight.merge(other.flight);
    }

    /// The flight recorder's retained traces (bounded to the last
    /// `flight_windows` windows per node).
    pub fn flight(&self) -> &crate::trace::FlightRecorder {
        &self.flight
    }

    fn context_entry(&mut self, node: u64, t: u64, kind: String, detail: String) {
        let window = self.cur_window.get(&node).copied().unwrap_or(0);
        let agg = self
            .context
            .entry((window, node, kind))
            .or_insert_with(|| CtxAgg {
                t_last: 0,
                count: 0,
                detail: String::new(),
            });
        agg.t_last = t;
        agg.count += 1;
        agg.detail = detail;
    }

    /// Incident timeline for an alert tripping at `window`: context
    /// from the trailing `context_windows` windows, time-ordered,
    /// newest `timeline_cap` entries kept.
    fn timeline_for(&self, window: u64) -> Vec<IncidentEntry> {
        let lo = window.saturating_sub(self.cfg.context_windows.saturating_sub(1));
        let mut entries: Vec<IncidentEntry> = self
            .context
            .iter()
            .filter(|((w, _, _), _)| *w >= lo && *w <= window)
            .map(|((_, node, kind), agg)| IncidentEntry {
                t: agg.t_last,
                node: *node,
                kind: kind.clone(),
                count: agg.count,
                detail: agg.detail.clone(),
            })
            .collect();
        entries.sort_by(|a, b| (a.t, a.node, &a.kind).cmp(&(b.t, b.node, &b.kind)));
        if entries.len() > self.cfg.timeline_cap {
            entries.drain(..entries.len() - self.cfg.timeline_cap);
        }
        entries
    }

    /// Merge each window index across nodes, folding in ascending node
    /// order (deterministic for any ingestion interleaving).
    fn merged_windows(&self) -> Vec<MergedWindow> {
        self.windows
            .iter()
            .map(|(&index, per_node)| {
                let mut m = MergedWindow {
                    index,
                    ..MergedWindow::empty()
                };
                for (_, w) in per_node.iter() {
                    m.t_end = m.t_end.max(w.t);
                    m.span_ns = m.span_ns.max(w.window_ns);
                    m.count += w.count;
                    m.timeouts += w.timeouts;
                    if w.count > 0 {
                        m.min_ns = m.min_ns.min(w.min_ns);
                        m.max_ns = m.max_ns.max(w.max_ns);
                        m.lat_sum += w.mean_ns * w.count as f64;
                    }
                    for (&ub, &c) in w.bucket_ubs.iter().zip(w.bucket_counts.iter()) {
                        m.hist.record_n(ub, c);
                    }
                    m.power_w += w.power_w;
                    if w.avg_freq_mhz > 0.0 {
                        m.freq_sum += w.avg_freq_mhz;
                        m.freq_nodes += 1;
                    }
                    m.queue_len += w.queue_len;
                    m.good += w.good;
                    m.wasted += w.wasted;
                    m.shed += w.shed;
                    m.nodes += 1;
                }
                m
            })
            .collect()
    }

    /// Evaluate the SLO over everything observed and assemble the
    /// health report. Pure read: callable repeatedly, and two monitors
    /// with the same observed streams produce byte-identical reports.
    pub fn finish(&self) -> HealthReport {
        let merged = self.merged_windows();
        let slo = &self.cfg.slo;
        let mut events: Vec<Event> = Vec::new();
        let mut outcomes: Vec<SloOutcome> = Vec::new();
        let mut alerts: Vec<AlertRecord> = Vec::new();

        for (metric, target) in slo.objectives() {
            let mut burns: Vec<f64> = Vec::with_capacity(merged.len());
            let mut outcome = SloOutcome {
                metric: metric.into(),
                target,
                windows_evaluated: merged.len() as u64,
                violations: 0,
                time_in_violation_ns: 0,
                worst_burn: 0.0,
                worst_observed: 0.0,
                alerts: 0,
            };
            for w in &merged {
                let (observed, burn, violated) = w.evaluate(metric, target);
                burns.push(burn);
                outcome.worst_burn = outcome.worst_burn.max(burn);
                outcome.worst_observed = outcome.worst_observed.max(observed);
                if violated {
                    outcome.violations += 1;
                    outcome.time_in_violation_ns += w.span_ns;
                    events.push(Event::SloViolation(SloViolation {
                        t: w.t_end,
                        window: w.index,
                        metric: metric.into(),
                        observed,
                        target,
                        burn,
                    }));
                }
            }
            for rule in &slo.rules {
                let long = rule.long_windows as usize;
                let short = rule.short_windows as usize;
                let mut active: Option<AlertRecord> = None;
                for (k, w) in merged.iter().enumerate() {
                    if k + 1 < long {
                        continue;
                    }
                    let long_avg = mean_of(&burns[k + 1 - long..=k]);
                    let short_avg = mean_of(&burns[k + 1 - short..=k]);
                    match active.as_mut() {
                        None => {
                            if long_avg >= rule.max_burn && short_avg >= rule.max_burn {
                                let timeline = self.timeline_for(w.index);
                                events.push(Event::Alert(Alert {
                                    t: w.t_end,
                                    metric: metric.into(),
                                    rule: rule.label(),
                                    burn: short_avg,
                                    timeline: timeline.clone(),
                                }));
                                outcome.alerts += 1;
                                active = Some(AlertRecord {
                                    metric: metric.into(),
                                    rule: rule.label(),
                                    t_fire: w.t_end,
                                    t_resolve: 0,
                                    window: w.index,
                                    peak_burn: short_avg,
                                    timeline,
                                    flight_dump: String::new(),
                                });
                            }
                        }
                        Some(a) => {
                            if short_avg < rule.max_burn {
                                a.t_resolve = w.t_end;
                                events.push(Event::AlertResolved(AlertResolved {
                                    t: w.t_end,
                                    metric: metric.into(),
                                    rule: rule.label(),
                                    duration_ns: w.t_end.saturating_sub(a.t_fire),
                                }));
                                alerts.push(active.take().unwrap());
                            } else {
                                a.peak_burn = a.peak_burn.max(short_avg);
                            }
                        }
                    }
                }
                if let Some(open) = active {
                    alerts.push(open);
                }
            }
            outcomes.push(outcome);
        }
        events.sort_by_key(event_time);
        alerts.sort_by(|a, b| (a.t_fire, &a.metric, &a.rule).cmp(&(b.t_fire, &b.metric, &b.rule)));

        let anomalies = self.anomalies(&merged);
        let healthy = alerts.is_empty() && outcomes.iter().all(|o| o.violations == 0);
        let nodes: std::collections::BTreeSet<u64> = self
            .windows
            .values()
            .flat_map(|m| m.keys().copied())
            .collect();
        HealthReport {
            slo: slo.clone(),
            nodes: nodes.len() as u64,
            windows: merged.len() as u64,
            window_ns: merged.iter().map(|w| w.span_ns).max().unwrap_or(0),
            sim_ns: merged.iter().map(|w| w.t_end).max().unwrap_or(0),
            requests: merged.iter().map(|w| w.count).sum(),
            timeouts: merged.iter().map(|w| w.timeouts).sum(),
            window_series: merged.iter().map(|w| w.summary()).collect(),
            outcomes,
            alerts,
            anomalies,
            events,
            healthy,
        }
    }

    fn anomalies(&self, merged: &[MergedWindow]) -> Vec<AnomalyRecord> {
        let mut out = Vec::new();
        let mut power_det = EwmaDetector::new(self.cfg.anomaly);
        let mut p99_det = EwmaDetector::new(self.cfg.anomaly);
        for w in merged {
            if let Some(z) = power_det.observe_anomalous(w.power_w) {
                out.push(AnomalyRecord::fleet("power-w", w.t_end, w.power_w, z));
            }
            if w.count > 0 {
                let p99_ms = w.percentile(0.99) as f64 / 1e6;
                if let Some(z) = p99_det.observe_anomalous(p99_ms) {
                    out.push(AnomalyRecord::fleet("p99-ms", w.t_end, p99_ms, z));
                }
            }
        }
        for (&node, series) in &self.train {
            let mut loss_det = EwmaDetector::new(self.cfg.anomaly);
            let mut grad_det = EwmaDetector::new(self.cfg.anomaly);
            for s in series {
                if let Some(z) = loss_det.observe_anomalous(s.critic_loss) {
                    out.push(AnomalyRecord::node(
                        "critic-loss",
                        node,
                        s.t,
                        s.critic_loss,
                        z,
                    ));
                }
                if let Some(z) = grad_det.observe_anomalous(s.actor_grad_norm) {
                    out.push(AnomalyRecord::node(
                        "actor-grad-norm",
                        node,
                        s.t,
                        s.actor_grad_norm,
                        z,
                    ));
                }
            }
        }
        out.sort_by(|a, b| (a.t, &a.series, a.node).cmp(&(b.t, &b.series, b.node)));
        out
    }
}

/// Simulated timestamp of a monitor-produced event (sort key).
fn event_time(ev: &Event) -> u64 {
    match ev {
        Event::SloViolation(v) => v.t,
        Event::Alert(a) => a.t,
        Event::AlertResolved(r) => r.t,
        _ => 0,
    }
}

fn mean_of(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// JSON-safe float: non-finite values (a diverged training loss, an
/// infinite z-score) are capped so the report always serializes.
fn json_safe(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        1e30
    }
}

/// One window index merged across nodes.
#[derive(Clone, Debug)]
struct MergedWindow {
    index: u64,
    t_end: u64,
    span_ns: u64,
    count: u64,
    timeouts: u64,
    /// Exact extremes across nodes (rollups carry exact min/max).
    min_ns: u64,
    max_ns: u64,
    lat_sum: f64,
    /// Fleet power: sum of per-node window means.
    power_w: f64,
    freq_sum: f64,
    freq_nodes: u64,
    queue_len: u64,
    /// Closed-loop overload accounting summed across nodes.
    good: u64,
    wasted: u64,
    shed: u64,
    nodes: u64,
    hist: Histogram,
}

impl MergedWindow {
    fn empty() -> Self {
        Self {
            index: 0,
            t_end: 0,
            span_ns: 0,
            count: 0,
            timeouts: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            lat_sum: 0.0,
            power_w: 0.0,
            freq_sum: 0.0,
            freq_nodes: 0,
            queue_len: 0,
            good: 0,
            wasted: 0,
            shed: 0,
            nodes: 0,
            hist: Histogram::new(),
        }
    }

    /// Merged percentile, clamped to the exact extremes — when one
    /// window spans a whole single-node run this reproduces the
    /// server's `quick_stats` percentiles exactly (asserted by
    /// proptest in `simd-server`).
    fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.hist.percentile(q).clamp(self.min_ns, self.max_ns)
        }
    }

    /// `(observed, burn rate, instantaneously violated)` for one
    /// objective over this window.
    fn evaluate(&self, metric: &str, target: f64) -> (f64, f64, bool) {
        match metric {
            METRIC_P99 => {
                if self.count == 0 {
                    return (0.0, 0.0, false);
                }
                let target_ns = (target * 1e6) as u64;
                let observed = self.percentile(0.99) as f64 / 1e6;
                let bad = self.count - self.hist.count_at_or_below(target_ns).min(self.count);
                let burn = (bad as f64 / self.count as f64) / LATENCY_BUDGET;
                (observed, burn, observed > target)
            }
            METRIC_TIMEOUT => {
                if self.count == 0 {
                    return (0.0, 0.0, false);
                }
                let observed = self.timeouts as f64 / self.count as f64;
                (observed, observed / target, observed > target)
            }
            METRIC_POWER => {
                let observed = self.power_w;
                (observed, observed / target, observed > target)
            }
            METRIC_GOODPUT => {
                // Higher-is-better floor: the error budget is the
                // tolerated useless fraction (1 - target), burned by the
                // observed useless fraction. Open-loop windows offer no
                // shed/wasted signal and never violate.
                let offered = self.good + self.wasted + self.shed;
                if offered == 0 {
                    return (1.0, 0.0, false);
                }
                let observed = self.good as f64 / offered as f64;
                let burn = (1.0 - observed) / (1.0 - target).max(1e-9);
                (observed, burn, observed < target)
            }
            _ => (0.0, 0.0, false),
        }
    }
}

/// One fleet-merged window as reported in [`HealthReport`]: counts and
/// extremes are exact sums/extremes over the contributing nodes,
/// percentiles are merged-histogram reads clamped to the exact
/// extremes, power is the fleet sum of per-node window means.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WindowSummary {
    pub index: u64,
    pub t: u64,
    pub window_ns: u64,
    pub nodes: u64,
    pub count: u64,
    pub timeouts: u64,
    pub mean_ns: f64,
    pub min_ns: u64,
    pub max_ns: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub power_w: f64,
    pub avg_freq_mhz: f64,
    pub queue_len: u64,
}

impl MergedWindow {
    fn summary(&self) -> WindowSummary {
        WindowSummary {
            index: self.index,
            t: self.t_end,
            window_ns: self.span_ns,
            nodes: self.nodes,
            count: self.count,
            timeouts: self.timeouts,
            mean_ns: if self.count == 0 {
                0.0
            } else {
                self.lat_sum / self.count as f64
            },
            min_ns: if self.count == 0 { 0 } else { self.min_ns },
            max_ns: if self.count == 0 { 0 } else { self.max_ns },
            p50_ns: self.percentile(0.50),
            p95_ns: self.percentile(0.95),
            p99_ns: self.percentile(0.99),
            power_w: self.power_w,
            avg_freq_mhz: if self.freq_nodes == 0 {
                0.0
            } else {
                self.freq_sum / self.freq_nodes as f64
            },
            queue_len: self.queue_len,
        }
    }
}

/// Per-objective evaluation summary.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SloOutcome {
    pub metric: String,
    pub target: f64,
    pub windows_evaluated: u64,
    /// Windows instantaneously over target.
    pub violations: u64,
    /// Simulated time spent in violation.
    pub time_in_violation_ns: u64,
    pub worst_burn: f64,
    pub worst_observed: f64,
    /// Burn-rate alerts fired for this objective.
    pub alerts: u64,
}

/// One fired burn-rate alert (`t_resolve == 0` means still open at run
/// end).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AlertRecord {
    pub metric: String,
    pub rule: String,
    pub t_fire: u64,
    pub t_resolve: u64,
    /// Tumbling-window ordinal of the tripping window.
    #[serde(default)]
    pub window: u64,
    pub peak_burn: f64,
    pub timeline: Vec<IncidentEntry>,
    /// Path of the flight-recorder dump written for this incident
    /// (empty when no dump was requested or nothing was retained).
    #[serde(default)]
    pub flight_dump: String,
}

/// One EWMA z-score anomaly. `node == -1` marks a fleet-level series.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AnomalyRecord {
    pub series: String,
    pub node: i64,
    pub t: u64,
    pub value: f64,
    pub z: f64,
}

impl AnomalyRecord {
    fn fleet(series: &str, t: u64, value: f64, z: f64) -> Self {
        Self {
            series: series.into(),
            node: -1,
            t,
            value: json_safe(value),
            z: json_safe(z),
        }
    }

    fn node(series: &str, node: u64, t: u64, value: f64, z: f64) -> Self {
        Self {
            series: series.into(),
            node: node as i64,
            t,
            value: json_safe(value),
            z: json_safe(z),
        }
    }
}

/// The monitor's output: SLO outcomes, fired alerts with incident
/// timelines, anomalies, and the typed violation/alert events — all
/// derived purely from simulated-time data.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    pub slo: SloSpec,
    pub nodes: u64,
    pub windows: u64,
    /// Longest window span observed (the nominal window size).
    pub window_ns: u64,
    /// Close time of the last window.
    pub sim_ns: u64,
    pub requests: u64,
    pub timeouts: u64,
    /// The fleet-merged window series, index order.
    pub window_series: Vec<WindowSummary>,
    pub outcomes: Vec<SloOutcome>,
    pub alerts: Vec<AlertRecord>,
    pub anomalies: Vec<AnomalyRecord>,
    /// Typed `SloViolation`/`Alert`/`AlertResolved` events, time order.
    pub events: Vec<Event>,
    /// No alerts fired and no window violated any objective.
    pub healthy: bool,
}

impl HealthReport {
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("health report serializes")
    }

    /// Human-readable summary + incident log.
    pub fn render_incident_log(&self) -> String {
        let mut out = String::new();
        let state = if self.healthy { "HEALTHY" } else { "DEGRADED" };
        out.push_str(&format!(
            "health: {state} — {} alert(s), SLO `{}` over {} window(s) ({:.1}s each), {} node(s)\n",
            self.alerts.len(),
            self.slo.name,
            self.windows,
            self.window_ns as f64 / 1e9,
            self.nodes,
        ));
        out.push_str(&format!(
            "traffic: {} request(s), {} timeout(s), {:.2}s simulated\n",
            self.requests,
            self.timeouts,
            self.sim_ns as f64 / 1e9
        ));
        for o in &self.outcomes {
            out.push_str(&format!(
                "  {:<13} target {:>9.3}  violations {:>3}/{} ({:.1}s)  worst burn {:>7.2}  alerts {}\n",
                o.metric,
                o.target,
                o.violations,
                o.windows_evaluated,
                o.time_in_violation_ns as f64 / 1e9,
                o.worst_burn,
                o.alerts,
            ));
        }
        if !self.alerts.is_empty() || !self.anomalies.is_empty() {
            out.push_str("-- incident log --\n");
        }
        for a in &self.alerts {
            out.push_str(&format!(
                "[{:>8.2}s] ALERT {} {} fired (peak burn {:.2})\n",
                a.t_fire as f64 / 1e9,
                a.metric,
                a.rule,
                a.peak_burn
            ));
            for e in &a.timeline {
                out.push_str(&format!(
                    "            | {:>8.2}s node {} {} x{}: {}\n",
                    e.t as f64 / 1e9,
                    e.node,
                    e.kind,
                    e.count,
                    e.detail
                ));
            }
            if !a.flight_dump.is_empty() {
                out.push_str(&format!(
                    "            | flight-recorder dump: {}\n",
                    a.flight_dump
                ));
            }
            if a.t_resolve > 0 {
                out.push_str(&format!(
                    "[{:>8.2}s] RESOLVED {} {} after {:.2}s\n",
                    a.t_resolve as f64 / 1e9,
                    a.metric,
                    a.rule,
                    (a.t_resolve.saturating_sub(a.t_fire)) as f64 / 1e9
                ));
            } else {
                out.push_str(&format!(
                    "            | still open at run end ({:.2}s)\n",
                    self.sim_ns as f64 / 1e9
                ));
            }
        }
        for an in &self.anomalies {
            out.push_str(&format!(
                "[{:>8.2}s] ANOMALY {}{} value {:.4} (z {:.1})\n",
                an.t as f64 / 1e9,
                an.series,
                if an.node >= 0 {
                    format!(" node {}", an.node)
                } else {
                    String::new()
                },
                an.value,
                an.z
            ));
        }
        out
    }
}

/// How one gauge key folds when per-node [`crate::Recorder`] snapshots
/// are merged into a fleet view.
///
/// Gauges are last-write *within* one node's recorder — correct for a
/// single stream — but folding node snapshots with the same rule
/// silently keeps whichever node happened to fold last. A peak gauge
/// (e.g. `queue.peak_depth`) under-reports the true fleet peak that
/// way; per-key policies fix the fold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GaugeMerge {
    /// Fleet value is the max across nodes (peaks, high-water marks).
    Max,
    /// Fleet value is the min across nodes (floors, low-water marks).
    Min,
    /// Fleet value is the sum across nodes (totals).
    Sum,
    /// Last write wins — only for keys where cross-node aggregation is
    /// meaningless (a genuinely per-run scalar).
    Last,
}

/// The merge policy for a gauge key, by naming convention: `peak`/`max`
/// segments aggregate by max, `floor`/`min` by min, `total`/`sum` by
/// sum, anything else stays last-write.
pub fn gauge_merge_policy(key: &str) -> GaugeMerge {
    let has = |needle: &str| key.split(['.', '_', '-']).any(|seg| seg == needle);
    if has("peak") || has("max") {
        GaugeMerge::Max
    } else if has("floor") || has("min") {
        GaugeMerge::Min
    } else if has("total") || has("sum") {
        GaugeMerge::Sum
    } else {
        GaugeMerge::Last
    }
}

/// Fold one node's gauge snapshot into a fleet accumulator under the
/// per-key [`gauge_merge_policy`]. Max/Min/Sum keys are
/// order-independent across nodes; only `Last` keys depend on fold
/// order (callers fold in ascending node order for determinism).
pub fn merge_gauges(into: &mut BTreeMap<&'static str, f64>, node_gauges: &[(&'static str, f64)]) {
    for &(key, value) in node_gauges {
        match into.entry(key) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(value);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let cur = *e.get();
                let merged = match gauge_merge_policy(key) {
                    GaugeMerge::Max => cur.max(value),
                    GaugeMerge::Min => cur.min(value),
                    GaugeMerge::Sum => cur + value,
                    GaugeMerge::Last => value,
                };
                e.insert(merged);
            }
        }
    }
}

/// A [`TelemetrySink`] that feeds a shared [`FleetMonitor`] inline —
/// events stream straight into monitor state without buffering.
pub struct MonitorSink {
    monitor: Rc<RefCell<FleetMonitor>>,
    node: u64,
}

impl MonitorSink {
    pub fn new(monitor: Rc<RefCell<FleetMonitor>>, node: u64) -> Self {
        Self { monitor, node }
    }
}

impl TelemetrySink for MonitorSink {
    #[inline]
    fn record(&mut self, event: Event) {
        self.monitor.borrow_mut().observe(self.node, &event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FaultInjected;
    use crate::slo::BurnRateRule;
    use proptest::prelude::*;

    const WIN: u64 = 1_000_000_000;

    /// Rollup from raw latencies through the same constructor the
    /// server uses.
    fn rollup(index: u64, lats: &[u64], timeouts: u64, power_w: f64) -> Event {
        let mut h = Histogram::new();
        for &l in lats {
            h.record(l);
        }
        Event::WindowRollup(WindowRollup::from_histogram(
            (index + 1) * WIN,
            index,
            WIN,
            &h,
            timeouts,
            power_w,
            1800.0,
            0,
        ))
    }

    fn fault(t: u64, kind: &str) -> Event {
        Event::FaultInjected(FaultInjected {
            t,
            kind: kind.into(),
            core: 2,
            magnitude: 20.0,
        })
    }

    fn timeout_cfg() -> MonitorConfig {
        MonitorConfig::with_slo(SloSpec {
            name: "test".into(),
            p99_ms: 0.0,
            timeout_rate: 0.05,
            power_w: 0.0,
            goodput_ratio: 0.0,
            rules: vec![BurnRateRule {
                long_windows: 3,
                short_windows: 1,
                max_burn: 2.0,
            }],
        })
    }

    #[test]
    fn disabled_monitor_is_inert() {
        let mut m = FleetMonitor::disabled();
        assert!(!m.enabled());
        m.observe(0, &rollup(0, &[1000, 2000], 1, 50.0));
        let report = m.finish();
        assert_eq!(report.windows, 0);
        assert!(report.healthy);
        assert!(report.events.is_empty());
    }

    #[test]
    fn clean_stream_is_healthy_with_zero_alerts() {
        let mut m = FleetMonitor::new(timeout_cfg());
        for i in 0..10 {
            m.observe(0, &rollup(i, &[500_000, 700_000, 900_000], 0, 60.0));
        }
        let report = m.finish();
        assert!(report.healthy, "{}", report.to_json());
        assert!(report.alerts.is_empty());
        assert_eq!(report.windows, 10);
        assert_eq!(report.requests, 30);
        assert_eq!(
            report.outcomes[0].violations,
            0,
            "{}",
            report.render_incident_log()
        );
    }

    #[test]
    fn sustained_timeouts_fire_and_resolve_with_timeline() {
        let mut m = FleetMonitor::new(timeout_cfg());
        // 3 clean windows, then 4 burning (50% timeouts = burn 10),
        // then clean again — the 3w:1w rule needs 3 windows of history,
        // fires inside the burn, resolves after it.
        for i in 0..3 {
            m.observe(0, &rollup(i, &[1000, 1000], 0, 60.0));
        }
        for i in 3..7 {
            m.observe(0, &fault(i * WIN + WIN / 2, "core-stall"));
            m.observe(0, &rollup(i, &[1000, 9_000_000], 1, 60.0));
        }
        for i in 7..12 {
            m.observe(0, &rollup(i, &[1000, 1000], 0, 60.0));
        }
        let report = m.finish();
        assert!(!report.healthy);
        assert_eq!(report.alerts.len(), 1, "{}", report.render_incident_log());
        let alert = &report.alerts[0];
        assert_eq!(alert.metric, METRIC_TIMEOUT);
        assert!(alert.t_resolve > alert.t_fire);
        assert!(
            alert.timeline.iter().any(|e| e.kind == "core-stall"),
            "timeline missing fault context: {:?}",
            alert.timeline
        );
        // Violations: the 4 burning windows, each a SloViolation event.
        assert_eq!(report.outcomes[0].violations, 4);
        assert_eq!(report.outcomes[0].time_in_violation_ns, 4 * WIN);
        let kinds: Vec<&str> = report.events.iter().map(|e| e.kind()).collect();
        assert!(kinds.contains(&"SloViolation"));
        assert!(kinds.contains(&"Alert"));
        assert!(kinds.contains(&"AlertResolved"));
        // Events are time-ordered.
        let ts: Vec<u64> = report.events.iter().map(event_time).collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        assert_eq!(ts, sorted);
    }

    #[test]
    fn power_budget_objective_tracks_fleet_sum() {
        let cfg = MonitorConfig::with_slo(SloSpec {
            name: "power".into(),
            p99_ms: 0.0,
            timeout_rate: 0.0,
            power_w: 100.0,
            goodput_ratio: 0.0,
            rules: vec![BurnRateRule {
                long_windows: 2,
                short_windows: 1,
                max_burn: 1.0,
            }],
        });
        let mut m = FleetMonitor::new(cfg);
        // Two nodes at 60 W each: fleet power 120 W > 100 W budget.
        for i in 0..4 {
            m.observe(0, &rollup(i, &[1000], 0, 60.0));
            m.observe(1, &rollup(i, &[1000], 0, 60.0));
        }
        let report = m.finish();
        assert_eq!(report.nodes, 2);
        let o = &report.outcomes[0];
        assert_eq!(o.metric, METRIC_POWER);
        assert_eq!(o.violations, 4);
        assert!((o.worst_observed - 120.0).abs() < 1e-9);
        assert_eq!(report.alerts.len(), 1);
        assert_eq!(report.alerts[0].t_resolve, 0, "alert stays open");
    }

    #[test]
    fn goodput_collapse_fires_and_resolves() {
        let cfg = MonitorConfig::with_slo(SloSpec {
            name: "goodput".into(),
            p99_ms: 0.0,
            timeout_rate: 0.0,
            power_w: 0.0,
            goodput_ratio: 0.5,
            rules: vec![BurnRateRule {
                long_windows: 2,
                short_windows: 1,
                max_burn: 1.5,
            }],
        });
        let mut m = FleetMonitor::new(cfg);
        let mk = |i: u64, good: u64, wasted: u64, shed: u64| {
            let Event::WindowRollup(mut w) = rollup(i, &[1000, 1000, 1000, 1000], 0, 50.0) else {
                unreachable!()
            };
            w.good = good;
            w.wasted = wasted;
            w.shed = shed;
            Event::WindowRollup(w)
        };
        // 2 healthy windows, then 3 collapsed ones (goodput 20% against
        // a 50% floor: burn (1-0.2)/(1-0.5) = 1.6), then recovery.
        for i in 0..2 {
            m.observe(0, &mk(i, 4, 0, 0));
        }
        for i in 2..5 {
            m.observe(0, &mk(i, 1, 2, 2));
        }
        for i in 5..9 {
            m.observe(0, &mk(i, 4, 0, 0));
        }
        let report = m.finish();
        let o = report
            .outcomes
            .iter()
            .find(|o| o.metric == METRIC_GOODPUT)
            .expect("goodput objective evaluated");
        assert_eq!(o.violations, 3, "{}", report.render_incident_log());
        assert_eq!(report.alerts.len(), 1);
        let a = &report.alerts[0];
        assert_eq!(a.metric, METRIC_GOODPUT);
        assert!(
            a.t_resolve > a.t_fire,
            "collapse alert must resolve once goodput recovers"
        );
    }

    #[test]
    fn open_loop_windows_never_violate_goodput() {
        let mut cfg = timeout_cfg();
        cfg.slo.goodput_ratio = 0.9;
        let mut m = FleetMonitor::new(cfg);
        // Plain rollups carry good == wasted == shed == 0 (open loop).
        for i in 0..6 {
            m.observe(0, &rollup(i, &[1000, 2000], 0, 60.0));
        }
        let report = m.finish();
        let o = report
            .outcomes
            .iter()
            .find(|o| o.metric == METRIC_GOODPUT)
            .expect("goodput objective evaluated");
        assert_eq!(o.violations, 0);
        assert_eq!(o.worst_burn, 0.0);
        assert!(report.healthy);
    }

    #[test]
    fn merge_equals_single_monitor_over_all_streams() {
        let node0: Vec<Event> = (0..6).map(|i| rollup(i, &[1000, 2000], 1, 55.0)).collect();
        let node1: Vec<Event> = (0..6)
            .map(|i| rollup(i, &[4000, 8000, 100_000], 0, 65.0))
            .collect();
        let mut whole = FleetMonitor::new(timeout_cfg());
        whole.ingest(0, &node0);
        whole.ingest(1, &node1);
        let mut a = FleetMonitor::new(timeout_cfg());
        a.ingest(0, &node0);
        let mut b = FleetMonitor::new(timeout_cfg());
        b.ingest(1, &node1);
        a.merge(b);
        assert_eq!(whole.finish().to_json(), a.finish().to_json());
    }

    proptest! {
        /// Window merge is order-independent across nodes: any
        /// interleaving of per-node streams (each stream's own order
        /// preserved) produces a byte-identical health report.
        #[test]
        fn report_independent_of_node_interleaving(
            picks in proptest::collection::vec(0usize..3, 0..64),
            timeouts in proptest::collection::vec(0u64..3, 8),
        ) {
            let streams: Vec<Vec<Event>> = (0..3u64)
                .map(|node| {
                    let mut evs = Vec::new();
                    for i in 0..8u64 {
                        let idx = (node + i) as usize % timeouts.len();
                        evs.push(fault(i * WIN + node, "dvfs-fail"));
                        evs.push(rollup(
                            i,
                            &[1000 * (node + 1), 50_000 + 1000 * i],
                            timeouts[idx],
                            50.0 + node as f64,
                        ));
                    }
                    evs
                })
                .collect();

            // Reference: node streams fed whole, in node order.
            let mut reference = FleetMonitor::new(timeout_cfg());
            for (node, evs) in streams.iter().enumerate() {
                reference.ingest(node as u64, evs);
            }

            // Candidate: interleave according to `picks`, then drain
            // remainders in reverse node order.
            let mut cursors = vec![0usize; streams.len()];
            let mut shuffled = FleetMonitor::new(timeout_cfg());
            for &p in &picks {
                if cursors[p] < streams[p].len() {
                    shuffled.observe(p as u64, &streams[p][cursors[p]]);
                    cursors[p] += 1;
                }
            }
            for node in (0..streams.len()).rev() {
                while cursors[node] < streams[node].len() {
                    shuffled.observe(node as u64, &streams[node][cursors[node]]);
                    cursors[node] += 1;
                }
            }
            prop_assert_eq!(reference.finish().to_json(), shuffled.finish().to_json());
        }
    }

    #[test]
    fn gauge_merge_uses_per_key_policy_not_last_write() {
        // Regression: folding per-node gauge snapshots by last-write
        // under-reported the fleet peak — a node with a small peak
        // folding last clobbered the true maximum.
        let node0 = vec![("queue.peak_depth", 40.0), ("load", 0.7)];
        let node1 = vec![("queue.peak_depth", 9.0), ("load", 0.2)];
        let mut fwd = BTreeMap::new();
        merge_gauges(&mut fwd, &node0);
        merge_gauges(&mut fwd, &node1);
        // The fleet peak is node0's 40 even though node1 folded last.
        assert_eq!(fwd.get("queue.peak_depth"), Some(&40.0));
        // Peak keys are order-independent.
        let mut rev = BTreeMap::new();
        merge_gauges(&mut rev, &node1);
        merge_gauges(&mut rev, &node0);
        assert_eq!(fwd.get("queue.peak_depth"), rev.get("queue.peak_depth"));
        // Plain keys stay last-write.
        assert_eq!(fwd.get("load"), Some(&0.2));
        assert_eq!(rev.get("load"), Some(&0.7));
    }

    #[test]
    fn gauge_policy_follows_key_naming_convention() {
        assert_eq!(gauge_merge_policy("queue.peak_depth"), GaugeMerge::Max);
        assert_eq!(gauge_merge_policy("freq.max_mhz"), GaugeMerge::Max);
        assert_eq!(gauge_merge_policy("freq.min_mhz"), GaugeMerge::Min);
        assert_eq!(gauge_merge_policy("energy.total_j"), GaugeMerge::Sum);
        assert_eq!(gauge_merge_policy("power.sum"), GaugeMerge::Sum);
        assert_eq!(gauge_merge_policy("load"), GaugeMerge::Last);
        // Substrings that are not whole segments do not trip the policy.
        assert_eq!(gauge_merge_policy("speaker.level"), GaugeMerge::Last);
    }

    #[test]
    fn monitor_sink_feeds_monitor_inline() {
        let monitor = Rc::new(RefCell::new(FleetMonitor::new(timeout_cfg())));
        let rec = crate::Recorder::with_sink(Box::new(MonitorSink::new(Rc::clone(&monitor), 3)));
        if let Event::WindowRollup(w) = rollup(0, &[1000], 0, 42.0) {
            rec.emit(|| Event::WindowRollup(w.clone()));
        }
        let report = monitor.borrow().finish();
        assert_eq!(report.windows, 1);
        assert_eq!(report.nodes, 1);
    }
}
