//! Deterministic request-lifecycle tracing.
//!
//! Each sampled client request becomes one [`RequestTrace`]: every
//! attempt of the retry chain (PR 8's stable `client_id`/`attempt`
//! machinery) hangs under the client id, with spans for queue
//! residency, service (carrying the core id, commanded frequency and
//! the admission threshold in effect at dispatch), sheds, abandonments
//! and retry backoff. The chain's `latency_ns` is the *client-visible*
//! latency the SLA is charged against — completion (or final give-up)
//! minus first submission — which by construction equals the latency
//! the engine's overload accounting computes from
//! `Request::client_arrival()` (pinned by proptest in `simd-server`).
//!
//! Sampling is seeded and deterministic, from two complementary
//! directions:
//!
//! * **Head sampling** — a splitmix64 hash of `(client_id, seed)`
//!   against `sample · 2⁶⁴`, decided at first submission; a sampled
//!   chain is emitted the moment it finalizes.
//! * **Tail exemplars** — the slowest `exemplars` chain finalizations
//!   of every tumbling window are *always* emitted, retroactively: the
//!   tracer keeps every open chain as a pending record and ranks the
//!   window's finalizations at the roll boundary, so the worst requests
//!   are traced even at a 0% head-sampling rate. The chosen client ids
//!   ride on the window's [`crate::WindowRollup`] (`exemplars` field),
//!   linking fleet-merged percentiles to concrete traces.
//!
//! Trace events are emitted only at boundaries the engine visits anyway
//! (finalization inside an existing phase, exemplars at the window
//! roll), carry only simulated-time data, and the tracer writes nothing
//! back into the simulation — results are bit-identical with tracing on
//! or off, and trace streams are byte-identical at any `--threads`
//! (asserted in `fleet`). An inactive plan reduces every hook to one
//! branch.
//!
//! The [`FlightRecorder`] is the monitor-side ring: it files every
//! received trace under `(window, node)`, keeps the last N windows per
//! node, and is merged across the threaded fleet driver's workers like
//! the rest of [`crate::FleetMonitor`] state. When an alert fires, the
//! CLI dumps the retained traces around the tripping window (JSONL +
//! Chrome trace via [`traces_to_chrome`]) and attaches the dump path to
//! the incident timeline.

use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

use serde::{Deserialize, Serialize};
use serde_json::{Number, Value};

use crate::event::Event;
use crate::recorder::Recorder;

/// Span name: time an admitted attempt waited in the server queue.
pub const SPAN_QUEUE: &str = "queue";
/// Span name: dispatch to completion on a core.
pub const SPAN_SERVICE: &str = "service";
/// Span name (instant): the attempt was shed at admission.
pub const SPAN_SHED: &str = "shed";
/// Span name (instant): the client's deadline expired.
pub const SPAN_ABANDON: &str = "abandon";
/// Span name: client-side backoff between a failed attempt and its
/// retry's arrival.
pub const SPAN_BACKOFF: &str = "backoff";

/// Why a trace was emitted.
pub const SAMPLED_HEAD: &str = "head";
pub const SAMPLED_EXEMPLAR: &str = "exemplar";

/// Deterministic request-tracing knobs. Inactive by default.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TracePlan {
    /// Head-sampling probability in `[0, 1]`, decided per client id by
    /// seeded hash (every attempt of a chain shares the decision).
    pub sample: f64,
    /// Guaranteed tail exemplars: the slowest K chain finalizations of
    /// every tumbling window are always emitted.
    pub exemplars: u32,
    /// Seed folded into the head-sampling hash.
    pub seed: u64,
    /// Node id stamped into emitted traces (fleet drivers set this;
    /// single-node runs stay 0).
    pub node: u64,
}

impl TracePlan {
    /// Tracing off: every hook is one branch.
    pub fn none() -> Self {
        Self {
            sample: 0.0,
            exemplars: 0,
            seed: 0,
            node: 0,
        }
    }

    /// Head sampling at `sample` plus `exemplars` tail exemplars per
    /// window.
    pub fn sampled(sample: f64, exemplars: u32, seed: u64) -> Self {
        Self {
            sample,
            exemplars,
            seed,
            node: 0,
        }
    }

    pub fn is_active(&self) -> bool {
        self.sample > 0.0 || self.exemplars > 0
    }

    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.sample) {
            return Err(format!(
                "trace sample must be in [0, 1], got {}",
                self.sample
            ));
        }
        Ok(())
    }
}

impl Default for TracePlan {
    fn default() -> Self {
        Self::none()
    }
}

/// One span of an attempt's lifecycle. Instant spans (`shed`,
/// `abandon`) have `start == end`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceSpan {
    /// `queue` | `service` | `shed` | `abandon` | `backoff`.
    pub name: String,
    /// Simulated ns.
    pub start: u64,
    pub end: u64,
    /// Core the span ran on, or -1 when not core-scoped.
    pub core: i64,
    /// Commanded frequency of that core at dispatch (0 when n/a).
    pub freq_mhz: u32,
    /// Admission threshold in effect at dispatch (1.0 when n/a).
    pub admit_frac: f64,
    /// Shed reason, abandon wait, `wasted` marker, … — stable-ish
    /// human-readable context.
    pub detail: String,
}

impl TraceSpan {
    fn plain(name: &str, start: u64, end: u64, detail: String) -> Self {
        Self {
            name: name.to_string(),
            start,
            end,
            core: -1,
            freq_mhz: 0,
            admit_frac: 1.0,
            detail,
        }
    }

    pub fn dur_ns(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// One attempt (server-side id) of a retry chain.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AttemptTrace {
    /// Server-side id of this attempt.
    pub id: u64,
    /// Attempt ordinal (0 = first submission).
    pub attempt: u32,
    /// `completed` | `shed` | `abandoned` | `open` (still in flight
    /// when the chain was flushed).
    pub outcome: String,
    pub spans: Vec<TraceSpan>,
}

/// One client request's full lifecycle across all retry attempts.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RequestTrace {
    /// Stable client-visible id the chain hangs under.
    pub client: u64,
    /// Node the chain ran on (retries never change nodes — the
    /// closed-loop client lives inside one node's session).
    pub node: u64,
    /// First submission time — what the SLA latency is charged from.
    pub first_submit: u64,
    /// Chain end: final completion, or the moment the client gave up.
    pub end: u64,
    /// Client-visible latency: `end - first_submit`.
    pub latency_ns: u64,
    pub sla_ns: u64,
    pub timed_out: bool,
    /// `completed` | `failed` (every attempt shed/abandoned and no
    /// retry budget left).
    pub outcome: String,
    /// Why the trace was emitted: `head` | `exemplar`.
    pub sampled: String,
    pub attempts: Vec<AttemptTrace>,
}

impl RequestTrace {
    /// Total simulated time spent in spans named `name`, across all
    /// attempts (the queue-vs-service breakdown's raw read).
    pub fn span_total_ns(&self, name: &str) -> u64 {
        self.attempts
            .iter()
            .flat_map(|a| &a.spans)
            .filter(|s| s.name == name)
            .map(TraceSpan::dur_ns)
            .sum()
    }

    /// Spans of `name` across all attempts, chain order.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a TraceSpan> {
        self.attempts
            .iter()
            .flat_map(|a| &a.spans)
            .filter(move |s| s.name == name)
    }
}

/// splitmix64 — the standard 64-bit finalizer; uniform enough that
/// comparing against `sample · 2⁶⁴` head-samples an unbiased,
/// seed-stable fraction of client ids.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Map hasher for server/client ids: one splitmix64 round. The hooks
/// run once per request on the engine's hot path, where the default
/// SipHash costs more than the rest of the bookkeeping.
#[derive(Default)]
struct IdHasher(u64);

impl Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = splitmix64(self.0 ^ b as u64);
        }
    }

    fn write_u64(&mut self, x: u64) {
        self.0 = splitmix64(x);
    }
}

type IdMap<V> = HashMap<u64, V, BuildHasherDefault<IdHasher>>;

/// In-flight bookkeeping for one attempt. `Copy` on purpose: the happy
/// path (offer → dispatch → complete, no shed/abandon/retry) must not
/// allocate, because with `exemplars > 0` *every* request is a tail
/// candidate and pays this bookkeeping.
#[derive(Clone, Copy, Debug)]
struct LiteOpen {
    client: u64,
    attempt: u32,
    /// The client's chain already lives in `chains` (a shed, abandon or
    /// retry promoted it) — span assembly goes through the full record.
    chained: bool,
    offered_at: u64,
    first_submit: u64,
    sla_ns: u64,
    /// Set at dispatch: `(t, core, freq_mhz, admit_frac)`.
    dispatched: Option<(u64, usize, u32, f64)>,
}

/// A finalized single-attempt completed chain, still span-free: the
/// full [`RequestTrace`] is materialized (from these timestamps alone)
/// only if the chain is actually emitted — as a head sample at
/// completion, or as a tail exemplar at the window roll.
#[derive(Clone, Copy, Debug)]
struct LiteDone {
    client: u64,
    id: u64,
    first_submit: u64,
    end: u64,
    latency_ns: u64,
    sla_ns: u64,
    offered_at: u64,
    dispatched: Option<(u64, usize, u32, f64)>,
    emitted: bool,
}

/// One chain being built (every chain is pending until it finalizes —
/// the ring of pending records the tail exemplars are cut from).
#[derive(Clone, Debug)]
struct Chain {
    trace: RequestTrace,
    /// Head-sampled (emitted at finalization).
    head: bool,
    /// Already emitted (head) — an exemplar pick must not re-emit.
    emitted: bool,
    /// End of the last failed attempt, for the next retry's backoff
    /// span.
    last_event: u64,
}

/// A finalized chain awaiting the window roll's exemplar cut. Chains
/// that saw a retry/shed/abandon carry their full trace (boxed — the
/// ring is dominated by lite entries and moves by value).
#[derive(Debug)]
enum Done {
    Lite(LiteDone),
    Full(Box<Chain>),
}

/// Exemplar ranking key: client-visible latency, ties by client id.
fn done_key(d: &Done) -> (u64, u64) {
    match d {
        Done::Lite(l) => (l.latency_ns, l.client),
        Done::Full(c) => (c.trace.latency_ns, c.trace.client),
    }
}

/// Materialize the trace of a lite (single-attempt, completed) chain.
fn lite_trace(l: &LiteDone, node: u64, sampled: &str) -> RequestTrace {
    let mut spans = Vec::new();
    if let Some((t_disp, core, freq_mhz, admit_frac)) = l.dispatched {
        spans.push(TraceSpan::plain(
            SPAN_QUEUE,
            l.offered_at,
            t_disp,
            String::new(),
        ));
        spans.push(TraceSpan {
            name: SPAN_SERVICE.to_string(),
            start: t_disp,
            end: l.end,
            core: core as i64,
            freq_mhz,
            admit_frac,
            detail: String::new(),
        });
    }
    RequestTrace {
        client: l.client,
        node,
        first_submit: l.first_submit,
        end: l.end,
        latency_ns: l.latency_ns,
        sla_ns: l.sla_ns,
        timed_out: l.latency_ns > l.sla_ns,
        outcome: "completed".into(),
        sampled: sampled.into(),
        attempts: vec![AttemptTrace {
            id: l.id,
            attempt: 0,
            outcome: "completed".into(),
            spans,
        }],
    }
}

/// Promote a lite attempt-0 record into a full chain: the record the
/// old attempt would have opened had span assembly started at offer.
fn promote(
    chains: &mut IdMap<Chain>,
    id: u64,
    lite: LiteOpen,
    head: bool,
    node: u64,
) -> &mut Chain {
    chains.entry(lite.client).or_insert_with(|| Chain {
        trace: RequestTrace {
            client: lite.client,
            node,
            first_submit: lite.first_submit,
            end: 0,
            latency_ns: 0,
            sla_ns: lite.sla_ns,
            timed_out: false,
            outcome: String::new(),
            sampled: String::new(),
            attempts: vec![AttemptTrace {
                id,
                attempt: lite.attempt,
                outcome: "open".into(),
                spans: Vec::new(),
            }],
        },
        head,
        emitted: false,
        last_event: lite.first_submit,
    })
}

/// The session-side tracer. Owned by the engine; hooks take primitives
/// so `telemetry` needs no view of the server's `Request` type. All
/// state is keyed on ids and updated in engine event order, so the
/// trace stream is a pure function of the run spec.
///
/// Two-tier bookkeeping keeps the hooks off the allocator: an attempt
/// lives as a `Copy` [`LiteOpen`] record until its chain hits a
/// complication (shed, abandon, retry), at which point the chain is
/// promoted to a full span-assembling [`Chain`]. A clean completion
/// never allocates — its trace is materialized from timestamps only if
/// it is actually emitted.
#[derive(Debug)]
pub struct RequestTracer {
    plan: TracePlan,
    enabled: bool,
    /// `sample · 2⁶⁴`, saturating.
    threshold: u64,
    /// client id -> promoted (complicated) chain.
    chains: IdMap<Chain>,
    /// server attempt id -> in-flight bookkeeping.
    open: IdMap<LiteOpen>,
    /// Chains finalized since the last window roll (ranked for tail
    /// exemplars, then dropped).
    done: Vec<Done>,
}

impl RequestTracer {
    /// `rec_enabled` gates the tracer alongside the plan: without a
    /// live recorder there is nowhere to emit, so all bookkeeping is
    /// skipped and every hook is one branch.
    pub fn new(plan: TracePlan, rec_enabled: bool) -> Self {
        plan.validate().expect("invalid trace plan");
        let threshold = if plan.sample >= 1.0 {
            u64::MAX
        } else {
            (plan.sample * u64::MAX as f64) as u64
        };
        Self {
            plan,
            enabled: plan.is_active() && rec_enabled,
            threshold,
            chains: IdMap::default(),
            open: IdMap::default(),
            done: Vec::new(),
        }
    }

    /// A tracer that records nothing.
    pub fn disabled() -> Self {
        Self::new(TracePlan::none(), false)
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    pub fn plan(&self) -> &TracePlan {
        &self.plan
    }

    fn head_sampled(&self, client: u64) -> bool {
        self.plan.sample > 0.0 && splitmix64(client ^ self.plan.seed) <= self.threshold
    }

    /// An attempt was offered to the server (workload arrival, burst
    /// clone or retry), before the admission decision. Opens the chain
    /// on the first attempt; chains a retry (with its backoff span)
    /// under the existing client id otherwise.
    pub fn on_offer(
        &mut self,
        now: u64,
        id: u64,
        client: u64,
        attempt: u32,
        first_arrival: u64,
        sla_ns: u64,
    ) {
        if !self.enabled {
            return;
        }
        if attempt == 0 {
            // First submission: lite record only. The chain is promoted
            // the moment a shed/abandon/retry complicates it.
            self.open.insert(
                id,
                LiteOpen {
                    client,
                    attempt,
                    chained: false,
                    offered_at: now,
                    first_submit: first_arrival,
                    sla_ns,
                    dispatched: None,
                },
            );
            return;
        }
        // A retry extends the chain its failed predecessor promoted
        // (defensively created here if the engine ever offers a bare
        // retry), with a backoff span covering the client-side gap.
        let node = self.plan.node;
        let head = self.head_sampled(client);
        let chain = self.chains.entry(client).or_insert_with(|| Chain {
            trace: RequestTrace {
                client,
                node,
                first_submit: first_arrival,
                end: 0,
                latency_ns: 0,
                sla_ns,
                timed_out: false,
                outcome: String::new(),
                sampled: String::new(),
                attempts: Vec::new(),
            },
            head,
            emitted: false,
            last_event: first_arrival,
        });
        let mut spans = Vec::new();
        if chain.last_event < now {
            spans.push(TraceSpan::plain(
                SPAN_BACKOFF,
                chain.last_event,
                now,
                String::new(),
            ));
        }
        chain.trace.attempts.push(AttemptTrace {
            id,
            attempt,
            outcome: "open".into(),
            spans,
        });
        self.open.insert(
            id,
            LiteOpen {
                client,
                attempt,
                chained: true,
                offered_at: now,
                first_submit: first_arrival,
                sla_ns,
                dispatched: None,
            },
        );
    }

    /// The attempt was shed at admission (`queue-full`, `admission`) or
    /// evicted from the queue (`evicted`). The retry decision follows
    /// separately ([`Self::on_give_up`] closes the chain when none
    /// comes).
    pub fn on_shed(&mut self, now: u64, id: u64, reason: &str) {
        if !self.enabled {
            return;
        }
        let Some(lite) = self.open.remove(&id) else {
            return;
        };
        let chain = if lite.chained {
            match self.chains.get_mut(&lite.client) {
                Some(c) => c,
                None => return,
            }
        } else {
            let head = self.head_sampled(lite.client);
            let node = self.plan.node;
            promote(&mut self.chains, id, lite, head, node)
        };
        let Some(at) = chain.trace.attempts.iter_mut().rev().find(|a| a.id == id) else {
            return;
        };
        // An evicted attempt sat in the queue until now; a fresh shed
        // never entered it.
        if reason == "evicted" {
            at.spans.push(TraceSpan::plain(
                SPAN_QUEUE,
                lite.offered_at,
                now,
                "evicted".into(),
            ));
        }
        at.spans
            .push(TraceSpan::plain(SPAN_SHED, now, now, reason.to_string()));
        if at.outcome == "open" {
            at.outcome = "shed".into();
        }
        chain.last_event = now;
    }

    /// The attempt left the queue for a core. Captures the controller
    /// context in effect: commanded core frequency and the admission
    /// threshold.
    pub fn on_dispatch(&mut self, now: u64, id: u64, core: usize, freq_mhz: u32, admit_frac: f64) {
        if !self.enabled {
            return;
        }
        if let Some(open) = self.open.get_mut(&id) {
            open.dispatched = Some((now, core, freq_mhz, admit_frac));
        }
    }

    /// The client's per-attempt deadline expired. The attempt may still
    /// be queued or running — its queue/service spans close later, as
    /// wasted work.
    pub fn on_abandon(&mut self, now: u64, id: u64, waited_ns: u64) {
        if !self.enabled {
            return;
        }
        // The attempt stays open (its queue/service spans close later,
        // as wasted work) but its chain is promoted now.
        let Some(open_ref) = self.open.get_mut(&id) else {
            return;
        };
        let lite = *open_ref;
        open_ref.chained = true;
        let chain = if lite.chained {
            match self.chains.get_mut(&lite.client) {
                Some(c) => c,
                None => return,
            }
        } else {
            let head = self.head_sampled(lite.client);
            let node = self.plan.node;
            promote(&mut self.chains, id, lite, head, node)
        };
        let Some(at) = chain.trace.attempts.iter_mut().rev().find(|a| a.id == id) else {
            return;
        };
        at.spans.push(TraceSpan::plain(
            SPAN_ABANDON,
            now,
            now,
            format!("waited {waited_ns} ns"),
        ));
        if at.outcome == "open" {
            at.outcome = "abandoned".into();
        }
        chain.last_event = now;
    }

    /// A server completion for `id`. `wasted == false` (the client was
    /// still waiting) finalizes the chain as `completed`; a wasted
    /// completion only closes the attempt's spans — the chain already
    /// moved on (retry in flight) or already failed.
    pub fn on_complete(&mut self, now: u64, id: u64, wasted: bool, rec: &Recorder) {
        if !self.enabled {
            return;
        }
        let Some(lite) = self.open.remove(&id) else {
            return;
        };
        if !lite.chained {
            // Happy path: a single clean attempt. Finalize without
            // touching the allocator — the trace is materialized only
            // if this chain is head-sampled (or picked as an exemplar
            // at the roll). A wasted completion implies the client
            // moved on, which always promotes first; stay defensive.
            if wasted {
                return;
            }
            let mut done = LiteDone {
                client: lite.client,
                id,
                first_submit: lite.first_submit,
                end: now,
                latency_ns: now.saturating_sub(lite.first_submit),
                sla_ns: lite.sla_ns,
                offered_at: lite.offered_at,
                dispatched: lite.dispatched,
                emitted: false,
            };
            if self.head_sampled(lite.client) {
                done.emitted = true;
                let node = self.plan.node;
                rec.emit(|| Event::RequestTrace(lite_trace(&done, node, SAMPLED_HEAD)));
            }
            self.done.push(Done::Lite(done));
            return;
        }
        let Some(chain) = self.chains.get_mut(&lite.client) else {
            return;
        };
        if let Some(at) = chain.trace.attempts.iter_mut().rev().find(|a| a.id == id) {
            if let Some((t_disp, core, freq_mhz, admit_frac)) = lite.dispatched {
                at.spans.push(TraceSpan::plain(
                    SPAN_QUEUE,
                    lite.offered_at,
                    t_disp,
                    String::new(),
                ));
                at.spans.push(TraceSpan {
                    name: SPAN_SERVICE.to_string(),
                    start: t_disp,
                    end: now,
                    core: core as i64,
                    freq_mhz,
                    admit_frac,
                    detail: if wasted {
                        "wasted".into()
                    } else {
                        String::new()
                    },
                });
            }
            if !wasted {
                at.outcome = "completed".into();
            }
        }
        if !wasted {
            self.finalize(lite.client, now, "completed", rec);
        }
    }

    /// The client's retry budget ran out (or the retry draw failed)
    /// after a shed/abandonment: the chain is over, as a failure, at
    /// `now`.
    pub fn on_give_up(&mut self, now: u64, client: u64, rec: &Recorder) {
        if !self.enabled {
            return;
        }
        if self.chains.contains_key(&client) {
            self.finalize(client, now, "failed", rec);
        }
    }

    /// Close the chain, emit it if head-sampled, move it to the pending
    /// (exemplar-candidate) ring.
    fn finalize(&mut self, client: u64, now: u64, outcome: &str, rec: &Recorder) {
        let Some(mut chain) = self.chains.remove(&client) else {
            return;
        };
        chain.trace.end = now;
        chain.trace.latency_ns = now.saturating_sub(chain.trace.first_submit);
        chain.trace.timed_out = chain.trace.latency_ns > chain.trace.sla_ns;
        chain.trace.outcome = outcome.to_string();
        // Later events for this chain's attempts (a wasted completion
        // landing after the client walked away for good) must not
        // mutate an already-emitted trace: drop the id mappings.
        for at in &chain.trace.attempts {
            self.open.remove(&at.id);
        }
        if chain.head {
            chain.trace.sampled = SAMPLED_HEAD.to_string();
            chain.emitted = true;
            let tr = chain.trace.clone();
            rec.emit(|| Event::RequestTrace(tr));
        }
        self.done.push(Done::Full(Box::new(chain)));
    }

    /// Window roll: rank the window's finalized chains by client-visible
    /// latency (slowest first, ties by client id), emit the top
    /// `exemplars` not already emitted as head samples, and return the
    /// chosen client ids — the rollup's exemplar links. Clears the ring.
    pub fn roll(&mut self, rec: &Recorder) -> Vec<u64> {
        if !self.enabled {
            return Vec::new();
        }
        if self.done.is_empty() {
            return Vec::new();
        }
        let k = self.plan.exemplars as usize;
        let mut ids = Vec::new();
        if k > 0 {
            // Slowest first, ties by client id. The key is unique per
            // chain, so select-then-sort of the top k is deterministic
            // without ordering the whole window.
            let cmp = |a: &Done, b: &Done| {
                let (la, ca) = done_key(a);
                let (lb, cb) = done_key(b);
                (lb, ca).cmp(&(la, cb))
            };
            if self.done.len() > k {
                self.done.select_nth_unstable_by(k - 1, cmp);
            }
            let top = k.min(self.done.len());
            self.done[..top].sort_by(cmp);
            let node = self.plan.node;
            for done in self.done.iter_mut().take(top) {
                match done {
                    Done::Lite(l) => {
                        ids.push(l.client);
                        if !l.emitted {
                            l.emitted = true;
                            let tr = lite_trace(l, node, SAMPLED_EXEMPLAR);
                            rec.emit(|| Event::RequestTrace(tr));
                        }
                    }
                    Done::Full(chain) => {
                        ids.push(chain.trace.client);
                        if !chain.emitted {
                            chain.emitted = true;
                            chain.trace.sampled = SAMPLED_EXEMPLAR.to_string();
                            let tr = chain.trace.clone();
                            rec.emit(|| Event::RequestTrace(tr));
                        }
                    }
                }
            }
        }
        self.done.clear();
        ids
    }
}

/// The monitor-side flight recorder: traces filed under
/// `(window, node)`, last `windows` window indices retained per node.
/// Merging (threaded fleet drivers hand each worker its own monitor
/// over disjoint node sets) is key-disjoint, so the merged ring is
/// identical to one recorder having seen every stream.
#[derive(Clone, Debug, Default)]
pub struct FlightRecorder {
    /// (window index, node) -> traces in stream order.
    traces: BTreeMap<(u64, u64), Vec<RequestTrace>>,
    /// node -> open window index (advances on the node's rollup).
    cur: BTreeMap<u64, u64>,
}

impl FlightRecorder {
    pub fn new() -> Self {
        Self::default()
    }

    /// File one received trace under the node's open window.
    pub fn push(&mut self, node: u64, trace: RequestTrace) {
        let window = self.cur.get(&node).copied().unwrap_or(0);
        self.traces.entry((window, node)).or_default().push(trace);
    }

    /// The node's rollup for `index` arrived: advance its open window
    /// and prune windows older than the last `keep_windows`.
    pub fn seal(&mut self, node: u64, index: u64, keep_windows: u64) {
        self.cur.insert(node, index + 1);
        let lo = (index + 1).saturating_sub(keep_windows);
        self.traces.retain(|&(w, n), _| n != node || w >= lo);
    }

    /// Fold another recorder's (node-disjoint) state in.
    pub fn merge(&mut self, other: FlightRecorder) {
        for (key, traces) in other.traces {
            self.traces.entry(key).or_default().extend(traces);
        }
        self.cur.extend(other.cur);
    }

    pub fn is_empty(&self) -> bool {
        self.traces.values().all(Vec::is_empty)
    }

    /// Retained traces with window index in `[lo, hi]`, ordered by
    /// (window, node, stream order).
    pub fn traces_in(&self, lo: u64, hi: u64) -> Vec<(u64, u64, &RequestTrace)> {
        self.traces
            .range((lo, 0)..=(hi, u64::MAX))
            .flat_map(|(&(w, n), traces)| traces.iter().map(move |t| (w, n, t)))
            .collect()
    }

    /// Every retained trace, ordered by (window, node, stream order).
    pub fn all(&self) -> Vec<(u64, u64, &RequestTrace)> {
        self.traces_in(0, u64::MAX)
    }
}

/// Render traces as Chrome trace-event JSON (complete events, `ph:
/// "X"`, microsecond times; same shape as the span profiler's export,
/// loadable at ui.perfetto.dev). One process row per node, one thread
/// row per client chain; span names are suffixed with the attempt
/// ordinal so retries read as a ladder.
pub fn traces_to_chrome(traces: &[(u64, u64, &RequestTrace)]) -> String {
    let us = |ns: u64| Value::Number(Number::F64(ns as f64 / 1000.0));
    let mut events: Vec<Value> = Vec::new();
    for &(_, node, tr) in traces {
        for at in &tr.attempts {
            for sp in &at.spans {
                // Chrome renders zero-duration complete events
                // invisibly; stretch instants to 1 µs.
                let dur_ns = if sp.dur_ns() == 0 { 1_000 } else { sp.dur_ns() };
                events.push(Value::Object(vec![
                    (
                        "name".to_string(),
                        Value::String(format!("{}#{}", sp.name, at.attempt)),
                    ),
                    (
                        "cat".to_string(),
                        Value::String(format!("rtrace-{}", tr.outcome)),
                    ),
                    ("ph".to_string(), Value::String("X".to_string())),
                    ("ts".to_string(), us(sp.start)),
                    ("dur".to_string(), us(dur_ns)),
                    ("pid".to_string(), Value::Number(Number::U64(node))),
                    ("tid".to_string(), Value::Number(Number::U64(tr.client))),
                ]));
            }
        }
    }
    let root = Value::Object(vec![
        ("traceEvents".to_string(), Value::Array(events)),
        (
            "displayTimeUnit".to_string(),
            Value::String("ms".to_string()),
        ),
    ]);
    serde_json::to_string_pretty(&root).expect("chrome trace serialization")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_traces(rec: &Recorder) -> Vec<RequestTrace> {
        rec.drain_events()
            .into_iter()
            .filter_map(|e| match e {
                Event::RequestTrace(t) => Some(t),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn inactive_plan_traces_nothing() {
        let rec = Recorder::ring(64);
        let mut tr = RequestTracer::new(TracePlan::none(), rec.enabled());
        assert!(!tr.enabled());
        tr.on_offer(0, 1, 1, 0, 0, 1000);
        tr.on_dispatch(10, 1, 0, 2100, 1.0);
        tr.on_complete(50, 1, false, &rec);
        assert!(tr.roll(&rec).is_empty());
        assert!(rec.drain_events().is_empty());
    }

    #[test]
    fn completed_chain_has_queue_and_service_spans() {
        let rec = Recorder::ring(64);
        let mut tr = RequestTracer::new(TracePlan::sampled(1.0, 0, 7), rec.enabled());
        tr.on_offer(100, 1, 1, 0, 100, 10_000);
        tr.on_dispatch(400, 1, 3, 1800, 0.5);
        tr.on_complete(900, 1, false, &rec);
        let traces = drain_traces(&rec);
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.client, 1);
        assert_eq!(t.outcome, "completed");
        assert_eq!(t.sampled, SAMPLED_HEAD);
        assert_eq!(t.latency_ns, 800);
        assert!(!t.timed_out);
        assert_eq!(t.span_total_ns(SPAN_QUEUE), 300);
        assert_eq!(t.span_total_ns(SPAN_SERVICE), 500);
        let svc = t.spans_named(SPAN_SERVICE).next().unwrap();
        assert_eq!(svc.core, 3);
        assert_eq!(svc.freq_mhz, 1800);
        assert_eq!(svc.admit_frac, 0.5);
    }

    #[test]
    fn retry_chain_links_attempts_with_backoff() {
        let rec = Recorder::ring(64);
        let mut tr = RequestTracer::new(TracePlan::sampled(1.0, 0, 7), rec.enabled());
        // Attempt 0 shed at admission, retry after backoff, completes.
        tr.on_offer(100, 1, 1, 0, 100, 100_000);
        tr.on_shed(100, 1, "queue-full");
        tr.on_offer(600, 77, 1, 1, 100, 100_000);
        tr.on_dispatch(700, 77, 0, 2100, 1.0);
        tr.on_complete(1000, 77, false, &rec);
        let traces = drain_traces(&rec);
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.attempts.len(), 2);
        assert_eq!(t.attempts[0].outcome, "shed");
        assert_eq!(t.attempts[1].outcome, "completed");
        // Client-visible latency spans the whole chain.
        assert_eq!(t.first_submit, 100);
        assert_eq!(t.latency_ns, 900);
        assert_eq!(t.span_total_ns(SPAN_BACKOFF), 500);
        assert_eq!(t.span_total_ns(SPAN_SHED), 0); // instant
        assert_eq!(t.spans_named(SPAN_SHED).count(), 1);
    }

    #[test]
    fn give_up_finalizes_as_failed() {
        let rec = Recorder::ring(64);
        let mut tr = RequestTracer::new(TracePlan::sampled(1.0, 0, 7), rec.enabled());
        tr.on_offer(100, 1, 1, 0, 100, 200);
        tr.on_abandon(600, 1, 500);
        tr.on_give_up(600, 1, &rec);
        let traces = drain_traces(&rec);
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].outcome, "failed");
        assert_eq!(traces[0].latency_ns, 500);
        assert!(traces[0].timed_out);
        assert_eq!(traces[0].attempts[0].outcome, "abandoned");
        // A wasted completion after the chain failed must not resurrect
        // or mutate it.
        tr.on_complete(2000, 1, true, &rec);
        assert!(drain_traces(&rec).is_empty());
    }

    #[test]
    fn tail_exemplars_pick_slowest_without_head_sampling() {
        let rec = Recorder::ring(64);
        let mut tr = RequestTracer::new(TracePlan::sampled(0.0, 2, 7), rec.enabled());
        for (client, dur) in [(1u64, 100u64), (2, 900), (3, 500)] {
            tr.on_offer(1000, client, client, 0, 1000, 10_000);
            tr.on_dispatch(1000, client, 0, 2100, 1.0);
            tr.on_complete(1000 + dur, client, false, &rec);
        }
        // Nothing emitted pre-roll at 0% head sampling.
        assert!(drain_traces(&rec).is_empty());
        let ids = tr.roll(&rec);
        assert_eq!(ids, vec![2, 3], "slowest-K, latency-descending");
        let traces = drain_traces(&rec);
        assert_eq!(traces.len(), 2);
        assert!(traces.iter().all(|t| t.sampled == SAMPLED_EXEMPLAR));
        // Ring cleared: the next roll has no candidates.
        assert!(tr.roll(&rec).is_empty());
    }

    #[test]
    fn head_sampled_exemplar_is_not_emitted_twice() {
        let rec = Recorder::ring(64);
        let mut tr = RequestTracer::new(TracePlan::sampled(1.0, 4, 7), rec.enabled());
        tr.on_offer(0, 1, 1, 0, 0, 10_000);
        tr.on_dispatch(0, 1, 0, 2100, 1.0);
        tr.on_complete(700, 1, false, &rec);
        let ids = tr.roll(&rec);
        assert_eq!(ids, vec![1], "head-sampled chains still rank as exemplars");
        let traces = drain_traces(&rec);
        assert_eq!(traces.len(), 1, "one emission, not two");
        assert_eq!(traces[0].sampled, SAMPLED_HEAD);
    }

    #[test]
    fn head_sampling_is_a_pure_function_of_client_and_seed() {
        let a = RequestTracer::new(TracePlan::sampled(0.5, 0, 42), true);
        let b = RequestTracer::new(TracePlan::sampled(0.5, 0, 42), true);
        let hits: Vec<bool> = (0..1000).map(|c| a.head_sampled(c)).collect();
        assert_eq!(
            hits,
            (0..1000).map(|c| b.head_sampled(c)).collect::<Vec<_>>()
        );
        let n = hits.iter().filter(|&&h| h).count();
        assert!((300..700).contains(&n), "~half sampled, got {n}");
        // A different seed selects a different subset.
        let c = RequestTracer::new(TracePlan::sampled(0.5, 0, 43), true);
        assert_ne!(
            hits,
            (0..1000).map(|x| c.head_sampled(x)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn flight_recorder_keeps_last_n_windows_per_node() {
        let mut fr = FlightRecorder::new();
        let mk = |client: u64| RequestTrace {
            client,
            node: 0,
            first_submit: 0,
            end: 10,
            latency_ns: 10,
            sla_ns: 100,
            timed_out: false,
            outcome: "completed".into(),
            sampled: SAMPLED_EXEMPLAR.into(),
            attempts: vec![],
        };
        for w in 0..5u64 {
            fr.push(0, mk(w));
            fr.seal(0, w, 2);
        }
        let kept: Vec<u64> = fr.all().iter().map(|&(w, _, _)| w).collect();
        assert_eq!(kept, vec![3, 4], "only the last 2 windows retained");
        // Merge with a disjoint node (its windows 0..=3 rolled empty,
        // so the push files under window 4).
        let mut other = FlightRecorder::new();
        other.seal(1, 3, 2);
        other.push(1, mk(99));
        fr.merge(other);
        assert_eq!(fr.traces_in(4, 4).len(), 2);
    }

    #[test]
    fn chrome_export_round_trips_span_shape() {
        let rec = Recorder::ring(64);
        let mut tr = RequestTracer::new(TracePlan::sampled(1.0, 0, 7), rec.enabled());
        tr.on_offer(100, 1, 5, 0, 100, 10_000);
        tr.on_dispatch(400, 1, 2, 1800, 1.0);
        tr.on_complete(900, 1, false, &rec);
        let traces = drain_traces(&rec);
        let refs: Vec<(u64, u64, &RequestTrace)> = traces.iter().map(|t| (0u64, 3u64, t)).collect();
        let json = traces_to_chrome(&refs);
        let events = crate::profile::from_chrome_trace(&json).unwrap();
        assert_eq!(events.len(), 2);
        assert!(events
            .iter()
            .any(|e| e.name == "queue#0" && e.dur_ns == 300));
        assert!(events
            .iter()
            .any(|e| e.name == "service#0" && e.dur_ns == 500));
        assert!(events.iter().all(|e| e.tid == 5), "tid is the client id");
    }
}
