//! # deeppower-telemetry
//!
//! The unified telemetry layer for the DeepPower reproduction. Every
//! other crate in the workspace observes through this one:
//!
//! * [`Event`] — a typed event stream covering the whole stack:
//!   governor decisions ([`DrlStep`]: state-derived step telemetry,
//!   `BaseFreq`/`ScalingCoef`, reward decomposition), thread-controller
//!   frequency transitions and per-core residency, DDPG training
//!   internals (losses, gradient norms, replay occupancy), harness job
//!   lifecycle, and periodic latency snapshots.
//! * [`Recorder`] — the cheap, cloneable handle call sites hold. A
//!   disabled recorder is a `None` and every emission guards on one
//!   branch, so instrumented hot paths cost nothing when telemetry is
//!   off (asserted by the `telemetry_overhead` bench). Enabled
//!   recorders share a [`TelemetrySink`] (by default a preallocated
//!   [`RingSink`]) plus counters, gauges and log-bucketed
//!   [`Histogram`]s.
//! * [`export`] — JSONL (the artifact format written by
//!   `deeppower grid --telemetry` and `deeppower trace`) and CSV
//!   exporters, plus series reconstruction from transition events.
//! * [`Logger`] — the leveled logger behind the CLI's `-v`/`--quiet`
//!   flags; log volume is counted through the recorder.
//! * [`LatencyRecorder`] — an incremental, histogram-backed latency
//!   aggregator: O(1) insert and O(buckets) percentile reads, replacing
//!   sort-a-fresh-clone percentile computation on periodic paths.
//!
//! * [`Profiler`] — hierarchical wall-clock span profiling for the hot
//!   paths (engine phases, DDPG update stages, fleet lockstep epochs,
//!   harness jobs), with per-phase aggregate tables and Chrome
//!   trace-event export. Same disabled-is-one-branch contract as the
//!   recorder, but `Send + Sync` so one handle spans worker threads.
//!
//! Determinism contract: events carry only simulation-derived data
//! (simulated timestamps, counters, model outputs) — never wall-clock
//! readings — so a job's event stream is a pure function of its spec
//! and the harness can promise byte-identical artifacts at any
//! `--threads` value. Wall-clock timings belong to the [`Logger`] and
//! the [`Profiler`], whose spans live in a separate artifact channel
//! (phase tables, Chrome traces) that never feeds back into results.

pub mod event;
pub mod export;
pub mod fs;
pub mod histogram;
pub mod logger;
pub mod monitor;
pub mod profile;
pub mod recorder;
pub mod slo;
pub mod trace;

pub use event::{
    Alert, AlertResolved, CoreResidency, DrlStep, EpisodeEnd, Event, FaultInjected, FreqTransition,
    IncidentEntry, JobEnd, JobStart, LatencySnapshot, RequestComplete, RequestDispatch,
    SafetyAction, SloViolation, TrainUpdate, WindowRollup,
};
pub use export::{
    episode_events, freq_series, from_jsonl, steps_to_csv, to_jsonl, STEP_CSV_HEADER,
};
pub use fs::atomic_write;
pub use histogram::{Histogram, HistogramSnapshot, LatencyRecorder};
pub use logger::{LogLevel, Logger};
pub use monitor::{
    gauge_merge_policy, merge_gauges, AlertRecord, AnomalyRecord, FleetMonitor, GaugeMerge,
    HealthReport, MonitorConfig, MonitorSink, SloOutcome, WindowSummary,
};
pub use profile::{
    from_chrome_trace, render_phase_table, ChromeEvent, PhaseRow, Profiler, Span, SpanRecord,
    DEFAULT_MAX_SPANS,
};
pub use recorder::{NoopSink, Recorder, RingSink, TelemetrySink};
pub use slo::{
    default_rules, BurnRateRule, EwmaConfig, EwmaDetector, SloSpec, LATENCY_BUDGET, METRIC_GOODPUT,
    METRIC_P99, METRIC_POWER, METRIC_TIMEOUT,
};
pub use trace::{
    traces_to_chrome, AttemptTrace, FlightRecorder, RequestTrace, RequestTracer, TracePlan,
    TraceSpan, SAMPLED_EXEMPLAR, SAMPLED_HEAD, SPAN_ABANDON, SPAN_BACKOFF, SPAN_QUEUE,
    SPAN_SERVICE, SPAN_SHED,
};
