//! Log-bucketed histograms and the incremental latency recorder.
//!
//! The bucket scheme is HdrHistogram-style: each power-of-two range is
//! split into `2^SUB_BITS` linear sub-buckets, so the relative
//! quantization error of any recorded value is bounded by
//! `2^-SUB_BITS` (6.25 % at the default 4 sub-bucket bits) while the
//! whole `u64` range fits in under a thousand buckets. Inserts are
//! O(1) (a couple of shifts), percentile reads are O(buckets) — the
//! property that lets the server keep run-so-far latency percentiles
//! without re-sorting a clone of every record on each read.

/// Linear sub-bucket bits per power-of-two range.
const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: the exact region `[0, 2^SUB_BITS)` plus one
/// group of `SUB` sub-buckets per remaining power of two.
const N_BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) << SUB_BITS;

/// Bucket index of `v` (monotone non-decreasing in `v`).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        let sub = ((v >> shift) & (SUB - 1)) as usize;
        ((((msb - SUB_BITS) + 1) as usize) << SUB_BITS) + sub
    }
}

/// Largest value mapping into bucket `i` (monotone increasing in `i`,
/// and `bucket_upper_bound(bucket_index(v)) >= v` for all `v`).
pub fn bucket_upper_bound(i: usize) -> u64 {
    let group = i >> SUB_BITS;
    let sub = (i & (SUB as usize - 1)) as u64;
    if group == 0 {
        sub
    } else {
        let shift = (group - 1) as u32;
        // Bucket covers [ (SUB + sub) << shift, ((SUB + sub + 1) << shift) - 1 ].
        // The very last bucket's bound is 2^64, so compute wide and
        // saturate to u64::MAX.
        let ub = ((SUB as u128 + sub as u128 + 1) << shift) - 1;
        ub.min(u64::MAX as u128) as u64
    }
}

/// A fixed-size log-bucketed histogram over `u64` values.
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self {
            counts: vec![0; N_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Record `n` occurrences of `v` in O(1) — the merge primitive for
    /// rebuilding a histogram from another histogram's
    /// [`Histogram::nonzero_buckets`] pairs (`v` is then a bucket upper
    /// bound, which maps back into the same bucket).
    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(v)] += n;
        self.count += n;
        self.sum += v as u128 * n as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Clear every bucket and counter, keeping the allocation — lets
    /// periodic windowing reuse one histogram instead of reallocating
    /// `N_BUCKETS` counters per window.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean of the recorded values (the sum is kept exactly).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact maximum of the recorded values (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact minimum of the recorded values (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Nearest-rank percentile, reported as the bucket upper bound
    /// (within one sub-bucket of the exact value, i.e. a relative error
    /// bounded by `2^-SUB_BITS`). Returns 0 when empty. `q` is clamped
    /// to `[0, 1]`; `q = 0` reports the exact minimum.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report beyond the true extremes.
                return bucket_upper_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Point-in-time summary, or `None` when nothing has been recorded —
    /// the non-panicking read path for empty distributions. (The scalar
    /// accessors above return 0 for an empty histogram, which callers
    /// assembling reports cannot distinguish from a real recorded zero;
    /// the snapshot makes emptiness explicit instead of panicking or
    /// fabricating values.)
    pub fn snapshot(&self) -> Option<HistogramSnapshot> {
        if self.count == 0 {
            return None;
        }
        Some(HistogramSnapshot {
            count: self.count,
            mean: self.mean(),
            min: self.min,
            max: self.max,
            p50: self.percentile(0.50),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
        })
    }

    /// Recorded values whose bucket upper bound is `<= v` — the
    /// "within target" count a latency burn rate is computed from.
    /// O(buckets), conservative by at most one bucket (values sharing
    /// `v`'s bucket but above it are not counted unless the whole
    /// bucket fits).
    pub fn count_at_or_below(&self, v: u64) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .take(bucket_index(v) + 1)
            .filter(|(i, _)| bucket_upper_bound(*i) <= v)
            .map(|(_, &c)| c)
            .sum()
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper_bound(i), c))
            .collect()
    }
}

/// Summary of a non-empty [`Histogram`] (see [`Histogram::snapshot`]).
/// `min`/`max`/`mean` are exact; the percentiles carry the bucket
/// scheme's `2^-SUB_BITS` relative quantization error.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub mean: f64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

/// Incremental latency aggregator: O(1) insert, O(buckets) reads.
///
/// This is the replacement for calling `LatencyStats::from_records`
/// (which clones and re-sorts every record) on periodic paths: the
/// server's `MetricsCollector` feeds every completion into one of
/// these, and run-so-far snapshots read percentiles straight from the
/// histogram.
#[derive(Clone, Debug, Default)]
pub struct LatencyRecorder {
    hist: Histogram,
    timeouts: u64,
}

impl LatencyRecorder {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn record(&mut self, latency_ns: u64, timed_out: bool) {
        self.hist.record(latency_ns);
        if timed_out {
            self.timeouts += 1;
        }
    }

    pub fn count(&self) -> u64 {
        self.hist.count()
    }

    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Exact mean latency in ns.
    pub fn mean_ns(&self) -> f64 {
        self.hist.mean()
    }

    /// Exact max latency in ns.
    pub fn max_ns(&self) -> u64 {
        self.hist.max()
    }

    /// Histogram-quantized percentile (see [`Histogram::percentile`]).
    pub fn percentile_ns(&self, q: f64) -> u64 {
        self.hist.percentile(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(1.0), SUB - 1);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB - 1);
    }

    #[test]
    fn percentiles_track_known_distribution() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 1000); // 1..10 ms in us steps
        }
        for (q, exact) in [(0.5, 5_000_000u64), (0.95, 9_500_000), (0.99, 9_900_000)] {
            let got = h.percentile(q);
            let err = (got as f64 - exact as f64).abs() / exact as f64;
            assert!(err < 0.07, "p{q}: got {got}, exact {exact}, err {err}");
        }
    }

    #[test]
    fn latency_recorder_counts_timeouts() {
        let mut r = LatencyRecorder::new();
        r.record(1000, false);
        r.record(9000, true);
        assert_eq!(r.count(), 2);
        assert_eq!(r.timeouts(), 1);
        assert_eq!(r.max_ns(), 9000);
        assert!((r.mean_ns() - 5000.0).abs() < 1e-9);
    }

    proptest! {
        /// Satellite property: bucket mapping is monotone in the value.
        #[test]
        fn bucket_index_monotone(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(bucket_index(lo) <= bucket_index(hi));
        }

        /// Bucket upper bounds are strictly increasing across indices.
        #[test]
        fn bucket_bounds_monotone(i in 0usize..N_BUCKETS - 1) {
            prop_assert!(bucket_upper_bound(i) < bucket_upper_bound(i + 1));
        }

        /// Every value is covered by its bucket's bound, within the
        /// scheme's relative-error envelope.
        #[test]
        fn bucket_bound_covers_value(v in 0u64..u64::MAX / 2) {
            let ub = bucket_upper_bound(bucket_index(v));
            prop_assert!(ub >= v, "bound {ub} below value {v}");
            // Relative quantization error bounded by 2^-SUB_BITS.
            let slack = (v >> SUB_BITS) + 1;
            prop_assert!(ub - v <= slack, "bound {ub} too far above {v}");
        }

        /// Percentiles never leave the recorded range and are monotone
        /// in q. Regression: this property used to read the bounds with
        /// `values.iter().min()/max().unwrap()` over a generator that
        /// excluded the empty vector — the empty and single-value
        /// distributions were never exercised. The bounds now come from
        /// the non-panicking [`Histogram::snapshot`], and the generator
        /// includes both edge cases (`0..200`).
        #[test]
        fn percentile_bounded_and_monotone(
            values in proptest::collection::vec(0u64..1_000_000_000, 0..200),
            q1 in 0.0f64..1.0,
            q2 in 0.0f64..1.0,
        ) {
            let mut h = Histogram::new();
            for &v in &values { h.record(v); }
            match h.snapshot() {
                None => {
                    // Empty histogram: no snapshot, and every scalar read
                    // is a well-defined zero rather than a panic.
                    prop_assert!(values.is_empty());
                    prop_assert_eq!(h.percentile(q1), 0);
                    prop_assert_eq!(h.min(), 0);
                    prop_assert_eq!(h.max(), 0);
                }
                Some(snap) => {
                    let (lo, hi) = (snap.min, snap.max);
                    prop_assert_eq!(lo, *values.iter().min().unwrap());
                    prop_assert_eq!(hi, *values.iter().max().unwrap());
                    for q in [q1, q2, 0.0, 1.0] {
                        let p = h.percentile(q);
                        prop_assert!(p >= lo && p <= hi, "p{} = {} outside [{}, {}]", q, p, lo, hi);
                    }
                    let (ql, qh) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
                    prop_assert!(h.percentile(ql) <= h.percentile(qh));
                }
            }
        }

        /// A single-value distribution snapshots to that value exactly —
        /// min, max and every percentile (the percentile clamp to the
        /// true extremes cancels the bucket quantization).
        #[test]
        fn single_value_snapshot_is_exact(v in 0u64..u64::MAX / 2, q in 0.0f64..1.0) {
            let mut h = Histogram::new();
            h.record(v);
            let snap = h.snapshot().expect("one value recorded");
            prop_assert_eq!(snap.count, 1);
            prop_assert_eq!(snap.min, v);
            prop_assert_eq!(snap.max, v);
            prop_assert_eq!(snap.p50, v);
            prop_assert_eq!(snap.p99, v);
            prop_assert_eq!(h.percentile(q), v);
            prop_assert!((snap.mean - v as f64).abs() < 1.0);
        }
    }

    #[test]
    fn record_n_matches_repeated_record_and_reset_clears() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (v, n) in [(7u64, 3u64), (120_000, 5), (9_999_999, 1)] {
            for _ in 0..n {
                a.record(v);
            }
            b.record_n(v, n);
        }
        b.record_n(42, 0); // no-op
        assert_eq!(a.count(), b.count());
        assert_eq!(a.min(), b.min());
        assert_eq!(a.max(), b.max());
        assert_eq!(a.mean(), b.mean());
        assert_eq!(a.nonzero_buckets(), b.nonzero_buckets());
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(a.percentile(q), b.percentile(q));
        }
        b.reset();
        assert!(b.is_empty());
        assert_eq!(b.nonzero_buckets(), vec![]);
        assert_eq!(b.percentile(0.99), 0);
        b.record(5);
        assert_eq!((b.count(), b.min(), b.max()), (1, 5, 5));
    }

    proptest! {
        /// Rebuilding a histogram from its own nonzero buckets via
        /// `record_n` preserves bucket counts exactly — the property the
        /// fleet monitor's window merge relies on.
        #[test]
        fn rebuild_from_buckets_preserves_bucket_counts(
            values in proptest::collection::vec(0u64..10_000_000_000, 0..100),
        ) {
            let mut h = Histogram::new();
            for &v in &values { h.record(v); }
            let mut rebuilt = Histogram::new();
            for (ub, c) in h.nonzero_buckets() {
                rebuilt.record_n(ub, c);
            }
            prop_assert_eq!(h.count(), rebuilt.count());
            prop_assert_eq!(h.nonzero_buckets(), rebuilt.nonzero_buckets());
        }
    }

    #[test]
    fn empty_histogram_snapshot_is_none_not_a_panic() {
        let h = Histogram::new();
        assert_eq!(h.snapshot(), None);
        // The scalar read paths stay total on empty input too.
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        // One record flips it to Some.
        let mut h = h;
        h.record(7);
        let snap = h.snapshot().unwrap();
        assert_eq!((snap.count, snap.min, snap.max), (1, 7, 7));
    }
}
