//! Declarative SLO specifications and burn-rate alerting rules.
//!
//! An [`SloSpec`] names the service-level objectives the fleet monitor
//! evaluates per tumbling window: a p99 latency target, a timeout-rate
//! ceiling, and a fleet power budget (each disabled when 0). Sustained
//! breaches escalate through SRE-style **multi-window burn-rate
//! rules**: each window's *burn rate* is how fast it consumes the
//! metric's error budget (1.0 = exactly on budget), and a
//! [`BurnRateRule`] fires only when the trailing average burn over
//! *both* a long and a short window count meets its threshold — the
//! long window keeps one noisy spike from paging, the short window
//! makes the alert reset quickly once the burn stops.
//!
//! [`EwmaDetector`] is the companion anomaly detector: an exponentially
//! weighted mean/variance with z-score tripping, used on power, latency
//! and train-loss series where no explicit objective exists.
//!
//! Everything here is pure arithmetic over simulated-time data; specs
//! are serde round-trippable so they can be loaded from JSON by the CLI
//! (`deeppower monitor --slo spec.json`).

use serde::{Deserialize, Serialize};

/// Stable metric tags used in `SloViolation`/`Alert` events.
pub const METRIC_P99: &str = "p99-latency";
pub const METRIC_TIMEOUT: &str = "timeout-rate";
pub const METRIC_POWER: &str = "power";
pub const METRIC_GOODPUT: &str = "goodput";

/// One multi-window burn-rate rule: fire when the trailing mean burn
/// over the last `long_windows` windows *and* the last `short_windows`
/// windows are both `>= max_burn`. Needs `long_windows` of history
/// before it can fire at all.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BurnRateRule {
    pub long_windows: u64,
    pub short_windows: u64,
    pub max_burn: f64,
}

impl BurnRateRule {
    /// Stable label used in `Alert`/`AlertResolved` events, e.g.
    /// `burn>=2/5w:2w`.
    pub fn label(&self) -> String {
        format!(
            "burn>={}/{}w:{}w",
            self.max_burn, self.long_windows, self.short_windows
        )
    }

    fn validate(&self) -> Result<(), String> {
        if self.short_windows == 0 {
            return Err("burn-rate rule: short_windows must be >= 1".into());
        }
        if self.long_windows < self.short_windows {
            return Err(format!(
                "burn-rate rule: long_windows ({}) must be >= short_windows ({})",
                self.long_windows, self.short_windows
            ));
        }
        if !(self.max_burn.is_finite() && self.max_burn > 0.0) {
            return Err(format!(
                "burn-rate rule: max_burn must be finite and positive, got {}",
                self.max_burn
            ));
        }
        Ok(())
    }
}

/// The default rule pair: a fast page (high burn sustained briefly)
/// and a slow one (any above-budget burn sustained long).
pub fn default_rules() -> Vec<BurnRateRule> {
    vec![
        BurnRateRule {
            long_windows: 5,
            short_windows: 2,
            max_burn: 2.0,
        },
        BurnRateRule {
            long_windows: 15,
            short_windows: 5,
            max_burn: 1.0,
        },
    ]
}

/// Fraction of windowed requests allowed above the p99 latency target
/// (the "error budget" a latency burn rate is measured against).
pub const LATENCY_BUDGET: f64 = 0.01;

/// A declarative SLO specification. A target of 0 disables that
/// objective; an empty `rules` list means [`default_rules`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    pub name: String,
    /// p99 latency target in milliseconds (0 = disabled).
    pub p99_ms: f64,
    /// Timeout-rate ceiling per window, 0..1 (0 = disabled).
    pub timeout_rate: f64,
    /// Fleet power budget in watts (0 = disabled).
    pub power_w: f64,
    /// Goodput floor as a fraction of offered load per window, 0..1
    /// (0 = disabled). Only meaningful for closed-loop overload runs:
    /// open-loop windows report everything as goodput and never
    /// violate.
    pub goodput_ratio: f64,
    /// Burn-rate rules applied to every enabled objective.
    pub rules: Vec<BurnRateRule>,
}

impl Default for SloSpec {
    fn default() -> Self {
        Self {
            name: "default".into(),
            p99_ms: 0.0,
            timeout_rate: 0.05,
            power_w: 0.0,
            goodput_ratio: 0.0,
            rules: default_rules(),
        }
    }
}

impl SloSpec {
    /// Spec derived from an application SLA: p99 target at the SLA,
    /// default timeout ceiling, no power budget.
    pub fn for_sla_ns(name: &str, sla_ns: u64) -> Self {
        Self {
            name: name.into(),
            p99_ms: sla_ns as f64 / 1e6,
            ..Self::default()
        }
    }

    /// Parse and validate a spec from JSON (the `--slo FILE` format).
    pub fn from_json(json: &str) -> Result<Self, String> {
        let mut spec: SloSpec =
            serde_json::from_str(json).map_err(|e| format!("bad SLO spec: {e}"))?;
        if spec.rules.is_empty() {
            spec.rules = default_rules();
        }
        spec.validate()?;
        Ok(spec)
    }

    pub fn validate(&self) -> Result<(), String> {
        for (label, v) in [
            ("p99_ms", self.p99_ms),
            ("timeout_rate", self.timeout_rate),
            ("power_w", self.power_w),
            ("goodput_ratio", self.goodput_ratio),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!(
                    "SLO spec `{}`: {label} must be finite and >= 0, got {v}",
                    self.name
                ));
            }
        }
        if self.timeout_rate > 1.0 {
            return Err(format!(
                "SLO spec `{}`: timeout_rate must be <= 1, got {}",
                self.name, self.timeout_rate
            ));
        }
        if self.goodput_ratio > 1.0 {
            return Err(format!(
                "SLO spec `{}`: goodput_ratio must be <= 1, got {}",
                self.name, self.goodput_ratio
            ));
        }
        if self.p99_ms == 0.0
            && self.timeout_rate == 0.0
            && self.power_w == 0.0
            && self.goodput_ratio == 0.0
        {
            return Err(format!(
                "SLO spec `{}`: every objective is disabled (all targets 0)",
                self.name
            ));
        }
        if self.rules.is_empty() {
            return Err(format!("SLO spec `{}`: no burn-rate rules", self.name));
        }
        for rule in &self.rules {
            rule.validate()
                .map_err(|e| format!("SLO spec `{}`: {e}", self.name))?;
        }
        Ok(())
    }

    /// The enabled objectives as `(metric tag, target)` pairs, stable
    /// order.
    pub fn objectives(&self) -> Vec<(&'static str, f64)> {
        let mut out = Vec::new();
        if self.p99_ms > 0.0 {
            out.push((METRIC_P99, self.p99_ms));
        }
        if self.timeout_rate > 0.0 {
            out.push((METRIC_TIMEOUT, self.timeout_rate));
        }
        if self.power_w > 0.0 {
            out.push((METRIC_POWER, self.power_w));
        }
        if self.goodput_ratio > 0.0 {
            out.push((METRIC_GOODPUT, self.goodput_ratio));
        }
        out
    }
}

/// EWMA mean/variance z-score anomaly detector. Feed a series in
/// order; [`EwmaDetector::observe`] returns the z-score of each point
/// against the estimate *before* that point is folded in, or `None`
/// during warm-up. The variance floor (a fraction of the running
/// |mean|) keeps a near-constant series from flagging microscopic
/// jitter as anomalous.
#[derive(Clone, Debug)]
pub struct EwmaDetector {
    alpha: f64,
    z_threshold: f64,
    warmup: u64,
    seen: u64,
    mean: f64,
    var: f64,
}

/// EWMA configuration shared by the monitor's anomaly detectors.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EwmaConfig {
    /// Smoothing factor in (0, 1]; higher tracks faster.
    pub alpha: f64,
    /// |z| at or above which a point is anomalous.
    pub z_threshold: f64,
    /// Points folded in before scoring starts.
    pub warmup: u64,
}

impl Default for EwmaConfig {
    fn default() -> Self {
        Self {
            alpha: 0.3,
            z_threshold: 4.0,
            warmup: 5,
        }
    }
}

/// Relative variance floor: std is never taken below this fraction of
/// the running |mean| (plus a tiny absolute epsilon).
const EWMA_STD_FLOOR_FRAC: f64 = 0.05;
const EWMA_STD_FLOOR_ABS: f64 = 1e-9;

impl EwmaDetector {
    pub fn new(cfg: EwmaConfig) -> Self {
        Self {
            alpha: cfg.alpha.clamp(1e-6, 1.0),
            z_threshold: cfg.z_threshold,
            warmup: cfg.warmup.max(1),
            seen: 0,
            mean: 0.0,
            var: 0.0,
        }
    }

    pub fn z_threshold(&self) -> f64 {
        self.z_threshold
    }

    /// Fold in one point; returns its z-score against the pre-update
    /// estimate once warm-up is over.
    pub fn observe(&mut self, v: f64) -> Option<f64> {
        if !v.is_finite() {
            // Non-finite points score as maximally anomalous without
            // poisoning the running estimate.
            return (self.seen >= self.warmup).then_some(f64::INFINITY);
        }
        let z = if self.seen >= self.warmup {
            let floor = EWMA_STD_FLOOR_FRAC * self.mean.abs() + EWMA_STD_FLOOR_ABS;
            let std = self.var.sqrt().max(floor);
            Some((v - self.mean) / std)
        } else {
            None
        };
        if self.seen == 0 {
            self.mean = v;
            self.var = 0.0;
        } else {
            let diff = v - self.mean;
            // Standard EWMA variance recurrence (Welford-style).
            self.var = (1.0 - self.alpha) * (self.var + self.alpha * diff * diff);
            self.mean += self.alpha * diff;
        }
        self.seen += 1;
        z
    }

    /// `observe` + threshold: `Some(z)` only when `|z|` trips.
    pub fn observe_anomalous(&mut self, v: f64) -> Option<f64> {
        let z = self.observe(v)?;
        (z.abs() >= self.z_threshold).then_some(z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_validates_and_roundtrips() {
        let spec = SloSpec::default();
        spec.validate().unwrap();
        let json = serde_json::to_string(&spec).unwrap();
        let back = SloSpec::from_json(&json).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.objectives(), vec![(METRIC_TIMEOUT, 0.05)]);
    }

    #[test]
    fn sla_spec_enables_latency_objective() {
        let spec = SloSpec::for_sla_ns("masstree", 1_000_000);
        spec.validate().unwrap();
        assert_eq!(
            spec.objectives(),
            vec![(METRIC_P99, 1.0), (METRIC_TIMEOUT, 0.05)]
        );
    }

    #[test]
    fn goodput_objective_enables_and_validates() {
        let mut spec = SloSpec {
            goodput_ratio: 0.5,
            ..Default::default()
        };
        spec.validate().unwrap();
        assert_eq!(
            spec.objectives(),
            vec![(METRIC_TIMEOUT, 0.05), (METRIC_GOODPUT, 0.5)]
        );
        spec.goodput_ratio = 1.5;
        assert!(spec.validate().unwrap_err().contains("goodput_ratio"));
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        // Not JSON at all.
        assert!(SloSpec::from_json("{nope").unwrap_err().contains("bad SLO"));
        // All objectives disabled.
        let all_off = r#"{"name":"x","p99_ms":0.0,"timeout_rate":0.0,"power_w":0.0,"goodput_ratio":0.0,"rules":[]}"#;
        assert!(SloSpec::from_json(all_off)
            .unwrap_err()
            .contains("disabled"));
        // Negative target.
        let neg = r#"{"name":"x","p99_ms":-1.0,"timeout_rate":0.0,"power_w":0.0,"goodput_ratio":0.0,"rules":[]}"#;
        assert!(SloSpec::from_json(neg).unwrap_err().contains("p99_ms"));
        // Rule with long < short.
        let bad_rule = r#"{"name":"x","p99_ms":1.0,"timeout_rate":0.0,"power_w":0.0,"goodput_ratio":0.0,
            "rules":[{"long_windows":1,"short_windows":3,"max_burn":1.0}]}"#;
        assert!(SloSpec::from_json(bad_rule)
            .unwrap_err()
            .contains("long_windows"));
        // Zero burn threshold.
        let zero_burn = r#"{"name":"x","p99_ms":1.0,"timeout_rate":0.0,"power_w":0.0,"goodput_ratio":0.0,
            "rules":[{"long_windows":3,"short_windows":1,"max_burn":0.0}]}"#;
        assert!(SloSpec::from_json(zero_burn)
            .unwrap_err()
            .contains("max_burn"));
    }

    #[test]
    fn empty_rules_fall_back_to_defaults() {
        let json = r#"{"name":"x","p99_ms":2.0,"timeout_rate":0.0,"power_w":0.0,"goodput_ratio":0.0,"rules":[]}"#;
        let spec = SloSpec::from_json(json).unwrap();
        assert_eq!(spec.rules, default_rules());
    }

    #[test]
    fn rule_labels_are_stable() {
        assert_eq!(default_rules()[0].label(), "burn>=2/5w:2w");
        assert_eq!(default_rules()[1].label(), "burn>=1/15w:5w");
    }

    #[test]
    fn ewma_flags_step_change_not_steady_series() {
        let mut d = EwmaDetector::new(EwmaConfig::default());
        // Steady series with tiny jitter: never anomalous thanks to the
        // variance floor.
        for i in 0..50u64 {
            let v = 80.0 + (i % 3) as f64 * 0.01;
            assert!(d.observe_anomalous(v).is_none(), "steady point {i} flagged");
        }
        // A 50% step is well past the floor.
        let z = d.observe_anomalous(120.0).expect("step change missed");
        assert!(z > 0.0);
    }

    #[test]
    fn ewma_warmup_suppresses_scores() {
        let mut d = EwmaDetector::new(EwmaConfig {
            alpha: 0.5,
            z_threshold: 1.0,
            warmup: 3,
        });
        assert!(d.observe(1.0).is_none());
        assert!(d.observe(100.0).is_none());
        assert!(d.observe(1.0).is_none());
        assert!(d.observe(50.0).is_some());
    }

    #[test]
    fn ewma_nonfinite_points_flag_without_poisoning() {
        let mut d = EwmaDetector::new(EwmaConfig {
            alpha: 0.3,
            z_threshold: 4.0,
            warmup: 2,
        });
        d.observe(10.0);
        d.observe(10.0);
        assert_eq!(d.observe(f64::NAN), Some(f64::INFINITY));
        // The estimate survived: a normal point still scores finitely.
        let z = d.observe(10.0).unwrap();
        assert!(z.is_finite());
    }
}
