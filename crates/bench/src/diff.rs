//! Perf-regression gate: compare a fresh bench-artifact JSON against a
//! committed baseline (`BENCH_*.json`) with per-metric tolerances.
//!
//! The bench binaries (e.g. `fleet_scaling`) write machine-readable
//! artifacts; this module diffs such an artifact against its committed
//! baseline and classifies every numeric leaf:
//!
//! * **LowerBetter** — wall-clock-shaped metrics (`*_s`, `*_ms`, `*_us`,
//!   `*_ns`, `wall*`): a regression is the candidate exceeding the
//!   baseline by more than the tolerance.
//! * **HigherBetter** — throughput-shaped metrics (`speedup`, `*_rate`
//!   when it measures goodput): a regression is the candidate falling
//!   below the baseline by more than the tolerance.
//! * **Exact** — determinism anchors (`requests`, `epochs`, `seed`,
//!   `nodes`, `n`): any difference is a regression regardless of
//!   tolerance, because the simulation is bit-replayable.
//! * **Ratio** — paired-measurement ratios (`*_ratio`, e.g.
//!   `batched_over_reference_ratio`): gated against **unity**, not the
//!   baseline. A candidate above `1.0 + tolerance` is a regression even
//!   if the baseline was just as bad — this is what catches "the
//!   optimized path lost to the path it replaced", which per-leaf
//!   baseline comparison structurally cannot (both sides drift together
//!   on a slow runner).
//! * **Info** — everything else: reported, never gated.
//!
//! Structure walk: objects match by key (missing keys are reported,
//! not gated — schemas may grow); arrays of objects match by identity
//! key (`n`, then `nodes`) so a smoke run covering a subset of node
//! counts still lines up with the full baseline; other arrays match by
//! index.
//!
//! Smoke-scale awareness: when the two artifacts disagree on their
//! `"smoke"` flag, absolute timings are incomparable (different trace
//! lengths, different machines' CI runners), so only **scale-invariant**
//! metrics — HigherBetter ratios like `speedup`, and Ratio leaves —
//! stay gated; LowerBetter and Exact leaves demote to Info.

use serde_json::Value;

/// How a metric is judged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    LowerBetter,
    HigherBetter,
    Exact,
    /// Paired-measurement ratio gated against unity (see module docs).
    Ratio,
    Info,
}

/// Outcome for one numeric leaf.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    Ok,
    Regression,
    /// Leaf exists on only one side (schema drift) — reported, not gated.
    Missing,
    /// Informational metric, never gated.
    Info,
}

/// One compared leaf.
#[derive(Clone, Debug)]
pub struct MetricDiff {
    /// Dotted path, e.g. `fleet[nodes=8].wall_s`.
    pub path: String,
    pub baseline: Option<f64>,
    pub candidate: Option<f64>,
    pub direction: Direction,
    /// Signed relative change `(candidate - baseline) / |baseline|`
    /// (0 when the baseline is 0 and they match exactly).
    pub rel_change: f64,
    pub status: Status,
}

/// A full comparison run.
#[derive(Clone, Debug)]
pub struct DiffReport {
    pub rows: Vec<MetricDiff>,
    pub tolerance: f64,
    /// The artifacts disagreed on their `"smoke"` flag, so absolute
    /// timings were demoted to Info.
    pub scale_mismatch: bool,
}

impl DiffReport {
    pub fn regressions(&self) -> impl Iterator<Item = &MetricDiff> {
        self.rows.iter().filter(|r| r.status == Status::Regression)
    }

    pub fn has_regressions(&self) -> bool {
        self.regressions().next().is_some()
    }

    /// Plain-text table, regressions flagged with `REGRESSION`.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if self.scale_mismatch {
            out.push_str("note: smoke flags differ — absolute timings demoted to informational\n");
        }
        out.push_str(&format!(
            "{:<40} {:>12} {:>12} {:>8} {:<6}\n",
            "metric", "baseline", "candidate", "change", "status"
        ));
        for r in &self.rows {
            let fmt = |v: Option<f64>| match v {
                Some(x) => format!("{x:.4}"),
                None => "-".into(),
            };
            let status = match r.status {
                Status::Ok => "ok",
                Status::Regression => "REGRESSION",
                Status::Missing => "missing",
                Status::Info => "info",
            };
            out.push_str(&format!(
                "{:<40} {:>12} {:>12} {:>+7.1}% {:<6}\n",
                r.path,
                fmt(r.baseline),
                fmt(r.candidate),
                r.rel_change * 100.0,
                status
            ));
        }
        out
    }
}

/// Classify a leaf by its key name.
pub fn classify(key: &str) -> Direction {
    match key {
        "speedup" => Direction::HigherBetter,
        "requests" | "epochs" | "seed" | "nodes" | "n" => Direction::Exact,
        // Delivered-goodput fractions: higher is better and the gate is
        // against the baseline, not unity — must precede the generic
        // `_ratio` arm.
        _ if key.ends_with("goodput_ratio") => Direction::HigherBetter,
        _ if key.ends_with("_ratio") => Direction::Ratio,
        _ if key.starts_with("wall")
            || key.ends_with("_s")
            || key.ends_with("_ms")
            || key.ends_with("_us")
            || key.ends_with("_ns") =>
        {
            Direction::LowerBetter
        }
        _ => Direction::Info,
    }
}

fn as_number(v: &Value) -> Option<f64> {
    match v {
        Value::Number(n) => Some(n.as_f64()),
        _ => None,
    }
}

/// Identity key for array-of-object alignment: `n`, then `nodes`.
fn identity(v: &Value) -> Option<(&'static str, f64)> {
    for key in ["n", "nodes"] {
        if let Some(id) = v.get(key).and_then(as_number) {
            return Some((key, id));
        }
    }
    None
}

/// Compare two bench-artifact JSON documents.
///
/// `tolerance` is the allowed relative drift for LowerBetter /
/// HigherBetter metrics (e.g. `0.35` = 35 %). Exact metrics ignore it.
pub fn diff(baseline: &Value, candidate: &Value, tolerance: f64) -> DiffReport {
    let scale_mismatch = match (baseline.get("smoke"), candidate.get("smoke")) {
        (Some(Value::Bool(a)), Some(Value::Bool(b))) => a != b,
        _ => false,
    };
    let mut rows = Vec::new();
    walk(
        "",
        baseline,
        candidate,
        tolerance,
        scale_mismatch,
        &mut rows,
    );
    DiffReport {
        rows,
        tolerance,
        scale_mismatch,
    }
}

/// Parse both documents and diff them; `Err` on malformed JSON.
pub fn diff_str(baseline: &str, candidate: &str, tolerance: f64) -> Result<DiffReport, String> {
    let b: Value =
        serde_json::from_str(baseline).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
    let c: Value =
        serde_json::from_str(candidate).map_err(|e| format!("candidate is not valid JSON: {e}"))?;
    Ok(diff(&b, &c, tolerance))
}

fn leaf(
    path: String,
    key: &str,
    b: Option<f64>,
    c: Option<f64>,
    tolerance: f64,
    scale_mismatch: bool,
    rows: &mut Vec<MetricDiff>,
) {
    let mut direction = classify(key);
    // Cross-scale comparison: only scale-invariant ratios survive as gates.
    if scale_mismatch && direction != Direction::HigherBetter && direction != Direction::Ratio {
        direction = Direction::Info;
    }
    let (rel_change, status) = match (b, c) {
        (Some(b), Some(c)) => {
            let rel = if b == c {
                0.0
            } else if b == 0.0 {
                f64::INFINITY.copysign(c)
            } else {
                (c - b) / b.abs()
            };
            let status = match direction {
                Direction::Info => Status::Info,
                Direction::Exact if b != c => Status::Regression,
                Direction::LowerBetter if rel > tolerance => Status::Regression,
                Direction::HigherBetter if rel < -tolerance => Status::Regression,
                Direction::Ratio if c > 1.0 + tolerance => Status::Regression,
                _ => Status::Ok,
            };
            (rel, status)
        }
        _ => (0.0, Status::Missing),
    };
    rows.push(MetricDiff {
        path,
        baseline: b,
        candidate: c,
        direction,
        rel_change,
        status,
    });
}

fn walk(
    path: &str,
    baseline: &Value,
    candidate: &Value,
    tolerance: f64,
    scale_mismatch: bool,
    rows: &mut Vec<MetricDiff>,
) {
    match (baseline, candidate) {
        (Value::Object(bp), Value::Object(_)) => {
            for (key, bv) in bp {
                let sub = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                match candidate.get(key) {
                    Some(cv) => walk(&sub, bv, cv, tolerance, scale_mismatch, rows),
                    None => {
                        if let Some(b) = as_number(bv) {
                            leaf(sub, key, Some(b), None, tolerance, scale_mismatch, rows);
                        }
                    }
                }
            }
        }
        (Value::Array(ba), Value::Array(ca)) => {
            // Arrays of objects align by identity key so a subset run
            // (smoke covers fewer node counts) still matches up.
            let by_identity = ba.iter().all(|v| identity(v).is_some())
                && ca.iter().all(|v| identity(v).is_some());
            if by_identity {
                for bv in ba {
                    let (key, id) = identity(bv).expect("checked above");
                    let sub = format!("{path}[{key}={id}]");
                    // Rows absent from the candidate are expected in
                    // subset (smoke) runs; not even reported.
                    if let Some(cv) = ca.iter().find(|cv| identity(cv) == Some((key, id))) {
                        walk(&sub, bv, cv, tolerance, scale_mismatch, rows);
                    }
                }
            } else {
                for (i, bv) in ba.iter().enumerate() {
                    let sub = format!("{path}[{i}]");
                    match ca.get(i) {
                        Some(cv) => walk(&sub, bv, cv, tolerance, scale_mismatch, rows),
                        None => {
                            if let Some(b) = as_number(bv) {
                                leaf(
                                    sub,
                                    last_key(path),
                                    Some(b),
                                    None,
                                    tolerance,
                                    scale_mismatch,
                                    rows,
                                );
                            }
                        }
                    }
                }
            }
        }
        _ => {
            let key = last_key(path);
            // Non-numeric leaves (strings, bools — e.g. the smoke
            // flag itself) are structural, not metrics.
            if let (Some(b), Some(c)) = (as_number(baseline), as_number(candidate)) {
                leaf(
                    path.to_string(),
                    key,
                    Some(b),
                    Some(c),
                    tolerance,
                    scale_mismatch,
                    rows,
                );
            }
        }
    }
}

/// The metric name of a dotted/indexed path: the last `.`-component with
/// any `[...]` suffix stripped.
fn last_key(path: &str) -> &str {
    let tail = path.rsplit('.').next().unwrap_or(path);
    match tail.find('[') {
        Some(i) => &tail[..i],
        None => tail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{
        "smoke": false,
        "inference": [{"n": 2, "loop_us": 1.5, "batch_us": 1.1, "speedup": 1.35},
                      {"n": 8, "loop_us": 6.1, "batch_us": 3.6, "speedup": 1.72}],
        "fleet": [{"nodes": 1, "wall_s": 0.24, "requests": 284111, "epochs": 13},
                  {"nodes": 8, "wall_s": 2.14, "requests": 2275329, "epochs": 13}],
        "end_to_end_8_nodes": {"batched_s": 1.88, "reference_s": 1.92,
                               "batched_over_reference_ratio": 0.979}
    }"#;

    #[test]
    fn identical_artifacts_pass() {
        let report = diff_str(BASE, BASE, 0.35).unwrap();
        assert!(!report.has_regressions(), "{}", report.render_table());
        assert!(report
            .rows
            .iter()
            .any(|r| r.path == "fleet[nodes=8].wall_s"));
        assert!(report.rows.iter().all(|r| r.rel_change == 0.0));
    }

    #[test]
    fn inflated_wall_time_is_a_regression() {
        let cand = BASE.replace("\"wall_s\": 2.14", "\"wall_s\": 9.99");
        let report = diff_str(BASE, &cand, 0.35).unwrap();
        let bad: Vec<_> = report.regressions().collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].path, "fleet[nodes=8].wall_s");
        assert_eq!(bad[0].direction, Direction::LowerBetter);
        assert!(report.render_table().contains("REGRESSION"));
    }

    #[test]
    fn collapsed_speedup_is_a_regression() {
        let cand = BASE.replace("\"speedup\": 1.72", "\"speedup\": 0.40");
        let report = diff_str(BASE, &cand, 0.35).unwrap();
        assert!(report
            .regressions()
            .any(|r| r.path == "inference[n=8].speedup"));
        // A higher speedup is never a regression.
        let better = BASE.replace("\"speedup\": 1.72", "\"speedup\": 3.00");
        assert!(!diff_str(BASE, &better, 0.35).unwrap().has_regressions());
    }

    #[test]
    fn exact_metrics_ignore_tolerance() {
        let cand = BASE.replace("\"requests\": 284111", "\"requests\": 284112");
        let report = diff_str(BASE, &cand, 0.35).unwrap();
        let bad: Vec<_> = report.regressions().collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].path, "fleet[nodes=1].requests");
        assert_eq!(bad[0].direction, Direction::Exact);
    }

    #[test]
    fn drift_within_tolerance_passes() {
        let cand = BASE.replace("\"wall_s\": 2.14", "\"wall_s\": 2.60"); // +21 %
        assert!(!diff_str(BASE, &cand, 0.35).unwrap().has_regressions());
    }

    #[test]
    fn smoke_mismatch_gates_only_scale_invariant_metrics() {
        // Candidate is a smoke run: shorter traces, so wall times and
        // request counts differ wildly — but a collapsed speedup still
        // signals a real regression.
        let cand = BASE
            .replace("\"smoke\": false", "\"smoke\": true")
            .replace("\"wall_s\": 2.14", "\"wall_s\": 0.30")
            .replace("\"requests\": 2275329", "\"requests\": 99")
            .replace("\"speedup\": 1.72", "\"speedup\": 0.40");
        let report = diff_str(BASE, &cand, 0.35).unwrap();
        assert!(report.scale_mismatch);
        let bad: Vec<_> = report.regressions().collect();
        assert_eq!(bad.len(), 1, "{}", report.render_table());
        assert_eq!(bad[0].path, "inference[n=8].speedup");
    }

    #[test]
    fn subset_candidate_aligns_by_identity_key() {
        // Smoke runs cover fewer node counts; the overlap still gates.
        let cand = r#"{
            "smoke": false,
            "inference": [{"n": 8, "loop_us": 6.1, "batch_us": 3.6, "speedup": 1.72}],
            "fleet": [{"nodes": 8, "wall_s": 99.0, "requests": 2275329, "epochs": 13}],
            "end_to_end_8_nodes": {"batched_s": 1.97, "reference_s": 1.92}
        }"#;
        let report = diff_str(BASE, cand, 0.35).unwrap();
        let bad: Vec<_> = report.regressions().collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].path, "fleet[nodes=8].wall_s");
        // nodes=1 rows are absent from the candidate: skipped, not gated.
        assert!(!report.rows.iter().any(|r| r.path.contains("nodes=1")));
    }

    #[test]
    fn ratio_above_unity_plus_tolerance_is_a_regression() {
        // The PR-4 escape: batched lost to reference (ratio > 1) while
        // both absolute timings stayed within tolerance of their own
        // baselines. The Ratio class gates against unity instead.
        let cand = BASE.replace(
            "\"batched_over_reference_ratio\": 0.979",
            "\"batched_over_reference_ratio\": 1.9",
        );
        let report = diff_str(BASE, &cand, 0.35).unwrap();
        let bad: Vec<_> = report.regressions().collect();
        assert_eq!(bad.len(), 1, "{}", report.render_table());
        assert_eq!(
            bad[0].path,
            "end_to_end_8_nodes.batched_over_reference_ratio"
        );
        assert_eq!(bad[0].direction, Direction::Ratio);

        // Near-unity noise passes: the gate is tolerance-padded so a
        // statistical tie between the two drivers cannot flake CI.
        let cand = BASE.replace(
            "\"batched_over_reference_ratio\": 0.979",
            "\"batched_over_reference_ratio\": 1.02",
        );
        assert!(!diff_str(BASE, &cand, 0.35).unwrap().has_regressions());
    }

    #[test]
    fn ratio_gate_survives_smoke_mismatch() {
        // Absolute timings demote to Info across scales, but a ratio of
        // two same-scale measurements is scale-invariant and stays gated.
        let cand = BASE.replace("\"smoke\": false", "\"smoke\": true").replace(
            "\"batched_over_reference_ratio\": 0.979",
            "\"batched_over_reference_ratio\": 1.9",
        );
        let report = diff_str(BASE, &cand, 0.35).unwrap();
        assert!(report.scale_mismatch);
        assert!(report
            .regressions()
            .any(|r| r.path == "end_to_end_8_nodes.batched_over_reference_ratio"));
    }

    #[test]
    fn missing_key_reports_but_does_not_gate() {
        let cand = BASE.replace("\"batched_s\": 1.88, ", "");
        let report = diff_str(BASE, &cand, 0.35).unwrap();
        assert!(!report.has_regressions());
        let row = report
            .rows
            .iter()
            .find(|r| r.path == "end_to_end_8_nodes.batched_s")
            .expect("missing leaf reported");
        assert_eq!(row.status, Status::Missing);
        assert_eq!(row.candidate, None);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(diff_str("{", BASE, 0.35).is_err());
        assert!(diff_str(BASE, "not json", 0.35).is_err());
    }

    #[test]
    fn classify_covers_the_artifact_schema() {
        assert_eq!(classify("speedup"), Direction::HigherBetter);
        assert_eq!(classify("wall_s"), Direction::LowerBetter);
        assert_eq!(classify("loop_us"), Direction::LowerBetter);
        assert_eq!(classify("batched_s"), Direction::LowerBetter);
        assert_eq!(classify("batched_over_reference_ratio"), Direction::Ratio);
        // The heterogeneous-fleet leaves: grouped-vs-pernode is a paired
        // unity-gated ratio, the balancer p99s are plain lower-better.
        assert_eq!(
            classify("hetero_grouped_over_pernode_ratio"),
            Direction::Ratio
        );
        assert_eq!(classify("power_aware_p99_ms"), Direction::LowerBetter);
        assert_eq!(classify("requests"), Direction::Exact);
        assert_eq!(classify("epochs"), Direction::Exact);
        assert_eq!(classify("label"), Direction::Info);
        // Goodput fractions are higher-better baseline gates, not
        // unity-gated pair ratios.
        assert_eq!(classify("goodput_ratio"), Direction::HigherBetter);
        assert_eq!(classify("managed_goodput_ratio"), Direction::HigherBetter);
    }

    #[test]
    fn goodput_ratio_regresses_only_downward() {
        let base = r#"{"smoke": false, "collapse": {"goodput_ratio": 0.8}}"#;
        let worse = r#"{"smoke": false, "collapse": {"goodput_ratio": 0.4}}"#;
        let better = r#"{"smoke": false, "collapse": {"goodput_ratio": 0.95}}"#;
        let report = diff_str(base, worse, 0.35).unwrap();
        let bad: Vec<_> = report.regressions().collect();
        assert_eq!(bad.len(), 1, "{}", report.render_table());
        assert_eq!(bad[0].path, "collapse.goodput_ratio");
        assert_eq!(bad[0].direction, Direction::HigherBetter);
        // Improvement never gates, even far above the baseline (a plain
        // Ratio leaf would flag > 1.0 + tolerance).
        assert!(!diff_str(base, better, 0.35).unwrap().has_regressions());
    }

    #[test]
    fn committed_fleet_baseline_passes_against_itself() {
        // Guards the committed artifact's schema: every leaf classifies,
        // parses and self-compares clean. If BENCH_fleet.json changes
        // shape, this test catches it before CI's perf-gate does.
        let text = include_str!("../../../BENCH_fleet.json");
        let report = diff_str(text, text, 0.35).unwrap();
        assert!(!report.has_regressions());
        assert!(report
            .rows
            .iter()
            .any(|r| r.direction == Direction::LowerBetter));
        assert!(report
            .rows
            .iter()
            .any(|r| r.direction == Direction::HigherBetter));
        assert!(report.rows.iter().any(|r| r.direction == Direction::Exact));
    }
}
