//! Shared harness utilities for the paper-reproduction benches.
//!
//! Every table and figure of the paper has a bench target under
//! `benches/` (see DESIGN.md's experiment index). Most are plain
//! `harness = false` binaries that run the experiment and print the same
//! rows/series the paper reports; the two timing tables (Table 2, §5.5
//! overhead) use Criterion.
//!
//! Scale: by default experiments run at a reduced scale (shorter traces,
//! fewer training episodes) so `cargo bench --workspace` finishes in
//! minutes. Set `DEEPPOWER_FULL=1` for paper-scale runs.

pub mod diff;

use deeppower_core::{train, TrainConfig, TrainedPolicy};
use deeppower_workload::App;
use std::path::PathBuf;

/// Experiment scale knobs derived from `DEEPPOWER_FULL`.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    pub full: bool,
    /// Training episodes for DeepPower policies.
    pub train_episodes: usize,
    /// Trace period (seconds) for training episodes.
    pub train_episode_s: u64,
    /// Trace period (seconds) for evaluation runs.
    pub eval_s: u64,
    /// Samples for distribution experiments.
    pub dist_samples: usize,
}

impl Scale {
    pub fn from_env() -> Self {
        let full = std::env::var("DEEPPOWER_FULL")
            .map(|v| v != "0")
            .unwrap_or(false);
        if full {
            Self {
                full,
                train_episodes: 12,
                train_episode_s: 360,
                eval_s: 360,
                dist_samples: 200_000,
            }
        } else {
            Self {
                full,
                train_episodes: 8,
                train_episode_s: 120,
                eval_s: 60,
                dist_samples: 50_000,
            }
        }
    }
}

/// Training seed used by the figure benches for `app`.
///
/// DDPG at the reduced bench scale is seed-sensitive — most visibly on
/// Sphinx, whose multi-second requests yield the least diverse
/// transitions per episode, making outcomes bimodal (either a policy
/// that holds the SLA or one that over-throttles and lets the queue
/// collapse). The calibrated values live with the experiment engine
/// (`deeppower_harness::calibrated_train_seed`, see EXPERIMENTS.md);
/// the paper does not report its training seeds.
pub fn policy_seed(app: App) -> u64 {
    deeppower_harness::calibrated_train_seed(app)
}

/// [`trained_policy`] at the bench's calibrated [`policy_seed`].
pub fn default_trained_policy(app: App, scale: Scale) -> TrainedPolicy {
    trained_policy(app, scale, policy_seed(app))
}

/// Train (or load a cached) DeepPower policy for `app` at this scale.
///
/// Caching lives under `target/deeppower-policies/` keyed by app, scale
/// and seed, so the per-figure benches don't retrain the same agent.
pub fn trained_policy(app: App, scale: Scale, seed: u64) -> TrainedPolicy {
    let dir = cache_dir();
    std::fs::create_dir_all(&dir).ok();
    let key = format!(
        "{:?}-{}ep-{}s-seed{}.json",
        app, scale.train_episodes, scale.train_episode_s, seed
    )
    .to_lowercase();
    let path = dir.join(key);
    if let Ok(policy) = TrainedPolicy::load(&path) {
        if policy.app == app {
            return policy;
        }
    }
    let mut cfg = TrainConfig::for_app(app);
    cfg.episodes = scale.train_episodes;
    cfg.episode_s = scale.train_episode_s;
    cfg.seed = seed;
    let (policy, _) = train(&cfg);
    policy.save(&path).ok();
    policy
}

fn cache_dir() -> PathBuf {
    // target/ lives next to the workspace root.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop(); // crates/
    p.pop(); // workspace root
    p.join("target").join("deeppower-policies")
}

/// Render an ASCII sparkline for a series (used to visualize the figure
/// series directly in bench output).
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|&v| BARS[(((v - min) / span) * 7.0).round() as usize])
        .collect()
}

/// Downsample a series to at most `n` points by averaging buckets
/// (keeps sparklines terminal-width-friendly).
pub fn downsample(values: &[f64], n: usize) -> Vec<f64> {
    if values.len() <= n || n == 0 {
        return values.to_vec();
    }
    let bucket = values.len() as f64 / n as f64;
    (0..n)
        .map(|i| {
            let lo = (i as f64 * bucket) as usize;
            let hi = (((i + 1) as f64 * bucket) as usize)
                .min(values.len())
                .max(lo + 1);
            values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_maps_extremes() {
        let s = sparkline(&[0.0, 1.0]);
        assert_eq!(s.chars().count(), 2);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn downsample_preserves_mean() {
        let v: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let d = downsample(&v, 10);
        assert_eq!(d.len(), 10);
        let mean_orig = v.iter().sum::<f64>() / v.len() as f64;
        let mean_down = d.iter().sum::<f64>() / d.len() as f64;
        assert!((mean_orig - mean_down).abs() < 1.0);
        // Short series pass through untouched.
        assert_eq!(downsample(&[1.0, 2.0], 10), vec![1.0, 2.0]);
    }

    #[test]
    fn scale_defaults_reduced() {
        // Unless DEEPPOWER_FULL is exported in the test environment.
        if std::env::var("DEEPPOWER_FULL").is_err() {
            let s = Scale::from_env();
            assert!(!s.full);
            assert!(s.eval_s <= 120);
        }
    }
}
