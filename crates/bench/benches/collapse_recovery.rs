//! Collapse & recovery under a retry storm — admission-co-managed
//! policy vs the unmanaged baseline.
//!
//! Both arms run the *same* closed-loop overload plan: Masstree near
//! saturation, a 4× flash-crowd burst, tight client deadlines, and
//! near-certain capped retries — the load-amplification loop of a
//! classic retry storm. The only difference is the admission axis:
//!
//! * **unmanaged** — `AdmissionMode::None`. The queue balloons during
//!   the burst, every completion lands after its client abandoned, each
//!   abandonment re-offers retries, and the server congestion-collapses:
//!   it stays busy doing almost exclusively wasted work.
//! * **managed** — `AdmissionMode::Drl` with the governor's third
//!   action head holding a tight admission threshold (the same command
//!   path a trained 3-action DeepPower policy drives). Excess load is
//!   shed at admission, sojourn stays under the client deadline, and
//!   goodput is sustained through the storm.
//!
//! Asserted bounds:
//! 1. the managed arm sustains ≥ 2× the goodput of the unmanaged arm;
//! 2. the fleet monitor's goodput SLO fires a collapse alert on both
//!    arms, and on the managed arm the alert **resolves** before run
//!    end while the unmanaged arm's stays open;
//! 3. both arms are bit-identical on a replay (same seed ⇒ same bytes).
//!
//! Writes `target/collapse-recovery.json`; the committed baseline is
//! `BENCH_collapse.json` and CI gates `managed_goodput_ratio` as a
//! higher-is-better bench-diff leaf.

use deeppower_core::{ControllerParams, ThreadController};
use deeppower_simd_server::{
    AdmissionMode, OverloadPlan, RunOptions, Server, ServerConfig, SimResult, SECOND,
};
use deeppower_telemetry::{
    BurnRateRule, FleetMonitor, HealthReport, MonitorConfig, MonitorSink, Recorder, SloSpec,
    METRIC_GOODPUT,
};
use deeppower_workload::{constant_rate_arrivals, App, AppSpec};
use std::cell::RefCell;
use std::rc::Rc;

/// The storm plan shared by both arms; only `admission` differs.
fn storm_plan(admission: AdmissionMode, sla_ns: u64) -> OverloadPlan {
    OverloadPlan {
        seed: 11,
        queue_capacity: 1024,
        client_timeout_ns: 2 * sla_ns,
        retry_prob: 0.95,
        max_attempts: 4,
        retry_backoff_ns: sla_ns,
        retry_jitter_ns: sla_ns / 4,
        burst_start_ns: 2 * SECOND,
        burst_duration_ns: 2 * SECOND,
        burst_factor: 4,
        admission,
        ..OverloadPlan::none()
    }
}

/// One arm: a fixed thread-controller policy whose third action head
/// pins the admission threshold at `admit_frac` of queue capacity.
fn run_arm(admission: AdmissionMode, admit_frac: f32, secs: u64) -> (SimResult, HealthReport) {
    let spec = AppSpec::get(App::Masstree);
    let arrivals = constant_rate_arrivals(&spec, spec.rps_for_load(0.9), secs * SECOND, 11);
    let mut params = ControllerParams::new(0.3, 1.0);
    params.admit_frac = admit_frac;
    let mut gov = ThreadController::new(params);
    let server = Server::new(ServerConfig::paper_default(spec.n_threads));
    let slo = SloSpec {
        name: "collapse".into(),
        p99_ms: 0.0,
        timeout_rate: 0.0,
        power_w: 0.0,
        goodput_ratio: 0.5,
        rules: vec![BurnRateRule {
            long_windows: 2,
            short_windows: 1,
            max_burn: 1.2,
        }],
    };
    // Events stream into the monitor inline — a retry storm emits
    // millions of Shed/Retry events, far past any sane ring capacity.
    let monitor = Rc::new(RefCell::new(FleetMonitor::new(MonitorConfig::with_slo(
        slo,
    ))));
    let rec = Recorder::with_sink(Box::new(MonitorSink::new(Rc::clone(&monitor), 0)));
    let sim = server.run_recorded(
        &arrivals,
        &mut gov,
        RunOptions {
            overload: storm_plan(admission, spec.sla),
            ..Default::default()
        },
        &rec,
    );
    let health = monitor.borrow().finish();
    (sim, health)
}

fn goodput_ratio(sim: &SimResult) -> f64 {
    let offered = sim.goodput + sim.wasted + sim.shed;
    if offered == 0 {
        return 0.0;
    }
    sim.goodput as f64 / offered as f64
}

fn main() {
    let smoke = std::env::var("DEEPPOWER_SMOKE")
        .map(|v| v != "0")
        .unwrap_or(false);
    let full = std::env::var("DEEPPOWER_FULL")
        .map(|v| v != "0")
        .unwrap_or(false);
    let secs = if full && !smoke { 16 } else { 8 };

    let (unmanaged, un_health) = run_arm(AdmissionMode::None, 1.0, secs);
    let (managed, mg_health) = run_arm(AdmissionMode::Drl, 0.03, secs);

    // Determinism: the managed arm replays bit-identically.
    let (managed2, _) = run_arm(AdmissionMode::Drl, 0.03, secs);
    assert_eq!(managed.goodput, managed2.goodput);
    assert_eq!(managed.shed, managed2.shed);
    assert_eq!(managed.energy_j.to_bits(), managed2.energy_j.to_bits());

    let un_ratio = goodput_ratio(&unmanaged);
    let mg_ratio = goodput_ratio(&managed);
    println!("# Collapse & recovery — Masstree @ 90 % load, 4x retry storm, {secs} s\n");
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>10} {:>8}",
        "arm", "goodput", "wasted", "shed", "retries", "wasted_s", "ratio"
    );
    for (name, sim, ratio) in [
        ("unmanaged", &unmanaged, un_ratio),
        ("managed", &managed, mg_ratio),
    ] {
        println!(
            "{:<10} {:>9} {:>9} {:>9} {:>9} {:>10.3} {:>8.3}",
            name, sim.goodput, sim.wasted, sim.shed, sim.retries, sim.wasted_s, ratio
        );
    }

    // 1. The admission-managed policy sustains ≥ 2× the goodput the
    //    collapsed baseline limps along at.
    assert!(
        managed.goodput >= 2 * unmanaged.goodput,
        "admission management must at least double goodput under the storm: \
         managed {} vs unmanaged {}",
        managed.goodput,
        unmanaged.goodput
    );

    // 2. Both arms trip the goodput SLO when the storm hits; the
    //    managed arm's alert resolves (recovery), the unmanaged arm's
    //    never does (collapse).
    let goodput_alert = |h: &HealthReport| {
        h.alerts
            .iter()
            .find(|a| a.metric == METRIC_GOODPUT)
            .cloned()
    };
    let un_alert = goodput_alert(&un_health).expect("unmanaged arm must trip the goodput SLO");
    assert_eq!(
        un_alert.t_resolve, 0,
        "unmanaged collapse alert must still be open at run end"
    );
    let mg_alert = goodput_alert(&mg_health).expect("managed arm must trip the goodput SLO");
    assert!(
        mg_alert.t_resolve > mg_alert.t_fire,
        "managed arm's collapse alert must resolve: fired {} ns, never resolved",
        mg_alert.t_fire
    );
    println!(
        "\n[bounds OK] managed goodput {}x unmanaged; managed alert resolved after {:.2} s, \
         unmanaged alert still open",
        managed.goodput / unmanaged.goodput.max(1),
        (mg_alert.t_resolve - mg_alert.t_fire) as f64 / 1e9
    );

    let json = format!(
        "{{\n  \"smoke\": {smoke},\n  \"collapse_recovery\": {{\"managed_goodput_ratio\": {mg_ratio:.3}, \"unmanaged_goodput_frac\": {un_ratio:.3}, \"managed_goodput\": {}, \"unmanaged_goodput\": {}, \"managed_shed\": {}, \"unmanaged_retries\": {}}}\n}}\n",
        managed.goodput, unmanaged.goodput, managed.shed, unmanaged.retries
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/collapse-recovery.json");
    if let Err(e) = deeppower_telemetry::atomic_write(&out, json) {
        eprintln!("warning: could not write {}: {e}", out.display());
    } else {
        println!("report written to {}", out.display());
    }
}
