//! Fig. 8 — critical indicators over time while DeepPower runs Xapian:
//! RPS, power, the agent's BaseFreq / ScalingCoef actions, and the mean
//! core frequency, sampled at every DRL step (1 s).
//!
//! Paper observations to reproduce:
//! * "the variation curve of the power consumption basically matches the
//!   RPS" — power tracks load;
//! * "DeepPower raises the ScalingCoef … in high loads … and maintains
//!   BaseFreq at a moderate level";
//! * the mean frequency rises and falls with load.
//!
//! The per-second series comes from the governor's `DrlStep` telemetry
//! events — the same stream `deeppower trace` serializes — instead of
//! the in-memory `StepLog` vector, so the figure and the artifact can
//! never drift apart.

use deeppower_bench::{default_trained_policy, downsample, sparkline, Scale};
use deeppower_core::evaluate_recorded;
use deeppower_simd_server::TraceConfig;
use deeppower_telemetry::{Event, Recorder};
use deeppower_workload::App;

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let vy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    cov / (vx.sqrt() * vy.sqrt()).max(1e-12)
}

fn main() {
    let scale = Scale::from_env();
    let policy = default_trained_policy(App::Xapian, scale);
    let rec = Recorder::ring(1 << 16);
    let eval = evaluate_recorded(
        &policy,
        deeppower_core::train::default_peak_load(App::Xapian),
        scale.eval_s,
        999,
        TraceConfig::default(),
        &rec,
    );
    let steps: Vec<_> = rec
        .drain_events()
        .into_iter()
        .filter_map(|ev| match ev {
            Event::DrlStep(s) => Some(s),
            _ => None,
        })
        .collect();
    assert_eq!(
        steps.len(),
        eval.log.len(),
        "one DrlStep event per StepLog entry"
    );

    // Skip the first step (partial counters).
    let log: Vec<_> = steps.iter().skip(1).collect();
    let rps: Vec<f64> = log.iter().map(|l| l.num_req as f64).collect();
    let power: Vec<f64> = log.iter().map(|l| l.power_w).collect();
    let base: Vec<f64> = log.iter().map(|l| l.base_freq).collect();
    let coef: Vec<f64> = log.iter().map(|l| l.scaling_coef).collect();
    let freq: Vec<f64> = log.iter().map(|l| l.avg_freq_mhz).collect();

    println!(
        "# Fig. 8 — DeepPower running Xapian for {} s (per-second samples)\n",
        scale.eval_s
    );
    let w = 90;
    println!("RPS         |{}|", sparkline(&downsample(&rps, w)));
    println!("power (W)   |{}|", sparkline(&downsample(&power, w)));
    println!("BaseFreq    |{}|", sparkline(&downsample(&base, w)));
    println!("ScalingCoef |{}|", sparkline(&downsample(&coef, w)));
    println!("avg freq    |{}|", sparkline(&downsample(&freq, w)));

    let c_power = pearson(&rps, &power);
    let c_freq = pearson(&rps, &freq);
    let c_coef = pearson(&rps, &coef);
    println!(
        "\ncorrelation with RPS: power {c_power:.2}, avg-freq {c_freq:.2}, ScalingCoef {c_coef:.2}"
    );
    println!(
        "action ranges: BaseFreq [{:.2}, {:.2}], ScalingCoef [{:.2}, {:.2}]",
        base.iter().cloned().fold(f64::INFINITY, f64::min),
        base.iter().cloned().fold(0.0, f64::max),
        coef.iter().cloned().fold(f64::INFINITY, f64::min),
        coef.iter().cloned().fold(0.0, f64::max),
    );
    println!(
        "run totals: {:.1} W avg, p99 {:.2} ms, timeouts {:.2}%",
        eval.sim.avg_power_w,
        eval.sim.stats.p99_ns as f64 / 1e6,
        eval.sim.stats.timeout_rate() * 100.0
    );

    // Shape checks.
    assert!(c_power > 0.5, "power should track RPS (corr {c_power:.2})");
    assert!(
        c_freq > 0.3,
        "mean frequency should track RPS (corr {c_freq:.2})"
    );
    println!("\n[shape OK] power and frequency track the diurnal load; actions adapt per second");
}
