//! Ablation — reward-weight and η sensitivity (§4.4.2).
//!
//! The paper: "Changing the weight of each term leads to adjusting the
//! DRL Agent's training objectives. For example, we can increase the
//! value of β to improve the importance of R_timeout if we find that the
//! tail latency is higher than the SLA metric." And η "determines the
//! threshold when the queue becomes longer".
//!
//! This bench trains agents across a β sweep and an η sweep on Xapian and
//! reports the power/QoS trade-off each lands on.

use deeppower_bench::Scale;
use deeppower_core::train::{default_peak_load, trace_for};
use deeppower_core::{DeepPowerGovernor, Mode, TrainConfig};
use deeppower_simd_server::{RunOptions, Server, ServerConfig, SimResult, MILLISECOND};
use deeppower_workload::{trace_arrivals, App, AppSpec};

/// Train and evaluate with overrides; `eta_factor` scales the app's
/// calibrated η (1.0 = default) — sweeping absolute η values far from the
/// calibration point just measures a broken config, not the knob.
fn train_and_eval(beta: f64, eta_factor: f64, scale: Scale) -> SimResult {
    let app = App::Xapian;
    let spec = AppSpec::get(app);
    let server = Server::new(ServerConfig::paper_default(spec.n_threads));
    let mut cfg = TrainConfig::for_app(app);
    cfg.episodes = scale.train_episodes;
    cfg.episode_s = scale.train_episode_s;
    cfg.seed = 11;
    cfg.deeppower.beta = beta;
    cfg.deeppower.eta *= eta_factor;
    let (policy, _) = deeppower_core::train(&cfg);
    let trace = trace_for(&spec, default_peak_load(app), scale.eval_s, 999);
    let arrivals = trace_arrivals(&spec, &trace, 4242);
    let mut agent = policy.build_agent();
    let mut gov = DeepPowerGovernor::new(&mut agent, policy.deeppower, Mode::Eval);
    server.run(
        &arrivals,
        &mut gov,
        RunOptions {
            tick_ns: policy.deeppower.short_time,
            ..Default::default()
        },
    )
}

fn main() {
    let scale = Scale::from_env();
    println!("# Ablation — reward weights (Xapian)\n");

    println!("## β sweep (timeout weight; α=1, γ=1, η=calibrated default)");
    println!(
        "{:>6} {:>9} {:>10} {:>9}",
        "beta", "power(W)", "p99(ms)", "timeout%"
    );
    let betas = [0.5, 4.0, 16.0];
    let mut by_beta = Vec::new();
    for &beta in &betas {
        let r = train_and_eval(beta, 1.0, scale);
        println!(
            "{:>6} {:>9.1} {:>10.2} {:>8.2}%",
            beta,
            r.avg_power_w,
            r.stats.p99_ns as f64 / MILLISECOND as f64,
            r.stats.timeout_rate() * 100.0
        );
        by_beta.push(r);
    }

    println!("\n## η sweep (x the calibrated default; β=4)");
    println!(
        "{:>6} {:>9} {:>10} {:>9}",
        "eta x", "power(W)", "p99(ms)", "timeout%"
    );
    for &factor in &[0.01, 1.0, 10.0] {
        let r = train_and_eval(4.0, factor, scale);
        println!(
            "{:>6} {:>9.1} {:>10.2} {:>8.2}%",
            factor,
            r.avg_power_w,
            r.stats.p99_ns as f64 / MILLISECOND as f64,
            r.stats.timeout_rate() * 100.0
        );
    }

    // Shape check: a large β must not yield *more* timeouts than a tiny β
    // (the knob the paper describes must act in the right direction).
    // Training noise at reduced scale allows a small tolerance.
    let lo = by_beta.first().unwrap().stats.timeout_rate();
    let hi = by_beta.last().unwrap().stats.timeout_rate();
    assert!(
        hi <= lo + 0.005,
        "raising beta should not increase timeouts ({lo:.4} -> {hi:.4})"
    );
    println!("\n[shape OK] β trades power for QoS in the documented direction");
}
