//! Harness scaling + DDPG update throughput.
//!
//! Two perf claims backing the experiment engine:
//!
//! 1. **Grid scaling** — the work-stealing runner turns independent
//!    rollouts into near-linear wall-clock speedup (and identical
//!    results) as `--threads` grows;
//! 2. **`Ddpg::update` throughput** — the hot training step runs on
//!    fused matmul kernels and reusable scratch batches (no per-update
//!    allocations of batch matrices), reported here as updates/second.

use deeppower_drl::{Ddpg, DdpgConfig, Transition};
use deeppower_harness::{grid, run_grid, summarize, GovernorSpec, WorkloadKind};
use deeppower_workload::App;
use std::time::Instant;

fn main() {
    // ---- 1. grid scaling ----
    // 16 independent non-learning rollouts: pure simulator work, the
    // shape of a seed sweep.
    let jobs = grid(
        &[App::Xapian, App::Masstree],
        &[
            GovernorSpec::MaxFreq,
            GovernorSpec::ThreadController(0.3, 1.0),
        ],
        &[1, 2, 3, 4],
        0.6,
        8,
        WorkloadKind::Diurnal,
    );
    println!(
        "# harness scaling — {} jobs (2 apps x 2 governors x 4 seeds)\n",
        jobs.len()
    );

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let t0 = Instant::now();
    let serial = summarize(run_grid(&jobs, 1)).to_json();
    let t1 = t0.elapsed().as_secs_f64();

    let mut speedup_at_4 = 0.0;
    for threads in [2usize, 4, 8] {
        let t = Instant::now();
        let out = summarize(run_grid(&jobs, threads)).to_json();
        let dt = t.elapsed().as_secs_f64();
        assert_eq!(serial, out, "results changed at {threads} threads");
        let speedup = t1 / dt;
        if threads == 4 {
            speedup_at_4 = speedup;
        }
        println!(
            "threads {threads}: {dt:>6.2} s vs serial {t1:>6.2} s -> {speedup:.2}x (output byte-identical)"
        );
    }
    // The hard property (checked above) is identical output. Wall-clock
    // scaling is only assertable when the machine has cores to scale
    // with — single-core CI boxes run every thread count at ~1.0x.
    if cores >= 4 {
        assert!(
            speedup_at_4 > 1.3,
            "4-thread grid gave only {speedup_at_4:.2}x over serial on {cores} cores"
        );
    } else {
        println!("({cores}-core machine: speedup assertion skipped, determinism still enforced)");
    }

    // ---- 2. Ddpg::update throughput ----
    let cfg = DdpgConfig::default();
    let mut agent = Ddpg::new(cfg);
    let mut x = 0u32;
    let mut noise = move || {
        // Tiny LCG — deterministic filler data, not statistics.
        x = x.wrapping_mul(1664525).wrapping_add(1013904223);
        (x >> 8) as f32 / (1 << 24) as f32
    };
    for _ in 0..4096 {
        agent.observe(Transition {
            state: (0..cfg.state_dim).map(|_| noise()).collect(),
            action: (0..cfg.action_dim).map(|_| noise()).collect(),
            reward: noise() - 0.5,
            next_state: (0..cfg.state_dim).map(|_| noise()).collect(),
            done: false,
        });
    }
    assert!(agent.ready());
    for _ in 0..50 {
        agent.update(); // warm the caches and the scratch buffers
    }
    let n = 2000;
    let t = Instant::now();
    for _ in 0..n {
        agent.update();
    }
    let dt = t.elapsed().as_secs_f64();
    println!(
        "\nDdpg::update (batch {}): {:.0} updates/s ({:.1} us/update)",
        cfg.batch_size,
        n as f64 / dt,
        dt / n as f64 * 1e6
    );
    println!("\n[shape OK] thread count changes wall-clock only, never results");
}
