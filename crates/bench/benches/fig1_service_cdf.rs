//! Fig. 1 — CDF of service time divided by the mean for four
//! latency-critical applications (Xapian, Masstree, Moses, Sphinx).
//!
//! The paper uses this figure to establish the long-tailed service-time
//! distributions that make power management hard: "in the Moses
//! application, tail latency is approximately 8 times larger than the
//! average service time."
//!
//! This bench samples each application's intrinsic service-time model and
//! prints the CDF at the paper's working points plus the p99/mean ratio
//! the text calls out.

use deeppower_bench::Scale;
use deeppower_workload::{App, AppSpec};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let scale = Scale::from_env();
    println!(
        "# Fig. 1 — CDF of service time / mean ({} samples/app)\n",
        scale.dist_samples
    );

    let apps = [App::Xapian, App::Masstree, App::Moses, App::Sphinx];
    let grid: Vec<f64> = vec![0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0];

    println!(
        "{:<10} {}",
        "x=t/mean",
        grid.iter().map(|x| format!("{x:>6.2}")).collect::<String>()
    );
    let mut ratios = Vec::new();
    for app in apps {
        let spec = AppSpec::get(app);
        let mut rng = StdRng::seed_from_u64(1);
        let mut samples: Vec<f64> = (0..scale.dist_samples)
            .map(|i| spec.sample_request(&mut rng, i as u64, 0).work_ref_ns as f64)
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;

        let cdf_at = |x: f64| {
            let t = x * mean;
            let idx = samples.partition_point(|&s| s <= t);
            idx as f64 / samples.len() as f64
        };
        let row: String = grid
            .iter()
            .map(|&x| format!("{:>6.3}", cdf_at(x)))
            .collect();
        println!("{:<10} {row}", spec.name);

        let p99 = samples[(0.99 * samples.len() as f64) as usize];
        ratios.push((spec.name, p99 / mean));
    }

    println!("\np99 / mean ratios (paper: Moses ≈ 8×, the heaviest tail):");
    for (name, r) in &ratios {
        println!("  {name:<10} {r:.2}x");
    }

    // Reproduction checks (shape, not absolute numbers).
    let moses = ratios.iter().find(|(n, _)| *n == "moses").unwrap().1;
    assert!(
        moses > 5.0,
        "Moses tail should be ~8x the mean, got {moses:.2}"
    );
    let heaviest = ratios
        .iter()
        .cloned()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    assert_eq!(heaviest.0, "moses", "Moses must have the heaviest tail");
    println!("\n[shape OK] long-tailed CDFs reproduced; Moses is the heaviest tail");
}
