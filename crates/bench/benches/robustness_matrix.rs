//! Robustness matrix — governors × seeded fault scenarios, each
//! governor run plain and wrapped in the `SafetyGovernor` layer.
//!
//! Three governors probe three behaviours of the safety layer:
//!
//! * `baseline` (max frequency) meets SLA everywhere — the wrapper must
//!   be **bit-transparent** in every scenario.
//! * `thread-controller(0.3, 1.0)` degrades mildly under DVFS faults
//!   (a few % timeouts, below the watchdog threshold) — the wrapper
//!   must **not intervene spuriously**: still bit-transparent.
//! * `thread-controller(0.0, 0.4)` is deliberately fragile (frequency
//!   ceiling at 40 % of the band, hopeless at 70 % load) — the SLA
//!   watchdog must **bound the timeout blow-up** to less than half of
//!   the unwrapped rate, in every scenario.
//!
//! The matrix also carries the three overload scenarios (`retry-storm`,
//! `flash-crowd`, `collapse`): closed-loop clients with bounded queues
//! and seeded retries, fault-free. The safety-transparency and
//! watchdog bounds are asserted over the fault scenarios only — under
//! a retry storm the watchdog may legitimately intervene — while the
//! overload rows are held to their goodput accounting.
//!
//! Cells run at a reduced 6 s duration by default; `DEEPPOWER_FULL=1`
//! raises it to 20 s, and `DEEPPOWER_SMOKE=1` (the CI knob) pins the
//! reduced duration even when `DEEPPOWER_FULL` is set.

use deeppower_bench::Scale;
use deeppower_harness::{robustness_matrix, GovernorSpec, RobustnessRow};
use deeppower_workload::App;

const N_SCENARIOS: usize = 8; // none | dvfs | sensor | stall | all + 3 overload
const N_FAULT: usize = 5; // the fault prefix the safety bounds cover

/// `report.rows` chunked per governor: 8 plain rows then 8 `+safe` rows.
fn chunk(rows: &[RobustnessRow], governor_idx: usize) -> (&[RobustnessRow], &[RobustnessRow]) {
    rows[governor_idx * 2 * N_SCENARIOS..(governor_idx + 1) * 2 * N_SCENARIOS].split_at(N_SCENARIOS)
}

fn assert_transparent(plain: &[RobustnessRow], safe: &[RobustnessRow], what: &str) {
    for (p, s) in plain.iter().zip(safe).take(N_FAULT) {
        assert_eq!(s.governor, format!("{}+safe", p.governor));
        assert_eq!(
            p.avg_power_w.to_bits(),
            s.avg_power_w.to_bits(),
            "{what}/{}: safety wrapper must be bit-transparent",
            p.scenario
        );
        assert_eq!(p.p99_ms.to_bits(), s.p99_ms.to_bits());
        assert_eq!(p.timeout_rate.to_bits(), s.timeout_rate.to_bits());
    }
}

fn main() {
    let scale = Scale::from_env();
    let smoke = std::env::var("DEEPPOWER_SMOKE")
        .map(|v| v != "0")
        .unwrap_or(false);
    let secs = if scale.full && !smoke { 20 } else { 6 };
    let governors = [
        GovernorSpec::MaxFreq,
        GovernorSpec::ThreadController(0.3, 1.0),
        GovernorSpec::ThreadController(0.0, 0.4),
    ];
    let report = robustness_matrix(App::Masstree, &governors, true, 5, 0.7, secs, 0);
    println!("# Robustness matrix — Masstree @ 70 % load, {secs} s per cell\n");
    println!("{}", report.render_table());
    assert_eq!(report.rows.len(), governors.len() * 2 * N_SCENARIOS);

    // Baseline meets SLA everywhere; the sane controller's few-percent
    // timeout rate under DVFS faults stays below the watchdog threshold.
    // In both cases the wrapper must change nothing, down to the bit.
    let (plain, safe) = chunk(&report.rows, 0);
    assert_transparent(plain, safe, "baseline");
    let (plain, safe) = chunk(&report.rows, 1);
    assert!(
        plain[0].timeout_rate < 0.05,
        "sane controller should meet SLA fault-free (timeout {:.4})",
        plain[0].timeout_rate
    );
    assert_transparent(plain, safe, "thread-controller(0.3,1.0)");

    // The fragile controller times out almost everything; the watchdog
    // must cut that to under half — under faults and fault-free alike.
    let (plain, safe) = chunk(&report.rows, 2);
    for (p, s) in plain.iter().zip(safe).take(N_FAULT) {
        assert!(
            p.timeout_rate > 0.5,
            "{}: fragile controller should blow past SLA (timeout {:.4})",
            p.scenario,
            p.timeout_rate
        );
        assert!(
            s.timeout_rate < p.timeout_rate * 0.5,
            "{}: safety layer must cut the timeout rate below half \
             (safe {:.4} vs plain {:.4})",
            p.scenario,
            s.timeout_rate,
            p.timeout_rate
        );
    }
    // Overload rows: fault-free by construction, real goodput
    // accounting, and the bounded queue visibly sheds for the fragile
    // controller under the collapse regime.
    for g in 0..3 {
        let (plain, _) = chunk(&report.rows, g);
        for row in &plain[N_FAULT..] {
            assert_eq!(
                row.faults_injected, 0,
                "{}: overload row injected faults",
                row.scenario
            );
            assert!(
                row.goodput > 0,
                "{}: no goodput under overload",
                row.scenario
            );
        }
    }
    let (fragile, _) = chunk(&report.rows, 2);
    let collapse = fragile
        .iter()
        .find(|r| r.scenario == "collapse")
        .expect("collapse row present");
    assert!(
        collapse.shed > 0,
        "fragile controller under collapse must shed at the bounded queue"
    );
    println!(
        "[bounds OK] wrapper bit-transparent for healthy governors; \
         watchdog halves the fragile controller's timeout rate; \
         overload rows carry goodput/shed accounting"
    );
}
