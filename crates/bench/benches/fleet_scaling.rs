//! Fleet scaling: nodes vs wall-clock, and batched vs per-node actor
//! inference.
//!
//! Three perf claims backing the fleet layer:
//!
//! 1. **Batched inference** — evaluating one shared policy for N node
//!    states as a single `N × 8` matrix–matrix forward pass
//!    (`Ddpg::act_batch`) beats N single-state passes. Asserted
//!    strictly for `N ≥ 8` (best-of-k timing on both sides).
//! 2. **Fleet wall-clock** — the serial lockstep driver scales with
//!    node count roughly linearly in simulated work, and the
//!    parallel driver (`run_fleet_threaded`) buys node scaling that is
//!    *sublinear* in wall-clock on a multi-core host while staying
//!    byte-identical (asserted every run, every node count).
//! 3. **End-to-end batched ≤ reference** — the batched lockstep fleet
//!    must not lose to the per-node inference loop it replaced.
//!    Timed best-of-k with the two drivers alternating, so neither
//!    side pockets the warm-up; emitted as
//!    `batched_over_reference_ratio` for the bench-diff gate.
//! 4. **Heterogeneous fleets** — on a mixed-profile fleet (4×1-core
//!    edge boxes + 2×4-core nodes) the grouped coordinator pass must
//!    not lose to per-node inference (`hetero_grouped_over_pernode_ratio`,
//!    byte-identity asserted), and the hardware-aware PowerAware
//!    balancer must beat capacity-blind round-robin on fleet p99 —
//!    round-robin hands every 1-core node the same share an 8-core
//!    node gets and drowns it.
//!
//! Results are printed as a table and written to
//! `target/fleet-scaling.json` (the CI artifact; the committed
//! `BENCH_fleet.json` at the repo root is the recorded baseline).
//! `DEEPPOWER_SMOKE=1` shrinks reps and durations for CI.

use deeppower_fleet::{
    run_fleet, run_fleet_reference, run_fleet_threaded, untrained_policy, BalancerPolicy,
    FleetSpec, NodeProfile,
};
use deeppower_nn::Matrix;
use deeppower_workload::App;
use std::hint::black_box;
use std::time::Instant;

fn main() {
    let smoke = std::env::var("DEEPPOWER_SMOKE")
        .map(|v| v != "0")
        .unwrap_or(false);
    let policy = untrained_policy(App::Masstree, 1);
    let agent = policy.build_agent();

    // ---- 1. batched vs per-node inference ----
    let (calls_per_block, blocks) = if smoke { (50usize, 3usize) } else { (200, 5) };
    println!("# actor inference — one N x 8 batch vs N single-state passes");
    println!(
        "{:>6} {:>12} {:>12} {:>9}",
        "N", "loop(us)", "batch(us)", "speedup"
    );
    let mut inference_rows = Vec::new();
    for n in [2usize, 8, 32, 128] {
        let mut states = Matrix::zeros(n, 8);
        for i in 0..n {
            let row: Vec<f32> = (0..8)
                .map(|j| ((i * 8 + j) as f32 * 0.37).sin().abs())
                .collect();
            states.set_row(i, &row);
        }
        // Best-of-k block timing on both sides; each block does the
        // same number of *node decisions* (calls_per_block × n rows).
        let mut t_loop = f64::INFINITY;
        let mut t_batch = f64::INFINITY;
        for _ in 0..blocks {
            let t = Instant::now();
            for _ in 0..calls_per_block {
                for i in 0..n {
                    black_box(agent.act(black_box(states.row(i))));
                }
            }
            t_loop = t_loop.min(t.elapsed().as_secs_f64());

            let t = Instant::now();
            for _ in 0..calls_per_block {
                black_box(agent.act_batch(black_box(&states)));
            }
            t_batch = t_batch.min(t.elapsed().as_secs_f64());
        }
        let us = 1e6 / calls_per_block as f64;
        let speedup = t_loop / t_batch;
        println!(
            "{n:>6} {:>12.2} {:>12.2} {:>8.2}x",
            t_loop * us,
            t_batch * us,
            speedup
        );
        // The acceptance bar: one matrix-matrix pass must strictly beat
        // the per-node loop once the fleet is non-trivial.
        if n >= 8 {
            assert!(
                t_batch < t_loop,
                "batched inference not faster at N={n}: batch {t_batch:.6}s vs loop {t_loop:.6}s"
            );
        }
        inference_rows.push(format!(
            "{{\"n\": {n}, \"loop_us\": {:.3}, \"batch_us\": {:.3}, \"speedup\": {:.3}}}",
            t_loop * us,
            t_batch * us,
            speedup
        ));
    }

    // ---- 2. fleet wall-clock vs node count, serial and parallel ----
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let duration_s = if smoke { 3 } else { 12 };
    let node_counts: &[usize] = if smoke {
        &[1, 2, 4, 8]
    } else {
        &[1, 2, 4, 8, 16]
    };
    println!(
        "\n# fleet wall-clock — {duration_s} s simulated, Masstree, round-robin, {cores} cores"
    );
    println!(
        "{:>6} {:>10} {:>12} {:>9} {:>12} {:>14}",
        "nodes", "wall(s)", "parallel(s)", "speedup", "requests", "ms/node-epoch"
    );
    let mut fleet_rows = Vec::new();
    let mut parallel_walls = std::collections::BTreeMap::new();
    let scale_rounds = 2;
    for &nodes in node_counts {
        let spec = FleetSpec::uniform(
            App::Masstree,
            nodes,
            BalancerPolicy::RoundRobin,
            7,
            0.4,
            duration_s,
        );
        // Alternating best-of-k, like section 3: a cold first run can
        // be 2-3× slower than steady state, so single-shot serial-then-
        // parallel timing would credit the parallel driver with the
        // warm-up it didn't pay.
        let mut wall = f64::INFINITY;
        let mut wall_par = f64::INFINITY;
        let mut requests = 0u64;
        let mut epochs = 0u64;
        for round in 0..scale_rounds {
            let t = Instant::now();
            let res = run_fleet(&spec, &policy);
            wall = wall.min(t.elapsed().as_secs_f64());
            let t = Instant::now();
            let par = run_fleet_threaded(&spec, &policy, 0);
            wall_par = wall_par.min(t.elapsed().as_secs_f64());
            // The determinism contract is asserted every size — the
            // speedup is worthless if the bytes drift.
            if round == 0 {
                assert_eq!(
                    res.to_json(),
                    par.to_json(),
                    "parallel fleet diverged from serial at {nodes} nodes"
                );
                requests = res.total_requests;
                epochs = res.drl_epochs;
            }
        }
        let speedup = wall / wall_par;
        parallel_walls.insert(nodes, wall_par);
        let per_epoch_ms = wall * 1e3 / (epochs as f64 * nodes as f64);
        println!(
            "{nodes:>6} {wall:>10.2} {wall_par:>12.2} {speedup:>8.2}x {requests:>12} {per_epoch_ms:>14.3}"
        );
        fleet_rows.push(format!(
            "{{\"nodes\": {nodes}, \"wall_s\": {wall:.3}, \"parallel_s\": {wall_par:.3}, \"speedup\": {speedup:.3}, \"requests\": {requests}, \"epochs\": {epochs}}}"
        ));
    }
    // Acceptance bar for the parallel engine: quadrupling the fleet
    // from 4 to 16 nodes costs < 2.5× wall-clock when cores exist to
    // spread over. Single-core hosts still verified byte-identity above.
    if cores >= 4 {
        if let (Some(&w4), Some(&w16)) = (parallel_walls.get(&4), parallel_walls.get(&16)) {
            assert!(
                w16 < 2.5 * w4,
                "parallel fleet scaling is not sublinear: 16 nodes {w16:.2}s vs 4 nodes {w4:.2}s"
            );
        }
    } else {
        println!("({cores}-core machine: sublinear-scaling assertion skipped, determinism still enforced)");
    }

    // ---- 3. end-to-end batched vs reference at N = 8 ----
    // Best-of-k with the two drivers alternating inside each round, so
    // cache/allocator warm-up lands on both sides equally (single-shot
    // timing here once let the batched path "lose" 2.5% purely to
    // running first, cold).
    let spec = FleetSpec::uniform(
        App::Masstree,
        8,
        BalancerPolicy::RoundRobin,
        7,
        0.4,
        duration_s,
    );
    let rounds = if smoke { 3 } else { 5 };
    let mut wall_batched = f64::INFINITY;
    let mut wall_reference = f64::INFINITY;
    let mut checked = false;
    for _ in 0..rounds {
        let t = Instant::now();
        let batched = run_fleet(&spec, &policy);
        wall_batched = wall_batched.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        let reference = run_fleet_reference(&spec, &policy);
        wall_reference = wall_reference.min(t.elapsed().as_secs_f64());
        if !checked {
            assert_eq!(
                batched.to_json(),
                reference.to_json(),
                "batched fleet drifted from the per-node reference"
            );
            checked = true;
        }
    }
    let ratio = wall_batched / wall_reference;
    // Pathology guard, not a noise gate: the two drivers do identical
    // engine work and differ only in microseconds of inference per
    // epoch, so the true ratio is ~1.0 and anything ≥ 1.10 means the
    // batched path grew real overhead (the PR-4 regression shape). The
    // recorded ratio feeds the tolerance-padded bench-diff unity gate.
    assert!(
        ratio <= 1.10,
        "batched fleet lost to the per-node reference: {wall_batched:.3}s vs {wall_reference:.3}s ({ratio:.3}x)"
    );
    println!(
        "\n# end-to-end at 8 nodes: batched {wall_batched:.2} s vs per-node loop {wall_reference:.2} s, ratio {ratio:.3} (results byte-identical, best of {rounds})"
    );

    // ---- 4. heterogeneous fleet: grouped inference + hardware-aware balancing ----
    // Mixed hardware: 4 one-core edge boxes next to 2 four-core nodes,
    // 8 cores of true capacity under a trace sized for the node count.
    // `peak_load` 0.12 puts the capacity-weighted split at ~0.72 load
    // per core at peak while round-robin drives each 1-core node to
    // ~0.96 — saturated but not in the everything-times-out regime
    // where all balancers look alike.
    let hetero = |balancer| {
        FleetSpec::uniform(App::Masstree, 0, balancer, 7, 0.12, duration_s).with_profiles(vec![
            NodeProfile {
                name: "edge-1c".into(),
                max_mhz: 1500,
                ..NodeProfile::paper_default(1, 4)
            },
            NodeProfile {
                name: "quad".into(),
                ..NodeProfile::paper_default(4, 2)
            },
        ])
    };

    // 4a. grouped coordinator pass vs per-node inference, alternating
    // best-of-k, byte-identity asserted — the heterogeneous analogue of
    // section 3's unity gate.
    let spec_pa = hetero(BalancerPolicy::PowerAware);
    let mut wall_grouped = f64::INFINITY;
    let mut wall_pernode = f64::INFINITY;
    let mut checked = false;
    for _ in 0..rounds {
        let t = Instant::now();
        let grouped = run_fleet(&spec_pa, &policy);
        wall_grouped = wall_grouped.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        let pernode = run_fleet_reference(&spec_pa, &policy);
        wall_pernode = wall_pernode.min(t.elapsed().as_secs_f64());
        if !checked {
            assert_eq!(
                grouped.to_json(),
                pernode.to_json(),
                "grouped hetero fleet drifted from the per-node reference"
            );
            checked = true;
        }
    }
    let hetero_ratio = wall_grouped / wall_pernode;
    assert!(
        hetero_ratio <= 1.10,
        "grouped hetero inference lost to per-node: {wall_grouped:.3}s vs {wall_pernode:.3}s ({hetero_ratio:.3}x)"
    );

    // 4b. hardware-aware balancing must pay off on the mixed fleet.
    let pa = run_fleet(&spec_pa, &policy);
    let rr = run_fleet(&hetero(BalancerPolicy::RoundRobin), &policy);
    assert!(
        pa.fleet_p99_ms <= rr.fleet_p99_ms,
        "PowerAware did not beat round-robin on the mixed fleet: p99 {:.2} ms vs {:.2} ms",
        pa.fleet_p99_ms,
        rr.fleet_p99_ms
    );
    println!(
        "\n# heterogeneous fleet (4x edge-1c + 2x quad): grouped {wall_grouped:.2} s vs per-node {wall_pernode:.2} s, ratio {hetero_ratio:.3} (byte-identical, best of {rounds})"
    );
    println!(
        "#   balancer p99: power-aware {:.2} ms vs round-robin {:.2} ms",
        pa.fleet_p99_ms, rr.fleet_p99_ms
    );

    let json = format!(
        "{{\n  \"smoke\": {smoke},\n  \"inference\": [{}],\n  \"fleet\": [{}],\n  \"end_to_end_8_nodes\": {{\"batched_s\": {wall_batched:.3}, \"reference_s\": {wall_reference:.3}, \"batched_over_reference_ratio\": {ratio:.3}}},\n  \"hetero\": {{\"grouped_s\": {wall_grouped:.3}, \"pernode_s\": {wall_pernode:.3}, \"hetero_grouped_over_pernode_ratio\": {hetero_ratio:.3}, \"power_aware_p99_ms\": {:.3}, \"round_robin_p99_ms\": {:.3}}}\n}}\n",
        inference_rows.join(", "),
        fleet_rows.join(", "),
        pa.fleet_p99_ms,
        rr.fleet_p99_ms
    );
    let out =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/fleet-scaling.json");
    if let Err(e) = deeppower_telemetry::atomic_write(&out, json) {
        eprintln!("warning: could not write {}: {e}", out.display());
    } else {
        println!("report written to {}", out.display());
    }
}
