//! Fleet scaling: nodes vs wall-clock, and batched vs per-node actor
//! inference.
//!
//! Two perf claims backing the fleet layer:
//!
//! 1. **Batched inference** — evaluating one shared policy for N node
//!    states as a single `N × 8` matrix–matrix forward pass
//!    (`Ddpg::act_batch`) beats N single-state passes. Asserted
//!    strictly for `N ≥ 8` (best-of-k timing on both sides).
//! 2. **Fleet wall-clock** — the lockstep fleet driver scales with
//!    node count roughly linearly in simulated work: doubling the
//!    fleet roughly doubles (not squares) wall time.
//!
//! Results are printed as a table and written to
//! `target/fleet-scaling.json` (the CI artifact; the committed
//! `BENCH_fleet.json` at the repo root is the recorded baseline).
//! `DEEPPOWER_SMOKE=1` shrinks reps and durations for CI.

use deeppower_fleet::{
    run_fleet, run_fleet_reference, untrained_policy, BalancerPolicy, FleetSpec,
};
use deeppower_nn::Matrix;
use deeppower_workload::App;
use std::hint::black_box;
use std::time::Instant;

fn main() {
    let smoke = std::env::var("DEEPPOWER_SMOKE")
        .map(|v| v != "0")
        .unwrap_or(false);
    let policy = untrained_policy(App::Masstree, 1);
    let agent = policy.build_agent();

    // ---- 1. batched vs per-node inference ----
    let (calls_per_block, blocks) = if smoke { (50usize, 3usize) } else { (200, 5) };
    println!("# actor inference — one N x 8 batch vs N single-state passes");
    println!(
        "{:>6} {:>12} {:>12} {:>9}",
        "N", "loop(us)", "batch(us)", "speedup"
    );
    let mut inference_rows = Vec::new();
    for n in [2usize, 8, 32, 128] {
        let mut states = Matrix::zeros(n, 8);
        for i in 0..n {
            let row: Vec<f32> = (0..8)
                .map(|j| ((i * 8 + j) as f32 * 0.37).sin().abs())
                .collect();
            states.set_row(i, &row);
        }
        // Best-of-k block timing on both sides; each block does the
        // same number of *node decisions* (calls_per_block × n rows).
        let mut t_loop = f64::INFINITY;
        let mut t_batch = f64::INFINITY;
        for _ in 0..blocks {
            let t = Instant::now();
            for _ in 0..calls_per_block {
                for i in 0..n {
                    black_box(agent.act(black_box(states.row(i))));
                }
            }
            t_loop = t_loop.min(t.elapsed().as_secs_f64());

            let t = Instant::now();
            for _ in 0..calls_per_block {
                black_box(agent.act_batch(black_box(&states)));
            }
            t_batch = t_batch.min(t.elapsed().as_secs_f64());
        }
        let us = 1e6 / calls_per_block as f64;
        let speedup = t_loop / t_batch;
        println!(
            "{n:>6} {:>12.2} {:>12.2} {:>8.2}x",
            t_loop * us,
            t_batch * us,
            speedup
        );
        // The acceptance bar: one matrix-matrix pass must strictly beat
        // the per-node loop once the fleet is non-trivial.
        if n >= 8 {
            assert!(
                t_batch < t_loop,
                "batched inference not faster at N={n}: batch {t_batch:.6}s vs loop {t_loop:.6}s"
            );
        }
        inference_rows.push(format!(
            "{{\"n\": {n}, \"loop_us\": {:.3}, \"batch_us\": {:.3}, \"speedup\": {:.3}}}",
            t_loop * us,
            t_batch * us,
            speedup
        ));
    }

    // ---- 2. fleet wall-clock vs node count ----
    let duration_s = if smoke { 3 } else { 12 };
    let node_counts: &[usize] = if smoke {
        &[1, 2, 4, 8]
    } else {
        &[1, 2, 4, 8, 16]
    };
    println!("\n# fleet wall-clock — {duration_s} s simulated, Masstree, round-robin");
    println!(
        "{:>6} {:>10} {:>12} {:>14}",
        "nodes", "wall(s)", "requests", "ms/node-epoch"
    );
    let mut fleet_rows = Vec::new();
    for &nodes in node_counts {
        let spec = FleetSpec {
            app: App::Masstree,
            nodes,
            balancer: BalancerPolicy::RoundRobin,
            seed: 7,
            peak_load: 0.4,
            duration_s,
        };
        let t = Instant::now();
        let res = run_fleet(&spec, &policy);
        let wall = t.elapsed().as_secs_f64();
        let per_epoch_ms = wall * 1e3 / (res.drl_epochs as f64 * nodes as f64);
        println!(
            "{nodes:>6} {wall:>10.2} {:>12} {per_epoch_ms:>14.3}",
            res.total_requests
        );
        fleet_rows.push(format!(
            "{{\"nodes\": {nodes}, \"wall_s\": {wall:.3}, \"requests\": {}, \"epochs\": {}}}",
            res.total_requests, res.drl_epochs
        ));
    }

    // ---- 3. end-to-end batched vs reference at N = 8 ----
    let spec = FleetSpec {
        app: App::Masstree,
        nodes: 8,
        balancer: BalancerPolicy::RoundRobin,
        seed: 7,
        peak_load: 0.4,
        duration_s,
    };
    let t = Instant::now();
    let batched = run_fleet(&spec, &policy);
    let wall_batched = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let reference = run_fleet_reference(&spec, &policy);
    let wall_reference = t.elapsed().as_secs_f64();
    assert_eq!(
        batched.to_json(),
        reference.to_json(),
        "batched fleet drifted from the per-node reference"
    );
    println!(
        "\n# end-to-end at 8 nodes: batched {wall_batched:.2} s vs per-node loop {wall_reference:.2} s (results byte-identical)"
    );

    let json = format!(
        "{{\n  \"smoke\": {smoke},\n  \"inference\": [{}],\n  \"fleet\": [{}],\n  \"end_to_end_8_nodes\": {{\"batched_s\": {wall_batched:.3}, \"reference_s\": {wall_reference:.3}}}\n}}\n",
        inference_rows.join(", "),
        fleet_rows.join(", ")
    );
    let out =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/fleet-scaling.json");
    if let Err(e) = deeppower_telemetry::atomic_write(&out, json) {
        eprintln!("warning: could not write {}: {e}", out.display());
    } else {
        println!("report written to {}", out.display());
    }
}
