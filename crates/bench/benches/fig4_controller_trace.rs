//! Fig. 4 — millisecond-level frequency of one core under the thread
//! controller during 2 seconds of Xapian, with request start/end marks and
//! a parameter update mid-window.
//!
//! The figure demonstrates Algorithm 1's signature behaviour: frequency
//! sits at the BaseFreq level while idle, ramps up during request
//! processing (slope set by ScalingCoef), and resets when a request
//! completes.
//!
//! The series is reconstructed from the telemetry event stream
//! (`FreqTransition` + `RequestDispatch`/`RequestComplete`) rather than
//! the legacy sampled trace, so the bench exercises the same artifact
//! pipeline as `deeppower trace`.

use deeppower_bench::{downsample, sparkline};
use deeppower_core::{ControllerParams, ThreadController};
use deeppower_simd_server::{
    FreqCommands, Governor, RunOptions, Server, ServerConfig, ServerView, TraceConfig, MILLISECOND,
    SECOND,
};
use deeppower_telemetry::{freq_series, Event, Recorder};
use deeppower_workload::{constant_rate_arrivals, App, AppSpec};

/// Thread controller whose parameters switch at a fixed time — the red
/// dotted "parameter updated" line of Fig. 4.
struct SwitchingController {
    tc: ThreadController,
    switch_at: u64,
    after: ControllerParams,
}

impl Governor for SwitchingController {
    fn on_tick(&mut self, view: &ServerView<'_>, cmds: &mut FreqCommands) {
        if view.now >= self.switch_at {
            self.tc.params = self.after;
        }
        self.tc.scale_all(view, cmds);
    }
}

fn main() {
    let spec = AppSpec::get(App::Xapian);
    // One core so the trace is a single line, as in the figure.
    let server = Server::new(ServerConfig::paper_default(1));
    // Modest load so idle gaps are visible between requests.
    let arrivals = constant_rate_arrivals(&spec, 120.0, 2 * SECOND, 77);

    let mut gov = SwitchingController {
        tc: ThreadController::new(ControllerParams::new(0.25, 0.9)),
        switch_at: SECOND, // parameter update at t = 1 s
        after: ControllerParams::new(0.45, 0.5),
    };
    // One core x 1 ms ticks x 2 s => at most ~2k transitions, plus two
    // marks per request; 1 << 14 leaves ample headroom.
    let rec = Recorder::ring(1 << 14);
    let _res = server.run_recorded(
        &arrivals,
        &mut gov,
        RunOptions {
            tick_ns: MILLISECOND,
            trace: TraceConfig::millisecond(),
            ..Default::default()
        },
        &rec,
    );
    let events = rec.drain_events();
    assert_eq!(rec.dropped_events(), 0, "event ring must not overflow");

    println!("# Fig. 4 — per-ms frequency of core 0 over 2 s (Xapian)");
    println!("# params: (BaseFreq 0.25, ScalingCoef 0.9) -> (0.45, 0.5) at t=1s\n");

    let freqs: Vec<f64> = freq_series(
        &events,
        0,
        server.config().initial_mhz,
        2 * SECOND - MILLISECOND,
        MILLISECOND,
    )
    .iter()
    .map(|&(_, f)| f as f64)
    .collect();
    for (i, chunk) in freqs.chunks(250).enumerate() {
        println!("{:>5} ms |{}|", i * 250, sparkline(&downsample(chunk, 100)));
    }

    let starts = events
        .iter()
        .filter(|ev| matches!(ev, Event::RequestDispatch(d) if d.t < 2 * SECOND))
        .count();
    let ends = events
        .iter()
        .filter(|ev| matches!(ev, Event::RequestComplete(c) if c.t < 2 * SECOND))
        .count();
    println!("\nrequest marks in window: {starts} starts (green), {ends} ends (blue)");

    // Shape checks.
    let first_half: Vec<f64> = freqs[..1000.min(freqs.len())].to_vec();
    let second_half: Vec<f64> = freqs[1000.min(freqs.len())..].to_vec();
    let min1 = first_half.iter().cloned().fold(f64::INFINITY, f64::min);
    let min2 = second_half.iter().cloned().fold(f64::INFINITY, f64::min);
    // Idle level follows BaseFreq: 0.25 → ~1100 MHz, 0.45 → ~1400 MHz.
    assert!(
        min1 < min2,
        "idle frequency must rise after the BaseFreq increase ({min1} vs {min2})"
    );
    let max1 = first_half.iter().cloned().fold(0.0, f64::max);
    assert!(
        max1 > min1 + 200.0,
        "frequency must ramp during request processing"
    );
    assert!(starts > 50, "window should contain many request marks");
    println!("[shape OK] idle level tracks BaseFreq; ramps during processing; marks present");
}
