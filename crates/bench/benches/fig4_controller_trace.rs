//! Fig. 4 — millisecond-level frequency of one core under the thread
//! controller during 2 seconds of Xapian, with request start/end marks and
//! a parameter update mid-window.
//!
//! The figure demonstrates Algorithm 1's signature behaviour: frequency
//! sits at the BaseFreq level while idle, ramps up during request
//! processing (slope set by ScalingCoef), and resets when a request
//! completes.

use deeppower_bench::{downsample, sparkline};
use deeppower_core::{ControllerParams, ThreadController};
use deeppower_simd_server::{
    FreqCommands, Governor, RunOptions, Server, ServerConfig, ServerView, TraceConfig, MILLISECOND,
    SECOND,
};
use deeppower_workload::{constant_rate_arrivals, App, AppSpec};

/// Thread controller whose parameters switch at a fixed time — the red
/// dotted "parameter updated" line of Fig. 4.
struct SwitchingController {
    tc: ThreadController,
    switch_at: u64,
    after: ControllerParams,
}

impl Governor for SwitchingController {
    fn on_tick(&mut self, view: &ServerView<'_>, cmds: &mut FreqCommands) {
        if view.now >= self.switch_at {
            self.tc.params = self.after;
        }
        self.tc.scale_all(view, cmds);
    }
}

fn main() {
    let spec = AppSpec::get(App::Xapian);
    // One core so the trace is a single line, as in the figure.
    let server = Server::new(ServerConfig::paper_default(1));
    // Modest load so idle gaps are visible between requests.
    let arrivals = constant_rate_arrivals(&spec, 120.0, 2 * SECOND, 77);

    let mut gov = SwitchingController {
        tc: ThreadController::new(ControllerParams::new(0.25, 0.9)),
        switch_at: SECOND, // parameter update at t = 1 s
        after: ControllerParams::new(0.45, 0.5),
    };
    let res = server.run(
        &arrivals,
        &mut gov,
        RunOptions {
            tick_ns: MILLISECOND,
            trace: TraceConfig::millisecond(),
        },
    );

    println!("# Fig. 4 — per-ms frequency of core 0 over 2 s (Xapian)");
    println!("# params: (BaseFreq 0.25, ScalingCoef 0.9) -> (0.45, 0.5) at t=1s\n");

    let freqs: Vec<f64> = res
        .traces
        .freq
        .iter()
        .filter(|&&(t, c, _)| c == 0 && t < 2 * SECOND)
        .map(|&(_, _, f)| f as f64)
        .collect();
    for (i, chunk) in freqs.chunks(250).enumerate() {
        println!("{:>5} ms |{}|", i * 250, sparkline(&downsample(chunk, 100)));
    }

    let starts = res
        .traces
        .marks
        .iter()
        .filter(|m| m.3 && m.0 < 2 * SECOND)
        .count();
    let ends = res
        .traces
        .marks
        .iter()
        .filter(|m| !m.3 && m.0 < 2 * SECOND)
        .count();
    println!("\nrequest marks in window: {starts} starts (green), {ends} ends (blue)");

    // Shape checks.
    let first_half: Vec<f64> = freqs[..1000.min(freqs.len())].to_vec();
    let second_half: Vec<f64> = freqs[1000.min(freqs.len())..].to_vec();
    let min1 = first_half.iter().cloned().fold(f64::INFINITY, f64::min);
    let min2 = second_half.iter().cloned().fold(f64::INFINITY, f64::min);
    // Idle level follows BaseFreq: 0.25 → ~1100 MHz, 0.45 → ~1400 MHz.
    assert!(
        min1 < min2,
        "idle frequency must rise after the BaseFreq increase ({min1} vs {min2})"
    );
    let max1 = first_half.iter().cloned().fold(0.0, f64::max);
    assert!(
        max1 > min1 + 200.0,
        "frequency must ramp during request processing"
    );
    assert!(starts > 50, "window should contain many request marks");
    println!("[shape OK] idle level tracks BaseFreq; ramps during processing; marks present");
}
