//! Figs. 9 & 10 — per-core frequency traces during the run, per policy:
//! Xapian (ms-scale requests, Fig. 9) and Sphinx (second-scale requests,
//! Fig. 10).
//!
//! The paper's qualitative claim: "DeepPower achieves fine-grained control
//! by gradually scaling up the frequency during the request's processing
//! … the frequency is not boosted to its maximum level most of the time.
//! Conversely, Retail and Gemini select the frequency at a coarser
//! granularity (once or twice per request)," spending far more time at
//! max/turbo.
//!
//! This bench quantifies that: per policy it reports the number of
//! distinct frequency levels exercised, the frequency-transition count,
//! and the fraction of busy samples at max-or-turbo.

use deeppower_baselines::{
    collect_profile, GeminiConfig, GeminiGovernor, RetailConfig, RetailGovernor,
};
use deeppower_bench::{default_trained_policy, downsample, sparkline, Scale};
use deeppower_core::train::{default_peak_load, trace_for};
use deeppower_core::{DeepPowerGovernor, Mode};
use deeppower_simd_server::{FreqPlan, RunOptions, Server, ServerConfig, SimResult, TraceConfig};
use deeppower_workload::{trace_arrivals, App, AppSpec};

struct PolicyTrace {
    name: &'static str,
    distinct_levels: usize,
    transitions: u64,
    frac_at_max: f64,
    mean_freq: f64,
    core0: Vec<f64>,
}

fn summarize(name: &'static str, res: &SimResult) -> PolicyTrace {
    let mut levels = std::collections::HashSet::new();
    let mut at_max = 0usize;
    let mut total = 0usize;
    let mut sum = 0.0;
    let mut core0 = Vec::new();
    for &(_, core, f) in &res.traces.freq {
        levels.insert(f);
        if f >= 2100 {
            at_max += 1;
        }
        total += 1;
        sum += f as f64;
        if core == 0 {
            core0.push(f as f64);
        }
    }
    PolicyTrace {
        name,
        distinct_levels: levels.len(),
        transitions: res.freq_transitions,
        frac_at_max: at_max as f64 / total.max(1) as f64,
        mean_freq: sum / total.max(1) as f64,
        core0,
    }
}

fn run_app(app: App, window_s: u64, scale: Scale) -> Vec<PolicyTrace> {
    let spec = AppSpec::get(app);
    let server = Server::new(ServerConfig::paper_default(spec.n_threads));
    let trace = trace_for(&spec, default_peak_load(app), window_s, 999);
    let arrivals = trace_arrivals(&spec, &trace, 4242);
    let profile = collect_profile(&spec, 0.5, 3, 77);
    let opts = RunOptions {
        trace: TraceConfig::millisecond(),
        ..Default::default()
    };

    let policy = default_trained_policy(app, scale);
    let mut agent = policy.build_agent();
    let mut dp = DeepPowerGovernor::new(&mut agent, policy.deeppower, Mode::Eval);
    let r_dp = server.run(
        &arrivals,
        &mut dp,
        RunOptions {
            tick_ns: policy.deeppower.short_time,
            trace: TraceConfig::millisecond(),
        },
    );

    let mut retail = RetailGovernor::train(
        &profile,
        FreqPlan::xeon_gold_5218r(),
        RetailConfig::default(),
    );
    let r_retail = server.run(&arrivals, &mut retail, opts);

    let mut gemini = GeminiGovernor::train(
        &profile,
        FreqPlan::xeon_gold_5218r(),
        spec.n_threads,
        GeminiConfig::default(),
        5,
    );
    let r_gemini = server.run(&arrivals, &mut gemini, opts);

    vec![
        summarize("deeppower", &r_dp),
        summarize("retail", &r_retail),
        summarize("gemini", &r_gemini),
    ]
}

fn main() {
    let scale = Scale::from_env();
    for (fig, app, window_s) in [("Fig. 9", App::Xapian, 10), ("Fig. 10", App::Sphinx, 20)] {
        let spec = AppSpec::get(app);
        println!(
            "# {fig} — frequency traces, {} ({window_s} s window)\n",
            spec.name
        );
        let rows = run_app(app, window_s, scale);
        println!(
            "{:<11} {:>8} {:>12} {:>10} {:>11}",
            "policy", "levels", "transitions", "%at>=max", "mean(MHz)"
        );
        for r in &rows {
            println!(
                "{:<11} {:>8} {:>12} {:>9.1}% {:>11.0}",
                r.name,
                r.distinct_levels,
                r.transitions,
                r.frac_at_max * 100.0,
                r.mean_freq
            );
        }
        for r in &rows {
            println!("{:<11}|{}|", r.name, sparkline(&downsample(&r.core0, 90)));
        }

        // Shape checks per the paper's narrative: DeepPower ramps through
        // a rich set of levels and — unlike Gemini's boost-to-max second
        // stage — does not camp on the maximum frequency.
        let dp = &rows[0];
        let gemini = &rows[2];
        assert!(
            dp.distinct_levels >= 8,
            "DeepPower should ramp through many levels, used {}",
            dp.distinct_levels
        );
        assert!(
            dp.frac_at_max < 0.5,
            "DeepPower should not live at max frequency ({:.2})",
            dp.frac_at_max
        );
        assert!(
            dp.frac_at_max < gemini.frac_at_max,
            "DeepPower must spend less time boosted than Gemini ({:.2} vs {:.2})",
            dp.frac_at_max,
            gemini.frac_at_max
        );
        println!("[shape OK] DeepPower ramps through many levels and avoids the max plateau\n");
    }
}
