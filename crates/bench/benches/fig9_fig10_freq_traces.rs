//! Figs. 9 & 10 — per-core frequency traces during the run, per policy:
//! Xapian (ms-scale requests, Fig. 9) and Sphinx (second-scale requests,
//! Fig. 10).
//!
//! The paper's qualitative claim: "DeepPower achieves fine-grained control
//! by gradually scaling up the frequency during the request's processing
//! … the frequency is not boosted to its maximum level most of the time.
//! Conversely, Retail and Gemini select the frequency at a coarser
//! granularity (once or twice per request)," spending far more time at
//! max/turbo.
//!
//! This bench quantifies that: per policy it reports the number of
//! distinct frequency levels exercised, the frequency-transition count,
//! and the (time-weighted) fraction of core-time at max-or-turbo. All
//! series derive from the telemetry event stream — `CoreResidency` for
//! the dwell-time aggregates, `FreqTransition` for core 0's sparkline —
//! the same artifact `deeppower trace` writes.

use deeppower_baselines::{
    collect_profile, GeminiConfig, GeminiGovernor, RetailConfig, RetailGovernor,
};
use deeppower_bench::{default_trained_policy, downsample, sparkline, Scale};
use deeppower_core::train::{default_peak_load, trace_for};
use deeppower_core::{DeepPowerGovernor, Mode};
use deeppower_simd_server::{
    FreqPlan, Governor, Request, RunOptions, Server, ServerConfig, TraceConfig, MILLISECOND, SECOND,
};
use deeppower_telemetry::{freq_series, Event, Recorder};
use deeppower_workload::{trace_arrivals, App, AppSpec};

struct PolicyTrace {
    name: &'static str,
    distinct_levels: usize,
    transitions: u64,
    frac_at_max: f64,
    mean_freq: f64,
    core0: Vec<f64>,
}

/// Run `gov` with a recorder and reduce the event stream to the
/// figure's aggregates. Time-weighted stats come from `CoreResidency`
/// (exact dwell times, not ms samples).
fn run_traced(
    name: &'static str,
    server: &Server,
    arrivals: &[Request],
    gov: &mut dyn Governor,
    opts: RunOptions,
    window_s: u64,
) -> PolicyTrace {
    let rec = Recorder::ring(1 << 20);
    let res = server.run_recorded(arrivals, gov, opts, &rec);
    let events = rec.drain_events();
    assert_eq!(rec.dropped_events(), 0, "event ring must not overflow");

    let mut levels = std::collections::HashSet::new();
    let mut ns_at_max = 0u64;
    let mut ns_total = 0u64;
    let mut mhz_ns = 0.0f64;
    for ev in &events {
        if let Event::CoreResidency(r) = ev {
            levels.insert(r.mhz);
            if r.mhz >= 2100 {
                ns_at_max += r.ns;
            }
            ns_total += r.ns;
            mhz_ns += r.mhz as f64 * r.ns as f64;
        }
    }
    let core0 = freq_series(
        &events,
        0,
        server.config().initial_mhz,
        window_s * SECOND,
        MILLISECOND,
    )
    .iter()
    .map(|&(_, f)| f as f64)
    .collect();
    PolicyTrace {
        name,
        distinct_levels: levels.len(),
        transitions: res.freq_transitions,
        frac_at_max: ns_at_max as f64 / ns_total.max(1) as f64,
        mean_freq: mhz_ns / ns_total.max(1) as f64,
        core0,
    }
}

fn run_app(app: App, window_s: u64, scale: Scale) -> Vec<PolicyTrace> {
    let spec = AppSpec::get(app);
    let server = Server::new(ServerConfig::paper_default(spec.n_threads));
    let trace = trace_for(&spec, default_peak_load(app), window_s, 999);
    let arrivals = trace_arrivals(&spec, &trace, 4242);
    let profile = collect_profile(&spec, 0.5, 3, 77);
    let opts = RunOptions {
        trace: TraceConfig::millisecond(),
        ..Default::default()
    };

    let policy = default_trained_policy(app, scale);
    let mut agent = policy.build_agent();
    let mut dp = DeepPowerGovernor::new(&mut agent, policy.deeppower, Mode::Eval);
    let r_dp = run_traced(
        "deeppower",
        &server,
        &arrivals,
        &mut dp,
        RunOptions {
            tick_ns: policy.deeppower.short_time,
            trace: TraceConfig::millisecond(),
            ..Default::default()
        },
        window_s,
    );

    let mut retail = RetailGovernor::train(
        &profile,
        FreqPlan::xeon_gold_5218r(),
        RetailConfig::default(),
    );
    let r_retail = run_traced("retail", &server, &arrivals, &mut retail, opts, window_s);

    let mut gemini = GeminiGovernor::train(
        &profile,
        FreqPlan::xeon_gold_5218r(),
        spec.n_threads,
        GeminiConfig::default(),
        5,
    );
    let r_gemini = run_traced("gemini", &server, &arrivals, &mut gemini, opts, window_s);

    vec![r_dp, r_retail, r_gemini]
}

fn main() {
    let scale = Scale::from_env();
    for (fig, app, window_s) in [("Fig. 9", App::Xapian, 10), ("Fig. 10", App::Sphinx, 20)] {
        let spec = AppSpec::get(app);
        println!(
            "# {fig} — frequency traces, {} ({window_s} s window)\n",
            spec.name
        );
        let rows = run_app(app, window_s, scale);
        println!(
            "{:<11} {:>8} {:>12} {:>10} {:>11}",
            "policy", "levels", "transitions", "%at>=max", "mean(MHz)"
        );
        for r in &rows {
            println!(
                "{:<11} {:>8} {:>12} {:>9.1}% {:>11.0}",
                r.name,
                r.distinct_levels,
                r.transitions,
                r.frac_at_max * 100.0,
                r.mean_freq
            );
        }
        for r in &rows {
            println!("{:<11}|{}|", r.name, sparkline(&downsample(&r.core0, 90)));
        }

        // Shape checks per the paper's narrative: DeepPower ramps through
        // a rich set of levels and — unlike Gemini's boost-to-max second
        // stage — does not camp on the maximum frequency.
        let dp = &rows[0];
        let gemini = &rows[2];
        assert!(
            dp.distinct_levels >= 8,
            "DeepPower should ramp through many levels, used {}",
            dp.distinct_levels
        );
        assert!(
            dp.frac_at_max < 0.5,
            "DeepPower should not live at max frequency ({:.2})",
            dp.frac_at_max
        );
        assert!(
            dp.frac_at_max < gemini.frac_at_max,
            "DeepPower must spend less time boosted than Gemini ({:.2} vs {:.2})",
            dp.frac_at_max,
            gemini.frac_at_max
        );
        println!("[shape OK] DeepPower ramps through many levels and avoids the max plateau\n");
    }
}
