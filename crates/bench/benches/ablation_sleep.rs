//! Extension — sleep states (the paper's future work, §6).
//!
//! "Entering the sleep state significantly reduces the power consumption
//! of a core, but returning it to normal state takes a considerable amount
//! of time (i.e. about 100us for C6 state). As a result, utilizing the
//! sleep state carries the risk of request timeouts. … We leave this to
//! future work."
//!
//! This bench implements that future work and quantifies both sides of
//! the trade-off on top of the trained DeepPower policy:
//!
//! * Xapian (8 ms SLA ≫ 100 µs wake): sleep states recover additional idle
//!   power at negligible QoS cost;
//! * Masstree (1 ms SLA, 10× the C6 wake): the wake latency visibly eats
//!   into the budget — the "risk of request timeouts" the paper warns
//!   about.

use deeppower_bench::{default_trained_policy, Scale};
use deeppower_core::train::{default_peak_load, trace_for};
use deeppower_core::{DeepPowerGovernor, Mode, SleepAware, SleepPolicy};
use deeppower_simd_server::{RunOptions, Server, ServerConfig, MILLISECOND};
use deeppower_workload::{trace_arrivals, App, AppSpec};

fn main() {
    let scale = Scale::from_env();
    println!("# Extension — DeepPower + C-states (C1 @ 2 us, C6 @ 100 us wake)\n");

    let mut xapian_saving = 0.0;
    let mut masstree_penalty = 0.0;
    for app in [App::Xapian, App::Masstree] {
        let spec = AppSpec::get(app);
        // Light-ish load so idle periods exist for the sleep policy.
        let trace = trace_for(&spec, default_peak_load(app) * 0.6, scale.eval_s, 999);
        let arrivals = trace_arrivals(&spec, &trace, 4242);
        let policy = default_trained_policy(app, scale);

        let run = |sleep: bool| {
            let server = if sleep {
                Server::new(ServerConfig::paper_with_cstates(spec.n_threads))
            } else {
                Server::new(ServerConfig::paper_default(spec.n_threads))
            };
            let mut agent = policy.build_agent();
            let dp = DeepPowerGovernor::new(&mut agent, policy.deeppower, Mode::Eval);
            let opts = RunOptions {
                tick_ns: policy.deeppower.short_time,
                ..Default::default()
            };
            if sleep {
                let mut gov = SleepAware::new(dp, spec.n_threads, SleepPolicy::default());
                server.run(&arrivals, &mut gov, opts)
            } else {
                let mut gov = dp;
                server.run(&arrivals, &mut gov, opts)
            }
        };

        let plain = run(false);
        let slept = run(true);
        println!("## {} (SLA {} ms)", spec.name, spec.sla / MILLISECOND);
        println!(
            "{:<22} {:>9} {:>10} {:>10} {:>9}",
            "variant", "power(W)", "mean(ms)", "p99(ms)", "timeout%"
        );
        for (name, r) in [("deeppower", &plain), ("deeppower + C-states", &slept)] {
            println!(
                "{:<22} {:>9.2} {:>10.3} {:>10.3} {:>8.2}%",
                name,
                r.avg_power_w,
                r.stats.mean_ns / MILLISECOND as f64,
                r.stats.p99_ns as f64 / MILLISECOND as f64,
                r.stats.timeout_rate() * 100.0
            );
        }
        let saving = plain.avg_power_w - slept.avg_power_w;
        let lat_penalty_us = (slept.stats.mean_ns - plain.stats.mean_ns) / 1_000.0;
        println!("sleep states: {saving:+.2} W, mean latency {lat_penalty_us:+.1} us\n");
        if app == App::Xapian {
            xapian_saving = saving;
            assert!(
                slept.stats.p99_ns <= spec.sla,
                "C-states must not break Xapian's roomy SLA"
            );
        } else {
            masstree_penalty = lat_penalty_us;
        }
    }

    // Shape checks: real additional savings where the SLA is roomy; a
    // visible wake-latency cost where it is not.
    assert!(
        xapian_saving > 0.3,
        "sleep states saved too little on Xapian: {xapian_saving:.2} W"
    );
    assert!(
        masstree_penalty > 5.0,
        "Masstree should visibly feel the wake latencies ({masstree_penalty:.1} us)"
    );
    println!(
        "[shape OK] deep sleep recovers idle power under roomy SLAs and charges a visible \
         wake cost to microsecond-scale services — the §6 trade-off, quantified"
    );
}
