//! Ablation — control granularity (`ShortTime`).
//!
//! §1: "the experiment results show that a more fine-grained method
//! results in better performance"; §4.6 notes `ShortTime` defaults to
//! 1 ms. This bench runs the thread controller with fixed parameters at
//! tick periods from 1 ms to 100 ms on Xapian and reports how the
//! power/QoS frontier degrades as control gets coarser: with a slow tick
//! the controller reacts late, so long requests sit at low frequency past
//! their budget and time out.

use deeppower_bench::Scale;
use deeppower_core::train::{default_peak_load, trace_for};
use deeppower_core::{ControllerParams, ThreadController};
use deeppower_simd_server::{RunOptions, Server, ServerConfig, MILLISECOND};
use deeppower_workload::{trace_arrivals, App, AppSpec};

fn main() {
    let scale = Scale::from_env();
    let spec = AppSpec::get(App::Xapian);
    let server = Server::new(ServerConfig::paper_default(spec.n_threads));
    let trace = trace_for(&spec, default_peak_load(App::Xapian), scale.eval_s, 999);
    let arrivals = trace_arrivals(&spec, &trace, 4242);

    println!("# Ablation — thread-controller granularity (Xapian, fixed params 0.2/1.0)\n");
    println!(
        "{:>12} {:>9} {:>10} {:>9}",
        "ShortTime", "power(W)", "p99(ms)", "timeout%"
    );

    let ticks = [1u64, 2, 5, 10, 25, 100];
    let mut timeout_rates = Vec::new();
    for &ms in &ticks {
        let mut tc = ThreadController::new(ControllerParams::new(0.2, 1.0));
        let res = server.run(
            &arrivals,
            &mut tc,
            RunOptions {
                tick_ns: ms * MILLISECOND,
                ..Default::default()
            },
        );
        println!(
            "{:>10}ms {:>9.1} {:>10.2} {:>8.2}%",
            ms,
            res.avg_power_w,
            res.stats.p99_ns as f64 / MILLISECOND as f64,
            res.stats.timeout_rate() * 100.0
        );
        timeout_rates.push(res.stats.timeout_rate());
    }

    // Shape check: the coarsest control must be clearly worse on QoS than
    // the finest (the paper's case for millisecond-level scaling).
    let fine = timeout_rates[0];
    let coarse = *timeout_rates.last().unwrap();
    assert!(
        coarse > fine,
        "coarse control should hurt QoS (1 ms: {fine:.4} vs 100 ms: {coarse:.4})"
    );
    println!("\n[shape OK] finer control holds the SLA; coarse ticks let long requests time out");
}
