//! Ablation — the value of hierarchical control (§3.2).
//!
//! The paper motivates the hierarchy two ways:
//!
//! 1. **Arithmetic**: per-request DRL inference is infeasible. At the
//!    measured inference costs (Table 2) and Tailbench request rates, the
//!    inference alone would consume multiple dedicated cores. Printed
//!    below from this repo's own measured inference time.
//! 2. **Control quality**: a DRL agent acting once per second *without*
//!    the millisecond thread controller must pick one frequency per
//!    interval — it cannot exploit the skew between short and long
//!    requests. We train such a "flat" agent with identical state,
//!    reward and budget, and compare.

use deeppower_bench::{default_trained_policy, Scale};
use deeppower_core::train::{default_peak_load, trace_for};
use deeppower_core::{DeepPowerGovernor, FlatDrlGovernor, Mode, TrainConfig, STATE_DIM};
use deeppower_drl::{Ddpg, DdpgConfig};
use deeppower_simd_server::{FreqPlan, RunOptions, Server, ServerConfig, MILLISECOND};
use deeppower_workload::{trace_arrivals, App, AppSpec};
use std::hint::black_box;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let app = App::Xapian;
    let spec = AppSpec::get(app);

    // ---- part 1: the per-request-inference arithmetic ----
    let probe = Ddpg::new(DdpgConfig {
        state_dim: STATE_DIM,
        action_dim: 2,
        ..Default::default()
    });
    let state = [0.4f32; STATE_DIM];
    let iters = 20_000u32;
    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(probe.act(black_box(&state)));
    }
    let t_inf_ns = t0.elapsed().as_nanos() as f64 / iters as f64;
    let rps = spec.capacity_rps();
    let cores_needed = rps * t_inf_ns * 1e-9;
    println!("# Ablation — hierarchical vs request-level / flat DRL control\n");
    println!(
        "per-request inference arithmetic: {:.2} us/action x {:.0} RPS = {:.2} cores of pure \
         inference (paper, at 231 us: {:.1} cores) — hierarchical control sidesteps this entirely\n",
        t_inf_ns / 1e3,
        rps,
        cores_needed,
        rps * 231e-6
    );

    // ---- part 2: flat (non-hierarchical) DRL vs DeepPower ----
    let server = Server::new(ServerConfig::paper_default(spec.n_threads));
    let trace = trace_for(&spec, default_peak_load(app), scale.eval_s, 999);
    let arrivals = trace_arrivals(&spec, &trace, 4242);

    // Train the flat agent with the same budget as the cached DeepPower
    // policy.
    let base_cfg = TrainConfig::for_app(app);
    let mut flat_agent = Ddpg::new(DdpgConfig {
        seed: 11,
        ..base_cfg.deeppower.ddpg
    });
    for ep in 0..scale.train_episodes {
        let ep_trace = trace_for(
            &spec,
            default_peak_load(app),
            scale.train_episode_s,
            1 + ep as u64,
        );
        let ep_arrivals = trace_arrivals(&spec, &ep_trace, 31 * (1 + ep as u64) + 7);
        let mut gov = FlatDrlGovernor::new(
            &mut flat_agent,
            base_cfg.deeppower,
            FreqPlan::xeon_gold_5218r(),
            Mode::Train,
        );
        let _ = server.run(
            &ep_arrivals,
            &mut gov,
            RunOptions {
                tick_ns: base_cfg.deeppower.short_time,
                ..Default::default()
            },
        );
    }
    let mut flat_gov = FlatDrlGovernor::new(
        &mut flat_agent,
        base_cfg.deeppower,
        FreqPlan::xeon_gold_5218r(),
        Mode::Eval,
    );
    let r_flat = server.run(
        &arrivals,
        &mut flat_gov,
        RunOptions {
            tick_ns: base_cfg.deeppower.short_time,
            ..Default::default()
        },
    );

    let policy = default_trained_policy(app, scale);
    let mut agent = policy.build_agent();
    let mut dp = DeepPowerGovernor::new(&mut agent, policy.deeppower, Mode::Eval);
    let r_dp = server.run(
        &arrivals,
        &mut dp,
        RunOptions {
            tick_ns: policy.deeppower.short_time,
            ..Default::default()
        },
    );

    println!(
        "{:<22} {:>9} {:>10} {:>9}",
        "policy", "power(W)", "p99(ms)", "timeout%"
    );
    for (name, r) in [
        ("flat DRL (no bottom)", &r_flat),
        ("DeepPower (hier.)", &r_dp),
    ] {
        println!(
            "{:<22} {:>9.1} {:>10.2} {:>8.2}%",
            name,
            r.avg_power_w,
            r.stats.p99_ns as f64 / MILLISECOND as f64,
            r.stats.timeout_rate() * 100.0
        );
    }

    // Shape check: hierarchy dominates on the power×QoS frontier — it must
    // not lose on both axes, and when QoS is comparable it must be cheaper.
    let dp_ok = r_dp.stats.timeout_rate() < 0.02;
    assert!(dp_ok, "DeepPower itself failed QoS in the ablation");
    let flat_worse_qos = r_flat.stats.timeout_rate() > r_dp.stats.timeout_rate() + 0.005;
    let flat_worse_power = r_flat.avg_power_w > r_dp.avg_power_w * 0.99;
    assert!(
        flat_worse_qos || flat_worse_power,
        "flat DRL unexpectedly dominates hierarchical control"
    );
    println!(
        "\n[shape OK] hierarchical control beats interval-constant DRL on the power/QoS frontier"
    );
}
