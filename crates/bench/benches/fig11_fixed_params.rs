//! Fig. 11 — per-core frequency evolution under *fixed* thread-controller
//! parameters during a short Xapian execution, for the paper's three
//! settings:
//!
//! * (a) BaseFreq 0.4, ScalingCoef 1.0  — low start, rapid ramp;
//! * (b) BaseFreq 0.5, ScalingCoef 0.75 — intermediate;
//! * (c) BaseFreq 0.6, ScalingCoef 0.5  — high start, moderate ramp.
//!
//! "A low BaseFreq results in a lower frequency during the initial
//! execution of requests … a higher value of ScalingCoef causes a rapid
//! increase of frequency during request processing."

use deeppower_bench::{downsample, sparkline};
use deeppower_core::{ControllerParams, ThreadController};
use deeppower_simd_server::{RunOptions, Server, ServerConfig, TraceConfig, MILLISECOND, SECOND};
use deeppower_workload::{constant_rate_arrivals, App, AppSpec};

/// Mean commanded frequency of busy-ish samples in a ms-bucket timeline,
/// plus a linear ramp estimate over request lifetimes.
struct Summary {
    initial_freq: f64,
    ramp_mhz_per_ms: f64,
    trace: Vec<f64>,
}

fn run(base: f32, coef: f32) -> Summary {
    let spec = AppSpec::get(App::Xapian);
    let server = Server::new(ServerConfig::paper_default(spec.n_threads));
    // Load high enough that requests keep cores busy for several ms.
    let arrivals = constant_rate_arrivals(&spec, spec.rps_for_load(0.6), SECOND, 3);
    let mut tc = ThreadController::new(ControllerParams::new(base, coef));
    let res = server.run(
        &arrivals,
        &mut tc,
        RunOptions {
            tick_ns: MILLISECOND,
            trace: TraceConfig::millisecond(),
            ..Default::default()
        },
    );

    // Reconstruct per-request frequency ramps: for each request mark pair
    // on a core, collect the core's frequency samples in between.
    let mut per_core_start: Vec<Option<u64>> = vec![None; spec.n_threads];
    let mut ramps: Vec<(f64, f64)> = Vec::new(); // (initial freq, slope)
    for &(t, core, _id, is_start) in &res.traces.marks {
        if is_start {
            per_core_start[core] = Some(t);
        } else if let Some(t0) = per_core_start[core].take() {
            let samples: Vec<(f64, f64)> = res
                .traces
                .freq
                .iter()
                .filter(|&&(ts, c, _)| c == core && ts >= t0 && ts <= t)
                .map(|&(ts, _, f)| (((ts - t0) / MILLISECOND) as f64, f as f64))
                .collect();
            if samples.len() >= 3 {
                // Least-squares slope.
                let n = samples.len() as f64;
                let mx = samples.iter().map(|s| s.0).sum::<f64>() / n;
                let my = samples.iter().map(|s| s.1).sum::<f64>() / n;
                let cov: f64 = samples.iter().map(|s| (s.0 - mx) * (s.1 - my)).sum();
                let var: f64 = samples.iter().map(|s| (s.0 - mx) * (s.0 - mx)).sum();
                if var > 0.0 {
                    ramps.push((samples[0].1, cov / var));
                }
            }
        }
    }
    let n = ramps.len().max(1) as f64;
    let initial = ramps.iter().map(|r| r.0).sum::<f64>() / n;
    let slope = ramps.iter().map(|r| r.1).sum::<f64>() / n;
    let trace: Vec<f64> = res
        .traces
        .freq
        .iter()
        .filter(|&&(_, c, _)| c == 0)
        .map(|&(_, _, f)| f as f64)
        .collect();
    Summary {
        initial_freq: initial,
        ramp_mhz_per_ms: slope,
        trace,
    }
}

fn main() {
    println!("# Fig. 11 — frequency under fixed (BaseFreq, ScalingCoef), Xapian\n");
    let settings = [(0.4f32, 1.0f32), (0.5, 0.75), (0.6, 0.5)];
    let mut results = Vec::new();
    for &(b, c) in &settings {
        let s = run(b, c);
        println!(
            "(BaseFreq={b}, ScalingCoef={c}): initial freq {:.0} MHz, ramp {:+.1} MHz/ms",
            s.initial_freq, s.ramp_mhz_per_ms
        );
        println!("  core0 |{}|", sparkline(&downsample(&s.trace, 90)));
        results.push(s);
    }

    // Shape checks straight from the figure's caption.
    assert!(
        results[0].initial_freq < results[2].initial_freq,
        "lower BaseFreq must start requests at lower frequency ({:.0} vs {:.0})",
        results[0].initial_freq,
        results[2].initial_freq
    );
    assert!(
        results[0].ramp_mhz_per_ms > results[2].ramp_mhz_per_ms,
        "higher ScalingCoef must ramp faster ({:.1} vs {:.1})",
        results[0].ramp_mhz_per_ms,
        results[2].ramp_mhz_per_ms
    );
    println!(
        "\n[shape OK] (a) cooler start + steep ramp vs (c) warmer start + moderate ramp, as in the paper"
    );
}
