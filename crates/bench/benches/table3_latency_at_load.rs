//! Table 3 — per-application SLA and p99 latency at 20/50/70 % load,
//! measured without power management (all cores at max nominal frequency).
//!
//! Paper values (ms):
//!
//! | load | Xapian | Masstree | Moses | Sphinx | Img-dnn |
//! |------|--------|----------|-------|--------|---------|
//! | 20 % | 2.742  | 0.191    | 30.99 | 1759.8 | 2.302   |
//! | 50 % | 3.614  | 0.402    | 77.92 | 2040.7 | 2.295   |
//! | 70 % | 4.617  | 0.657    | 100.49| 2292.8 | 2.476   |
//!
//! The reproduction claim: p99 grows with load for every app, and the
//! 20 %-load column matches the calibrated service-time models.
//!
//! All 15 (app × load) cells are independent `JobSpec`s executed in
//! parallel by the harness; each cell's arrival stream depends only on
//! its own seed, so the table is identical at any thread count.

use deeppower_bench::Scale;
use deeppower_harness::{run_grid, GovernorSpec, JobSpec, WorkloadKind};
use deeppower_simd_server::MILLISECOND;
use deeppower_workload::{App, AppSpec};

fn main() {
    let scale = Scale::from_env();
    let secs = if scale.full { 30 } else { 8 };
    let loads = [0.2, 0.5, 0.7];
    let paper: &[(&str, [f64; 3])] = &[
        ("xapian", [2.742, 3.614, 4.617]),
        ("masstree", [0.191, 0.402, 0.657]),
        ("moses", [30.99, 77.92, 100.49]),
        ("sphinx", [1759.8, 2040.7, 2292.8]),
        ("img-dnn", [2.302, 2.295, 2.476]),
    ];

    let jobs: Vec<JobSpec> = App::ALL
        .iter()
        .flat_map(|&app| {
            loads.iter().enumerate().map(move |(i, &load)| JobSpec {
                app,
                governor: GovernorSpec::MaxFreq,
                seed: 7 + i as u64,
                peak_load: load,
                duration_s: secs,
                workload: WorkloadKind::Constant,
                faults: deeppower_simd_server::FaultPlan::none(),
                overload: deeppower_simd_server::OverloadPlan::none(),
                rtrace: deeppower_telemetry::TracePlan::none(),
                safety: false,
            })
        })
        .collect();
    let results = run_grid(&jobs, 0);

    println!("# Table 3 — p99 latency (ms) at 20/50/70 % load, max frequency\n");
    println!(
        "{:<10} {:>9} {:>22} {:>22} {:>22}",
        "app", "SLA(ms)", "20% (ours/paper)", "50% (ours/paper)", "70% (ours/paper)"
    );

    for (row, (name, paper_p99)) in paper.iter().enumerate() {
        let spec = AppSpec::get(App::ALL[row]);
        assert_eq!(spec.name, *name);
        let measured: Vec<f64> = results[row * loads.len()..(row + 1) * loads.len()]
            .iter()
            .map(|r| r.p99_ms)
            .collect();
        println!(
            "{:<10} {:>9} {:>10.2}/{:<11.2} {:>10.2}/{:<11.2} {:>10.2}/{:<11.2}",
            spec.name,
            spec.sla / MILLISECOND,
            measured[0],
            paper_p99[0],
            measured[1],
            paper_p99[1],
            measured[2],
            paper_p99[2],
        );

        // Shape checks: monotone growth with load; low-load anchor within
        // 40 % of the paper (the calibration target).
        assert!(
            measured[2] >= measured[0],
            "{}: p99 must not shrink with load",
            spec.name
        );
        let rel = (measured[0] - paper_p99[0]).abs() / paper_p99[0];
        assert!(
            rel < 0.4,
            "{}: 20%-load p99 {:.2} too far from paper {:.2}",
            spec.name,
            measured[0],
            paper_p99[0]
        );
    }
    println!("\n[shape OK] p99 grows with load; 20%-load column anchors to the paper");
}
