//! Fig. 2 — heatmap of relative RMSE when a service-time model trained at
//! load level *i* predicts load level *j* (Masstree and Sphinx).
//!
//! §3.1: "Linear regression models … are adopted to train with data
//! collected from different load levels … define Relative RMSE(i, j) as
//! error(i, j)/error(j, j), i.e., the prediction error after the load
//! changes. … when the load changes substantially, the prediction becomes
//! inaccurate."
//!
//! The diagonal is 1 by construction; the reproduction claim is that
//! off-diagonal entries grow with |i − j| — the contention-driven drift
//! that motivates load-aware power management.

use deeppower_baselines::{collect_profile, LinReg};
use deeppower_bench::Scale;
use deeppower_workload::{App, AppSpec};

fn main() {
    let scale = Scale::from_env();
    let loads = [0.2, 0.35, 0.5, 0.65, 0.8];
    let secs = if scale.full { 10 } else { 3 };

    for app in [App::Masstree, App::Sphinx] {
        let spec = AppSpec::get(app);
        println!("\n# Fig. 2 — relative RMSE heatmap, {}", spec.name);

        // Profile at each load, fit one model per load.
        let profiles: Vec<_> = loads
            .iter()
            .enumerate()
            .map(|(i, &l)| collect_profile(&spec, l, secs, 100 + i as u64))
            .collect();
        let models: Vec<LinReg> = profiles
            .iter()
            .map(|p| {
                let xs: Vec<Vec<f32>> = p.iter().map(|s| s.features.clone()).collect();
                let ys: Vec<f64> = p.iter().map(|s| s.service_ns).collect();
                LinReg::fit(&xs, &ys).expect("fit")
            })
            .collect();

        // error(i, j): model trained at load i, evaluated at load j.
        let err = |i: usize, j: usize| {
            let xs: Vec<Vec<f32>> = profiles[j].iter().map(|s| s.features.clone()).collect();
            let ys: Vec<f64> = profiles[j].iter().map(|s| s.service_ns).collect();
            models[i].rmse(&xs, &ys)
        };

        print!("{:>8}", "train\\ev");
        for &l in &loads {
            print!("{:>7.0}%", l * 100.0);
        }
        println!();
        let mut max_off_diag: f64 = 0.0;
        let mut heat = vec![vec![0.0; loads.len()]; loads.len()];
        for i in 0..loads.len() {
            print!("{:>7.0}%", loads[i] * 100.0);
            for (j, cell) in heat[i].iter_mut().enumerate() {
                let rel = err(i, j) / err(j, j);
                *cell = rel;
                if i != j {
                    max_off_diag = max_off_diag.max(rel);
                }
                print!("{rel:>8.3}");
            }
            println!();
        }

        // Shape checks: diagonal = 1; extreme-corner mismatch largest.
        for (j, row) in heat.iter().enumerate() {
            assert!((row[j] - 1.0).abs() < 1e-9, "diagonal must be 1");
        }
        let corner = heat[0][loads.len() - 1].max(heat[loads.len() - 1][0]);
        let near = heat[0][1].max(heat[1][0]);
        println!(
            "max off-diagonal {max_off_diag:.3}; corner (20%↔80%) {corner:.3} vs adjacent {near:.3}"
        );
        assert!(
            corner > 1.02,
            "{}: cross-load prediction should degrade (corner {corner:.3})",
            spec.name
        );
    }
    println!("\n[shape OK] cross-load prediction error grows away from the training load");
}
