//! Fig. 6 — the workload's RPS over time.
//!
//! The paper drives its evaluation with the Alibaba e-commerce-search RPS
//! trace, downsampled to a 360 s period. This bench prints the synthetic
//! diurnal stand-in (day/half-day harmonics + bursts + AR(1) jitter) and
//! verifies its qualitative features: a pronounced swing with the peak in
//! the middle of the period ("requests in the afternoon are generally more
//! than in the early morning").

use deeppower_bench::{downsample, sparkline, Scale};
use deeppower_workload::{DiurnalConfig, DiurnalTrace};

fn main() {
    let scale = Scale::from_env();
    let cfg = DiurnalConfig {
        period_s: if scale.full { 360 } else { 120 },
        ..Default::default()
    };
    let trace = DiurnalTrace::generate(&cfg, 2023);

    println!(
        "# Fig. 6 — RPS over one (downsampled) period of {} s\n",
        cfg.period_s
    );
    let series: Vec<f64> = trace.samples().to_vec();
    println!("|{}|", sparkline(&downsample(&series, 100)));

    let min = series.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = trace.max_rps();
    let mean = trace.mean_rps();
    println!(
        "\nmin {min:.0} rps, mean {mean:.0} rps, max {max:.0} rps (swing {:.2}x)",
        max / min
    );
    for i in (0..series.len()).step_by(series.len() / 12) {
        println!(
            "  t={:>4}s  rps={:>7.0}",
            i * cfg.slot_s as usize,
            series[i]
        );
    }

    // Shape checks.
    assert!(max / min > 1.8, "diurnal swing too small");
    let (peak_idx, _) = series
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    let n = series.len();
    assert!(
        peak_idx > n / 6 && peak_idx < 5 * n / 6,
        "peak should fall away from the period edges (idx {peak_idx}/{n})"
    );
    println!("\n[shape OK] diurnal pattern with mid-period peak and bursty structure");
}
