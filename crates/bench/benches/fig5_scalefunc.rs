//! Fig. 5 — the reward scale function at η = 100.
//!
//! `scaleFunc(x) = (x/η) / (x/η + η/(x+ε))` — "substantially close to 0
//! when x is less than η and converges to 1 when x goes to infinity",
//! with the change point (marked with a red pentagram in the paper) at
//! x = η where the function crosses 1/2.

use deeppower_bench::sparkline;
use deeppower_core::scale_func;

fn main() {
    let eta = 100.0;
    println!("# Fig. 5 — scaleFunc(x) at eta = {eta}\n");

    let xs: Vec<f64> = (0..=40).map(|i| i as f64 * 10.0).collect();
    let ys: Vec<f64> = xs.iter().map(|&x| scale_func(x, eta)).collect();

    println!("{:>6}  {:>8}", "x", "scaleFunc");
    for (x, y) in xs.iter().zip(&ys).step_by(4) {
        let marker = if (*x - eta).abs() < 1e-9 {
            "  <- change point (x = eta)"
        } else {
            ""
        };
        println!("{x:>6.0}  {y:>8.4}{marker}");
    }
    println!("\n0..400: |{}|", sparkline(&ys));

    // Shape checks straight from the paper's description.
    assert!(scale_func(10.0, eta) < 0.02, "≈0 well below eta");
    assert!(
        (scale_func(eta, eta) - 0.5).abs() < 1e-6,
        "crosses 1/2 at x = eta"
    );
    assert!(scale_func(1e6, eta) > 0.999, "→1 as x → ∞");
    let mono = xs
        .windows(2)
        .all(|w| scale_func(w[1], eta) >= scale_func(w[0], eta));
    assert!(mono, "monotone increasing");
    println!("\n[shape OK] sigmoid-like gate: ~0 below eta, 1/2 at eta, ->1 beyond");
}
