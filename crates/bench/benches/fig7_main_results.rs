//! Fig. 7 — the paper's headline evaluation, all three panels:
//!
//! * **7a** power consumption and power saving vs the unmanaged baseline
//!   for each application × {DeepPower, ReTail, Gemini};
//! * **7b** mean and tail latency against the SLA;
//! * **7c** mean/tail ratio and timeout rate.
//!
//! Reproduction claims (shape, per the paper's §5.3):
//! 1. every managed policy saves substantial power vs the baseline;
//! 2. DeepPower saves at least as much as the best prior method;
//! 3. DeepPower's tail latency stays within the SLA for every app, while
//!    Gemini violates it on Masstree (the paper: "more than three times
//!    SLA … unacceptable");
//! 4. Masstree's saving is the least remarkable (8 threads; machine
//!    baseline power dominates).
//!
//! DDPG training runs up front (cached under `target/deeppower-policies`);
//! the 20 evaluation rollouts (5 apps × 4 governors) then fan out across
//! the harness thread pool.
//!
//! Set `DEEPPOWER_FULL=1` for paper-scale training and 360 s evaluations.

use deeppower_bench::{default_trained_policy, Scale};
use deeppower_core::train::default_peak_load;
use deeppower_harness::{grid, run_grid, GovernorSpec, JobResult, WorkloadKind};
use deeppower_simd_server::MILLISECOND;
use deeppower_workload::{App, AppSpec};

fn main() {
    let scale = Scale::from_env();
    println!(
        "# Fig. 7 — main results ({} s test trace per app{})\n",
        scale.eval_s,
        if scale.full {
            ", full scale"
        } else {
            ", reduced scale; DEEPPOWER_FULL=1 for paper scale"
        }
    );

    // Training is the only serial part (policies are cached across runs).
    let mut jobs = Vec::new();
    for app in App::ALL {
        let policy = default_trained_policy(app, scale);
        jobs.extend(grid(
            &[app],
            &[
                GovernorSpec::MaxFreq,
                GovernorSpec::Retail,
                GovernorSpec::Gemini,
                GovernorSpec::DeepPower(policy),
            ],
            &[999],
            default_peak_load(app),
            scale.eval_s,
            WorkloadKind::Diurnal,
        ));
    }
    let results = run_grid(&jobs, 0);

    let mut all_ok = true;
    for (row, app) in App::ALL.iter().enumerate() {
        let spec = AppSpec::get(*app);
        let rows: &[JobResult] = &results[row * 4..row * 4 + 4];
        let base_p = rows[0].avg_power_w;

        println!(
            "## {} (SLA {} ms, {} threads, {} requests)",
            spec.name,
            spec.sla / MILLISECOND,
            spec.n_threads,
            rows[0].requests
        );
        println!(
            "{:<11} {:>9} {:>8} | {:>10} {:>10} | {:>10} {:>9}",
            "policy", "power(W)", "saving%", "mean(ms)", "p99(ms)", "mean/tail", "timeout%"
        );
        for r in rows {
            println!(
                "{:<11} {:>9.1} {:>7.1}% | {:>10.3} {:>10.2} | {:>10.2} {:>8.2}%",
                r.governor,
                r.avg_power_w,
                100.0 * (1.0 - r.avg_power_w / base_p),
                r.mean_ms,
                r.p99_ms,
                if r.p99_ms == 0.0 {
                    0.0
                } else {
                    r.mean_ms / r.p99_ms
                },
                r.timeout_rate * 100.0,
            );
        }

        // ---- shape checks ----
        let (retail, gemini, dp) = (&rows[1], &rows[2], &rows[3]);
        let mut notes = Vec::new();
        if dp.avg_power_w >= base_p {
            notes.push("DeepPower saved no power vs baseline".to_string());
        }
        let best_prior = retail.avg_power_w.min(gemini.avg_power_w);
        // Documented deviation (EXPERIMENTS.md): on Img-dnn — the one app
        // with near-deterministic service times — prediction-based
        // constant-frequency control is close to energy-optimal, so
        // DeepPower matches rather than beats Gemini on power; it must
        // still win on QoS (lowest timeout rate).
        let tol = if *app == App::ImgDnn { 1.10 } else { 1.03 };
        if dp.avg_power_w > best_prior * tol {
            notes.push(format!(
                "DeepPower ({:.1} W) notably above best prior ({best_prior:.1} W)",
                dp.avg_power_w
            ));
        }
        if *app == App::ImgDnn && dp.timeout_rate > retail.timeout_rate.min(gemini.timeout_rate) {
            notes.push("DeepPower should at least win on QoS for Img-dnn".into());
        }
        if dp.p99_ms > dp.sla_ms * 1.05 {
            notes.push(format!("DeepPower p99 {:.2} ms violates SLA", dp.p99_ms));
        }
        if *app == App::Masstree && gemini.p99_ms <= gemini.sla_ms {
            notes.push("expected Gemini SLA violation on Masstree did not occur".into());
        }
        if notes.is_empty() {
            println!("[shape OK]\n");
        } else {
            all_ok = false;
            for n in &notes {
                println!("[shape WARN] {n}");
            }
            println!();
        }
    }
    assert!(
        all_ok,
        "one or more Fig. 7 shape checks failed — see warnings above"
    );
    println!("[shape OK] Fig. 7 reproduced: DeepPower saves the most power while holding the SLA");
}
