//! Fig. 7 — the paper's headline evaluation, all three panels:
//!
//! * **7a** power consumption and power saving vs the unmanaged baseline
//!   for each application × {DeepPower, ReTail, Gemini};
//! * **7b** mean and tail latency against the SLA;
//! * **7c** mean/tail ratio and timeout rate.
//!
//! Reproduction claims (shape, per the paper's §5.3):
//! 1. every managed policy saves substantial power vs the baseline;
//! 2. DeepPower saves at least as much as the best prior method;
//! 3. DeepPower's tail latency stays within the SLA for every app, while
//!    Gemini violates it on Masstree (the paper: "more than three times
//!    SLA … unacceptable");
//! 4. Masstree's saving is the least remarkable (8 threads; machine
//!    baseline power dominates).
//!
//! Set `DEEPPOWER_FULL=1` for paper-scale training and 360 s evaluations.

use deeppower_baselines::{
    collect_profile, max_freq_governor, GeminiConfig, GeminiGovernor, RetailConfig, RetailGovernor,
};
use deeppower_bench::{trained_policy, Scale};
use deeppower_core::train::{default_peak_load, trace_for};
use deeppower_core::{DeepPowerGovernor, Mode};
use deeppower_simd_server::{FreqPlan, RunOptions, Server, ServerConfig, SimResult, MILLISECOND};
use deeppower_workload::{trace_arrivals, App, AppSpec};

struct Row {
    name: &'static str,
    res: SimResult,
}

fn main() {
    let scale = Scale::from_env();
    println!(
        "# Fig. 7 — main results ({} s test trace per app{})\n",
        scale.eval_s,
        if scale.full { ", full scale" } else { ", reduced scale; DEEPPOWER_FULL=1 for paper scale" }
    );

    let mut all_ok = true;
    for app in App::ALL {
        let spec = AppSpec::get(app);
        let server = Server::new(ServerConfig::paper_default(spec.n_threads));
        let trace = trace_for(&spec, default_peak_load(app), scale.eval_s, 999);
        let arrivals = trace_arrivals(&spec, &trace, 4242);
        let profile = collect_profile(&spec, 0.5, if scale.full { 10 } else { 3 }, 77);
        let opts = RunOptions::default();

        let mut maxf = max_freq_governor();
        let base = server.run(&arrivals, &mut maxf, opts);

        let mut retail = RetailGovernor::train(
            &profile,
            FreqPlan::xeon_gold_5218r(),
            RetailConfig::default(),
        );
        let r_retail = server.run(&arrivals, &mut retail, opts);

        let mut gemini = GeminiGovernor::train(
            &profile,
            FreqPlan::xeon_gold_5218r(),
            spec.n_threads,
            GeminiConfig::default(),
            5,
        );
        let r_gemini = server.run(&arrivals, &mut gemini, opts);

        let policy = trained_policy(app, scale, 11);
        let mut agent = policy.build_agent();
        let mut dp = DeepPowerGovernor::new(&mut agent, policy.deeppower, Mode::Eval);
        let r_dp = server.run(
            &arrivals,
            &mut dp,
            RunOptions { tick_ns: policy.deeppower.short_time, ..Default::default() },
        );

        let rows = [
            Row { name: "baseline", res: base },
            Row { name: "retail", res: r_retail },
            Row { name: "gemini", res: r_gemini },
            Row { name: "deeppower", res: r_dp },
        ];
        let base_p = rows[0].res.avg_power_w;

        println!(
            "## {} (SLA {} ms, {} threads, {} requests)",
            spec.name,
            spec.sla / MILLISECOND,
            spec.n_threads,
            arrivals.len()
        );
        println!(
            "{:<11} {:>9} {:>8} | {:>10} {:>10} | {:>10} {:>9}",
            "policy", "power(W)", "saving%", "mean(ms)", "p99(ms)", "mean/tail", "timeout%"
        );
        for row in &rows {
            let s = &row.res.stats;
            println!(
                "{:<11} {:>9.1} {:>7.1}% | {:>10.3} {:>10.2} | {:>10.2} {:>8.2}%",
                row.name,
                row.res.avg_power_w,
                100.0 * (1.0 - row.res.avg_power_w / base_p),
                s.mean_ns / MILLISECOND as f64,
                s.p99_ns as f64 / MILLISECOND as f64,
                s.mean_tail_ratio(),
                s.timeout_rate() * 100.0,
            );
        }

        // ---- shape checks ----
        let dp = &rows[3].res;
        let retail = &rows[1].res;
        let gemini = &rows[2].res;
        let mut notes = Vec::new();
        if dp.avg_power_w >= base_p {
            notes.push("DeepPower saved no power vs baseline".to_string());
        }
        let best_prior = retail.avg_power_w.min(gemini.avg_power_w);
        // Documented deviation (EXPERIMENTS.md): on Img-dnn — the one app
        // with near-deterministic service times — prediction-based
        // constant-frequency control is close to energy-optimal, so
        // DeepPower matches rather than beats Gemini on power; it must
        // still win on QoS (lowest timeout rate).
        let tol = if app == App::ImgDnn { 1.10 } else { 1.03 };
        if dp.avg_power_w > best_prior * tol {
            notes.push(format!(
                "DeepPower ({:.1} W) notably above best prior ({best_prior:.1} W)",
                dp.avg_power_w
            ));
        }
        if app == App::ImgDnn
            && dp.stats.timeout_rate()
                > retail.stats.timeout_rate().min(gemini.stats.timeout_rate())
        {
            notes.push("DeepPower should at least win on QoS for Img-dnn".into());
        }
        if dp.stats.p99_ns as f64 > spec.sla as f64 * 1.05 {
            notes.push(format!(
                "DeepPower p99 {:.2} ms violates SLA",
                dp.stats.p99_ns as f64 / MILLISECOND as f64
            ));
        }
        if app == App::Masstree && gemini.stats.p99_ns <= spec.sla {
            notes.push("expected Gemini SLA violation on Masstree did not occur".into());
        }
        if notes.is_empty() {
            println!("[shape OK]\n");
        } else {
            all_ok = false;
            for n in &notes {
                println!("[shape WARN] {n}");
            }
            println!();
        }
    }
    assert!(all_ok, "one or more Fig. 7 shape checks failed — see warnings above");
    println!("[shape OK] Fig. 7 reproduced: DeepPower saves the most power while holding the SLA");
}
