//! Telemetry overhead — cost of the recorder on the hot simulation loop.
//!
//! The acceptance bar for the telemetry layer: running the server
//! through `run_recorded` with a *disabled* recorder, with one backed
//! by the no-op sink, or with a [`MonitorSink`] feeding a *disabled*
//! health monitor, must cost within 2% of the plain `run` path. A
//! disabled recorder is a single `Option` branch per emission site;
//! `NoopSink` additionally constructs each event payload before
//! discarding it; a disabled monitor discards after one branch in
//! `observe`. The ring-buffered full-capture and enabled-monitor costs
//! are reported for reference (no assertion — they pay for payload
//! construction plus buffering / SLO evaluation).
//!
//! Workload: a compare-style rollout — Xapian under the thread
//! controller at moderate load, default (non-tracing) `TraceConfig`, so
//! the event volume matches what `grid`/`compare` jobs see.
//!
//! Timing uses min-of-N: the minimum over repeated identical runs is
//! the standard noise-robust estimator for a deterministic workload.
//! Set `DEEPPOWER_SMOKE=1` for a quick CI-sized run (shorter sim,
//! fewer repeats, assertion relaxed to 10% to tolerate shared runners).

use deeppower_core::{ControllerParams, ThreadController};
use deeppower_simd_server::{RunOptions, Server, ServerConfig, SimResult};
use deeppower_telemetry::{
    FleetMonitor, MonitorConfig, MonitorSink, NoopSink, Profiler, Recorder, TracePlan,
};
use deeppower_workload::{constant_rate_arrivals, App, AppSpec};
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

fn min_wall_s(repeats: usize, mut run: impl FnMut() -> SimResult) -> (f64, SimResult) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..repeats {
        let t0 = Instant::now();
        let res = run();
        best = best.min(t0.elapsed().as_secs_f64());
        last = Some(res);
    }
    (best, last.expect("repeats > 0"))
}

fn main() {
    let smoke = std::env::var("DEEPPOWER_SMOKE")
        .map(|v| v != "0")
        .unwrap_or(false);
    let (duration_s, repeats, tolerance) = if smoke { (5, 3, 0.10) } else { (20, 7, 0.02) };

    let spec = AppSpec::get(App::Xapian);
    let server = Server::new(ServerConfig::paper_default(spec.n_threads));
    let arrivals = constant_rate_arrivals(
        &spec,
        spec.rps_for_load(0.6),
        duration_s * deeppower_simd_server::SECOND,
        7,
    );
    let opts = RunOptions::default();
    let gov = || ThreadController::new(ControllerParams::new(0.3, 1.0));

    println!(
        "# Telemetry overhead — {duration_s} s Xapian rollout x {} cores, min of {repeats}\n",
        spec.n_threads
    );

    // Warm-up run (page in the binary, stabilize allocator).
    server.run(&arrivals, &mut gov(), opts);

    let (t_plain, r_plain) = min_wall_s(repeats, || server.run(&arrivals, &mut gov(), opts));
    let (t_disabled, r_disabled) = min_wall_s(repeats, || {
        server.run_recorded(&arrivals, &mut gov(), opts, &Recorder::disabled())
    });
    let (t_noop, r_noop) = min_wall_s(repeats, || {
        server.run_recorded(
            &arrivals,
            &mut gov(),
            opts,
            &Recorder::with_sink(Box::new(NoopSink)),
        )
    });
    let (t_ring, r_ring) = min_wall_s(repeats, || {
        server.run_recorded(&arrivals, &mut gov(), opts, &Recorder::ring(1 << 16))
    });
    // The health monitor holds the same contract: a disabled monitor
    // behind a `MonitorSink` discards every event after one branch, so
    // wiring the sink must be free; an *enabled* monitor folds rollups
    // and runs the SLO machine (reported, not asserted).
    let (t_mon_off, r_mon_off) = min_wall_s(repeats, || {
        let mon = Rc::new(RefCell::new(FleetMonitor::disabled()));
        server.run_recorded(
            &arrivals,
            &mut gov(),
            opts,
            &Recorder::with_sink(Box::new(MonitorSink::new(mon, 0))),
        )
    });
    let (t_mon_on, r_mon_on) = min_wall_s(repeats, || {
        let mon = Rc::new(RefCell::new(FleetMonitor::new(MonitorConfig::default())));
        server.run_recorded(
            &arrivals,
            &mut gov(),
            opts,
            &Recorder::with_sink(Box::new(MonitorSink::new(mon, 0))),
        )
    });
    // Request-lifecycle tracing holds the contract at two levels: an
    // active plan behind a *disabled* recorder never builds a tracer
    // at all (one branch per hook, budgeted with the other disabled
    // paths), and head-sampling at 1% plus tail exemplars — which
    // opens a chain per request so the slowest completions can be
    // traced retroactively — stays within its own 5% budget.
    let traced_opts = RunOptions {
        rtrace: TracePlan::sampled(0.01, 2, 7),
        ..opts
    };
    let (t_trace_off, r_trace_off) = min_wall_s(repeats, || {
        server.run_recorded(&arrivals, &mut gov(), traced_opts, &Recorder::disabled())
    });
    let (t_trace_1pct, r_trace_1pct) = min_wall_s(repeats, || {
        server.run_recorded(
            &arrivals,
            &mut gov(),
            traced_opts,
            &Recorder::with_sink(Box::new(NoopSink)),
        )
    });
    // The span profiler holds the same contract as the recorder: when
    // disabled it is one `Option` branch per span site (open + drop).
    let (t_prof_off, r_prof_off) = min_wall_s(repeats, || {
        server.run_profiled(
            &arrivals,
            &mut gov(),
            opts,
            &Recorder::disabled(),
            &Profiler::disabled(),
        )
    });
    let (t_prof_on, r_prof_on) = min_wall_s(repeats, || {
        server.run_profiled(
            &arrivals,
            &mut gov(),
            opts,
            &Recorder::disabled(),
            &Profiler::enabled(),
        )
    });

    // Telemetry must never perturb the simulation.
    for (name, r) in [
        ("disabled", &r_disabled),
        ("noop-sink", &r_noop),
        ("ring", &r_ring),
        ("monitor-off", &r_mon_off),
        ("monitor-on", &r_mon_on),
        ("tracer-off", &r_trace_off),
        ("tracer-1pct", &r_trace_1pct),
        ("profiler-off", &r_prof_off),
        ("profiler-on", &r_prof_on),
    ] {
        assert_eq!(
            r.stats.count, r_plain.stats.count,
            "{name}: request count must match plain run"
        );
        assert_eq!(
            r.energy_j.to_bits(),
            r_plain.energy_j.to_bits(),
            "{name}: energy must be bit-identical to plain run"
        );
    }

    let pct = |t: f64| 100.0 * (t / t_plain - 1.0);
    println!("{:<22} {:>9} {:>9}", "configuration", "wall(s)", "vs plain");
    println!("{:<22} {:>9.4} {:>9}", "plain run", t_plain, "-");
    println!(
        "{:<22} {:>9.4} {:>+8.2}%",
        "recorder disabled",
        t_disabled,
        pct(t_disabled)
    );
    println!("{:<22} {:>9.4} {:>+8.2}%", "noop sink", t_noop, pct(t_noop));
    println!(
        "{:<22} {:>9.4} {:>+8.2}%",
        "ring (full capture)",
        t_ring,
        pct(t_ring)
    );
    println!(
        "{:<22} {:>9.4} {:>+8.2}%",
        "monitor disabled",
        t_mon_off,
        pct(t_mon_off)
    );
    println!(
        "{:<22} {:>9.4} {:>+8.2}%",
        "monitor enabled",
        t_mon_on,
        pct(t_mon_on)
    );
    println!(
        "{:<22} {:>9.4} {:>+8.2}%",
        "tracer disabled",
        t_trace_off,
        pct(t_trace_off)
    );
    println!(
        "{:<22} {:>9.4} {:>+8.2}%",
        "tracer sampled 1%",
        t_trace_1pct,
        pct(t_trace_1pct)
    );
    println!(
        "{:<22} {:>9.4} {:>+8.2}%",
        "profiler disabled",
        t_prof_off,
        pct(t_prof_off)
    );
    println!(
        "{:<22} {:>9.4} {:>+8.2}%",
        "profiler enabled",
        t_prof_on,
        pct(t_prof_on)
    );

    let worst = (t_disabled / t_plain - 1.0)
        .max(t_noop / t_plain - 1.0)
        .max(t_mon_off / t_plain - 1.0)
        .max(t_trace_off / t_plain - 1.0)
        .max(t_prof_off / t_plain - 1.0);
    assert!(
        worst < tolerance,
        "disabled recorder/monitor/tracer/profiler overhead {:.2}% exceeds {:.0}% budget",
        worst * 100.0,
        tolerance * 100.0
    );
    // Sampled tracing gets its own, looser budget: 1% head sampling +
    // tail exemplars pays for per-request chain bookkeeping.
    let trace_tolerance = if smoke { 0.20 } else { 0.05 };
    let trace_over = t_trace_1pct / t_plain - 1.0;
    assert!(
        trace_over < trace_tolerance,
        "1%-sampled tracer overhead {:.2}% exceeds {:.0}% budget",
        trace_over * 100.0,
        trace_tolerance * 100.0
    );
    println!(
        "\n[overhead OK] disabled recorder/monitor/tracer/profiler within {:.0}% of the plain \
         path; 1%-sampled tracer within {:.0}%",
        tolerance * 100.0,
        trace_tolerance * 100.0
    );
}
