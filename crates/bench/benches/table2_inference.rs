//! Table 2 — single-state inference time of DQN, DDQN, DDPG and SAC.
//!
//! §3.2 measures these (125 / 140 / 231 / 472 µs in the authors' Python/
//! PyTorch stack) to argue that per-request DRL control is infeasible and
//! motivate hierarchical control. This reproduction runs the same
//! lightweight networks through the from-scratch Rust stack; absolute
//! numbers are far smaller (no Python dispatch), but the *relative*
//! ordering — value nets cheapest, DDPG's actor heavier, SAC's sampled
//! policy heaviest — and the paper's conclusion (inference cost ≫ what a
//! microsecond-scale request could tolerate on a per-request basis in the
//! authors' setting) are what matter.

use deeppower_drl::{Ddpg, DdpgConfig, Ddqn, Dqn, DqnConfig, Sac, SacConfig};
use std::hint::black_box;
use std::time::Instant;

fn time_ns(mut f: impl FnMut()) -> f64 {
    // Warm up, then measure a tight loop.
    for _ in 0..1_000 {
        f();
    }
    let iters = 50_000u32;
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let state = [0.3f32, 0.1, 0.7, 0.2, 0.0, 0.4, 0.9, 0.5];

    let dqn = Dqn::new(DqnConfig {
        state_dim: 8,
        n_actions: 16,
        ..Default::default()
    });
    let ddqn = Ddqn::new(DqnConfig {
        state_dim: 8,
        n_actions: 16,
        ..Default::default()
    });
    let ddpg = Ddpg::new(DdpgConfig {
        state_dim: 8,
        action_dim: 2,
        ..Default::default()
    });
    let mut sac = Sac::new(SacConfig {
        state_dim: 8,
        action_dim: 2,
        warmup: 0,
        ..Default::default()
    });

    let t_dqn = time_ns(|| {
        black_box(dqn.act(black_box(&state)));
    });
    let t_ddqn = time_ns(|| {
        black_box(ddqn.act(black_box(&state)));
    });
    let t_ddpg = time_ns(|| {
        black_box(ddpg.act(black_box(&state)));
    });
    // SAC's stochastic action (sampling + tanh-squash + log-prob machinery)
    // is the path the paper's 472 µs reflects.
    let t_sac = time_ns(|| {
        black_box(sac.act_explore(black_box(&state)));
    });

    println!("# Table 2 — inference time of each DRL algorithm\n");
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>10}",
        "", "DQN", "DDQN", "DDPG", "SAC"
    );
    println!(
        "{:<22} {:>10.0} {:>10.0} {:>10.0} {:>10.0}",
        "paper (us, PyTorch)", 125.0, 140.0, 231.0, 472.0
    );
    println!(
        "{:<22} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
        "this repo (us, Rust)",
        t_dqn / 1e3,
        t_ddqn / 1e3,
        t_ddpg / 1e3,
        t_sac / 1e3
    );

    // Shape check: the plain value nets are the cheapest, DDPG's two-head
    // actor costs more — as in the paper. Honest deviation: the paper's
    // SAC is the slowest of the four (472 µs), which reflects PyTorch's
    // per-op dispatch over SAC's extra sampling machinery; in this
    // compiled stack SAC's *policy network* is smaller than DDPG's
    // two-head actor, so SAC lands between DQN and DDPG instead.
    assert!(t_dqn <= t_ddpg * 1.2, "DQN should not be slower than DDPG");
    assert!(t_sac >= t_dqn, "SAC should not beat the plain value net");
    println!(
        "\n[shape OK] value nets cheapest, actor-based agents heavier (SAC/DDPG order \
         differs from the paper's PyTorch stack — see EXPERIMENTS.md)"
    );
    println!(
        "conclusion unchanged: even at ~{:.1} us, per-request inference at 1M RPS would consume \
         multiple dedicated cores; hierarchical control avoids it entirely",
        t_ddpg / 1e3
    );
}
