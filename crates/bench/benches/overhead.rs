//! §5.5 — DeepPower's own overhead:
//!
//! * "The parameters updating of the DDPG training algorithm costs 13 ms
//!   when the batch size is 64."
//! * "During testing, DeepPower generates an action in less than a
//!   millisecond."
//! * "The number of parameters in the actor neural network is 2096, so
//!   the memory and storage overhead is slight."
//! * "Setting the frequency for a CPU core consumes less than 10 us."
//!
//! This bench measures the equivalents in the Rust stack and checks each
//! stays within the paper's envelope (they are far below it — no Python
//! dispatch).

use deeppower_core::{ControllerParams, ThreadController, STATE_DIM};
use deeppower_drl::{Ddpg, DdpgConfig, Transition};
use deeppower_simd_server::{CoreView, FreqCommands, FreqPlan, RunningView, ServerView};
use std::collections::VecDeque;
use std::hint::black_box;
use std::time::Instant;

fn measure(iters: u32, mut f: impl FnMut()) -> f64 {
    for _ in 0..iters / 10 {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    println!("# §5.5 — DeepPower overhead\n");

    // 1. DDPG update at batch 64.
    let mut agent = Ddpg::new(DdpgConfig {
        state_dim: STATE_DIM,
        action_dim: 2,
        batch_size: 64,
        warmup: 0,
        ..Default::default()
    });
    let mut rng_state = 1u64;
    for i in 0..512 {
        rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let v = (rng_state >> 33) as f32 / (1u64 << 31) as f32;
        agent.observe(Transition {
            state: vec![v; STATE_DIM],
            action: vec![v.fract(), 1.0 - v.fract()],
            reward: -v,
            next_state: vec![v * 0.9; STATE_DIM],
            done: i % 64 == 63,
        });
    }
    let t_update = measure(200, || {
        black_box(agent.update());
    });

    // 2. Action generation.
    let state = [0.4f32; STATE_DIM];
    let t_act = measure(50_000, || {
        black_box(agent.act(black_box(&state)));
    });

    // 3. Actor parameter count.
    let params = {
        use deeppower_nn::Params;
        agent.actor.num_params()
    };

    // 4. Per-core frequency command: one full thread-controller pass over
    //    20 cores, and the per-core share.
    let plan = FreqPlan::xeon_gold_5218r();
    let running = RunningView {
        arrival: 0,
        started: 0,
        features: &[],
        sla: 8_000_000,
    };
    let cores: Vec<CoreView<'_>> = (0..20)
        .map(|_| CoreView {
            freq_mhz: 1500,
            running: Some(running),
            sleeping: None,
        })
        .collect();
    let queue = VecDeque::new();
    let view = ServerView {
        now: 4_000_000,
        queue: &queue,
        cores: &cores,
        total_arrived: 0,
        total_completed: 0,
        total_timeouts: 0,
        total_shed: 0,
        total_wasted: 0,
        energy_uj: 0,
    };
    let tc = ThreadController::new(ControllerParams::new(0.3, 0.9));
    let mut cmds = FreqCommands::new(20, &plan);
    let t_scale_all = measure(100_000, || {
        tc.scale_all(black_box(&view), &mut cmds);
    });

    println!("{:<38} {:>14} {:>14}", "metric", "paper", "this repo");
    println!(
        "{:<38} {:>14} {:>13.3}ms",
        "DDPG update, batch 64",
        "13 ms",
        t_update / 1e6
    );
    println!(
        "{:<38} {:>14} {:>13.3}us",
        "action generation",
        "< 1 ms",
        t_act / 1e3
    );
    println!("{:<38} {:>14} {:>14}", "actor parameters", "2096", params);
    println!(
        "{:<38} {:>14} {:>13.3}us",
        "frequency scaling, all 20 cores",
        "< 10 us/core",
        t_scale_all / 1e3
    );
    println!(
        "{:<38} {:>14} {:>13.3}us",
        "  per-core share",
        "",
        t_scale_all / 20.0 / 1e3
    );

    // Envelope checks (the paper's numbers are upper bounds we must beat).
    assert!(
        t_update / 1e6 < 13.0,
        "DDPG update slower than the paper's 13 ms"
    );
    assert!(t_act / 1e3 < 1_000.0, "action generation above 1 ms");
    assert!(
        t_scale_all / 20.0 < 10_000.0,
        "per-core frequency scaling above 10 us"
    );
    assert!(
        (1_000..4_000).contains(&params),
        "actor should be a ~2k-parameter network, got {params}"
    );
    println!("\n[shape OK] all overheads within the paper's envelope (and far below it)");
}
