//! Hierarchical fleet control: per-profile-group policies under one
//! coordinator (HiDVFS-style).
//!
//! A homogeneous fleet batches all N node states through one actor in
//! a single forward pass. Heterogeneous fleets can't: nodes of
//! different hardware classes may run *different* policies (a 1-core
//! edge box and a 20-core socket should not share weights), and even
//! under one shared policy the batch must be grouped so each profile's
//! rows stay contiguous. The [`Coordinator`] owns one agent + scratch
//! per profile group and, each epoch, gathers every group's rows out
//! of the stacked `N × STATE_DIM` state matrix
//! ([`Ddpg::act_batch_rows_into`]), runs one batched pass per group,
//! and scatters the resulting [`ControllerParams`] back to node order.
//!
//! Bit-exactness contract: every batched row equals the single-state
//! [`Ddpg::act`] on that node's state exactly (asserted per group by
//! the tests here and the proptest in `deeppower-drl`), so a
//! single-group coordinator reproduces the historical monolithic
//! batched pass byte-for-byte.

use deeppower_core::{ControllerParams, TrainedPolicy};
use deeppower_drl::{ActorScratch, Ddpg};
use deeppower_nn::Matrix;

/// One profile group's policy and its inference buffers.
struct PolicyGroup {
    /// Fleet node indices running this profile, ascending.
    members: Vec<usize>,
    agent: Ddpg,
    out: Matrix,
    scratch: ActorScratch,
}

/// Per-profile-group policies behind one `act` call. See the module
/// docs.
pub struct Coordinator {
    groups: Vec<PolicyGroup>,
}

impl Coordinator {
    /// One policy per group; `members[g]` lists the fleet nodes group
    /// `g` controls. Groups must be disjoint; the union must cover
    /// every node the driver will ask about.
    pub fn new(members: Vec<Vec<usize>>, policies: &[&TrainedPolicy]) -> Self {
        assert_eq!(
            members.len(),
            policies.len(),
            "one policy per profile group"
        );
        let groups = members
            .into_iter()
            .zip(policies)
            .map(|(members, policy)| PolicyGroup {
                members,
                agent: policy.build_agent(),
                out: Matrix::zeros(0, 0),
                scratch: ActorScratch::new(),
            })
            .collect();
        Self { groups }
    }

    /// Every group driven by the same shared policy — the homogeneous
    /// fleet's controller, and the default for `fleet --profiles` runs
    /// that train a single policy.
    pub fn shared(members: Vec<Vec<usize>>, policy: &TrainedPolicy) -> Self {
        let policies: Vec<&TrainedPolicy> = members.iter().map(|_| policy).collect();
        Self::new(members, &policies)
    }

    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// One grouped batched pass per profile: gather each group's rows
    /// from `states`, batch them through the group's actor, scatter
    /// the clamped [`ControllerParams`] into `actions` by node index.
    /// Nodes outside every group keep their previous entry.
    pub fn act(&mut self, states: &Matrix, actions: &mut [ControllerParams]) {
        for g in &mut self.groups {
            if g.members.is_empty() {
                continue;
            }
            g.agent
                .act_batch_rows_into(states, &g.members, &mut g.out, &mut g.scratch);
            for (k, &node) in g.members.iter().enumerate() {
                actions[node] = ControllerParams::from_action(g.out.row(k));
            }
        }
    }

    /// Reference path: one single-state forward pass per node through
    /// its group's agent. Bit-identical to [`Coordinator::act`]; exists
    /// so the bench can time grouped against per-node inference and the
    /// tests can assert the identity.
    pub fn act_per_node(&self, states: &Matrix, actions: &mut [ControllerParams]) {
        for g in &self.groups {
            for &node in &g.members {
                let action = g.agent.act(states.row(node));
                actions[node] = ControllerParams::from_action(&action);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::untrained_policy;
    use deeppower_core::STATE_DIM;
    use deeppower_workload::App;

    fn stacked_states(n: usize, seed: u64) -> Matrix {
        let mut m = Matrix::zeros(n, STATE_DIM);
        let mut x = seed;
        for i in 0..n {
            let row: Vec<f32> = (0..STATE_DIM)
                .map(|_| {
                    // xorshift — deterministic fill in [0, 1).
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    (x % 1000) as f32 / 1000.0
                })
                .collect();
            m.set_row(i, &row);
        }
        m
    }

    #[test]
    fn single_group_matches_monolithic_batched_pass_exactly() {
        let policy = untrained_policy(App::Masstree, 17);
        let n = 6;
        let states = stacked_states(n, 3);
        let mut coord = Coordinator::shared(vec![(0..n).collect()], &policy);
        let mut grouped = vec![ControllerParams::default(); n];
        coord.act(&states, &mut grouped);

        let agent = policy.build_agent();
        let mut out = Matrix::zeros(0, 0);
        let mut scratch = ActorScratch::new();
        agent.act_batch_into(&states, &mut out, &mut scratch);
        for (i, g) in grouped.iter().enumerate() {
            assert_eq!(*g, ControllerParams::from_action(out.row(i)));
        }
    }

    #[test]
    fn grouped_act_is_bit_identical_to_per_node_reference() {
        let big = untrained_policy(App::Masstree, 17);
        let little = untrained_policy(App::Masstree, 23);
        // Interleaved membership: grouping must scatter by node index,
        // not by position.
        let members = vec![vec![0, 2, 5], vec![1, 3, 4]];
        let states = stacked_states(6, 9);
        let mut coord = Coordinator::new(members.clone(), &[&big, &little]);
        let mut grouped = vec![ControllerParams::default(); 6];
        coord.act(&states, &mut grouped);
        let mut reference = vec![ControllerParams::default(); 6];
        coord.act_per_node(&states, &mut reference);
        assert_eq!(grouped, reference);

        // And the per-group rows really come from the right agent.
        let big_agent = big.build_agent();
        let little_agent = little.build_agent();
        for &node in &members[0] {
            let a = big_agent.act(states.row(node));
            assert_eq!(grouped[node], ControllerParams::from_action(&a));
        }
        for &node in &members[1] {
            let a = little_agent.act(states.row(node));
            assert_eq!(grouped[node], ControllerParams::from_action(&a));
        }
    }

    #[test]
    fn act_reuses_buffers_across_epochs_without_drift() {
        let policy = untrained_policy(App::Masstree, 5);
        let mut coord = Coordinator::shared(vec![vec![0, 1], vec![2]], &policy);
        let mut first = vec![ControllerParams::default(); 3];
        let states_a = stacked_states(3, 1);
        coord.act(&states_a, &mut first);
        // Different batch content through the same scratch: results must
        // depend only on the states.
        let states_b = stacked_states(3, 2);
        let mut second = vec![ControllerParams::default(); 3];
        coord.act(&states_b, &mut second);
        let mut again = vec![ControllerParams::default(); 3];
        coord.act(&states_a, &mut again);
        assert_eq!(first, again, "scratch reuse leaked state across epochs");
        assert_ne!(first, second, "distinct states should act differently");
    }
}
