//! # deeppower-fleet
//!
//! Fleet-scale DeepPower: N independent simulated server nodes behind a
//! deterministic load balancer, all steered by one shared policy whose
//! per-node actions come from a single batched actor forward pass per
//! `LongTime` epoch.
//!
//! The paper evaluates DeepPower on a single multi-core server; this
//! layer asks the datacenter-shaped follow-up question — what does the
//! policy do to *fleet* power and tail latency when a front-end routes
//! one diurnal trace across many such servers? Three routing policies
//! are modeled ([`BalancerPolicy`]): request-count round-robin,
//! join-shortest-queue over an estimated-backlog model, and an
//! energy-oriented packing policy that concentrates load so spare nodes
//! can idle into deep C-states.
//!
//! Everything is deterministic: the balancer split is a pure function
//! of `(trace, nodes, policy)`, each node is a bit-replayable engine
//! [`Session`](deeppower_simd_server::Session), and batched inference
//! is bit-identical to per-node inference — so a fleet run reproduces
//! byte-for-byte at any harness thread count.

pub mod balancer;
pub mod coordinator;
pub mod profile;
pub mod sim;

pub use balancer::{split_arrivals, BalancerPolicy, NodeCapacity};
pub use coordinator::Coordinator;
pub use profile::{
    node_profile_indices, profile_groups, profiles_from_json, NodeProfile, FLEET_REFERENCE_MHZ,
};
pub use sim::{
    fleet_arrivals, run_fleet, run_fleet_hier, run_fleet_monitored, run_fleet_monitored_full,
    run_fleet_profiled, run_fleet_recorded, run_fleet_reference, run_fleet_threaded,
    run_fleet_threaded_profiled, untrained_policy, FleetResult, FleetSpec, NodeSummary,
};

#[cfg(test)]
mod proptests {
    use super::*;
    use deeppower_workload::{App, AppSpec};
    use proptest::prelude::*;

    fn policy_from_index(i: usize) -> BalancerPolicy {
        BalancerPolicy::all()[i % 3]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// Satellite: same seed + trace ⇒ identical per-node streams,
        /// regardless of how often or where the split runs. The split
        /// is a pure function, which is what makes fleet grids
        /// byte-identical at any `--threads`.
        #[test]
        fn split_is_deterministic(seed in 0u64..1000, nodes in 1usize..9, pol in 0usize..3) {
            let spec = AppSpec::get(App::Masstree);
            let trace = deeppower_core::train::trace_for(&spec, 0.5, 2, seed);
            let arrivals = deeppower_workload::trace_arrivals(&spec, &trace, seed);
            let policy = policy_from_index(pol);
            let caps = vec![NodeCapacity::uniform(spec.n_threads); nodes];
            let a = split_arrivals(&arrivals, &caps, policy);
            let b = split_arrivals(&arrivals, &caps, policy);
            prop_assert_eq!(&a, &b);
        }

        /// Satellite: conservation — every request lands on exactly one
        /// node, nothing is dropped or duplicated, and each per-node
        /// stream preserves arrival order.
        #[test]
        fn split_conserves_requests(seed in 0u64..1000, nodes in 1usize..9, pol in 0usize..3) {
            let spec = AppSpec::get(App::Masstree);
            let trace = deeppower_core::train::trace_for(&spec, 0.7, 2, seed);
            let arrivals = deeppower_workload::trace_arrivals(&spec, &trace, seed);
            let caps = vec![NodeCapacity::uniform(spec.n_threads); nodes];
            let streams = split_arrivals(&arrivals, &caps, policy_from_index(pol));

            prop_assert_eq!(streams.len(), nodes);
            let total: usize = streams.iter().map(|s| s.len()).sum();
            prop_assert_eq!(total, arrivals.len(), "requests dropped or duplicated");

            let mut seen: Vec<u64> = streams.iter().flatten().map(|r| r.id).collect();
            seen.sort_unstable();
            let mut expected: Vec<u64> = arrivals.iter().map(|r| r.id).collect();
            expected.sort_unstable();
            prop_assert_eq!(seen, expected, "id multiset changed across the split");

            for s in &streams {
                prop_assert!(
                    s.windows(2).all(|w| w[0].arrival <= w[1].arrival),
                    "per-node stream lost arrival order"
                );
            }
        }

        /// Satellite: no low-index bias at large N. When arrivals are
        /// spaced so every backlog estimate fully drains between them,
        /// each JSQ decision is an all-nodes tie; rotation must spread
        /// the requests within one of perfectly even (the old
        /// lowest-index tie-break put every request on node 0).
        #[test]
        fn jsq_spread_is_balanced_at_large_n(nodes in 32usize..65, count in 64usize..129) {
            // Tiny requests, 1 s apart: a 1-core node drains 0.4 s of
            // reference work per second, so estimates hit zero long
            // before the next arrival.
            let arrivals: Vec<deeppower_simd_server::Request> = (0..count as u64)
                .map(|i| deeppower_simd_server::Request {
                    id: i,
                    client_id: i,
                    attempt: 0,
                    arrival: i * 1_000_000_000,
                    first_arrival: i * 1_000_000_000,
                    work_ref_ns: 1000,
                    freq_sensitivity: 1.0,
                    sla: 10_000_000,
                    features: vec![],
                })
                .collect();
            let caps = vec![NodeCapacity::uniform(1); nodes];
            let streams = split_arrivals(&arrivals, &caps, BalancerPolicy::JoinShortestQueue);
            let max = streams.iter().map(|s| s.len()).max().unwrap();
            let min = streams.iter().map(|s| s.len()).min().unwrap();
            prop_assert!(
                max - min <= 1,
                "tie rotation left an uneven split at N={}: max {} min {}",
                nodes, max, min
            );
        }
    }
}
