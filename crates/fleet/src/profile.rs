//! Per-node hardware profiles for heterogeneous fleets.
//!
//! The paper's testbed is one homogeneous Xeon socket; a real fleet
//! mixes generations, core counts, and power envelopes (K8S Power
//! Irrigation manages exactly such a mix). A [`NodeProfile`] describes
//! one hardware class — core count, DVFS range, power coefficients,
//! and an optional big.LITTLE-style split where the last few cores are
//! frequency-capped — and a `FleetSpec` holds a list of them, each
//! `count` nodes wide, instead of one config cloned N times.
//!
//! Calibration is fleet-wide: every profile's [`FreqPlan`] keeps the
//! same `reference_mhz`, so a request's `work_ref_ns` means the same
//! amount of work on every node and the balancer's capacity weights
//! ([`NodeCapacity`]) are comparable across profiles. The default
//! profile reproduces `ServerConfig::paper_default` field-for-field —
//! a single-profile fleet is byte-identical to the historical
//! homogeneous fleet (pinned by test).

use deeppower_simd_server::{CStatePlan, ContentionModel, FreqPlan, PowerModel, ServerConfig};
use serde::{Deserialize, Serialize};

use crate::balancer::NodeCapacity;

/// Fleet-wide calibration frequency: the paper testbed's max nominal
/// level. Every profile's plan uses it as `reference_mhz`, even plans
/// topping out below it.
pub const FLEET_REFERENCE_MHZ: u32 = 2100;

fn default_count() -> usize {
    1
}
fn default_min_mhz() -> u32 {
    800
}
fn default_max_mhz() -> u32 {
    2100
}
fn default_turbo_mhz() -> u32 {
    3000
}
fn default_static_w() -> f64 {
    PowerModel::xeon_gold_5218r().static_w
}
fn default_dyn_coef() -> f64 {
    PowerModel::xeon_gold_5218r().dyn_coef
}
fn default_lin_coef() -> f64 {
    PowerModel::xeon_gold_5218r().lin_coef
}

/// One hardware class in a heterogeneous fleet. Serde defaults make a
/// profile file as small as `{"name": "edge", "cores": 1}`; every
/// defaulted field matches the paper's Xeon Gold 5218R testbed.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeProfile {
    /// Display / grouping label (`xeon-24c`, `edge-1c`, …).
    pub name: String,
    /// How many consecutive fleet nodes use this profile.
    #[serde(default = "default_count")]
    pub count: usize,
    /// Physical cores per node.
    pub cores: usize,
    /// DVFS floor (lowest nominal level), MHz.
    #[serde(default = "default_min_mhz")]
    pub min_mhz: u32,
    /// Highest nominal (non-turbo) level, MHz. Levels run from
    /// `min_mhz` to `max_mhz` in 100 MHz steps.
    #[serde(default = "default_max_mhz")]
    pub max_mhz: u32,
    /// Turbo level, MHz (must exceed `max_mhz`).
    #[serde(default = "default_turbo_mhz")]
    pub turbo_mhz: u32,
    /// Static/uncore socket power, watts.
    #[serde(default = "default_static_w")]
    pub static_w: f64,
    /// Cubic dynamic power coefficient, watts per core per GHz³.
    #[serde(default = "default_dyn_coef")]
    pub dyn_coef: f64,
    /// Linear dynamic power coefficient, watts per core per GHz.
    #[serde(default = "default_lin_coef")]
    pub lin_coef: f64,
    /// big.LITTLE: how many of the node's cores (the last ones) are
    /// efficiency cores capped at `little_max_mhz`. 0 = homogeneous.
    #[serde(default)]
    pub little_cores: usize,
    /// Frequency ceiling of the little cores, MHz (a plan level).
    #[serde(default)]
    pub little_max_mhz: u32,
}

impl NodeProfile {
    /// The paper testbed as a profile: `server_config()` of this
    /// profile equals `ServerConfig::paper_default(cores)` exactly.
    pub fn paper_default(cores: usize, count: usize) -> Self {
        Self {
            name: "xeon-gold-5218r".into(),
            count,
            cores,
            min_mhz: default_min_mhz(),
            max_mhz: default_max_mhz(),
            turbo_mhz: default_turbo_mhz(),
            static_w: default_static_w(),
            dyn_coef: default_dyn_coef(),
            lin_coef: default_lin_coef(),
            little_cores: 0,
            little_max_mhz: 0,
        }
    }

    /// Validate invariants; call after deserializing a profile file.
    pub fn validate(&self) -> Result<(), String> {
        let ctx = |msg: String| format!("profile `{}`: {msg}", self.name);
        if self.count == 0 {
            return Err(ctx("count must be at least 1".into()));
        }
        if self.cores == 0 {
            return Err(ctx("cores must be at least 1".into()));
        }
        if self.min_mhz == 0 || self.min_mhz > self.max_mhz {
            return Err(ctx(format!(
                "bad DVFS range {}..{} MHz",
                self.min_mhz, self.max_mhz
            )));
        }
        if !(self.max_mhz - self.min_mhz).is_multiple_of(100) {
            return Err(ctx("DVFS range must span whole 100 MHz steps".into()));
        }
        if self.turbo_mhz <= self.max_mhz {
            return Err(ctx("turbo must exceed the max nominal level".into()));
        }
        if !(self.static_w.is_finite() && self.dyn_coef.is_finite() && self.lin_coef.is_finite()) {
            return Err(ctx("power coefficients must be finite".into()));
        }
        if self.static_w < 0.0 || self.dyn_coef < 0.0 || self.lin_coef < 0.0 {
            return Err(ctx("power coefficients must be non-negative".into()));
        }
        if self.little_cores > 0 {
            if self.little_cores >= self.cores {
                return Err(ctx("a big.LITTLE node needs at least one big core".into()));
            }
            let lm = self.little_max_mhz;
            if lm < self.min_mhz || lm > self.max_mhz || !(lm - self.min_mhz).is_multiple_of(100) {
                return Err(ctx(format!(
                    "little_max_mhz {lm} is not a plan level in {}..{}",
                    self.min_mhz, self.max_mhz
                )));
            }
        } else if self.little_max_mhz != 0 {
            return Err(ctx("little_max_mhz set without little_cores".into()));
        }
        self.freq_plan().validate().map_err(ctx)
    }

    fn freq_plan(&self) -> FreqPlan {
        FreqPlan {
            levels_mhz: (self.min_mhz..=self.max_mhz).step_by(100).collect(),
            turbo_mhz: self.turbo_mhz,
            reference_mhz: FLEET_REFERENCE_MHZ,
            transition_ns: 5_000,
        }
    }

    /// The engine config for one node of this profile. For the default
    /// profile this is `ServerConfig::paper_default(cores)`
    /// field-for-field — the single-profile bit-identity hinges on it.
    pub fn server_config(&self) -> ServerConfig {
        let freq_plan = self.freq_plan();
        let initial_mhz = freq_plan.max_mhz();
        let core_max_mhz = if self.little_cores == 0 {
            Vec::new()
        } else {
            // Big cores first, capped only at turbo (i.e. unconstrained);
            // the trailing little cores carry the real ceiling.
            let big = self.cores - self.little_cores;
            let mut caps = vec![self.turbo_mhz; self.cores];
            caps[big..].fill(self.little_max_mhz);
            caps
        };
        ServerConfig {
            n_cores: self.cores,
            freq_plan,
            power: PowerModel {
                static_w: self.static_w,
                dyn_coef: self.dyn_coef,
                lin_coef: self.lin_coef,
                ..PowerModel::xeon_gold_5218r()
            },
            contention: ContentionModel::default(),
            initial_mhz,
            cstates: CStatePlan::none(),
            core_max_mhz,
        }
    }

    /// What the balancer's fluid model needs to know about one node of
    /// this profile. Little cores drain at their cap relative to the
    /// node's own floor, counted fractionally against the big cores.
    pub fn capacity(&self) -> NodeCapacity {
        NodeCapacity {
            cores: self.cores,
            floor_mhz: self.min_mhz,
        }
    }
}

/// Expand a profile list into one profile index per fleet node,
/// consecutive by profile order (`[{count: 2}, {count: 1}]` →
/// `[0, 0, 1]`).
pub fn node_profile_indices(profiles: &[NodeProfile]) -> Vec<usize> {
    profiles
        .iter()
        .enumerate()
        .flat_map(|(k, p)| std::iter::repeat_n(k, p.count))
        .collect()
}

/// Group fleet node indices by profile: `groups[k]` lists the nodes
/// running profile `k`, ascending. The grouped-inference coordinator
/// batches each group in one forward pass.
pub fn profile_groups(profiles: &[NodeProfile]) -> Vec<Vec<usize>> {
    let idx = node_profile_indices(profiles);
    let mut groups = vec![Vec::new(); profiles.len()];
    for (node, &k) in idx.iter().enumerate() {
        groups[k].push(node);
    }
    groups
}

/// Parse a profile file (a JSON array of [`NodeProfile`]s), validating
/// every entry.
pub fn profiles_from_json(json: &str) -> Result<Vec<NodeProfile>, String> {
    let profiles: Vec<NodeProfile> =
        serde_json::from_str(json).map_err(|e| format!("bad profile JSON: {e}"))?;
    if profiles.is_empty() {
        return Err("profile file lists no profiles".into());
    }
    for p in &profiles {
        p.validate()?;
    }
    Ok(profiles)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_reproduces_paper_default_config() {
        for cores in [1, 8, 20] {
            let p = NodeProfile::paper_default(cores, 3);
            p.validate().unwrap();
            let built = p.server_config();
            let paper = ServerConfig::paper_default(cores);
            assert_eq!(built.n_cores, paper.n_cores);
            assert_eq!(built.freq_plan, paper.freq_plan);
            assert_eq!(built.initial_mhz, paper.initial_mhz);
            assert_eq!(built.core_max_mhz, paper.core_max_mhz);
            assert_eq!(built.power.static_w, paper.power.static_w);
            assert_eq!(built.power.dyn_coef, paper.power.dyn_coef);
            assert_eq!(built.power.lin_coef, paper.power.lin_coef);
            assert_eq!(built.power.idle_activity, paper.power.idle_activity);
            assert_eq!(p.capacity(), NodeCapacity::uniform(cores));
        }
    }

    #[test]
    fn biglittle_profile_caps_trailing_cores() {
        let p = NodeProfile {
            little_cores: 2,
            little_max_mhz: 1200,
            ..NodeProfile::paper_default(4, 1)
        };
        p.validate().unwrap();
        let cfg = p.server_config();
        assert_eq!(cfg.core_max_mhz, vec![3000, 3000, 1200, 1200]);
        // Big cores are effectively uncapped: turbo still reachable.
        assert_eq!(cfg.core_cap(0), Some(3000));
    }

    #[test]
    fn little_node_keeps_the_fleet_reference() {
        // An edge-class node topping out at 1500 MHz still calibrates
        // against the fleet's 2100 MHz reference.
        let p = NodeProfile {
            max_mhz: 1500,
            turbo_mhz: 1600,
            ..NodeProfile::paper_default(1, 1)
        };
        p.validate().unwrap();
        let cfg = p.server_config();
        assert_eq!(cfg.freq_plan.reference_mhz, FLEET_REFERENCE_MHZ);
        assert_eq!(cfg.freq_plan.max_mhz(), 1500);
        assert_eq!(cfg.initial_mhz, 1500);
    }

    #[test]
    fn validation_rejects_malformed_profiles() {
        let base = NodeProfile::paper_default(4, 2);
        let bad = [
            NodeProfile {
                count: 0,
                ..base.clone()
            },
            NodeProfile {
                cores: 0,
                ..base.clone()
            },
            NodeProfile {
                min_mhz: 2200,
                ..base.clone()
            },
            NodeProfile {
                max_mhz: 2150,
                ..base.clone()
            },
            NodeProfile {
                turbo_mhz: 2100,
                ..base.clone()
            },
            NodeProfile {
                dyn_coef: f64::NAN,
                ..base.clone()
            },
            NodeProfile {
                little_cores: 4,
                little_max_mhz: 1200,
                ..base.clone()
            },
            NodeProfile {
                little_cores: 1,
                little_max_mhz: 1250,
                ..base.clone()
            },
            NodeProfile {
                little_max_mhz: 1200,
                ..base.clone()
            },
        ];
        for p in bad {
            assert!(p.validate().is_err(), "accepted {p:?}");
        }
    }

    #[test]
    fn profile_file_roundtrip_and_expansion() {
        let json = r#"[
            {"name": "big", "count": 2, "cores": 4},
            {"name": "edge", "cores": 1, "max_mhz": 1500, "turbo_mhz": 1600,
             "static_w": 5.0, "dyn_coef": 0.2, "lin_coef": 0.3}
        ]"#;
        let profiles = profiles_from_json(json).unwrap();
        assert_eq!(profiles.len(), 2);
        assert_eq!(profiles[0].count, 2);
        assert_eq!(profiles[1].min_mhz, 800, "defaults fill gaps");
        assert_eq!(node_profile_indices(&profiles), vec![0, 0, 1]);
        assert_eq!(profile_groups(&profiles), vec![vec![0, 1], vec![2]]);
        assert!(profiles_from_json("[]").is_err());
        assert!(profiles_from_json("{").is_err());
        assert!(profiles_from_json(r#"[{"name": "x", "cores": 0}]"#).is_err());
    }
}
