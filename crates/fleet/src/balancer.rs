//! Deterministic load balancing: split one fleet-level arrival stream
//! into per-node streams.
//!
//! The balancer runs *before* the simulation, as a pure function of the
//! arrival trace — the same place a real L4 balancer sits (it routes on
//! arrival, before the request's service time is known). The stateful
//! policies therefore work from an *estimated* backlog model, the
//! analog of a connection-count or EWMA-load table: each node is
//! approximated as a fluid queue retiring reference-time work at its
//! core count, and routing decisions fold each routed request's
//! `work_ref_ns` into that estimate. The model never sees simulator
//! state, so the split is reproducible from `(trace, nodes, policy)`
//! alone — the property the determinism proptests pin down.

use deeppower_simd_server::Request;
use serde::{Deserialize, Serialize};

/// How the fleet front-end routes requests to nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BalancerPolicy {
    /// Request `i` goes to node `i mod N`. Stateless, perfectly fair in
    /// counts, blind to work size.
    RoundRobin,
    /// Join-shortest-queue on the estimated-backlog model: each request
    /// goes to the node with the least outstanding estimated work. Ties
    /// rotate deterministically with the request index, so an idle
    /// fleet spreads instead of piling onto node 0.
    JoinShortestQueue,
    /// Energy-oriented packing: among nodes whose estimated backlog
    /// stays within half the request's SLA, pick the *most* loaded —
    /// concentrating work so the remaining nodes idle at low power /
    /// deep C-states. Falls back to join-shortest-queue when every node
    /// is saturated.
    PowerAware,
}

impl BalancerPolicy {
    pub fn label(&self) -> &'static str {
        match self {
            BalancerPolicy::RoundRobin => "round-robin",
            BalancerPolicy::JoinShortestQueue => "join-shortest-queue",
            BalancerPolicy::PowerAware => "power-aware",
        }
    }

    /// Parse a CLI-style name (`round-robin`, `jsq`, `power-aware`, …).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "round-robin" | "rr" => Some(BalancerPolicy::RoundRobin),
            "join-shortest-queue" | "jsq" => Some(BalancerPolicy::JoinShortestQueue),
            "power-aware" | "pack" => Some(BalancerPolicy::PowerAware),
            _ => None,
        }
    }

    pub fn all() -> [BalancerPolicy; 3] {
        [
            BalancerPolicy::RoundRobin,
            BalancerPolicy::JoinShortestQueue,
            BalancerPolicy::PowerAware,
        ]
    }
}

/// Fraction of reference speed each core is assumed to retire work at.
/// DeepPower nodes spend most of their time well below the reference
/// frequency (that is the point of the policy), so the balancer drains
/// its estimate at the DVFS floor — roughly 800 MHz against the 2.1 GHz
/// reference. An optimistic (full-speed) drain makes every backlog read
/// zero between bursts, which degenerates join-shortest-queue into
/// "always the tie-break node" and lets the packing policy bury one
/// node; the conservative floor keeps estimates alive long enough to
/// spread load the way a connection-count table would.
const DRAIN_FRACTION: f64 = 0.4;

/// DVFS floor the `DRAIN_FRACTION` constant was calibrated against (the
/// Xeon plan's 800 MHz minimum). A node whose own floor differs scales
/// its drain by `floor_mhz / 800`.
const REFERENCE_FLOOR_MHZ: u32 = 800;

/// What the balancer knows about one node's hardware: enough to build
/// its fluid drain model. Derived from a
/// [`crate::NodeProfile`] in heterogeneous fleets; uniform fleets use
/// [`NodeCapacity::uniform`], which reproduces the historical
/// one-`cores`-for-everyone model bit-for-bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeCapacity {
    /// Physical cores retiring work in parallel.
    pub cores: usize,
    /// The node's own DVFS floor — the frequency the conservative drain
    /// estimate assumes (see [`DRAIN_FRACTION`]).
    pub floor_mhz: u32,
}

impl NodeCapacity {
    /// The historical homogeneous-node capacity: `cores` at the Xeon
    /// 800 MHz floor.
    pub fn uniform(cores: usize) -> Self {
        Self {
            cores,
            floor_mhz: REFERENCE_FLOOR_MHZ,
        }
    }

    /// Reference-time work retired per nanosecond: the satellite bugfix
    /// — previously every node drained at one fleet-wide `cores ×
    /// DRAIN_FRACTION`, so a 2-core node next to 1-core nodes was
    /// modeled at half its real capacity. At the default floor the
    /// scale factor is exactly 1.0, leaving uniform fleets bit-identical.
    fn drain_per_ns(&self) -> f64 {
        self.cores.max(1) as f64
            * DRAIN_FRACTION
            * (self.floor_mhz as f64 / REFERENCE_FLOOR_MHZ as f64)
    }
}

/// Estimated-backlog model of one node: a fluid queue that retires
/// reference-time work at `cores × DRAIN_FRACTION ×` real time, scaled
/// by the node's own DVFS floor.
struct BacklogModel {
    /// Reference-time work (ns) outstanding as of `last_t`.
    work_ref_ns: f64,
    last_t: u64,
    drain_per_ns: f64,
    /// Drain rate relative to the fleet's fastest node, in `(0, 1]`.
    /// Exactly 1.0 for every node of a uniform fleet — and dividing or
    /// multiplying by exactly 1.0 is an IEEE identity, so uniform
    /// routing decisions are bit-identical to the unweighted model.
    capacity_rel: f64,
}

impl BacklogModel {
    fn new(cap: NodeCapacity, max_drain: f64) -> Self {
        let drain = cap.drain_per_ns();
        Self {
            work_ref_ns: 0.0,
            last_t: 0,
            drain_per_ns: drain,
            capacity_rel: drain / max_drain,
        }
    }

    /// Outstanding estimated work after draining up to `now`.
    fn outstanding_at(&mut self, now: u64) -> f64 {
        let dt = now.saturating_sub(self.last_t) as f64;
        self.work_ref_ns = (self.work_ref_ns - dt * self.drain_per_ns).max(0.0);
        self.last_t = self.last_t.max(now);
        self.work_ref_ns
    }

    /// Capacity-weighted backlog: outstanding work as seen by a node of
    /// unit (fleet-max) capacity. JSQ compares these, so a 2-core node
    /// holding 2× the work of a 1-core node reads as equally loaded.
    fn effective_at(&mut self, now: u64) -> f64 {
        self.outstanding_at(now) / self.capacity_rel
    }
}

/// Split a sorted fleet-level arrival stream into `caps.len()` per-node
/// streams under `policy`. Every request lands on exactly one node and
/// per-node streams preserve arrival order (both properties are pinned
/// by the conservation tests). Heterogeneous capacities weight the
/// stateful policies; a uniform slice reproduces the historical split
/// bit-for-bit.
pub fn split_arrivals(
    arrivals: &[Request],
    caps: &[NodeCapacity],
    policy: BalancerPolicy,
) -> Vec<Vec<Request>> {
    let nodes = caps.len();
    assert!(nodes > 0, "fleet needs at least one node");
    let max_drain = caps
        .iter()
        .map(|c| c.drain_per_ns())
        .fold(f64::MIN, f64::max);
    let mut streams: Vec<Vec<Request>> = (0..nodes).map(|_| Vec::new()).collect();
    let mut models: Vec<BacklogModel> = caps
        .iter()
        .map(|&c| BacklogModel::new(c, max_drain))
        .collect();

    for (i, req) in arrivals.iter().enumerate() {
        let target = match policy {
            BalancerPolicy::RoundRobin => i % nodes,
            BalancerPolicy::JoinShortestQueue => argmin_effective(&mut models, req.arrival, i),
            BalancerPolicy::PowerAware => {
                // Pack onto the most loaded node that still has headroom:
                // adding to a node already more than SLA/2 behind risks
                // queueing timeouts, so such nodes are skipped. Headroom
                // scales with node capacity (a 4-core node retires SLA/2
                // of backlog 4× as fast), and fullness is compared on
                // the capacity-weighted backlog.
                let headroom = req.sla as f64 / 2.0;
                let mut best: Option<(usize, f64)> = None;
                for (k, m) in models.iter_mut().enumerate() {
                    let out = m.outstanding_at(req.arrival);
                    if out < headroom * m.capacity_rel {
                        let eff = out / m.capacity_rel;
                        let fuller = match best {
                            Some((_, b)) => eff > b,
                            None => true,
                        };
                        if fuller {
                            best = Some((k, eff));
                        }
                    }
                }
                match best {
                    Some((k, _)) => k,
                    None => argmin_effective(&mut models, req.arrival, i),
                }
            }
        };
        models[target].work_ref_ns += req.work_ref_ns as f64;
        streams[target].push(req.clone());
    }
    streams
}

/// Node with the least capacity-weighted outstanding work at `now`.
/// Equal backlogs rotate with `req_index` instead of collapsing to the
/// lowest node index: between bursts every estimate drains to zero, and
/// under lowest-index tie-breaking each new burst's head would land on
/// node 0 every time — at N ≥ 32 that low-index bias is the dominant
/// routing signal. Rotation keeps the choice a pure function of
/// `(trace, capacities, policy)`, so determinism is untouched.
fn argmin_effective(models: &mut [BacklogModel], now: u64, req_index: usize) -> usize {
    let mut ties: Vec<usize> = Vec::with_capacity(4);
    let mut best_out = f64::INFINITY;
    for (k, m) in models.iter_mut().enumerate() {
        let out = m.effective_at(now);
        if out < best_out {
            best_out = out;
            ties.clear();
            ties.push(k);
        } else if out == best_out {
            ties.push(k);
        }
    }
    ties[req_index % ties.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, arrival: u64, work: u64) -> Request {
        Request {
            id,
            client_id: id,
            attempt: 0,
            arrival,
            first_arrival: arrival,
            work_ref_ns: work,
            freq_sensitivity: 1.0,
            sla: 10_000_000,
            features: vec![],
        }
    }

    #[test]
    fn round_robin_strides_across_nodes() {
        let arrivals: Vec<Request> = (0..10).map(|i| req(i, i * 1000, 500)).collect();
        let streams = split_arrivals(
            &arrivals,
            &[NodeCapacity::uniform(4); 3],
            BalancerPolicy::RoundRobin,
        );
        assert_eq!(
            streams[0].iter().map(|r| r.id).collect::<Vec<_>>(),
            [0, 3, 6, 9]
        );
        assert_eq!(
            streams[1].iter().map(|r| r.id).collect::<Vec<_>>(),
            [1, 4, 7]
        );
        assert_eq!(
            streams[2].iter().map(|r| r.id).collect::<Vec<_>>(),
            [2, 5, 8]
        );
    }

    #[test]
    fn jsq_prefers_the_least_loaded_node() {
        // Two simultaneous heavy requests then a third: JSQ must not
        // stack all three on node 0.
        let arrivals = vec![
            req(0, 0, 1_000_000),
            req(1, 0, 1_000_000),
            req(2, 0, 1_000_000),
        ];
        let streams = split_arrivals(
            &arrivals,
            &[NodeCapacity::uniform(1); 3],
            BalancerPolicy::JoinShortestQueue,
        );
        assert!(streams.iter().all(|s| s.len() == 1), "{streams:?}");
    }

    #[test]
    fn jsq_drains_backlog_over_time() {
        // Drain must be able to flip a strict comparison, not just
        // resolve ties. Node 0 takes 6 ms at t=0, node 1 takes 4 ms at
        // t=9 ms; by t=10 ms the 1-core nodes have drained to 2.0 ms
        // and 3.6 ms respectively (0.4 ref-ns per ns), so the tiny
        // request lands back on node 0 — the *older* backlog wins
        // despite having been larger.
        let arrivals = vec![
            req(0, 0, 6_000_000),
            req(1, 9_000_000, 4_000_000),
            req(2, 10_000_000, 1000),
        ];
        let streams = split_arrivals(
            &arrivals,
            &[NodeCapacity::uniform(1); 2],
            BalancerPolicy::JoinShortestQueue,
        );
        assert_eq!(
            streams[0].iter().map(|r| r.id).collect::<Vec<_>>(),
            [0, 2],
            "{streams:?}"
        );
        assert_eq!(streams[1].iter().map(|r| r.id).collect::<Vec<_>>(), [1]);

        // Without the intervening drain (same split requested at t=0
        // instead), the 4 ms backlog would still be the strict minimum:
        // the request spills to node 1.
        let arrivals = vec![
            req(0, 0, 6_000_000),
            req(1, 0, 4_000_000),
            req(2, 1000, 1000),
        ];
        let streams = split_arrivals(
            &arrivals,
            &[NodeCapacity::uniform(1); 2],
            BalancerPolicy::JoinShortestQueue,
        );
        assert_eq!(streams[1].iter().map(|r| r.id).collect::<Vec<_>>(), [1, 2]);
    }

    #[test]
    fn jsq_ties_rotate_instead_of_packing_node_zero() {
        // Requests spaced far enough apart that every backlog estimate
        // has fully drained: each routing decision is an all-nodes tie.
        // Rotation must spread them evenly; the old lowest-index
        // tie-break put all twelve on node 0.
        let arrivals: Vec<Request> = (0..12).map(|i| req(i, i * 1_000_000_000, 1000)).collect();
        let streams = split_arrivals(
            &arrivals,
            &[NodeCapacity::uniform(1); 4],
            BalancerPolicy::JoinShortestQueue,
        );
        for (k, s) in streams.iter().enumerate() {
            assert_eq!(s.len(), 3, "node {k} got {} of 12: {streams:?}", s.len());
        }
        // Still a pure function of the trace: same call, same split.
        let again = split_arrivals(
            &arrivals,
            &[NodeCapacity::uniform(1); 4],
            BalancerPolicy::JoinShortestQueue,
        );
        for (a, b) in streams.iter().zip(&again) {
            let ids: Vec<u64> = a.iter().map(|r| r.id).collect();
            let ids_b: Vec<u64> = b.iter().map(|r| r.id).collect();
            assert_eq!(ids, ids_b);
        }
    }

    #[test]
    fn power_aware_packs_until_headroom_is_exhausted() {
        // SLA 10 ms → headroom 5 ms. Three simultaneous 3 ms requests:
        // the first two pack onto node 0 (0 ms, then 3 ms outstanding);
        // the third sees 6 ms > headroom on node 0 and spills to node 1.
        let arrivals = vec![
            req(0, 0, 3_000_000),
            req(1, 0, 3_000_000),
            req(2, 0, 3_000_000),
        ];
        let streams = split_arrivals(
            &arrivals,
            &[NodeCapacity::uniform(1); 3],
            BalancerPolicy::PowerAware,
        );
        assert_eq!(streams[0].iter().map(|r| r.id).collect::<Vec<_>>(), [0, 1]);
        assert_eq!(streams[1].iter().map(|r| r.id).collect::<Vec<_>>(), [2]);
        assert!(streams[2].is_empty());
    }

    #[test]
    fn power_aware_falls_back_to_jsq_when_saturated() {
        // Every node saturated: the request still lands somewhere.
        let mut arrivals: Vec<Request> = (0..8).map(|i| req(i, 0, 20_000_000)).collect();
        arrivals.push(req(8, 0, 1000));
        let streams = split_arrivals(
            &arrivals,
            &[NodeCapacity::uniform(1); 2],
            BalancerPolicy::PowerAware,
        );
        let total: usize = streams.iter().map(|s| s.len()).sum();
        assert_eq!(total, 9);
    }

    #[test]
    fn packing_headroom_scales_with_node_capacity() {
        // SLA 10 ms → base headroom 5 ms, anchored at the fleet's
        // fastest node. Next to a 2-core node a 1-core node drains half
        // as fast, so its cutoff halves to 2.5 ms of raw backlog. Three
        // simultaneous 3 ms requests: the first fills the 1-core node
        // past its cutoff, so both remaining requests pack onto the
        // 2-core node — under the old one-cores-fits-all model both
        // nodes shared the 5 ms cutoff and the split came out [2, 1].
        let caps = [NodeCapacity::uniform(1), NodeCapacity::uniform(2)];
        let arrivals: Vec<Request> = (0..3).map(|i| req(i, 0, 3_000_000)).collect();
        let streams = split_arrivals(&arrivals, &caps, BalancerPolicy::PowerAware);
        assert_eq!(
            streams[0].iter().map(|r| r.id).collect::<Vec<_>>(),
            [0],
            "{streams:?}"
        );
        assert_eq!(streams[1].iter().map(|r| r.id).collect::<Vec<_>>(), [1, 2]);

        // Same three requests on equal 1-core nodes: node 0 keeps its
        // full 5 ms cutoff and takes two before spilling.
        let caps = [NodeCapacity::uniform(1), NodeCapacity::uniform(1)];
        let streams = split_arrivals(&arrivals, &caps, BalancerPolicy::PowerAware);
        assert_eq!(streams[0].iter().map(|r| r.id).collect::<Vec<_>>(), [0, 1]);
        assert_eq!(streams[1].iter().map(|r| r.id).collect::<Vec<_>>(), [2]);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

            /// The satellite bugfix pinned: under sustained load a
            /// 2-core node must absorb ~2× the work of a 1-core node.
            /// With the old uniform-`cores` drain model both policies
            /// split the work evenly regardless of node size.
            #[test]
            fn two_core_node_absorbs_about_twice_the_work(
                gap_ns in 500u64..2000,
                load in 1.05f64..1.4,
                policy_idx in 0usize..2,
            ) {
                let policy = [
                    BalancerPolicy::JoinShortestQueue,
                    BalancerPolicy::PowerAware,
                ][policy_idx];
                let caps = [NodeCapacity::uniform(1), NodeCapacity::uniform(2)];
                // Offered work = `load` × the fleet's total drain
                // capacity (1.2 ref-ns per ns), so backlogs stay alive
                // and the capacity weighting is what routes. A tight SLA
                // keeps the packing cutoffs saturated, so PowerAware
                // spends the run in its capacity-weighted steady state
                // instead of packing one node forever.
                let work = (gap_ns as f64 * 1.2 * load) as u64;
                let arrivals: Vec<Request> = (0..2000)
                    .map(|i| Request {
                        sla: 100_000,
                        ..req(i, i * gap_ns, work)
                    })
                    .collect();
                let streams = split_arrivals(&arrivals, &caps, policy);
                let w0: u64 = streams[0].iter().map(|r| r.work_ref_ns).sum();
                let w1: u64 = streams[1].iter().map(|r| r.work_ref_ns).sum();
                prop_assert!(w0 > 0, "1-core node starved entirely");
                let ratio = w1 as f64 / w0 as f64;
                prop_assert!(
                    (1.5..=2.6).contains(&ratio),
                    "2-core/1-core work ratio {ratio:.2} not ~2 under {policy:?}"
                );
            }
        }
    }
}
