//! Deterministic load balancing: split one fleet-level arrival stream
//! into per-node streams.
//!
//! The balancer runs *before* the simulation, as a pure function of the
//! arrival trace — the same place a real L4 balancer sits (it routes on
//! arrival, before the request's service time is known). The stateful
//! policies therefore work from an *estimated* backlog model, the
//! analog of a connection-count or EWMA-load table: each node is
//! approximated as a fluid queue retiring reference-time work at its
//! core count, and routing decisions fold each routed request's
//! `work_ref_ns` into that estimate. The model never sees simulator
//! state, so the split is reproducible from `(trace, nodes, policy)`
//! alone — the property the determinism proptests pin down.

use deeppower_simd_server::Request;
use serde::{Deserialize, Serialize};

/// How the fleet front-end routes requests to nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BalancerPolicy {
    /// Request `i` goes to node `i mod N`. Stateless, perfectly fair in
    /// counts, blind to work size.
    RoundRobin,
    /// Join-shortest-queue on the estimated-backlog model: each request
    /// goes to the node with the least outstanding estimated work. Ties
    /// rotate deterministically with the request index, so an idle
    /// fleet spreads instead of piling onto node 0.
    JoinShortestQueue,
    /// Energy-oriented packing: among nodes whose estimated backlog
    /// stays within half the request's SLA, pick the *most* loaded —
    /// concentrating work so the remaining nodes idle at low power /
    /// deep C-states. Falls back to join-shortest-queue when every node
    /// is saturated.
    PowerAware,
}

impl BalancerPolicy {
    pub fn label(&self) -> &'static str {
        match self {
            BalancerPolicy::RoundRobin => "round-robin",
            BalancerPolicy::JoinShortestQueue => "join-shortest-queue",
            BalancerPolicy::PowerAware => "power-aware",
        }
    }

    /// Parse a CLI-style name (`round-robin`, `jsq`, `power-aware`, …).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "round-robin" | "rr" => Some(BalancerPolicy::RoundRobin),
            "join-shortest-queue" | "jsq" => Some(BalancerPolicy::JoinShortestQueue),
            "power-aware" | "pack" => Some(BalancerPolicy::PowerAware),
            _ => None,
        }
    }

    pub fn all() -> [BalancerPolicy; 3] {
        [
            BalancerPolicy::RoundRobin,
            BalancerPolicy::JoinShortestQueue,
            BalancerPolicy::PowerAware,
        ]
    }
}

/// Fraction of reference speed each core is assumed to retire work at.
/// DeepPower nodes spend most of their time well below the reference
/// frequency (that is the point of the policy), so the balancer drains
/// its estimate at the DVFS floor — roughly 800 MHz against the 2.1 GHz
/// reference. An optimistic (full-speed) drain makes every backlog read
/// zero between bursts, which degenerates join-shortest-queue into
/// "always the tie-break node" and lets the packing policy bury one
/// node; the conservative floor keeps estimates alive long enough to
/// spread load the way a connection-count table would.
const DRAIN_FRACTION: f64 = 0.4;

/// Estimated-backlog model of one node: a fluid queue that retires
/// reference-time work at `cores × DRAIN_FRACTION ×` real time.
struct BacklogModel {
    /// Reference-time work (ns) outstanding as of `last_t`.
    work_ref_ns: f64,
    last_t: u64,
    drain_per_ns: f64,
}

impl BacklogModel {
    fn new(cores: usize) -> Self {
        Self {
            work_ref_ns: 0.0,
            last_t: 0,
            drain_per_ns: cores.max(1) as f64 * DRAIN_FRACTION,
        }
    }

    /// Outstanding estimated work after draining up to `now`.
    fn outstanding_at(&mut self, now: u64) -> f64 {
        let dt = now.saturating_sub(self.last_t) as f64;
        self.work_ref_ns = (self.work_ref_ns - dt * self.drain_per_ns).max(0.0);
        self.last_t = self.last_t.max(now);
        self.work_ref_ns
    }

    fn route(&mut self, req: &Request) {
        self.work_ref_ns += req.work_ref_ns as f64;
    }
}

/// Split a sorted fleet-level arrival stream into `nodes` per-node
/// streams under `policy`. Every request lands on exactly one node and
/// per-node streams preserve arrival order (both properties are pinned
/// by the conservation tests).
pub fn split_arrivals(
    arrivals: &[Request],
    nodes: usize,
    node_cores: usize,
    policy: BalancerPolicy,
) -> Vec<Vec<Request>> {
    assert!(nodes > 0, "fleet needs at least one node");
    let mut streams: Vec<Vec<Request>> = (0..nodes).map(|_| Vec::new()).collect();
    let mut models: Vec<BacklogModel> = (0..nodes).map(|_| BacklogModel::new(node_cores)).collect();

    for (i, req) in arrivals.iter().enumerate() {
        let target = match policy {
            BalancerPolicy::RoundRobin => i % nodes,
            BalancerPolicy::JoinShortestQueue => argmin_outstanding(&mut models, req.arrival, i),
            BalancerPolicy::PowerAware => {
                // Pack onto the most loaded node that still has headroom:
                // adding to a node already more than SLA/2 behind risks
                // queueing timeouts, so such nodes are skipped.
                let headroom = req.sla as f64 / 2.0;
                let mut best: Option<(usize, f64)> = None;
                for (k, m) in models.iter_mut().enumerate() {
                    let out = m.outstanding_at(req.arrival);
                    if out < headroom {
                        let fuller = match best {
                            Some((_, b)) => out > b,
                            None => true,
                        };
                        if fuller {
                            best = Some((k, out));
                        }
                    }
                }
                match best {
                    Some((k, _)) => k,
                    None => argmin_outstanding(&mut models, req.arrival, i),
                }
            }
        };
        models[target].route(req);
        streams[target].push(req.clone());
    }
    streams
}

/// Node with the least outstanding estimated work at `now`. Equal
/// backlogs rotate with `req_index` instead of collapsing to the lowest
/// node index: between bursts every estimate drains to zero, and under
/// lowest-index tie-breaking each new burst's head would land on node 0
/// every time — at N ≥ 32 that low-index bias is the dominant routing
/// signal. Rotation keeps the choice a pure function of
/// `(trace, nodes, policy)`, so determinism is untouched.
fn argmin_outstanding(models: &mut [BacklogModel], now: u64, req_index: usize) -> usize {
    let mut ties: Vec<usize> = Vec::with_capacity(4);
    let mut best_out = f64::INFINITY;
    for (k, m) in models.iter_mut().enumerate() {
        let out = m.outstanding_at(now);
        if out < best_out {
            best_out = out;
            ties.clear();
            ties.push(k);
        } else if out == best_out {
            ties.push(k);
        }
    }
    ties[req_index % ties.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, arrival: u64, work: u64) -> Request {
        Request {
            id,
            client_id: id,
            attempt: 0,
            arrival,
            first_arrival: arrival,
            work_ref_ns: work,
            freq_sensitivity: 1.0,
            sla: 10_000_000,
            features: vec![],
        }
    }

    #[test]
    fn round_robin_strides_across_nodes() {
        let arrivals: Vec<Request> = (0..10).map(|i| req(i, i * 1000, 500)).collect();
        let streams = split_arrivals(&arrivals, 3, 4, BalancerPolicy::RoundRobin);
        assert_eq!(
            streams[0].iter().map(|r| r.id).collect::<Vec<_>>(),
            [0, 3, 6, 9]
        );
        assert_eq!(
            streams[1].iter().map(|r| r.id).collect::<Vec<_>>(),
            [1, 4, 7]
        );
        assert_eq!(
            streams[2].iter().map(|r| r.id).collect::<Vec<_>>(),
            [2, 5, 8]
        );
    }

    #[test]
    fn jsq_prefers_the_least_loaded_node() {
        // Two simultaneous heavy requests then a third: JSQ must not
        // stack all three on node 0.
        let arrivals = vec![
            req(0, 0, 1_000_000),
            req(1, 0, 1_000_000),
            req(2, 0, 1_000_000),
        ];
        let streams = split_arrivals(&arrivals, 3, 1, BalancerPolicy::JoinShortestQueue);
        assert!(streams.iter().all(|s| s.len() == 1), "{streams:?}");
    }

    #[test]
    fn jsq_drains_backlog_over_time() {
        // Drain must be able to flip a strict comparison, not just
        // resolve ties. Node 0 takes 6 ms at t=0, node 1 takes 4 ms at
        // t=9 ms; by t=10 ms the 1-core nodes have drained to 2.0 ms
        // and 3.6 ms respectively (0.4 ref-ns per ns), so the tiny
        // request lands back on node 0 — the *older* backlog wins
        // despite having been larger.
        let arrivals = vec![
            req(0, 0, 6_000_000),
            req(1, 9_000_000, 4_000_000),
            req(2, 10_000_000, 1000),
        ];
        let streams = split_arrivals(&arrivals, 2, 1, BalancerPolicy::JoinShortestQueue);
        assert_eq!(
            streams[0].iter().map(|r| r.id).collect::<Vec<_>>(),
            [0, 2],
            "{streams:?}"
        );
        assert_eq!(streams[1].iter().map(|r| r.id).collect::<Vec<_>>(), [1]);

        // Without the intervening drain (same split requested at t=0
        // instead), the 4 ms backlog would still be the strict minimum:
        // the request spills to node 1.
        let arrivals = vec![
            req(0, 0, 6_000_000),
            req(1, 0, 4_000_000),
            req(2, 1000, 1000),
        ];
        let streams = split_arrivals(&arrivals, 2, 1, BalancerPolicy::JoinShortestQueue);
        assert_eq!(streams[1].iter().map(|r| r.id).collect::<Vec<_>>(), [1, 2]);
    }

    #[test]
    fn jsq_ties_rotate_instead_of_packing_node_zero() {
        // Requests spaced far enough apart that every backlog estimate
        // has fully drained: each routing decision is an all-nodes tie.
        // Rotation must spread them evenly; the old lowest-index
        // tie-break put all twelve on node 0.
        let arrivals: Vec<Request> = (0..12).map(|i| req(i, i * 1_000_000_000, 1000)).collect();
        let streams = split_arrivals(&arrivals, 4, 1, BalancerPolicy::JoinShortestQueue);
        for (k, s) in streams.iter().enumerate() {
            assert_eq!(s.len(), 3, "node {k} got {} of 12: {streams:?}", s.len());
        }
        // Still a pure function of the trace: same call, same split.
        let again = split_arrivals(&arrivals, 4, 1, BalancerPolicy::JoinShortestQueue);
        for (a, b) in streams.iter().zip(&again) {
            let ids: Vec<u64> = a.iter().map(|r| r.id).collect();
            let ids_b: Vec<u64> = b.iter().map(|r| r.id).collect();
            assert_eq!(ids, ids_b);
        }
    }

    #[test]
    fn power_aware_packs_until_headroom_is_exhausted() {
        // SLA 10 ms → headroom 5 ms. Three simultaneous 3 ms requests:
        // the first two pack onto node 0 (0 ms, then 3 ms outstanding);
        // the third sees 6 ms > headroom on node 0 and spills to node 1.
        let arrivals = vec![
            req(0, 0, 3_000_000),
            req(1, 0, 3_000_000),
            req(2, 0, 3_000_000),
        ];
        let streams = split_arrivals(&arrivals, 3, 1, BalancerPolicy::PowerAware);
        assert_eq!(streams[0].iter().map(|r| r.id).collect::<Vec<_>>(), [0, 1]);
        assert_eq!(streams[1].iter().map(|r| r.id).collect::<Vec<_>>(), [2]);
        assert!(streams[2].is_empty());
    }

    #[test]
    fn power_aware_falls_back_to_jsq_when_saturated() {
        // Every node saturated: the request still lands somewhere.
        let mut arrivals: Vec<Request> = (0..8).map(|i| req(i, 0, 20_000_000)).collect();
        arrivals.push(req(8, 0, 1000));
        let streams = split_arrivals(&arrivals, 2, 1, BalancerPolicy::PowerAware);
        let total: usize = streams.iter().map(|s| s.len()).sum();
        assert_eq!(total, 9);
    }
}
