//! The fleet driver: N node simulations advanced in lockstep
//! `LongTime` epochs, steered by one shared DeepPower policy whose
//! actions for all nodes come from a single batched forward pass.
//!
//! Each node is an independent [`Server`] session (its own cores,
//! queue, energy meter and telemetry stream); the only coupling is the
//! pre-computed balancer split of the fleet arrival stream and the
//! shared actor. At every epoch boundary the driver pauses all nodes
//! ([`Session::advance_until`]), stacks their 8-dimensional DeepPower
//! states into one `N × 8` matrix, runs one matrix–matrix inference
//! ([`Ddpg::act_batch`]) and writes each row's `(BaseFreq,
//! ScalingCoef)` into that node's thread controller. Because every
//! batched output row is bit-identical to the single-state pass (see
//! `TwoHeadActor::act_batch`), the batched fleet produces *exactly* the
//! per-node results of the naive one-node-at-a-time loop — pinned by
//! `batched_and_unbatched_fleets_agree` — while doing `1/N` of the
//! forward passes (the `fleet_scaling` bench measures the speedup).

use crate::balancer::{split_arrivals, BalancerPolicy};
use deeppower_core::{
    ControllerParams, StateObserver, ThreadController, TrainConfig, TrainedPolicy, STATE_DIM,
};
use deeppower_drl::Ddpg;
use deeppower_nn::Matrix;
use deeppower_simd_server::{
    FreqCommands, Governor, LatencyStats, Request, RequestRecord, RunOptions, Server, ServerConfig,
    ServerView, Session, MILLISECOND,
};
use deeppower_telemetry::{Profiler, Recorder};
use deeppower_workload::{trace_arrivals, App, AppSpec, DiurnalConfig, DiurnalTrace};
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::rc::Rc;

/// One fleet experiment: N identical nodes serving a shared diurnal
/// trace behind a balancer, under one trained policy.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FleetSpec {
    pub app: App,
    /// Number of server nodes.
    pub nodes: usize,
    pub balancer: BalancerPolicy,
    /// Master seed: the diurnal trace and request sampling derive from
    /// it deterministically.
    pub seed: u64,
    /// Peak RPS per node as a fraction of the app's capacity (the fleet
    /// trace peaks at `nodes ×` this rate).
    pub peak_load: f64,
    /// Trace duration in simulated seconds.
    pub duration_s: u64,
}

/// Per-node slice of a fleet run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NodeSummary {
    pub node: usize,
    /// Requests routed to this node by the balancer.
    pub assigned: u64,
    /// Requests completed (the simulator drops nothing, so this equals
    /// `assigned` — asserted by the conservation tests).
    pub requests: u64,
    pub energy_j: f64,
    pub avg_power_w: f64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    pub timeout_rate: f64,
    pub freq_transitions: u64,
}

/// Fleet-level aggregates plus the per-node breakdown.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FleetResult {
    pub app: String,
    pub nodes: usize,
    pub balancer: String,
    pub seed: u64,
    pub peak_load: f64,
    pub duration_s: u64,
    /// Batched policy decisions taken (one per `LongTime` epoch).
    pub drl_epochs: u64,
    pub total_requests: u64,
    pub total_energy_j: f64,
    /// Sum of per-node average powers — the fleet's steady draw.
    pub total_power_w: f64,
    /// Percentiles over the *merged* latency records of all nodes.
    pub fleet_p50_ms: f64,
    pub fleet_p95_ms: f64,
    pub fleet_p99_ms: f64,
    pub fleet_timeout_rate: f64,
    pub per_node: Vec<NodeSummary>,
}

impl FleetResult {
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("FleetResult serialization cannot fail")
    }
}

/// Generate the fleet-level arrival stream: the app's diurnal trace
/// with its peak scaled to `nodes × rps_for_load(peak_load)`.
pub fn fleet_arrivals(spec: &FleetSpec) -> Vec<Request> {
    let app_spec = AppSpec::get(spec.app);
    let cfg = DiurnalConfig {
        period_s: spec.duration_s,
        ..Default::default()
    };
    let mut trace = DiurnalTrace::generate(&cfg, spec.seed);
    trace.scale_peak_to(app_spec.rps_for_load(spec.peak_load) * spec.nodes as f64);
    trace_arrivals(&app_spec, &trace, spec.seed)
}

/// A policy with freshly initialized (untrained) actor weights, for
/// exercising fleet *mechanics* — scaling benches, determinism and
/// conservation tests — without paying for training. Experiments that
/// care about policy quality train via `deeppower-core` as usual.
pub fn untrained_policy(app: App, seed: u64) -> TrainedPolicy {
    let cfg = TrainConfig::for_app(app);
    let ddpg = deeppower_drl::DdpgConfig {
        seed,
        ..cfg.deeppower.ddpg
    };
    let agent = Ddpg::new(ddpg);
    TrainedPolicy {
        app,
        actor_weights: agent.actor_snapshot(),
        critic_weights: agent.critic_snapshot(),
        ddpg,
        deeppower: cfg.deeppower,
    }
}

/// Node-side governor: Algorithm 1 whose parameters live in a shared
/// cell the fleet driver rewrites at every epoch boundary. The session
/// holds the governor `&mut`, so the driver reaches past that borrow
/// through `Rc<Cell<…>>` (fleet runs are single-threaded; the
/// cross-thread story is one fleet per harness worker).
struct SharedParamsController {
    params: Rc<Cell<ControllerParams>>,
}

impl Governor for SharedParamsController {
    fn on_tick(&mut self, view: &ServerView<'_>, cmds: &mut FreqCommands) {
        ThreadController::new(self.params.get()).scale_all(view, cmds);
    }

    fn name(&self) -> &str {
        "fleet-thread-controller"
    }
}

/// Run a fleet with batched actor inference and no telemetry.
pub fn run_fleet(spec: &FleetSpec, policy: &TrainedPolicy) -> FleetResult {
    let recs = vec![Recorder::disabled(); spec.nodes];
    run_fleet_recorded(spec, policy, &recs)
}

/// [`run_fleet`] with one telemetry [`Recorder`] per node: node `i`'s
/// engine events (dispatches, completions, frequency transitions,
/// latency snapshots) land in `recs[i]`, so per-node JSONL artifacts
/// fall out the same way single-server ones do.
pub fn run_fleet_recorded(
    spec: &FleetSpec,
    policy: &TrainedPolicy,
    recs: &[Recorder],
) -> FleetResult {
    run_fleet_impl(spec, policy, recs, true, &Profiler::disabled())
}

/// [`run_fleet_recorded`] with a span [`Profiler`]: the lockstep epoch
/// opens `fleet.balance` (arrival split, once up front),
/// `fleet.batch_act` (observe + batched inference), `fleet.advance`
/// (node sessions, whose `engine.*` spans nest inside) and
/// `fleet.merge` (finish + percentile merge) spans. Profiling never
/// perturbs the simulation.
pub fn run_fleet_profiled(
    spec: &FleetSpec,
    policy: &TrainedPolicy,
    recs: &[Recorder],
    prof: &Profiler,
) -> FleetResult {
    run_fleet_impl(spec, policy, recs, true, prof)
}

/// Reference implementation: identical lockstep drive, but each node's
/// action comes from its own single-state forward pass. Exists so the
/// `fleet_scaling` bench can time batched against per-node inference on
/// the *same* workload, and so tests can assert the two are
/// result-identical. Not the path experiments use.
pub fn run_fleet_reference(spec: &FleetSpec, policy: &TrainedPolicy) -> FleetResult {
    let recs = vec![Recorder::disabled(); spec.nodes];
    run_fleet_impl(spec, policy, &recs, false, &Profiler::disabled())
}

fn run_fleet_impl(
    spec: &FleetSpec,
    policy: &TrainedPolicy,
    recs: &[Recorder],
    batched: bool,
    prof: &Profiler,
) -> FleetResult {
    assert!(spec.nodes > 0, "fleet needs at least one node");
    assert_eq!(recs.len(), spec.nodes, "one recorder per node");
    let n = spec.nodes;
    let app_spec = AppSpec::get(spec.app);
    let server = Server::new(ServerConfig::paper_default(app_spec.n_threads));
    let sp = prof.span("fleet.balance");
    let arrivals = fleet_arrivals(spec);
    let streams = split_arrivals(&arrivals, n, app_spec.n_threads, spec.balancer);
    let assigned: Vec<u64> = streams.iter().map(|s| s.len() as u64).collect();
    drop(sp);

    let agent = policy.build_agent();
    let opts = RunOptions {
        tick_ns: policy.deeppower.short_time,
        ..Default::default()
    };
    let cells: Vec<Rc<Cell<ControllerParams>>> = (0..n)
        .map(|_| Rc::new(Cell::new(ControllerParams::default())))
        .collect();
    let mut govs: Vec<SharedParamsController> = cells
        .iter()
        .map(|c| SharedParamsController {
            params: Rc::clone(c),
        })
        .collect();
    let mut sessions: Vec<Session<'_>> = govs
        .iter_mut()
        .zip(&streams)
        .zip(recs)
        .map(|((gov, stream), rec)| {
            server
                .session(stream, gov as &mut dyn Governor, opts, rec)
                .with_profiler(prof)
        })
        .collect();
    let mut observers = vec![StateObserver::new(policy.deeppower.state_norm); n];
    let mut states = Matrix::zeros(n, STATE_DIM);

    let long = policy.deeppower.long_time.max(1);
    let mut epochs = 0u64;
    loop {
        // Observe every node (the first epoch sees the pre-run empty
        // state, mirroring the single-node governor acting on its first
        // tick) and act — one batched pass, or N single passes on the
        // reference path.
        let sp = prof.span("fleet.batch_act");
        for (i, (observer, session)) in observers.iter_mut().zip(&sessions).enumerate() {
            let s = session.with_view(|v| observer.observe(v));
            states.set_row(i, &s);
        }
        if batched {
            let actions = agent.act_batch(&states);
            for (i, cell) in cells.iter().enumerate() {
                cell.set(ControllerParams::from_action(actions.row(i)));
            }
        } else {
            for (i, cell) in cells.iter().enumerate() {
                let action = agent.act(states.row(i));
                cell.set(ControllerParams::from_action(&action));
            }
        }
        drop(sp);
        epochs += 1;
        let t_stop = epochs.saturating_mul(long);
        let sp = prof.span("fleet.advance");
        let mut all_done = true;
        for session in sessions.iter_mut() {
            if !session.advance_until(t_stop) {
                all_done = false;
            }
        }
        drop(sp);
        if all_done {
            break;
        }
    }

    let _sp = prof.span("fleet.merge");
    let results: Vec<_> = sessions.into_iter().map(Session::finish).collect();
    assemble(spec, &app_spec, epochs, &assigned, results)
}

/// Fold per-node [`SimResult`]s into the fleet report. Fleet
/// percentiles come from the merged record set, not from averaging
/// per-node percentiles (which would understate the tail whenever one
/// node runs hot).
fn assemble(
    spec: &FleetSpec,
    app_spec: &AppSpec,
    epochs: u64,
    assigned: &[u64],
    results: Vec<deeppower_simd_server::SimResult>,
) -> FleetResult {
    let ms = |ns: u64| ns as f64 / MILLISECOND as f64;
    let mut merged: Vec<RequestRecord> = Vec::new();
    let mut per_node = Vec::with_capacity(results.len());
    let mut total_energy_j = 0.0;
    let mut total_power_w = 0.0;
    for (node, sim) in results.into_iter().enumerate() {
        let s = &sim.stats;
        per_node.push(NodeSummary {
            node,
            assigned: assigned[node],
            requests: s.count,
            energy_j: sim.energy_j,
            avg_power_w: sim.avg_power_w,
            p50_ms: ms(s.p50_ns),
            p95_ms: ms(s.p95_ns),
            p99_ms: ms(s.p99_ns),
            timeout_rate: s.timeout_rate(),
            freq_transitions: sim.freq_transitions,
        });
        total_energy_j += sim.energy_j;
        total_power_w += sim.avg_power_w;
        merged.extend(sim.records);
    }
    let fleet = LatencyStats::from_records(&merged);
    FleetResult {
        app: app_spec.name.to_string(),
        nodes: spec.nodes,
        balancer: spec.balancer.label().to_string(),
        seed: spec.seed,
        peak_load: spec.peak_load,
        duration_s: spec.duration_s,
        drl_epochs: epochs,
        total_requests: fleet.count,
        total_energy_j,
        total_power_w,
        fleet_p50_ms: ms(fleet.p50_ns),
        fleet_p95_ms: ms(fleet.p95_ns),
        fleet_p99_ms: ms(fleet.p99_ns),
        fleet_timeout_rate: fleet.timeout_rate(),
        per_node,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(nodes: usize, balancer: BalancerPolicy) -> FleetSpec {
        FleetSpec {
            app: App::Masstree, // the 8-thread app — cheapest node
            nodes,
            balancer,
            seed: 11,
            peak_load: 0.4,
            duration_s: 3,
        }
    }

    #[test]
    fn fleet_conserves_requests_end_to_end() {
        for balancer in BalancerPolicy::all() {
            let spec = small_spec(3, balancer);
            let policy = untrained_policy(spec.app, 5);
            let generated = fleet_arrivals(&spec).len() as u64;
            let res = run_fleet(&spec, &policy);
            assert_eq!(
                res.total_requests, generated,
                "{balancer:?}: fleet dropped or duplicated requests"
            );
            for node in &res.per_node {
                assert_eq!(
                    node.requests, node.assigned,
                    "{balancer:?}: node {} completed {} of {} assigned",
                    node.node, node.requests, node.assigned
                );
            }
            assert!(res.drl_epochs > 0);
            assert!(res.total_energy_j > 0.0);
        }
    }

    #[test]
    fn fleet_runs_are_deterministic() {
        let spec = small_spec(2, BalancerPolicy::JoinShortestQueue);
        let policy = untrained_policy(spec.app, 7);
        let a = run_fleet(&spec, &policy).to_json();
        let b = run_fleet(&spec, &policy).to_json();
        assert_eq!(a, b, "same spec + policy must reproduce byte-identically");
    }

    #[test]
    fn batched_and_unbatched_fleets_agree() {
        // The whole point of the batched path: same floats, fewer
        // forward passes. Any drift here means act_batch is no longer
        // bit-faithful to act.
        let spec = small_spec(4, BalancerPolicy::RoundRobin);
        let policy = untrained_policy(spec.app, 3);
        let batched = run_fleet(&spec, &policy).to_json();
        let reference = run_fleet_reference(&spec, &policy).to_json();
        assert_eq!(batched, reference);
    }

    #[test]
    fn profiled_fleet_is_byte_identical_and_captures_epoch_spans() {
        let spec = small_spec(2, BalancerPolicy::JoinShortestQueue);
        let policy = untrained_policy(spec.app, 7);
        let plain = run_fleet(&spec, &policy).to_json();
        let prof = Profiler::enabled();
        let recs = vec![Recorder::disabled(); spec.nodes];
        let profiled = run_fleet_profiled(&spec, &policy, &recs, &prof).to_json();
        assert_eq!(plain, profiled, "profiling perturbed the fleet result");

        let rows = prof.phase_table();
        let count = |n: &str| rows.iter().find(|r| r.name == n).map_or(0, |r| r.count);
        assert_eq!(count("fleet.balance"), 1);
        assert_eq!(count("fleet.merge"), 1);
        assert!(count("fleet.batch_act") > 0);
        assert_eq!(count("fleet.batch_act"), count("fleet.advance"));
        // Node-engine spans nest inside fleet.advance/fleet.merge, so
        // they carry no root time of their own.
        let tick = rows.iter().find(|r| r.name == "engine.tick").unwrap();
        assert!(tick.count > 0);
        assert_eq!(tick.root_ns, 0);
    }

    #[test]
    fn per_node_recorders_capture_disjoint_streams() {
        let spec = small_spec(2, BalancerPolicy::RoundRobin);
        let policy = untrained_policy(spec.app, 9);
        let recs = vec![Recorder::ring(1 << 14), Recorder::ring(1 << 14)];
        let res = run_fleet_recorded(&spec, &policy, &recs);
        let events: Vec<_> = recs.iter().map(|r| r.drain_events()).collect();
        assert!(
            events.iter().all(|e| !e.is_empty()),
            "both nodes must emit telemetry"
        );
        // Node streams are per-node: each stream's dispatch events
        // reference only requests the balancer routed to that node.
        assert!(res.per_node.iter().all(|n| n.requests > 0));
    }
}
